// A1 — ablation: SM count (device parallelism) scaling.
//
// The cost model attributes elapsed time to the busiest SM, so this sweep
// checks that the simulated device behaves like a throughput machine:
// near-linear scaling while there are enough blocks to feed every SM, and
// a floor set by the longest single warp (hub expansion) after that. The
// baseline saturates earlier on skewed graphs because its long poles are
// 32x longer.
#include "bench_common.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

constexpr std::uint32_t kSmCounts[] = {1, 2, 4, 8, 16, 32};

double run_ms(const graph::Csr& g, graph::NodeId source, Mapping mapping,
              std::uint32_t sms) {
  simt::SimConfig cfg;
  cfg.num_sms = sms;
  return benchx::measure_bfs(g, source, benchx::bfs_options(mapping, 32),
                             cfg)
      .modeled_ms;
}

void print_figure() {
  benchx::print_banner(
      "A1: SM-count scaling of BFS (modeled ms)",
      "Fewer SMs serialize blocks; the table reports modeled ms and the "
      "speedup relative to 1 SM.");
  util::Table table({"graph", "mapping", "1", "2", "4", "8", "16", "32",
                     "scaling@32"});
  for (const char* name : {"RMAT", "Uniform"}) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    for (Mapping mapping :
         {Mapping::kThreadMapped, Mapping::kWarpCentric}) {
      auto& row = table.row();
      row.cell(name).cell(algorithms::to_string(mapping));
      double first = 0;
      double last = 0;
      for (std::uint32_t sms : kSmCounts) {
        const double ms = run_ms(g, source, mapping, sms);
        if (sms == 1) first = ms;
        last = ms;
        row.cell(ms, 3);
      }
      row.cell(first / last, 1);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: near-linear scaling for warp-centric (many small "
      "blocks feed any SM count);\nthe thread-mapped kernel stops scaling "
      "once its few blocks and long warps dominate.\n");
}

void BM_SmSweep(benchmark::State& state) {
  const graph::Csr g =
      graph::make_dataset("RMAT", benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  const auto sms = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.counters["modeled_ms"] =
        run_ms(g, source, Mapping::kWarpCentric, sms);
  }
}
BENCHMARK(BM_SmSweep)->Arg(1)->Arg(8)->Arg(32)->Unit(
    benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// A2 — ablation: frontier structure and adaptive width (extensions).
//
// Panel 1 compares the paper's level-array frontier (scan all n vertices
// per level) against the explicit queue frontier for both mappings. The
// level-array structure is what the paper used; the queue is where later
// GPU BFS work went, and the gap is largest on high-diameter graphs where
// per-level full scans dominate.
//
// Panel 2 evaluates the adaptive per-level W selection (the authors'
// follow-up idea): the W chosen for each level, and total time vs the
// best fixed W.
#include "bench_common.hpp"

#include <string>

#include "algorithms/pagerank_gpu.hpp"

namespace {

using namespace maxwarp;
using algorithms::Frontier;
using algorithms::Mapping;

double bfs_ms(const graph::Csr& g, graph::NodeId source, Mapping mapping,
              int width, Frontier frontier) {
  auto opts = benchx::bfs_options(mapping, width);
  opts.frontier = frontier;
  return benchx::measure_bfs(g, source, opts).modeled_ms;
}

void print_panel1() {
  benchx::print_banner(
      "A2.1: level-array vs queue frontier (modeled ms)",
      "Same kernels, different frontier bookkeeping; W=8 for the "
      "warp-centric columns.");
  util::Table table({"graph", "scan base", "scan warp", "queue base",
                     "queue warp", "queue gain"});
  for (const char* name : {"RMAT", "LiveJournal*", "Uniform", "Grid"}) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    const double scan_base = bfs_ms(g, source, Mapping::kThreadMapped, 32,
                                    Frontier::kLevelArray);
    const double scan_warp = bfs_ms(g, source, Mapping::kWarpCentric, 8,
                                    Frontier::kLevelArray);
    const double queue_base = bfs_ms(g, source, Mapping::kThreadMapped, 32,
                                     Frontier::kQueue);
    const double queue_warp = bfs_ms(g, source, Mapping::kWarpCentric, 8,
                                     Frontier::kQueue);
    table.row()
        .cell(name)
        .cell(scan_base, 3)
        .cell(scan_warp, 3)
        .cell(queue_base, 3)
        .cell(queue_warp, 3)
        .cell(std::min(scan_base, scan_warp) /
                  std::min(queue_base, queue_warp),
              2);
  }
  table.print();
  std::printf(
      "\nExpected shape: the queue helps the warp-centric kernel where "
      "full scans dominate (Grid:\n>2x at equal W) and is a wash on "
      "low-diameter skewed graphs, where its per-edge CAS and\nenqueue "
      "overhead offsets the scans it saves. The thread-mapped queue "
      "kernel LOSES to its\nscan version: its naive per-lane enqueue "
      "atomics serialize (see the conflict counters) —\nwhich is why "
      "production queue kernels use warp-aggregated enqueue.\n");
}

void print_panel2() {
  std::printf("\nA2.2: adaptive per-level W vs fixed W (queue frontier)\n\n");
  util::Table table({"graph", "adaptive ms", "best fixed ms", "fixed W",
                     "ratio", "widths used (first 10 levels)"});
  for (const char* name : {"RMAT", "WikiTalk*", "Uniform", "Grid"}) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);

    gpu::Device dev;
    const auto adaptive = algorithms::bfs_gpu_adaptive(algorithms::GpuGraph(dev, g), source);
    const double adaptive_ms = adaptive.stats.kernel_ms(dev.config());

    double best_ms = 1e300;
    int best_w = 0;
    for (int w : {2, 4, 8, 16, 32}) {
      const double ms =
          bfs_ms(g, source, Mapping::kWarpCentric, w, Frontier::kQueue);
      if (ms < best_ms) {
        best_ms = ms;
        best_w = w;
      }
    }

    std::string widths;
    for (std::size_t i = 0; i < adaptive.adaptive_widths.size() && i < 10;
         ++i) {
      if (i) widths += ' ';
      widths += std::to_string(adaptive.adaptive_widths[i]);
    }
    table.row()
        .cell(name)
        .cell(adaptive_ms, 3)
        .cell(best_ms, 3)
        .cell(best_w)
        .cell(adaptive_ms / best_ms, 2)
        .cell(widths);
  }
  table.print();
  std::printf(
      "\nExpected shape: on big frontiers the chosen W tracks the average "
      "degree; on small frontiers\nthe occupancy term raises it to keep "
      "the SMs fed. The adaptive total lands within ~1.3x of\nthe best "
      "fixed W it cannot know in advance — without any per-graph tuning.\n");
}

void print_panel3() {
  std::printf(
      "\nA2.3: direction-optimizing (push/pull) BFS vs pure push (W=8)\n\n");
  util::Table table({"graph", "push ms", "hybrid ms", "speedup",
                     "pull levels", "work cycles saved %"});
  for (const char* name : {"RMAT", "LiveJournal*", "Random", "Grid"}) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    gpu::Device d1;
    algorithms::KernelOptions push_opts;
    push_opts.virtual_warp_width = 8;
    const auto push = algorithms::bfs_gpu(algorithms::GpuGraph(d1, g), source, push_opts);
    gpu::Device d2;
    // Match the push baseline's W=8 so only the direction choice differs.
    algorithms::KernelOptions hybrid_opts;
    hybrid_opts.virtual_warp_width = 8;
    const auto hybrid = algorithms::bfs_gpu_direction_optimized(
        algorithms::GpuGraph(d2, g), source, hybrid_opts);
    int pull_levels = 0;
    for (int d : hybrid.level_directions) pull_levels += d;
    const double saved =
        1.0 - static_cast<double>(
                  hybrid.stats.kernels.counters.total_cycles()) /
                  static_cast<double>(
                      push.stats.kernels.counters.total_cycles());
    table.row()
        .cell(name)
        .cell(push.stats.kernel_ms(d1.config()), 3)
        .cell(hybrid.stats.kernel_ms(d2.config()), 3)
        .cell(push.stats.kernels.elapsed_cycles /
                  static_cast<double>(hybrid.stats.kernels.elapsed_cycles),
              2)
        .cell(pull_levels)
        .cell(saved * 100.0, 1);
  }
  table.print();
  std::printf(
      "\nExpected shape: the hybrid switches to pull on the boom levels "
      "of low-diameter graphs and\nsaves total work cycles (every "
      "unvisited vertex stops its scan at the first frontier\nparent); "
      "the elapsed win is larger still, because the pull kernel's uniform "
      "strips also\nbalance across SMs. Grid never switches and ties with "
      "pure push.\n");
}

/// One adaptive-vs-best-static measurement: modeled kernel ms under the
/// degree-binned kAdaptive dispatch against a sweep of every static W.
struct AdaptiveCell {
  double adaptive_ms = 0;
  double best_static_ms = 0;
  int best_w = 0;
  double ratio() const {
    return best_static_ms > 0 ? adaptive_ms / best_static_ms : 0;
  }
};

AdaptiveCell measure_adaptive_bfs(const graph::Csr& g,
                                  graph::NodeId source) {
  AdaptiveCell cell;
  cell.adaptive_ms =
      benchx::measure_bfs(g, source,
                          benchx::bfs_options(Mapping::kAdaptive, 32))
          .modeled_ms;
  cell.best_static_ms = 1e300;
  for (int w : {1, 2, 4, 8, 16, 32}) {
    const double ms =
        benchx::measure_bfs(g, source,
                            benchx::bfs_options(Mapping::kWarpCentric, w))
            .modeled_ms;
    if (ms < cell.best_static_ms) {
      cell.best_static_ms = ms;
      cell.best_w = w;
    }
  }
  return cell;
}

double pagerank_ms(const graph::Csr& g, const algorithms::KernelOptions& o) {
  gpu::Device dev;
  const auto r =
      algorithms::pagerank_gpu(algorithms::GpuGraph(dev, g), {}, o);
  return r.stats.kernel_ms(dev.config());
}

AdaptiveCell measure_adaptive_pagerank(const graph::Csr& g) {
  AdaptiveCell cell;
  cell.adaptive_ms = pagerank_ms(g, benchx::bfs_options(Mapping::kAdaptive, 32));
  cell.best_static_ms = 1e300;
  for (int w : {1, 2, 4, 8, 16, 32}) {
    const double ms =
        pagerank_ms(g, benchx::bfs_options(Mapping::kWarpCentric, w));
    if (ms < cell.best_static_ms) {
      cell.best_static_ms = ms;
      cell.best_w = w;
    }
  }
  return cell;
}

void print_panel4() {
  std::printf(
      "\nA2.4: degree-binned adaptive dispatch (Mapping::kAdaptive) vs "
      "best static W\n\n");
  util::Table table({"graph", "algo", "adaptive ms", "best static ms",
                     "best W", "ratio"});
  for (const char* name : {"RMAT", "LiveJournal*", "Uniform", "Grid"}) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    const AdaptiveCell bfs = measure_adaptive_bfs(g, source);
    const AdaptiveCell pr = measure_adaptive_pagerank(g);
    table.row()
        .cell(name)
        .cell("bfs")
        .cell(bfs.adaptive_ms, 3)
        .cell(bfs.best_static_ms, 3)
        .cell(bfs.best_w)
        .cell(bfs.ratio(), 3);
    table.row()
        .cell(name)
        .cell("pagerank")
        .cell(pr.adaptive_ms, 3)
        .cell(pr.best_static_ms, 3)
        .cell(pr.best_w)
        .cell(pr.ratio(), 3);
  }
  table.print();
  std::printf(
      "\nExpected shape: on skewed graphs (RMAT, LiveJournal*) the binned "
      "dispatch beats every\nstatic W (ratio < 1) because no single W fits "
      "both the degree-1 tail and the hubs; on\nuniform-degree graphs it "
      "matches the best static W to within the partitioning overhead\n"
      "(ratio <= ~1.05), since the tuner collapses to one bin whose W is "
      "the static optimum.\n");
}

/// Registered benchmark: the ratio counters below feed
/// BENCH_frontier_adaptive.json and scripts/perf_guard.py.
void BM_Adaptive(benchmark::State& state, const char* graph_name,
                 bool pagerank) {
  const graph::Csr g =
      graph::make_dataset(graph_name, benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  AdaptiveCell cell;
  for (auto _ : state) {
    cell = pagerank ? measure_adaptive_pagerank(g)
                    : measure_adaptive_bfs(g, source);
  }
  state.counters["adaptive_ms"] = cell.adaptive_ms;
  state.counters["best_static_ms"] = cell.best_static_ms;
  state.counters["ratio"] = cell.ratio();
}

void BM_Frontier(benchmark::State& state, Frontier frontier) {
  const graph::Csr g =
      graph::make_dataset("Grid", benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    state.counters["modeled_ms"] =
        bfs_ms(g, source, Mapping::kWarpCentric, 8, frontier);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_panel1();
  print_panel2();
  print_panel3();
  print_panel4();
  for (const char* name : {"RMAT", "LiveJournal*", "Uniform", "Grid"}) {
    benchmark::RegisterBenchmark(
        (std::string("adaptive/") + name + "/bfs").c_str(), BM_Adaptive,
        name, false)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("adaptive/") + name + "/pagerank").c_str(),
        BM_Adaptive, name, true)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RegisterBenchmark("frontier/Grid/level_array", BM_Frontier,
                               Frontier::kLevelArray)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("frontier/Grid/queue", BM_Frontier,
                               Frontier::kQueue)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

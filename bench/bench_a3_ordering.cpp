// A3 — ablation: node ordering (task placement) under static assignment.
//
// Static warp-centric assignment binds vertex v to group v/G of warp
// v/(G*warps): whatever order the vertices are numbered in becomes the
// physical work placement. This sweep relabels the same graph three ways —
// natural (generator order), random shuffle, and descending degree — and
// measures BFS under both mappings. Degree-descending packs the heavy
// vertices into the same warps *and* the same (round-robin-pinned) SMs,
// which helps intra-warp uniformity but risks SM imbalance; the dynamic
// distribution recovers it.
#include "bench_common.hpp"

#include <numeric>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

graph::Csr relabel(const graph::Csr& g, const std::string& how,
                   std::uint64_t seed) {
  if (how == "natural") return g;
  if (how == "degree-desc") {
    return graph::permute(g, graph::degree_descending_order(g));
  }
  // random
  std::vector<graph::NodeId> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), 0u);
  util::Rng rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return graph::permute(g, perm);
}

void print_figure() {
  benchx::print_banner(
      "A3: node-ordering ablation (modeled ms, BFS)",
      "Same graph, three labelings. Orderings move work between warps and "
      "SMs without changing the answer.");
  util::Table table({"graph", "ordering", "baseline", "warp W=32",
                     "warp+dynamic W=32"});
  for (const char* name : {"RMAT", "LiveJournal*"}) {
    const graph::Csr original =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    for (const char* how : {"natural", "random", "degree-desc"}) {
      const graph::Csr g = relabel(original, how, benchx::seed());
      const auto source = benchx::hub_source(g);
      const auto base = benchx::measure_bfs(
          g, source, benchx::bfs_options(Mapping::kThreadMapped, 32));
      const auto warp = benchx::measure_bfs(
          g, source, benchx::bfs_options(Mapping::kWarpCentric, 32));
      const auto dyn = benchx::measure_bfs(
          g, source,
          benchx::bfs_options(Mapping::kWarpCentricDynamic, 32));
      table.row()
          .cell(name)
          .cell(how)
          .cell(base.modeled_ms, 3)
          .cell(warp.modeled_ms, 3)
          .cell(dyn.modeled_ms, 3);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: degree-descending labels HURT the thread-mapped "
      "baseline badly (all the hub\nblocks pin to the first few SMs) but "
      "HELP static warp-centric (degree-similar vertices share\na warp, so "
      "group trip counts match and lanes stop idling). The dynamic variant "
      "is nearly\nordering-invariant — the robustness that motivates "
      "paying for its atomics.\n");
}

void BM_Ordering(benchmark::State& state, const std::string& how) {
  const graph::Csr g = relabel(
      graph::make_dataset("RMAT", benchx::scale(), benchx::seed()), how,
      benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    state.counters["modeled_ms"] =
        benchx::measure_bfs(g, source,
                            benchx::bfs_options(Mapping::kWarpCentric, 32))
            .modeled_ms;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  for (const char* how : {"natural", "random", "degree-desc"}) {
    benchmark::RegisterBenchmark((std::string("ordering/RMAT/") + how)
                                     .c_str(),
                                 BM_Ordering, std::string(how))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// A4 — ablation: memory-model sensitivity (coalescing granularity and
// memory cost weight).
//
// The headline speedups rest on a cost model; this sweep shows how they
// move when the model's two memory knobs change. If the conclusion "warp-
// centric wins on skewed graphs" flipped under reasonable knob settings,
// the reproduction would be an artifact — it does not: the speedup grows
// with transaction size (more coalescing to win) and with the memory cost
// weight (graph kernels are bandwidth-bound), but stays > 1 throughout.
#include "bench_common.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

double speedup_under(const graph::Csr& g, graph::NodeId source,
                     std::uint32_t txn_bytes, std::uint32_t mem_cost) {
  simt::SimConfig cfg;
  cfg.mem_transaction_bytes = txn_bytes;
  cfg.cycles_per_mem_transaction = mem_cost;
  const auto base = benchx::measure_bfs(
      g, source, benchx::bfs_options(Mapping::kThreadMapped, 32), cfg);
  const auto warp = benchx::measure_bfs(
      g, source, benchx::bfs_options(Mapping::kWarpCentric, 32), cfg);
  return static_cast<double>(base.elapsed_cycles) /
         static_cast<double>(warp.elapsed_cycles);
}

void print_figure() {
  benchx::print_banner(
      "A4: cost-model sensitivity of the RMAT BFS speedup (W=32)",
      "Left: transaction segment size (default 128B). Right: cycles per "
      "transaction (default 16).");
  const graph::Csr g =
      graph::make_dataset("RMAT", benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);

  util::Table seg({"txn bytes", "speedup"});
  for (std::uint32_t bytes : {32u, 64u, 128u, 256u}) {
    seg.row().cell(static_cast<std::uint64_t>(bytes))
        .cell(speedup_under(g, source, bytes, 16), 2);
  }
  seg.print();

  util::Table cost({"cycles/txn", "speedup"});
  for (std::uint32_t cycles : {4u, 8u, 16u, 32u, 64u}) {
    cost.row().cell(static_cast<std::uint64_t>(cycles))
        .cell(speedup_under(g, source, 128, cycles), 2);
  }
  std::printf("\n");
  cost.print();
  std::printf(
      "\nExpected shape: speedup > 1 at every setting; it rises with "
      "segment size (coalescing\nmatters more) and is stable-to-rising in "
      "the memory cost weight.\n");
}

void BM_Sensitivity(benchmark::State& state) {
  const graph::Csr g =
      graph::make_dataset("RMAT", benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    state.counters["speedup"] = speedup_under(
        g, source, static_cast<std::uint32_t>(state.range(0)), 16);
  }
}
BENCHMARK(BM_Sensitivity)->Arg(32)->Arg(128)->Unit(
    benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

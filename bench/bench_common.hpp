// Shared scaffolding for the per-figure benchmark binaries.
//
// Every binary prints the paper-style table/series it regenerates (computed
// at the scale given by --scale or MAXWARP_SCALE, default 1.0 = 32K-node
// instances), then runs a small set of google-benchmark timings over the
// same code paths. The *modeled* GPU milliseconds (simulator cycles /
// clock) are the figure values; google-benchmark's wall times measure the
// simulator itself and are reported for harness health only.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <string>

#include "algorithms/bfs_gpu.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "util/table.hpp"

namespace maxwarp::benchx {

/// Instance scale: MAXWARP_SCALE env var (the bench runner's knob).
inline double scale() {
  if (const char* env = std::getenv("MAXWARP_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

/// Records this binary's build flavour in google-benchmark's context (and
/// thus in --benchmark_out JSON). The library's own "library_build_type"
/// key describes the *benchmark library*, not us; scripts/check.sh gates
/// on this key to refuse debug-build timing artifacts.
inline void embed_build_info() {
#ifdef NDEBUG
  benchmark::AddCustomContext("maxwarp_build_type", "release");
#else
  benchmark::AddCustomContext("maxwarp_build_type", "debug");
#endif
}

inline std::uint64_t seed() {
  if (const char* env = std::getenv("MAXWARP_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 42;
}

/// Highest-degree node: a deterministic, non-trivial BFS source.
inline graph::NodeId hub_source(const graph::Csr& g) {
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

inline algorithms::KernelOptions bfs_options(algorithms::Mapping mapping,
                                             int width) {
  algorithms::KernelOptions opts;
  opts.mapping = mapping;
  opts.virtual_warp_width = width;
  return opts;
}

/// One BFS measurement on a fresh device.
struct BfsMeasurement {
  double modeled_ms = 0;
  double mteps = 0;
  double simd_utilization = 0;
  double txn_per_request = 0;
  std::uint64_t elapsed_cycles = 0;
  std::uint64_t traversed_edges = 0;
  std::uint32_t depth = 0;
};

inline BfsMeasurement measure_bfs(const graph::Csr& g, graph::NodeId source,
                                  const algorithms::KernelOptions& opts,
                                  simt::SimConfig cfg = {}) {
  gpu::Device dev(cfg);
  const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, g), source, opts);
  BfsMeasurement m;
  m.modeled_ms = r.stats.kernel_ms(dev.config());
  m.elapsed_cycles = r.stats.kernels.elapsed_cycles;
  m.traversed_edges = r.traversed_edges;
  m.mteps = m.modeled_ms > 0
                ? static_cast<double>(r.traversed_edges) /
                      (m.modeled_ms * 1e3)  // edges / us == MTEPS
                : 0;
  m.simd_utilization = r.stats.kernels.counters.simd_utilization();
  m.txn_per_request = r.stats.kernels.counters.transactions_per_request();
  m.depth = r.depth;
  return m;
}

inline void print_banner(const char* experiment, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("scale=%.3g seed=%llu (set MAXWARP_SCALE / MAXWARP_SEED)\n",
              scale(), static_cast<unsigned long long>(seed()));
  std::printf("================================================================\n\n");
}

}  // namespace maxwarp::benchx

// E1 — stream-aware concurrent query engine (extension experiment, not a
// paper figure).
//
// A graph service answers many traversal queries against one resident
// graph. This experiment batches K BFS queries on LiveJournal* through
// algorithms::QueryEngine and sweeps batch size x stream count, comparing
// the overlap-aware modeled makespan against issuing the same K queries
// serially (one stream, no fusion — exactly K back-to-back bfs_gpu calls).
// Fusion packs up to 32 queries into one multi-source sweep (per-vertex
// bitmasks), so the adjacency structure is read once per level for the
// whole group; streams then overlap the remaining kernel/copy work.
//
// Acceptance: 32 batched queries must model >= 4x faster than 32 serial
// bfs_gpu calls; the table prints the check explicitly.
#include "bench_common.hpp"

#include <vector>

#include "algorithms/query_engine.hpp"

namespace {

using namespace maxwarp;
using algorithms::BatchStats;
using algorithms::GpuGraph;
using algorithms::Query;
using algorithms::QueryEngine;
using algorithms::QueryEngineOptions;

const graph::Csr& dataset() {
  static const graph::Csr g =
      graph::make_dataset("LiveJournal*", benchx::scale(), benchx::seed());
  return g;
}

std::vector<Query> bfs_batch(const graph::Csr& g, std::uint32_t k) {
  std::vector<Query> queries;
  queries.reserve(k);
  for (std::uint32_t q = 0; q < k; ++q) {
    queries.push_back(Query::bfs((q * 2654435761u) % g.num_nodes()));
  }
  return queries;
}

/// Runs one batch on a fresh device so every configuration is charged an
/// identical, isolated timeline. `record` arms the launch-graph recorder
/// (analysis/launch_graph.hpp) so its cost shows up in the comparison.
BatchStats run_batch(std::uint32_t batch, std::uint32_t streams, bool fuse,
                     std::uint32_t group = 32, bool record = false) {
  simt::SimConfig cfg;
  cfg.record_launch_graph = record;
  gpu::Device dev(cfg);
  GpuGraph g(dev, dataset());
  QueryEngine engine(g, QueryEngineOptions{.num_streams = streams,
                                           .bfs_group_size = group,
                                           .fuse_bfs = fuse});
  const auto queries = bfs_batch(dataset(), batch);
  (void)engine.run(queries);
  return engine.last_batch_stats();
}

void print_table() {
  benchx::print_banner(
      "E1: stream-aware concurrent query engine",
      "Batched BFS query service on LiveJournal*: fused multi-source "
      "sweeps + stream overlap vs the same queries issued serially.");

  // 32 queries throughout; sweep how they are packed (fused group size)
  // and spread (stream count). group=1/streams=1 is the serial baseline:
  // 32 back-to-back bfs_gpu calls.
  const BatchStats serial = run_batch(32, 1, /*fuse=*/false);
  util::Table table({"group", "streams", "units", "launches", "batched ms",
                     "vs serial"});
  table.row()
      .cell(std::uint64_t{1})
      .cell(std::uint64_t{1})
      .cell(std::uint64_t{32})
      .cell(serial.kernel_launches)
      .cell(serial.modeled_ms, 3)
      .cell(1.0, 2);
  double best32 = 0.0;
  for (const std::uint32_t group : {1u, 8u, 16u, 32u}) {
    for (const std::uint32_t streams : {2u, 4u, 8u}) {
      const BatchStats s = run_batch(32, streams, /*fuse=*/true, group);
      const std::uint32_t units = group == 1 ? 32 : 32 / group;
      table.row()
          .cell(static_cast<std::uint64_t>(group))
          .cell(static_cast<std::uint64_t>(streams))
          .cell(static_cast<std::uint64_t>(units))
          .cell(s.kernel_launches)
          .cell(s.modeled_ms, 3)
          .cell(serial.modeled_ms / s.modeled_ms, 2);
      if (best32 == 0.0 || s.modeled_ms < best32) best32 = s.modeled_ms;
    }
  }
  table.print();

  const double speedup = best32 > 0 ? serial.modeled_ms / best32 : 0.0;
  std::printf(
      "\nacceptance: 32 batched vs 32 serial BFS queries -> %.2fx "
      "(requirement: >= 4x) %s\n",
      speedup, speedup >= 4.0 ? "PASS" : "FAIL");

  // The launch-graph recorder is host-side bookkeeping: it must not
  // perturb the modeled timeline at all, and when it is off (the
  // default) its cost is one branch per launch. Gate both directly.
  const BatchStats rec_off = run_batch(32, 4, /*fuse=*/true, 32, false);
  const BatchStats rec_on = run_batch(32, 4, /*fuse=*/true, 32, true);
  const double overhead =
      rec_off.modeled_ms > 0 ? rec_on.modeled_ms / rec_off.modeled_ms - 1.0
                             : 0.0;
  std::printf(
      "acceptance: launch-graph recording overhead (modeled, armed vs "
      "off) -> %+.3f%% (requirement: <= 2%%) %s\n",
      overhead * 100.0, overhead <= 0.02 ? "PASS" : "FAIL");
}

void BM_QueryEngine(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  const auto streams = static_cast<std::uint32_t>(state.range(1));
  const bool fuse = state.range(2) != 0;
  const auto group = static_cast<std::uint32_t>(state.range(3));
  BatchStats stats;
  for (auto _ : state) {
    stats = run_batch(batch, streams, fuse, group);
    benchmark::DoNotOptimize(stats.modeled_ms);
  }
  state.counters["modeled_ms"] = stats.modeled_ms;
  state.counters["serial_ms"] = stats.serial_ms;
  state.counters["speedup"] =
      stats.modeled_ms > 0 ? stats.serial_ms / stats.modeled_ms : 0.0;
  state.counters["launches"] = static_cast<double>(stats.kernel_launches);
}

// Recording overhead as a guarded counter: the recorder observes the
// launch stream, it never charges it, so record_overhead_pct is
// deterministically 0 and the perf guard holds it to the 2% band.
void BM_RecordOverhead(benchmark::State& state) {
  BatchStats off;
  BatchStats on;
  for (auto _ : state) {
    off = run_batch(32, 4, /*fuse=*/true, 32, false);
    on = run_batch(32, 4, /*fuse=*/true, 32, true);
    benchmark::DoNotOptimize(off.modeled_ms);
    benchmark::DoNotOptimize(on.modeled_ms);
  }
  state.counters["record_overhead_pct"] =
      off.modeled_ms > 0 ? (on.modeled_ms / off.modeled_ms - 1.0) * 100.0
                         : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::RegisterBenchmark("query_engine/serial32", BM_QueryEngine)
      ->Args({32, 1, 0, 32})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("query_engine/fused32_s1", BM_QueryEngine)
      ->Args({32, 1, 1, 32})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("query_engine/fused32_s4", BM_QueryEngine)
      ->Args({32, 4, 1, 32})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("query_engine/fused8x4_s4", BM_QueryEngine)
      ->Args({32, 4, 1, 8})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("query_engine/record_overhead",
                               BM_RecordOverhead)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E2: execution-engine throughput — warps simulated per second, serial
// engine vs the opt-in host-thread pool.
//
// Unlike the figure benches, the quantity of interest here is the *wall
// clock* of the simulator itself (the modeled GPU time is identical by
// construction for the serial engine and semantically equivalent for the
// threaded one). The table reports warps/sec for host_threads in {1, 2, 4}
// over one BFS and one PageRank workload; the google-benchmark section
// times the same runs so check.sh can archive them as JSON.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <vector>

#include "algorithms/gpu_graph.hpp"
#include "algorithms/pagerank_gpu.hpp"
#include "gpu/device.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

namespace {

using namespace maxwarp;
using benchx::scale;

graph::Csr make_graph() {
  const auto n = static_cast<std::uint32_t>(32768 * scale());
  graph::GenOptions go;
  go.seed = benchx::seed();
  go.undirected = true;
  return graph::rmat(n, static_cast<std::uint64_t>(n) * 16, {}, go);
}

struct EngineRun {
  std::uint64_t warps = 0;
  double wall_ms = 0;
};

/// One full algorithm run on a fresh device; returns simulated warps and
/// the host wall time of the run (graph upload excluded).
EngineRun run_once(const graph::Csr& g, std::uint32_t host_threads,
                   bool pagerank) {
  simt::SimConfig cfg;
  cfg.host_threads = host_threads;
  gpu::Device dev(cfg);
  algorithms::GpuGraph gg(dev, g);
  algorithms::KernelOptions opts;
  opts.virtual_warp_width = 8;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t warps = 0;
  if (pagerank) {
    warps = algorithms::pagerank_gpu(gg, {}, opts).stats.kernels.warps;
  } else {
    warps = algorithms::bfs_gpu(gg, benchx::hub_source(g), opts)
                .stats.kernels.warps;
  }
  const auto t1 = std::chrono::steady_clock::now();
  EngineRun r;
  r.warps = warps;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

void print_table() {
  benchx::print_banner(
      "E2: simulator execution-engine throughput",
      "Host warps/sec, serial engine vs host-thread pool (same workload)");
  const auto g = make_graph();
  util::Table t({"workload", "host_threads", "warps", "wall_ms",
                 "kwarps_per_sec", "speedup_vs_serial"});
  for (const bool pr : {false, true}) {
    double serial_ms = 0;
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      const auto r = run_once(g, threads, pr);
      if (threads == 1) serial_ms = r.wall_ms;
      t.row()
          .cell(pr ? "pagerank" : "bfs")
          .cell(static_cast<int>(threads))
          .cell(r.warps)
          .cell(r.wall_ms, 2)
          .cell(r.wall_ms > 0 ? static_cast<double>(r.warps) / r.wall_ms : 0,
                1)
          .cell(r.wall_ms > 0 ? serial_ms / r.wall_ms : 0, 2);
    }
  }
  t.print();
}

void BM_SimEngine(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const bool pagerank = state.range(1) != 0;
  const auto g = make_graph();
  std::uint64_t warps = 0;
  for (auto _ : state) {
    warps = run_once(g, threads, pagerank).warps;
  }
  // The per-run warp count is deterministic; a total accumulated across
  // wall-clock iterations varies with machine load and trips the perf
  // guard, so report the stable per-run figure instead.
  state.counters["warps_per_run"] = static_cast<double>(warps);
  state.counters["host_threads"] = threads;
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::RegisterBenchmark("sim_engine/bfs/serial", BM_SimEngine)
      ->Args({1, 0})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("sim_engine/bfs/threads4", BM_SimEngine)
      ->Args({4, 0})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("sim_engine/pagerank/serial", BM_SimEngine)
      ->Args({1, 1})
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("sim_engine/pagerank/threads4", BM_SimEngine)
      ->Args({4, 1})
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E3 — cost of the fault-tolerance machinery when nothing is injected
// (extension experiment, not a paper figure).
//
// PR 5 threads a fault boundary through the execution stack: every launch
// consults the FaultInjector, every iterative driver runs inside a
// ResilientLoop, and the QueryEngine carries a degradation ladder. All of
// that must be free when no fault plan is armed — the checkpoint policy
// defaults to kAuto, which only snapshots while a plan is armed, so the
// unarmed modeled time must match a build-equivalent run with resilience
// explicitly off (Checkpoint::kOff, zero retries).
//
// Acceptance: unarmed overhead <= 2% modeled time on BFS, PageRank and a
// 16-query fused batch. An armed-but-inert plan (label matching no
// kernel) is reported alongside for reference: arming turns checkpoints
// on, so that column shows the price of standing protection, not of the
// framework's existence. Since the fused MS-BFS path gained checkpoint
// tracking (it exports an MsBfsHandoff so a migrated group can resume on
// a spare device instead of restarting), the armed query-batch figure
// includes per-level snapshot transfers; only the unarmed column is
// gated.
#include "bench_common.hpp"

#include <vector>

#include "algorithms/pagerank_gpu.hpp"
#include "algorithms/query_engine.hpp"
#include "simt/fault.hpp"

namespace {

using namespace maxwarp;
using algorithms::GpuGraph;
using algorithms::KernelOptions;
using algorithms::Query;
using algorithms::QueryEngine;

constexpr double kMaxOverhead = 0.02;  // 2%

// A plan whose label matches no kernel: the injector is consulted on
// every launch but never fires.
const char* kInertPlan = "launch:nth=1:label=no-such-kernel;seed=3";

const graph::Csr& dataset() {
  static const graph::Csr g =
      graph::make_dataset("LiveJournal*", benchx::scale(), benchx::seed());
  return g;
}

KernelOptions resilience_off() {
  KernelOptions opts;
  opts.resilience.checkpoint =
      KernelOptions::Resilience::Checkpoint::kOff;
  opts.resilience.policy.max_retries = 0;
  return opts;
}

enum class Mode { kOff, kUnarmed, kArmedInert };

double bfs_ms(Mode mode) {
  gpu::Device dev;
  GpuGraph g(dev, dataset());
  if (mode == Mode::kArmedInert)
    dev.faults().arm(simt::FaultPlan::parse(kInertPlan));
  const KernelOptions opts =
      mode == Mode::kOff ? resilience_off() : KernelOptions{};
  const auto r =
      algorithms::bfs_gpu(g, benchx::hub_source(dataset()), opts);
  return r.stats.total_ms(dev.config());
}

double pagerank_ms(Mode mode) {
  gpu::Device dev;
  GpuGraph g(dev, dataset());
  if (mode == Mode::kArmedInert)
    dev.faults().arm(simt::FaultPlan::parse(kInertPlan));
  const KernelOptions opts =
      mode == Mode::kOff ? resilience_off() : KernelOptions{};
  const auto r = algorithms::pagerank_gpu(g, {}, opts);
  return r.stats.total_ms(dev.config());
}

double query_batch_ms(Mode mode) {
  gpu::Device dev;
  GpuGraph g(dev, dataset());
  if (mode == Mode::kArmedInert)
    dev.faults().arm(simt::FaultPlan::parse(kInertPlan));
  algorithms::QueryEngineOptions opts;
  if (mode == Mode::kOff) {
    opts.kernel = resilience_off();
    opts.resilience.max_retries = 0;
  }
  QueryEngine engine(g, opts);
  std::vector<Query> batch;
  for (std::uint32_t q = 0; q < 16; ++q) {
    batch.push_back(Query::bfs((q * 2654435761u) % dataset().num_nodes()));
  }
  (void)engine.run(batch);
  return engine.last_batch_stats().modeled_ms;
}

struct Workload {
  const char* name;
  double (*run)(Mode);
};

const Workload kWorkloads[] = {
    {"bfs", bfs_ms},
    {"pagerank", pagerank_ms},
    {"query_batch16", query_batch_ms},
};

void print_table() {
  benchx::print_banner(
      "E3: fault-tolerance machinery overhead",
      "Modeled time with resilience off vs default-unarmed vs an "
      "armed-but-inert plan. Unarmed must be within 2% of off.");

  util::Table table({"workload", "off ms", "unarmed ms", "overhead",
                     "armed-inert ms"});
  bool pass = true;
  for (const Workload& w : kWorkloads) {
    const double off = w.run(Mode::kOff);
    const double unarmed = w.run(Mode::kUnarmed);
    const double inert = w.run(Mode::kArmedInert);
    const double overhead = off > 0 ? unarmed / off - 1.0 : 0.0;
    pass = pass && overhead <= kMaxOverhead;
    table.row()
        .cell(w.name)
        .cell(off, 3)
        .cell(unarmed, 3)
        .cell(overhead * 100.0, 3)
        .cell(inert, 3);
  }
  table.print();
  std::printf(
      "\nacceptance: unarmed fault machinery overhead <= %.0f%% modeled "
      "time on every workload -> %s\n",
      kMaxOverhead * 100.0, pass ? "PASS" : "FAIL");
}

void BM_FaultOverhead(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(0)];
  double off = 0.0, unarmed = 0.0, inert = 0.0;
  for (auto _ : state) {
    off = w.run(Mode::kOff);
    unarmed = w.run(Mode::kUnarmed);
    inert = w.run(Mode::kArmedInert);
    benchmark::DoNotOptimize(unarmed);
  }
  state.counters["off_ms"] = off;
  state.counters["unarmed_ms"] = unarmed;
  state.counters["armed_inert_ms"] = inert;
  state.counters["overhead_pct"] =
      off > 0 ? (unarmed / off - 1.0) * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (int i = 0; i < 3; ++i) {
    benchmark::RegisterBenchmark(
        (std::string("fault_overhead/") + kWorkloads[i].name).c_str(),
        BM_FaultOverhead)
        ->Arg(i)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E4 — cost of multi-device failover serving (extension experiment, not
// a paper figure).
//
// A gpu::DeviceGroup puts spare devices behind the QueryEngine ladder.
// Standing by must be close to free: an unarmed two-device group serves
// a batch through exactly the single-device code path (the spare only
// holds a replica), so its modeled batch time must be within 2% of the
// plain single-device engine. Lazy upload keeps even the replica cost at
// zero until a failover actually happens.
//
// The drill column prices a real failover: an ecc-fatal plan kills the
// primary mid-batch and the unit migrates to the spare, resuming fused
// traversals from their iteration-barrier checkpoint. That run is pure
// recovery cost — reported and regression-guarded, not gated against the
// clean baseline.
//
// The scaling sweep prices the upside of the same spares: a 32-query
// batch split into 8 independent fused units is LPT-placed across 1, 2
// and 4 healthy devices (ResiliencePolicy::Scheduling::kBalanced), and
// the group makespan must drop near-linearly — >= 1.7x on 2 devices,
// >= 3x on 4 — while answers stay bit-identical to the serial plan.
//
// The steal sweep prices runtime work stealing on the static planner's
// worst case: a chain+star graph where deep and shallow BFS queries get
// identical up-front cost estimates, so stable LPT piles every deep
// unit onto device 0 of a 4-device group. kBalancedStealing must beat
// the static plan >= 1.1x on group makespan, and an unarmed
// single-device engine under the stealing policy must stay exactly on
// the default engine's modeled time (0% overhead — same code path).
#include "bench_common.hpp"

#include <vector>

#include "algorithms/query_engine.hpp"
#include "gpu/device_group.hpp"
#include "graph/builder.hpp"
#include "simt/fault.hpp"

namespace {

using namespace maxwarp;
using algorithms::GpuGraph;
using algorithms::Query;
using algorithms::QueryEngine;
using algorithms::ReplicatedGraph;

constexpr double kMaxOverhead = 0.02;  // 2%
const char* kKillPlan = "ecc-fatal:nth=2+:max=0;seed=7";

const graph::Csr& dataset() {
  static const graph::Csr g =
      graph::make_dataset("LiveJournal*", benchx::scale(), benchx::seed());
  return g;
}

std::vector<Query> batch16() {
  std::vector<Query> batch;
  for (std::uint32_t q = 0; q < 16; ++q) {
    batch.push_back(Query::bfs((q * 2654435761u) % dataset().num_nodes()));
  }
  return batch;
}

double single_device_ms() {
  gpu::Device dev;
  GpuGraph g(dev, dataset());
  QueryEngine engine(g);
  const auto batch = batch16();
  (void)engine.run(batch);
  return engine.last_batch_stats().modeled_ms;
}

struct GroupNumbers {
  double batch_ms = 0.0;
  double spare_upload_ms = 0.0;  ///< modeled time the spare paid up front
  double migrations = 0.0;
  double checkpoint_resumes = 0.0;
};

GroupNumbers group_run(ReplicatedGraph::Upload upload, const char* plan) {
  gpu::DeviceGroup group(2);
  if (plan != nullptr) {
    group.arm(0, simt::FaultPlan::parse(plan));
  }
  QueryEngine engine(group, dataset(), {}, upload);
  GroupNumbers out;
  out.spare_upload_ms = group.device(1).total_modeled_ms();
  const auto batch = batch16();
  (void)engine.run(batch);
  const auto& stats = engine.last_batch_stats();
  out.batch_ms = stats.modeled_ms;
  out.migrations = stats.migrations;
  out.checkpoint_resumes = stats.checkpoint_resumes;
  return out;
}

// One point of the scaling sweep: the 32-query batch as 8 fused units,
// scheduled over `devices` healthy members, measured on the group wall
// clock (max member makespan).
double scaled_makespan_ms(std::size_t devices,
                          algorithms::ResiliencePolicy::Scheduling mode) {
  gpu::DeviceGroup group(devices);
  algorithms::QueryEngineOptions opts;
  opts.bfs_group_size = 4;  // 32 queries -> 8 independent fused units
  opts.resilience.scheduling = mode;
  QueryEngine engine(group, dataset(), opts);
  std::vector<Query> batch;
  for (std::uint32_t q = 0; q < 32; ++q) {
    batch.push_back(Query::bfs((q * 2654435761u) % dataset().num_nodes()));
  }
  (void)engine.run(batch);
  return engine.last_batch_stats().group_makespan_ms;
}

struct ScalingNumbers {
  double base_ms = 0.0;  ///< one device (balanced degenerates to serial)
  double x2_ms = 0.0;
  double x4_ms = 0.0;
  double speedup_x2 = 0.0;
  double speedup_x4 = 0.0;
};

ScalingNumbers scaling_sweep() {
  using Scheduling = algorithms::ResiliencePolicy::Scheduling;
  ScalingNumbers out;
  out.base_ms = scaled_makespan_ms(1, Scheduling::kBalanced);
  out.x2_ms = scaled_makespan_ms(2, Scheduling::kBalanced);
  out.x4_ms = scaled_makespan_ms(4, Scheduling::kBalanced);
  out.speedup_x2 = out.x2_ms > 0 ? out.base_ms / out.x2_ms : 0.0;
  out.speedup_x4 = out.x4_ms > 0 ? out.base_ms / out.x4_ms : 0.0;
  return out;
}

// Chain (deep BFS) glued to a star (shallow BFS): the adversarial shape
// for a cost model that cannot see frontier evolution. Sized off
// benchx::scale() so MAXWARP_SCALE sweeps the skew depth too.
graph::Csr skew_graph() {
  const auto chain_n = static_cast<std::uint32_t>(512 * benchx::scale());
  const std::uint32_t star_leaves = chain_n / 4 + 3;
  graph::EdgeList edges;
  for (std::uint32_t v = 0; v + 1 < chain_n; ++v) {
    edges.push_back({v, v + 1});
  }
  const std::uint32_t center = chain_n;
  for (std::uint32_t leaf = 1; leaf <= star_leaves; ++leaf) {
    edges.push_back({center, center + leaf});
  }
  return graph::build_csr(chain_n + star_leaves + 1, std::move(edges),
                          {.symmetrize = true});
}

// 16 single-query units, one in four rooted deep in the chain. Equal
// estimates make stable LPT round-robin them: all four deep units land
// on device 0 of a 4-device group.
std::vector<Query> skewed_batch(const graph::Csr& g) {
  const auto chain_n = static_cast<std::uint32_t>(512 * benchx::scale());
  std::vector<Query> queries;
  for (std::uint32_t q = 0; q < 16; ++q) {
    queries.push_back(q % 4 == 0 ? Query::bfs(q / 4)
                                 : Query::bfs((chain_n + q) % g.num_nodes()));
  }
  return queries;
}

struct StealNumbers {
  double static_ms = 0.0;    ///< kBalanced group makespan on the skew batch
  double stealing_ms = 0.0;  ///< kBalancedStealing group makespan, same batch
  double speedup = 0.0;
  double steals = 0.0;
  double single_default_ms = 0.0;  ///< one device, default policy
  double single_steal_ms = 0.0;    ///< one device, stealing policy
  double single_overhead_ratio = 0.0;
};

StealNumbers steal_sweep() {
  using Scheduling = algorithms::ResiliencePolicy::Scheduling;
  const graph::Csr host = skew_graph();
  const auto batch = skewed_batch(host);
  const auto run = [&](std::size_t devices, Scheduling mode) {
    gpu::DeviceGroup group(devices);
    algorithms::QueryEngineOptions opts;
    opts.fuse_bfs = false;  // one query = one unit
    opts.num_streams = 1;   // serial per-device timelines
    opts.resilience.scheduling = mode;
    QueryEngine engine(group, host, opts);
    (void)engine.run(batch);
    return engine.last_batch_stats();
  };
  StealNumbers out;
  out.static_ms = run(4, Scheduling::kBalanced).group_makespan_ms;
  const auto stealing = run(4, Scheduling::kBalancedStealing);
  out.stealing_ms = stealing.group_makespan_ms;
  out.steals = stealing.steals;
  out.speedup =
      out.stealing_ms > 0 ? out.static_ms / out.stealing_ms : 0.0;
  // On one device both policies collapse to the identical legacy drain:
  // the ratio must be exactly 1.0, not merely close.
  out.single_default_ms = run(1, Scheduling::kBalanced).group_makespan_ms;
  out.single_steal_ms =
      run(1, Scheduling::kBalancedStealing).group_makespan_ms;
  out.single_overhead_ratio = out.single_default_ms > 0
                                  ? out.single_steal_ms / out.single_default_ms
                                  : 1.0;
  return out;
}

// Failback sweep: price the repair half of the health lifecycle. A
// two-device group loses its spare, serves a batch degraded, then the
// maintenance pass probes and restores it and the next batch runs on
// the full fleet again. restore_recovery_speedup is the makespan ratio
// degraded/restored (~2x with the batch split over 2 members, guarded
// one-sided). probe_overhead_ratio is the probing batch's serving
// makespan over the clean-fleet batch's: canary probes are charged as
// maintenance on the probed member's own timeline *before* the batch
// baselines, so the ratio must stay at 1.0 — the 2% file band catches
// any drift of probe cost into serving accounting. The absolute probe
// bill is reported separately as probe_cost_ms.
struct FailbackNumbers {
  double full_ms = 0.0;      ///< clean two-device group makespan
  double degraded_ms = 0.0;  ///< same batch with the spare dead
  double restored_ms = 0.0;  ///< same batch after probe-driven restore
  double restore_recovery_speedup = 0.0;
  double probe_overhead_ratio = 1.0;
  double probe_cost_ms = 0.0;  ///< modeled maintenance time of the probes
  double probes = 0.0;
  double restorations = 0.0;
};

FailbackNumbers failback_sweep() {
  gpu::DeviceGroup group(2);
  algorithms::QueryEngineOptions opts;
  opts.bfs_group_size = 4;  // 16 queries -> 4 units: balancing matters
  opts.resilience.health.probes_to_restore = 2;
  opts.resilience.health.probes_per_pass = 2;
  QueryEngine engine(group, dataset(), opts);
  const auto batch = batch16();

  FailbackNumbers out;
  (void)engine.run(batch);
  out.full_ms = engine.last_batch_stats().group_makespan_ms;

  group.fail_device(1, "bench kill");
  (void)engine.run(batch);
  out.degraded_ms = engine.last_batch_stats().group_makespan_ms;

  // Advance the modeled clock past the probation delay, then serve: the
  // batch's own maintenance pass probes the member clean twice and
  // restores it before placement, so this run pays the probes AND runs
  // on the full fleet.
  group.device(1).charge_delay_ms(1000.0);
  const double total_before = group.total_modeled_ms();
  (void)engine.run(batch);
  const auto& stats = engine.last_batch_stats();
  out.restored_ms = stats.group_makespan_ms;
  out.probes = stats.probes;
  out.restorations = stats.restorations;
  out.restore_recovery_speedup =
      out.restored_ms > 0 ? out.degraded_ms / out.restored_ms : 0.0;
  out.probe_overhead_ratio =
      out.full_ms > 0 ? out.restored_ms / out.full_ms : 1.0;
  const double total_delta = group.total_modeled_ms() - total_before;
  out.probe_cost_ms = total_delta - stats.serial_ms;
  return out;
}

void print_table() {
  benchx::print_banner(
      "E4: multi-device failover serving",
      "Modeled 16-query batch: single device vs an unarmed two-device "
      "group (eager and lazy spare upload) vs a killed-primary migration "
      "drill. Unarmed must be within 2% of single-device.");

  const double single = single_device_ms();
  const GroupNumbers eager =
      group_run(ReplicatedGraph::Upload::kEager, nullptr);
  const GroupNumbers lazy =
      group_run(ReplicatedGraph::Upload::kLazy, nullptr);
  const GroupNumbers drill =
      group_run(ReplicatedGraph::Upload::kEager, kKillPlan);

  util::Table table({"configuration", "batch ms", "spare upload ms",
                     "migrations"});
  table.row().cell("single device").cell(single, 3).cell(0.0, 3).cell(0.0, 0);
  table.row()
      .cell("two devices, eager")
      .cell(eager.batch_ms, 3)
      .cell(eager.spare_upload_ms, 3)
      .cell(eager.migrations, 0);
  table.row()
      .cell("two devices, lazy")
      .cell(lazy.batch_ms, 3)
      .cell(lazy.spare_upload_ms, 3)
      .cell(lazy.migrations, 0);
  table.row()
      .cell("killed primary (drill)")
      .cell(drill.batch_ms, 3)
      .cell(drill.spare_upload_ms, 3)
      .cell(drill.migrations, 0);
  table.print();

  const double worst =
      single > 0
          ? std::max(eager.batch_ms, lazy.batch_ms) / single - 1.0
          : 0.0;
  const bool pass = worst <= kMaxOverhead;
  std::printf(
      "\nacceptance: unarmed two-device batch overhead <= %.0f%% of "
      "single-device modeled time (worst %.3f%%) -> %s\n",
      kMaxOverhead * 100.0, worst * 100.0, pass ? "PASS" : "FAIL");

  const ScalingNumbers scaling = scaling_sweep();
  util::Table sweep({"devices", "group makespan ms", "speedup"});
  sweep.row().cell("1").cell(scaling.base_ms, 3).cell(1.0, 2);
  sweep.row().cell("2").cell(scaling.x2_ms, 3).cell(scaling.speedup_x2, 2);
  sweep.row().cell("4").cell(scaling.x4_ms, 3).cell(scaling.speedup_x4, 2);
  std::printf("\nbalanced scheduling, 32-query batch as 8 fused units:\n");
  sweep.print();

  const bool scale_pass =
      scaling.speedup_x2 >= 1.7 && scaling.speedup_x4 >= 3.0;
  std::printf(
      "acceptance: balanced group makespan speedup >= 1.7x on 2 devices "
      "(got %.2fx), >= 3x on 4 (got %.2fx) -> %s\n",
      scaling.speedup_x2, scaling.speedup_x4,
      scale_pass ? "PASS" : "FAIL");

  const StealNumbers steal = steal_sweep();
  util::Table steal_table({"schedule", "group makespan ms", "steals"});
  steal_table.row().cell("static LPT").cell(steal.static_ms, 3).cell(0.0, 0);
  steal_table.row()
      .cell("work stealing")
      .cell(steal.stealing_ms, 3)
      .cell(steal.steals, 0);
  std::printf(
      "\nskewed 16-query batch, 4 devices (chain+star, equal estimates):\n");
  steal_table.print();

  const bool steal_pass = steal.speedup >= 1.1;
  std::printf(
      "acceptance: work stealing beats the static plan >= 1.1x on group "
      "makespan (got %.2fx) -> %s\n",
      steal.speedup, steal_pass ? "PASS" : "FAIL");
  const double single_overhead = steal.single_overhead_ratio - 1.0;
  const bool single_pass = single_overhead == 0.0;
  std::printf(
      "acceptance: single-device engine under the stealing policy pays "
      "0%% overhead (got %+.3f%%) -> %s\n",
      single_overhead * 100.0, single_pass ? "PASS" : "FAIL");

  const FailbackNumbers failback = failback_sweep();
  util::Table repair({"fleet state", "group makespan ms"});
  repair.row().cell("full fleet").cell(failback.full_ms, 3);
  repair.row().cell("spare dead (degraded)").cell(failback.degraded_ms, 3);
  repair.row().cell("after probe + restore").cell(failback.restored_ms, 3);
  std::printf("\nfailback sweep, 16-query batch as 4 fused units:\n");
  repair.print();

  const bool repair_pass = failback.restore_recovery_speedup >= 1.5 &&
                           failback.restorations >= 1.0;
  std::printf(
      "acceptance: probe-driven restore recovers >= 1.5x of the degraded "
      "makespan (got %.2fx, %g probes, %g restorations) -> %s\n",
      failback.restore_recovery_speedup, failback.probes,
      failback.restorations, repair_pass ? "PASS" : "FAIL");
  const double probe_overhead = failback.probe_overhead_ratio - 1.0;
  const bool probe_pass = probe_overhead <= kMaxOverhead;
  std::printf(
      "acceptance: canary probing (%.3fms of maintenance) adds <= %.0f%% "
      "to the probing batch's serving makespan (got %+.3f%%) -> %s\n",
      failback.probe_cost_ms, kMaxOverhead * 100.0, probe_overhead * 100.0,
      probe_pass ? "PASS" : "FAIL");
}

void BM_MultiDevice(benchmark::State& state) {
  double single = 0.0;
  GroupNumbers eager, lazy, drill;
  for (auto _ : state) {
    single = single_device_ms();
    eager = group_run(ReplicatedGraph::Upload::kEager, nullptr);
    lazy = group_run(ReplicatedGraph::Upload::kLazy, nullptr);
    drill = group_run(ReplicatedGraph::Upload::kEager, kKillPlan);
    benchmark::DoNotOptimize(eager.batch_ms);
  }
  state.counters["single_ms"] = single;
  state.counters["eager_ms"] = eager.batch_ms;
  state.counters["lazy_ms"] = lazy.batch_ms;
  state.counters["drill_ms"] = drill.batch_ms;
  state.counters["spare_upload_ms"] = eager.spare_upload_ms;
  // Ratios hover around 1.0, which keeps the perf_guard relative band
  // meaningful (a pct counter near 0 cannot absorb rounding noise).
  state.counters["eager_overhead_ratio"] =
      single > 0 ? eager.batch_ms / single : 1.0;
  state.counters["lazy_overhead_ratio"] =
      single > 0 ? lazy.batch_ms / single : 1.0;
  state.counters["drill_migrations"] = drill.migrations;
  state.counters["drill_checkpoint_resumes"] = drill.checkpoint_resumes;
}

// Scaling sweep as its own benchmark so the speedup counters are guarded
// (higher-is-better: perf_guard only fails on decreases).
void BM_MultiDeviceScaling(benchmark::State& state) {
  ScalingNumbers scaling;
  for (auto _ : state) {
    scaling = scaling_sweep();
    const double sink = scaling.speedup_x4;
    benchmark::DoNotOptimize(sink);
  }
  state.counters["base_makespan_ms"] = scaling.base_ms;
  state.counters["x2_makespan_ms"] = scaling.x2_ms;
  state.counters["x4_makespan_ms"] = scaling.x4_ms;
  state.counters["scaling_x2"] = scaling.speedup_x2;
  state.counters["scaling_x4"] = scaling.speedup_x4;
}

// Work-stealing sweep on the LPT-adversarial skew batch. steal_speedup
// is guarded one-sided (higher-is-better); the single-device ratio
// hovers at exactly 1.0 so the relative band catches any added cost on
// the degenerate path.
void BM_MultiDeviceStealing(benchmark::State& state) {
  StealNumbers steal;
  for (auto _ : state) {
    steal = steal_sweep();
    const double sink = steal.speedup;
    benchmark::DoNotOptimize(sink);
  }
  state.counters["skew_static_ms"] = steal.static_ms;
  state.counters["skew_stealing_ms"] = steal.stealing_ms;
  state.counters["steal_speedup"] = steal.speedup;
  state.counters["steals"] = steal.steals;
  state.counters["steal_single_overhead_ratio"] = steal.single_overhead_ratio;
}

// Failback sweep: restore_recovery_speedup is one-sided
// (higher-is-better — a faster repair never fails the guard);
// probe_overhead_ratio hovers just above 1.0 and the 2% file band
// keeps canary probing from creeping into serving cost.
void BM_MultiDeviceFailback(benchmark::State& state) {
  FailbackNumbers failback;
  for (auto _ : state) {
    failback = failback_sweep();
    const double sink = failback.restore_recovery_speedup;
    benchmark::DoNotOptimize(sink);
  }
  state.counters["full_makespan_ms"] = failback.full_ms;
  state.counters["degraded_makespan_ms"] = failback.degraded_ms;
  state.counters["restored_makespan_ms"] = failback.restored_ms;
  state.counters["restore_recovery_speedup"] =
      failback.restore_recovery_speedup;
  state.counters["probe_overhead_ratio"] = failback.probe_overhead_ratio;
  state.counters["probe_cost_ms"] = failback.probe_cost_ms;
  state.counters["probes"] = failback.probes;
  state.counters["restorations"] = failback.restorations;
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::RegisterBenchmark("multi_device/serving16", BM_MultiDevice)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("multi_device/scaling32",
                               BM_MultiDeviceScaling)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("multi_device/stealing16",
                               BM_MultiDeviceStealing)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("multi_device/failback16",
                               BM_MultiDeviceFailback)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

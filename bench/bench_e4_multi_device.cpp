// E4 — cost of multi-device failover serving (extension experiment, not
// a paper figure).
//
// A gpu::DeviceGroup puts spare devices behind the QueryEngine ladder.
// Standing by must be close to free: an unarmed two-device group serves
// a batch through exactly the single-device code path (the spare only
// holds a replica), so its modeled batch time must be within 2% of the
// plain single-device engine. Lazy upload keeps even the replica cost at
// zero until a failover actually happens.
//
// The drill column prices a real failover: an ecc-fatal plan kills the
// primary mid-batch and the unit migrates to the spare, resuming fused
// traversals from their iteration-barrier checkpoint. That run is pure
// recovery cost — reported and regression-guarded, not gated against the
// clean baseline.
//
// The scaling sweep prices the upside of the same spares: a 32-query
// batch split into 8 independent fused units is LPT-placed across 1, 2
// and 4 healthy devices (ResiliencePolicy::Scheduling::kBalanced), and
// the group makespan must drop near-linearly — >= 1.7x on 2 devices,
// >= 3x on 4 — while answers stay bit-identical to the serial plan.
#include "bench_common.hpp"

#include <vector>

#include "algorithms/query_engine.hpp"
#include "gpu/device_group.hpp"
#include "simt/fault.hpp"

namespace {

using namespace maxwarp;
using algorithms::GpuGraph;
using algorithms::Query;
using algorithms::QueryEngine;
using algorithms::ReplicatedGraph;

constexpr double kMaxOverhead = 0.02;  // 2%
const char* kKillPlan = "ecc-fatal:nth=2+:max=0;seed=7";

const graph::Csr& dataset() {
  static const graph::Csr g =
      graph::make_dataset("LiveJournal*", benchx::scale(), benchx::seed());
  return g;
}

std::vector<Query> batch16() {
  std::vector<Query> batch;
  for (std::uint32_t q = 0; q < 16; ++q) {
    batch.push_back(Query::bfs((q * 2654435761u) % dataset().num_nodes()));
  }
  return batch;
}

double single_device_ms() {
  gpu::Device dev;
  GpuGraph g(dev, dataset());
  QueryEngine engine(g);
  const auto batch = batch16();
  (void)engine.run(batch);
  return engine.last_batch_stats().modeled_ms;
}

struct GroupNumbers {
  double batch_ms = 0.0;
  double spare_upload_ms = 0.0;  ///< modeled time the spare paid up front
  double migrations = 0.0;
  double checkpoint_resumes = 0.0;
};

GroupNumbers group_run(ReplicatedGraph::Upload upload, const char* plan) {
  gpu::DeviceGroup group(2);
  if (plan != nullptr) {
    group.arm(0, simt::FaultPlan::parse(plan));
  }
  QueryEngine engine(group, dataset(), {}, upload);
  GroupNumbers out;
  out.spare_upload_ms = group.device(1).total_modeled_ms();
  const auto batch = batch16();
  (void)engine.run(batch);
  const auto& stats = engine.last_batch_stats();
  out.batch_ms = stats.modeled_ms;
  out.migrations = stats.migrations;
  out.checkpoint_resumes = stats.checkpoint_resumes;
  return out;
}

// One point of the scaling sweep: the 32-query batch as 8 fused units,
// scheduled over `devices` healthy members, measured on the group wall
// clock (max member makespan).
double scaled_makespan_ms(std::size_t devices,
                          algorithms::ResiliencePolicy::Scheduling mode) {
  gpu::DeviceGroup group(devices);
  algorithms::QueryEngineOptions opts;
  opts.bfs_group_size = 4;  // 32 queries -> 8 independent fused units
  opts.resilience.scheduling = mode;
  QueryEngine engine(group, dataset(), opts);
  std::vector<Query> batch;
  for (std::uint32_t q = 0; q < 32; ++q) {
    batch.push_back(Query::bfs((q * 2654435761u) % dataset().num_nodes()));
  }
  (void)engine.run(batch);
  return engine.last_batch_stats().group_makespan_ms;
}

struct ScalingNumbers {
  double base_ms = 0.0;  ///< one device (balanced degenerates to serial)
  double x2_ms = 0.0;
  double x4_ms = 0.0;
  double speedup_x2 = 0.0;
  double speedup_x4 = 0.0;
};

ScalingNumbers scaling_sweep() {
  using Scheduling = algorithms::ResiliencePolicy::Scheduling;
  ScalingNumbers out;
  out.base_ms = scaled_makespan_ms(1, Scheduling::kBalanced);
  out.x2_ms = scaled_makespan_ms(2, Scheduling::kBalanced);
  out.x4_ms = scaled_makespan_ms(4, Scheduling::kBalanced);
  out.speedup_x2 = out.x2_ms > 0 ? out.base_ms / out.x2_ms : 0.0;
  out.speedup_x4 = out.x4_ms > 0 ? out.base_ms / out.x4_ms : 0.0;
  return out;
}

void print_table() {
  benchx::print_banner(
      "E4: multi-device failover serving",
      "Modeled 16-query batch: single device vs an unarmed two-device "
      "group (eager and lazy spare upload) vs a killed-primary migration "
      "drill. Unarmed must be within 2% of single-device.");

  const double single = single_device_ms();
  const GroupNumbers eager =
      group_run(ReplicatedGraph::Upload::kEager, nullptr);
  const GroupNumbers lazy =
      group_run(ReplicatedGraph::Upload::kLazy, nullptr);
  const GroupNumbers drill =
      group_run(ReplicatedGraph::Upload::kEager, kKillPlan);

  util::Table table({"configuration", "batch ms", "spare upload ms",
                     "migrations"});
  table.row().cell("single device").cell(single, 3).cell(0.0, 3).cell(0.0, 0);
  table.row()
      .cell("two devices, eager")
      .cell(eager.batch_ms, 3)
      .cell(eager.spare_upload_ms, 3)
      .cell(eager.migrations, 0);
  table.row()
      .cell("two devices, lazy")
      .cell(lazy.batch_ms, 3)
      .cell(lazy.spare_upload_ms, 3)
      .cell(lazy.migrations, 0);
  table.row()
      .cell("killed primary (drill)")
      .cell(drill.batch_ms, 3)
      .cell(drill.spare_upload_ms, 3)
      .cell(drill.migrations, 0);
  table.print();

  const double worst =
      single > 0
          ? std::max(eager.batch_ms, lazy.batch_ms) / single - 1.0
          : 0.0;
  const bool pass = worst <= kMaxOverhead;
  std::printf(
      "\nacceptance: unarmed two-device batch overhead <= %.0f%% of "
      "single-device modeled time (worst %.3f%%) -> %s\n",
      kMaxOverhead * 100.0, worst * 100.0, pass ? "PASS" : "FAIL");

  const ScalingNumbers scaling = scaling_sweep();
  util::Table sweep({"devices", "group makespan ms", "speedup"});
  sweep.row().cell("1").cell(scaling.base_ms, 3).cell(1.0, 2);
  sweep.row().cell("2").cell(scaling.x2_ms, 3).cell(scaling.speedup_x2, 2);
  sweep.row().cell("4").cell(scaling.x4_ms, 3).cell(scaling.speedup_x4, 2);
  std::printf("\nbalanced scheduling, 32-query batch as 8 fused units:\n");
  sweep.print();

  const bool scale_pass =
      scaling.speedup_x2 >= 1.7 && scaling.speedup_x4 >= 3.0;
  std::printf(
      "acceptance: balanced group makespan speedup >= 1.7x on 2 devices "
      "(got %.2fx), >= 3x on 4 (got %.2fx) -> %s\n",
      scaling.speedup_x2, scaling.speedup_x4,
      scale_pass ? "PASS" : "FAIL");
}

void BM_MultiDevice(benchmark::State& state) {
  double single = 0.0;
  GroupNumbers eager, lazy, drill;
  for (auto _ : state) {
    single = single_device_ms();
    eager = group_run(ReplicatedGraph::Upload::kEager, nullptr);
    lazy = group_run(ReplicatedGraph::Upload::kLazy, nullptr);
    drill = group_run(ReplicatedGraph::Upload::kEager, kKillPlan);
    benchmark::DoNotOptimize(eager.batch_ms);
  }
  state.counters["single_ms"] = single;
  state.counters["eager_ms"] = eager.batch_ms;
  state.counters["lazy_ms"] = lazy.batch_ms;
  state.counters["drill_ms"] = drill.batch_ms;
  state.counters["spare_upload_ms"] = eager.spare_upload_ms;
  // Ratios hover around 1.0, which keeps the perf_guard relative band
  // meaningful (a pct counter near 0 cannot absorb rounding noise).
  state.counters["eager_overhead_ratio"] =
      single > 0 ? eager.batch_ms / single : 1.0;
  state.counters["lazy_overhead_ratio"] =
      single > 0 ? lazy.batch_ms / single : 1.0;
  state.counters["drill_migrations"] = drill.migrations;
  state.counters["drill_checkpoint_resumes"] = drill.checkpoint_resumes;
}

// Scaling sweep as its own benchmark so the speedup counters are guarded
// (higher-is-better: perf_guard only fails on decreases).
void BM_MultiDeviceScaling(benchmark::State& state) {
  ScalingNumbers scaling;
  for (auto _ : state) {
    scaling = scaling_sweep();
    const double sink = scaling.speedup_x4;
    benchmark::DoNotOptimize(sink);
  }
  state.counters["base_makespan_ms"] = scaling.base_ms;
  state.counters["x2_makespan_ms"] = scaling.x2_ms;
  state.counters["x4_makespan_ms"] = scaling.x4_ms;
  state.counters["scaling_x2"] = scaling.speedup_x2;
  state.counters["scaling_x4"] = scaling.speedup_x4;
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::RegisterBenchmark("multi_device/serving16", BM_MultiDevice)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("multi_device/scaling32",
                               BM_MultiDeviceScaling)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// F10 — CPU vs GPU BFS comparison.
//
// The paper compares its GPU kernels against multicore CPU BFS. Here the
// CPU side is *measured* wall time of this library's std::thread
// level-synchronous BFS on the host machine, and the GPU side is the
// simulator's *modeled* time. Absolute ratios therefore mix two clocks and
// must not be over-read (EXPERIMENTS.md discusses this); the reproducible
// shape is each side's scaling: CPU MTEPS grows with threads, and the
// modeled GPU throughput sits in the plausible band the paper reports for
// skewed graphs (hundreds of MTEPS at full occupancy).
#include "bench_common.hpp"

#include <thread>

#include "algorithms/bfs_cpu_parallel.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

void print_figure() {
  benchx::print_banner(
      "F10: CPU (measured) vs simulated GPU (modeled) BFS throughput",
      "MTEPS = traversed edges / traversal time. Two different clocks; "
      "compare trends, not ratios.");
  util::Table table({"graph", "cpu 1T", "cpu 2T", "cpu 4T",
                     "gpu baseline", "gpu warp-centric(best)"});
  for (const char* name : {"RMAT", "LiveJournal*", "Uniform", "Grid"}) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);

    auto& row = table.row();
    row.cell(name);
    std::uint64_t traversed = 0;
    for (int threads : {1, 2, 4}) {
      const auto r = algorithms::bfs_cpu_parallel(g, source, threads);
      traversed = 0;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (r.level[v] != algorithms::kUnreached) traversed += g.degree(v);
      }
      const double mteps = r.elapsed_seconds > 0
                               ? static_cast<double>(traversed) /
                                     r.elapsed_seconds / 1e6
                               : 0.0;
      row.cell(mteps, 1);
    }

    const auto base = benchx::measure_bfs(
        g, source, benchx::bfs_options(Mapping::kThreadMapped, 32));
    double best = 0;
    for (int w : {4, 8, 16, 32}) {
      const auto m = benchx::measure_bfs(
          g, source, benchx::bfs_options(Mapping::kWarpCentric, w));
      best = std::max(best, m.mteps);
    }
    row.cell(base.mteps, 1).cell(best, 1);
  }
  table.print();
  std::printf(
      "\nExpected shape: CPU MTEPS roughly scales with threads until "
      "memory-bound; the modeled GPU\nwarp-centric column clears the GPU "
      "baseline everywhere except the regular graphs, and the\nGrid row "
      "shows the GPU's weakness on high-diameter graphs (launch overhead "
      "per level).\nHost has %u hardware threads.\n",
      std::thread::hardware_concurrency());
}

void BM_CpuBfs(benchmark::State& state, int threads) {
  const graph::Csr g =
      graph::make_dataset("RMAT", benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    const auto r = algorithms::bfs_cpu_parallel(g, source, threads);
    benchmark::DoNotOptimize(r.level.data());
    state.counters["depth"] = r.depth;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  for (int threads : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("cpu_bfs/RMAT/threads=" + std::to_string(threads)).c_str(),
        BM_CpuBfs, threads)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

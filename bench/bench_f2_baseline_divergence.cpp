// F2 — why the baseline is slow (the paper's execution-behaviour analysis).
//
// Runs the thread-mapped BFS kernel on every dataset and reports the
// SIMT-execution pathologies the paper measures: SIMD-lane utilization,
// global-memory transactions per lane request (1/32 = perfectly coalesced,
// 1.0 = fully scattered), and divergent-branch events per traversed edge.
// The regular graphs are the control: high utilization, no pathology.
#include "bench_common.hpp"

#include "gpu/device.hpp"

namespace {

using namespace maxwarp;

struct Row {
  std::string name;
  double util;
  double txn_per_req;
  double divergence_per_kedge;
  double modeled_ms;
};

Row measure(const graph::DatasetSpec& spec) {
  const graph::Csr g = spec.make(benchx::scale(), benchx::seed());
  gpu::Device dev;
  const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, g), benchx::hub_source(g), benchx::bfs_options(algorithms::Mapping::kThreadMapped, 32));
  Row row;
  row.name = spec.name;
  row.util = r.stats.kernels.counters.simd_utilization();
  row.txn_per_req = r.stats.kernels.counters.transactions_per_request();
  row.divergence_per_kedge =
      r.traversed_edges
          ? static_cast<double>(
                r.stats.kernels.counters.branch_divergences) *
                1000.0 / static_cast<double>(r.traversed_edges)
          : 0.0;
  row.modeled_ms = r.stats.kernel_ms(dev.config());
  return row;
}

void print_figure() {
  benchx::print_banner(
      "F2: baseline (thread-mapped) BFS execution behaviour",
      "SIMD utilization and memory coalescing of the Harish-Narayanan "
      "kernel per dataset.");
  util::Table table({"graph", "SIMD util %", "txn/request",
                     "divergences/1K edges", "modeled ms"});
  for (const auto& spec : graph::paper_datasets()) {
    const Row row = measure(spec);
    table.row()
        .cell(row.name)
        .cell(row.util * 100.0, 1)
        .cell(row.txn_per_req, 3)
        .cell(row.divergence_per_kedge, 1)
        .cell(row.modeled_ms, 3);
  }
  table.print();
  std::printf(
      "\nExpected shape: skewed graphs run the baseline at low utilization "
      "(idle lanes wait on\nhub vertices) and nearly uncoalesced memory; "
      "Uniform/Grid stay efficient.\n");
}

void BM_BaselineBfs(benchmark::State& state, const std::string& name) {
  const graph::Csr g =
      graph::make_dataset(name, benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    const auto m = benchx::measure_bfs(
        g, source, benchx::bfs_options(algorithms::Mapping::kThreadMapped,
                                       32));
    state.counters["modeled_ms"] = m.modeled_ms;
    state.counters["util_pct"] = m.simd_utilization * 100.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  for (const auto& spec : maxwarp::graph::paper_datasets()) {
    benchmark::RegisterBenchmark(("baseline_bfs/" + spec.name).c_str(),
                                 BM_BaselineBfs, spec.name)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

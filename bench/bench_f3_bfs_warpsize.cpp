// F3 — the headline figure: BFS time, baseline vs virtual-warp widths.
//
// For every dataset: modeled kernel time of the thread-mapped baseline and
// of the warp-centric kernel at W in {1(=A-W2 ablation), 2, 4, 8, 16, 32},
// plus the implied MTEPS. The virtual-warp trade-off appears as a U-shape
// in W whose minimum shifts right as the degree distribution gets heavier.
// This static-W sweep is the baseline the degree-binned Mapping::kAdaptive
// is measured against (bench_a2_frontier_adaptive prints the head-to-head).
#include "bench_common.hpp"

namespace {

using namespace maxwarp;

constexpr int kWidths[] = {1, 2, 4, 8, 16, 32};

void print_figure() {
  benchx::print_banner(
      "F3: BFS execution time, baseline vs virtual warp size "
      "(+ A-W2 width ablation)",
      "Modeled kernel ms per dataset; each warp-centric column is one W. "
      "MTEPS in parentheses.");

  std::vector<std::string> headers{"graph", "baseline"};
  for (int w : kWidths) headers.push_back("W=" + std::to_string(w));
  headers.push_back("best W");
  util::Table table(headers);

  for (const auto& spec : graph::paper_datasets()) {
    const graph::Csr g = spec.make(benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    auto& row = table.row();
    const auto base = benchx::measure_bfs(
        g, source, benchx::bfs_options(algorithms::Mapping::kThreadMapped,
                                       32));
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%.3f (%.0f)", base.modeled_ms,
                  base.mteps);
    row.cell(spec.name).cell(cell);

    int best_w = 0;
    double best_ms = base.modeled_ms * 1e9;
    for (int w : kWidths) {
      const auto m = benchx::measure_bfs(
          g, source,
          benchx::bfs_options(algorithms::Mapping::kWarpCentric, w));
      std::snprintf(cell, sizeof(cell), "%.3f (%.0f)", m.modeled_ms,
                    m.mteps);
      row.cell(cell);
      if (m.modeled_ms < best_ms) {
        best_ms = m.modeled_ms;
        best_w = w;
      }
    }
    row.cell(std::to_string(best_w));
  }
  table.print();
  std::printf(
      "\nExpected shape: per-row U-shape in W whose minimum tracks the "
      "graph's average degree —\nW=8/16 for the avg-deg 8-14 skewed graphs "
      "(which beat the baseline solidly), W=2/4 for the\nsparse ones, and "
      "W=1 on Grid where the baseline wins outright. That movement of the "
      "optimum\nwith the degree profile is the imbalance/underutilization "
      "trade-off of the paper.\n");
}

void BM_Bfs(benchmark::State& state, const std::string& name,
            algorithms::Mapping mapping, int width) {
  const graph::Csr g =
      graph::make_dataset(name, benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    const auto m =
        benchx::measure_bfs(g, source, benchx::bfs_options(mapping, width));
    state.counters["modeled_ms"] = m.modeled_ms;
    state.counters["MTEPS"] = m.mteps;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  // Representative google-benchmark timings: two datasets x three configs.
  for (const char* name : {"RMAT", "Uniform"}) {
    benchmark::RegisterBenchmark(
        (std::string("bfs/") + name + "/baseline").c_str(), BM_Bfs,
        std::string(name), maxwarp::algorithms::Mapping::kThreadMapped, 32)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    for (int w : {8, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("bfs/") + name + "/warp_w" + std::to_string(w))
              .c_str(),
          BM_Bfs, std::string(name),
          maxwarp::algorithms::Mapping::kWarpCentric, w)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

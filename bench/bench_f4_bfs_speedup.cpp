// F4 — speedup summary over the thread-mapped baseline.
//
// The paper's summary bars: for each dataset, the speedup of (a) the
// fixed W=32 warp-centric kernel, (b) the best W from the sweep, and
// (c) best W combined with the dynamic-distribution and defer-queue
// techniques, all relative to the thread-mapped baseline. The best-W
// column doubles as the static baseline for Mapping::kAdaptive
// (bench_a2_frontier_adaptive).
#include "bench_common.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

void print_figure() {
  benchx::print_banner(
      "F4: BFS speedup over the thread-mapped baseline",
      "Higher is better; < 1.0 means the baseline wins (expected only on "
      "regular graphs at W=32).");

  util::Table table({"graph", "W=32", "best W", "bestW value", "+dynamic",
                     "+defer"});
  for (const auto& spec : graph::paper_datasets()) {
    const graph::Csr g = spec.make(benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    const auto base = benchx::measure_bfs(
        g, source, benchx::bfs_options(Mapping::kThreadMapped, 32));

    double best_ms = 1e300;
    int best_w = 0;
    double w32_ms = 0;
    for (int w : {2, 4, 8, 16, 32}) {
      const auto m = benchx::measure_bfs(
          g, source, benchx::bfs_options(Mapping::kWarpCentric, w));
      if (w == 32) w32_ms = m.modeled_ms;
      if (m.modeled_ms < best_ms) {
        best_ms = m.modeled_ms;
        best_w = w;
      }
    }
    const auto dyn = benchx::measure_bfs(
        g, source,
        benchx::bfs_options(Mapping::kWarpCentricDynamic, best_w));
    auto defer_opts = benchx::bfs_options(Mapping::kWarpCentricDefer,
                                          best_w);
    defer_opts.defer_threshold = 256;
    const auto def = benchx::measure_bfs(g, source, defer_opts);

    table.row()
        .cell(spec.name)
        .cell(base.modeled_ms / w32_ms, 2)
        .cell(base.modeled_ms / best_ms, 2)
        .cell("W=" + std::to_string(best_w))
        .cell(base.modeled_ms / dyn.modeled_ms, 2)
        .cell(base.modeled_ms / def.modeled_ms, 2);
  }
  table.print();
  std::printf(
      "\nExpected shape: large factors on RMAT/LiveJournal*/WikiTalk*; "
      "about 1x (or below at W=32)\non Uniform and Grid. Dynamic and defer "
      "help most where hubs or clustering exist.\n");
}

void BM_SpeedupPair(benchmark::State& state, const std::string& name) {
  const graph::Csr g =
      graph::make_dataset(name, benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    const auto base = benchx::measure_bfs(
        g, source, benchx::bfs_options(Mapping::kThreadMapped, 32));
    const auto warp = benchx::measure_bfs(
        g, source, benchx::bfs_options(Mapping::kWarpCentric, 32));
    state.counters["speedup_w32"] = base.modeled_ms / warp.modeled_ms;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  for (const char* name : {"RMAT", "LiveJournal*", "Uniform"}) {
    benchmark::RegisterBenchmark((std::string("speedup/") + name).c_str(),
                                 BM_SpeedupPair, std::string(name))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// F5 — the synthetic workload-variance microbenchmark.
//
// Task sizes are lognormal with fixed mean and swept sigma, holding total
// work roughly constant, so the x-axis is pure imbalance. The figure is
// the crossover: thread-mapping wins at sigma ~ 0 (no imbalance, full
// lanes), warp-mapping takes over as the tail grows.
#include "bench_common.hpp"

#include "algorithms/microbench.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;
using algorithms::MicrobenchSpec;

constexpr double kSigmas[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5};
constexpr std::uint32_t kTasksBase = 16384;
constexpr double kMeanItems = 16.0;

MicrobenchSpec spec_for(double sigma) {
  const auto tasks = static_cast<std::uint32_t>(
      static_cast<double>(kTasksBase) * benchx::scale());
  if (sigma == 0.0) {
    return MicrobenchSpec::uniform(
        tasks, static_cast<std::uint32_t>(kMeanItems), benchx::seed());
  }
  return MicrobenchSpec::lognormal(tasks, kMeanItems, sigma,
                                   benchx::seed());
}

double run_cycles(const MicrobenchSpec& spec, Mapping mapping, int width) {
  gpu::Device dev;
  algorithms::KernelOptions opts;
  opts.mapping = mapping;
  opts.virtual_warp_width = width;
  const auto r = algorithms::run_microbench(dev, spec, opts);
  return static_cast<double>(r.stats.kernels.elapsed_cycles);
}

void print_figure() {
  benchx::print_banner(
      "F5: synthetic imbalance sweep (thread- vs warp-mapped crossover)",
      "Lognormal task sizes, mean 16 items, sigma swept; modeled kcycles "
      "per configuration.");
  util::Table table({"sigma", "imbalance(max/mean)", "thread-mapped",
                     "warp W=8", "warp W=32", "winner"});
  for (double sigma : kSigmas) {
    const auto spec = spec_for(sigma);
    const double t = run_cycles(spec, Mapping::kThreadMapped, 32);
    const double w8 = run_cycles(spec, Mapping::kWarpCentric, 8);
    const double w32 = run_cycles(spec, Mapping::kWarpCentric, 32);
    const double best_warp = std::min(w8, w32);
    table.row()
        .cell(sigma, 1)
        .cell(spec.imbalance(), 1)
        .cell(t / 1000.0, 1)
        .cell(w8 / 1000.0, 1)
        .cell(w32 / 1000.0, 1)
        .cell(t < best_warp ? "thread" : "warp");
  }
  table.print();
  std::printf(
      "\nExpected shape: 'thread' wins at sigma=0; the winner flips to "
      "'warp' as sigma grows and\nthe thread-mapped column blows up with "
      "the tail (a warp waits for its slowest lane).\n");
}

void BM_Micro(benchmark::State& state, double sigma, Mapping mapping,
              int width) {
  const auto spec = spec_for(sigma);
  for (auto _ : state) {
    state.counters["kcycles"] = run_cycles(spec, mapping, width) / 1000.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  for (double sigma : {0.0, 2.0}) {
    benchmark::RegisterBenchmark(
        ("micro/thread/sigma=" + std::to_string(sigma)).c_str(), BM_Micro,
        sigma, Mapping::kThreadMapped, 32)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("micro/warp32/sigma=" + std::to_string(sigma)).c_str(), BM_Micro,
        sigma, Mapping::kWarpCentric, 32)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// F6 — deferring outliers: threshold sweep.
//
// On hub-heavy graphs, expanding a mega-vertex inline stalls one warp for
// thousands of strips. The defer queue pushes such vertices to a global
// queue drained by multi-warp teams. The sweep shows: threshold too low
// defers everything (queue overhead, no inline work), too high defers
// nothing (back to the stall); the win appears where only true outliers
// are deferred — and only on graphs that have outliers.
#include "bench_common.hpp"

#include "graph/generators.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

constexpr std::uint32_t kThresholds[] = {32, 64, 128, 256, 512, 1024,
                                         0xffffffffu};

void print_figure() {
  benchx::print_banner(
      "F6: outlier deferral threshold sweep (modeled ms)",
      "Warp-centric W=32 BFS plus the defer queue; the last column "
      "(threshold=inf) is plain warp-centric.");
  std::vector<std::string> headers{"graph"};
  for (std::uint32_t t : kThresholds) {
    headers.push_back(t == 0xffffffffu ? "inf" : std::to_string(t));
  }
  headers.push_back("best/plain");
  util::Table table(headers);

  struct Case {
    std::string name;
    graph::Csr graph;
    graph::NodeId source;
  };
  std::vector<Case> cases;
  for (const char* name : {"WikiTalk*", "RMAT", "LiveJournal*", "Uniform"}) {
    Case c;
    c.name = name;
    c.graph = graph::make_dataset(name, benchx::scale(), benchx::seed());
    c.source = benchx::hub_source(c.graph);
    cases.push_back(std::move(c));
  }
  {
    // The defer queue's headline case: a level of the traversal consists
    // of (almost) nothing but one mega-hub, so inline expansion serializes
    // the whole level in a single warp. Star graph entered from a leaf:
    // level 1 = {hub} alone.
    Case c;
    c.name = "Star(leaf src)";
    const auto n = static_cast<std::uint32_t>(32768 * benchx::scale());
    c.graph = graph::star(n);
    c.source = 1;  // a leaf; the hub is node 0
    cases.push_back(std::move(c));
  }

  for (const Case& item : cases) {
    const graph::Csr& g = item.graph;
    const auto source = item.source;
    auto& row = table.row();
    row.cell(item.name);
    double best = 1e300;
    double plain = 0;
    for (std::uint32_t threshold : kThresholds) {
      auto opts = benchx::bfs_options(Mapping::kWarpCentricDefer, 32);
      opts.defer_threshold = threshold;
      if (threshold == 0xffffffffu) {
        opts = benchx::bfs_options(Mapping::kWarpCentric, 32);
      }
      const auto m = benchx::measure_bfs(g, source, opts);
      row.cell(m.modeled_ms, 3);
      best = std::min(best, m.modeled_ms);
      if (threshold == 0xffffffffu) plain = m.modeled_ms;
    }
    row.cell(best / plain, 2);
  }
  table.print();
  std::printf(
      "\nExpected shape: a modest steady win on the skewed datasets (hub "
      "work re-spreads across SMs),\nexactly 1.0 on Uniform (nothing ever "
      "exceeds the threshold), and a large win on the star\ngraph, where "
      "level 1 is a single mega-hub that would otherwise serialize in one "
      "warp — the\nsituation the defer queue exists for.\n");

  // Second panel: how wide a team should drain one deferred vertex?
  {
    const auto n = static_cast<std::uint32_t>(32768 * benchx::scale());
    const graph::Csr g = graph::star(n);
    util::Table team({"warps/deferred vertex", "modeled ms",
                      "speedup vs inline"});
    auto plain = benchx::measure_bfs(
        g, 1, benchx::bfs_options(Mapping::kWarpCentric, 32));
    for (std::uint32_t wpt : {1u, 2u, 4u, 8u, 16u}) {
      auto opts = benchx::bfs_options(Mapping::kWarpCentricDefer, 32);
      opts.defer_threshold = 256;
      opts.warps_per_deferred_task = wpt;
      const auto m = benchx::measure_bfs(g, 1, opts);
      team.row()
          .cell(static_cast<std::uint64_t>(wpt))
          .cell(m.modeled_ms, 3)
          .cell(plain.modeled_ms / m.modeled_ms, 2);
    }
    std::printf("\nTeam-width sweep on Star(leaf src):\n");
    team.print();
    std::printf(
        "Expected shape: speedup grows with team width until the hub's "
        "strips are spread across\nevery SM, then flattens.\n");
  }
}

void BM_Defer(benchmark::State& state, std::uint32_t threshold) {
  const graph::Csr g =
      graph::make_dataset("WikiTalk*", benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  auto opts = benchx::bfs_options(Mapping::kWarpCentricDefer, 32);
  opts.defer_threshold = threshold;
  for (auto _ : state) {
    const auto m = benchx::measure_bfs(g, source, opts);
    state.counters["modeled_ms"] = m.modeled_ms;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  for (std::uint32_t t : {64u, 512u}) {
    benchmark::RegisterBenchmark(
        ("defer/wikitalk/threshold=" + std::to_string(t)).c_str(),
        BM_Defer, t)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

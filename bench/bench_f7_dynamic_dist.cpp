// F7 — static vs dynamic workload distribution.
//
// Static assignment binds tasks to warps by index; when expensive tasks
// cluster (sorted-by-degree layouts, locality in crawled graphs), the
// warps owning the cluster become the long pole while other SMs idle.
// Dynamic distribution claims chunks from a global counter (paying one
// atomic per chunk) and rebalances. The sweep crosses chunk size with
// clustered and shuffled task layouts on the synthetic microbenchmark.
#include "bench_common.hpp"

#include <numeric>

#include "algorithms/microbench.hpp"
#include "util/rng.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;
using algorithms::MicrobenchSpec;

MicrobenchSpec clustered_spec(bool shuffled) {
  const auto tasks = static_cast<std::uint32_t>(16384 * benchx::scale());
  std::vector<std::uint32_t> work(tasks, 2);
  // A *tight* cluster of expensive tasks at the front of the id space:
  // static assignment packs them into a handful of blocks (few SMs).
  const std::uint32_t heavy = std::max<std::uint32_t>(1, tasks / 128);
  for (std::uint32_t i = 0; i < heavy; ++i) work[i] = 1024;
  if (shuffled) {
    util::Rng rng(benchx::seed());
    for (std::size_t i = work.size(); i > 1; --i) {
      std::swap(work[i - 1], work[rng.next_below(i)]);
    }
  }
  return MicrobenchSpec::from_work(std::move(work));
}

double run_kcycles(const MicrobenchSpec& spec, Mapping mapping,
                   std::uint32_t chunk) {
  gpu::Device dev;
  algorithms::KernelOptions opts;
  opts.mapping = mapping;
  opts.virtual_warp_width = 8;
  opts.dynamic_chunk = chunk;
  const auto r = algorithms::run_microbench(dev, spec, opts);
  return static_cast<double>(r.stats.kernels.elapsed_cycles) / 1000.0;
}

void print_figure() {
  benchx::print_banner(
      "F7: static vs dynamic workload distribution (modeled kcycles)",
      "Heavy tasks clustered at the front vs shuffled; dynamic chunk size "
      "swept. Virtual warp W=8.");
  util::Table table({"layout", "static", "dyn chunk=8", "dyn chunk=32",
                     "dyn chunk=128", "dyn chunk=512", "best dyn speedup"});
  for (bool shuffled : {false, true}) {
    const auto spec = clustered_spec(shuffled);
    const double stat = run_kcycles(spec, Mapping::kWarpCentric, 0);
    auto& row = table.row();
    row.cell(shuffled ? "shuffled" : "clustered").cell(stat, 1);
    double best = 1e300;
    for (std::uint32_t chunk : {8u, 32u, 128u, 512u}) {
      const double d =
          run_kcycles(spec, Mapping::kWarpCentricDynamic, chunk);
      row.cell(d, 1);
      best = std::min(best, d);
    }
    row.cell(stat / best, 2);
  }
  table.print();
  std::printf(
      "\nExpected shape: on the clustered layout dynamic wins clearly "
      "(small-to-mid chunks);\non the shuffled layout static assignment is "
      "already balanced and dynamic only ties.\n");
}

void BM_Dist(benchmark::State& state, bool shuffled, bool dynamic) {
  const auto spec = clustered_spec(shuffled);
  for (auto _ : state) {
    state.counters["kcycles"] = run_kcycles(
        spec,
        dynamic ? Mapping::kWarpCentricDynamic : Mapping::kWarpCentric, 32);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::RegisterBenchmark("dist/clustered/static", BM_Dist, false,
                               false)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("dist/clustered/dynamic", BM_Dist, false,
                               true)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

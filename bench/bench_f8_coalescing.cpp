// F8 — memory behaviour: coalescing of baseline vs warp-centric BFS.
//
// The virtual-warp SIMD phase reads W *consecutive* adjacency entries per
// group, so its lane requests collapse into few 128-byte transactions; the
// thread-mapped kernel's lanes each walk a different list and scatter.
// Reported per dataset: global transactions per traversed edge and the
// average transactions per lane request.
#include "bench_common.hpp"

#include "gpu/device.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

struct MemRow {
  double txn_per_edge;
  double txn_per_req;
};

MemRow measure(const graph::Csr& g, graph::NodeId source,
               const algorithms::KernelOptions& opts) {
  gpu::Device dev;
  const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, g), source, opts);
  MemRow row;
  row.txn_per_edge =
      r.traversed_edges
          ? static_cast<double>(
                r.stats.kernels.counters.global_transactions) /
                static_cast<double>(r.traversed_edges)
          : 0.0;
  row.txn_per_req = r.stats.kernels.counters.transactions_per_request();
  return row;
}

void print_figure() {
  benchx::print_banner(
      "F8: global-memory transactions, baseline vs warp-centric (W=32)",
      "txn/edge counts whole-BFS transactions per traversed edge; "
      "txn/request is the per-access coalescing factor (1/32 is perfect).");
  util::Table table({"graph", "base txn/edge", "warp txn/edge",
                     "base txn/req", "warp txn/req", "txn reduction"});
  for (const auto& spec : graph::paper_datasets()) {
    const graph::Csr g = spec.make(benchx::scale(), benchx::seed());
    const auto source = benchx::hub_source(g);
    const MemRow base = measure(
        g, source, benchx::bfs_options(Mapping::kThreadMapped, 32));
    const MemRow warp = measure(
        g, source, benchx::bfs_options(Mapping::kWarpCentric, 32));
    table.row()
        .cell(spec.name)
        .cell(base.txn_per_edge, 2)
        .cell(warp.txn_per_edge, 2)
        .cell(base.txn_per_req, 3)
        .cell(warp.txn_per_req, 3)
        .cell(base.txn_per_edge / warp.txn_per_edge, 2);
  }
  table.print();
  std::printf(
      "\nExpected shape: txn/request is the coalescing metric — "
      "warp-centric drives it toward the\n1/32 floor on every graph (a "
      "5-10x improvement). txn/edge additionally contains the level-\n"
      "array scan overhead, which warp-centric pays once per *vertex* "
      "instead of once per 32\nvertices, so it only drops where long "
      "adjacency lists dominate (LiveJournal*, RMAT) and\nrises on "
      "short-list graphs — most extremely on Grid (see A2 for the queue "
      "frontier that\nremoves those scans).\n");
}

void BM_Mem(benchmark::State& state, const std::string& name,
            Mapping mapping) {
  const graph::Csr g =
      graph::make_dataset(name, benchx::scale(), benchx::seed());
  const auto source = benchx::hub_source(g);
  for (auto _ : state) {
    const MemRow row = measure(g, source, benchx::bfs_options(mapping, 32));
    state.counters["txn_per_edge"] = row.txn_per_edge;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::RegisterBenchmark("mem/RMAT/baseline", BM_Mem,
                               std::string("RMAT"),
                               Mapping::kThreadMapped)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("mem/RMAT/warp32", BM_Mem,
                               std::string("RMAT"), Mapping::kWarpCentric)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

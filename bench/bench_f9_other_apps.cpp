// F9 — generality: the technique on other graph kernels.
//
// The virtual-warp method is not BFS-specific: connected components,
// Bellman-Ford SSSP and pull-based PageRank share the same "scan a
// variable-length neighbor list per vertex" inner loop. For each kernel
// and dataset: thread-mapped vs warp-centric (best of W in {8, 32})
// modeled time and the speedup. These static-W numbers are the baseline
// the degree-binned Mapping::kAdaptive is compared against
// (bench_a2_frontier_adaptive).
#include "bench_common.hpp"

#include "algorithms/bc_gpu.hpp"
#include "algorithms/cc_gpu.hpp"
#include "algorithms/pagerank_gpu.hpp"
#include "algorithms/sssp_gpu.hpp"
#include "algorithms/tc_gpu.hpp"
#include "graph/builder.hpp"

namespace {

using namespace maxwarp;
using algorithms::Mapping;

algorithms::KernelOptions opt(Mapping m, int w) {
  return benchx::bfs_options(m, w);
}

double cc_ms(const graph::Csr& g, Mapping m, int w) {
  gpu::Device dev;
  const auto r = algorithms::connected_components_gpu(algorithms::GpuGraph(dev, g), opt(m, w));
  return r.stats.kernel_ms(dev.config());
}

double sssp_ms(const graph::Csr& g, Mapping m, int w) {
  gpu::Device dev;
  const auto r =
      algorithms::sssp_gpu(algorithms::GpuGraph(dev, g), benchx::hub_source(g), opt(m, w));
  return r.stats.kernel_ms(dev.config());
}

double pr_ms(const graph::Csr& g, Mapping m, int w) {
  gpu::Device dev;
  algorithms::PageRankParams params;
  params.iterations = 10;
  const auto r = algorithms::pagerank_gpu(algorithms::GpuGraph(dev, g), params, opt(m, w));
  return r.stats.kernel_ms(dev.config());
}

double bc_ms(const graph::Csr& g, Mapping m, int w) {
  gpu::Device dev;
  // Sampled BC: 4 fixed sources (exact all-sources BC is O(nm)).
  const std::vector<graph::NodeId> sources{0, 1, 2, 3};
  const auto r = algorithms::betweenness_gpu(algorithms::GpuGraph(dev, g), sources, opt(m, w));
  return r.stats.kernel_ms(dev.config());
}

double tc_ms(const graph::Csr& g, Mapping m, int w) {
  gpu::Device dev;
  const auto r = algorithms::triangle_count_gpu(algorithms::GpuGraph(dev, g), opt(m, w));
  return r.stats.kernel_ms(dev.config());
}

template <typename RunFn>
void add_rows(util::Table& table, const char* kernel, const graph::Csr& g,
              const char* graph_name, RunFn&& run) {
  const double base = run(g, Mapping::kThreadMapped, 32);
  const double w8 = run(g, Mapping::kWarpCentric, 8);
  const double w32 = run(g, Mapping::kWarpCentric, 32);
  const double best = std::min(w8, w32);
  table.row()
      .cell(kernel)
      .cell(graph_name)
      .cell(base, 3)
      .cell(w8, 3)
      .cell(w32, 3)
      .cell(base / best, 2);
}

void print_figure() {
  benchx::print_banner(
      "F9: other graph kernels, thread-mapped vs warp-centric (modeled ms)",
      "Connected components (undirected closure), Bellman-Ford SSSP "
      "(hash weights), PageRank (10 sweeps),\nbetweenness centrality "
      "(4 sampled sources), triangle counting (undirected closure).");
  util::Table table({"kernel", "graph", "baseline", "W=8", "W=32",
                     "best speedup"});
  for (const char* name : {"RMAT", "WikiTalk*", "Uniform"}) {
    graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());

    // CC needs a symmetric graph.
    graph::BuildOptions sym;
    sym.symmetrize = true;
    const graph::Csr und =
        graph::build_csr(g.num_nodes(), graph::to_edge_list(g), sym);
    add_rows(table, "cc", und, name, cc_ms);

    graph::Csr weighted = g;
    graph::assign_hash_weights(weighted, 16);
    add_rows(table, "sssp", weighted, name, sssp_ms);

    add_rows(table, "pagerank", g, name, pr_ms);
    add_rows(table, "bc(4 src)", g, name, bc_ms);
    add_rows(table, "triangles", und, name, tc_ms);
  }
  table.print();
  std::printf(
      "\nExpected shape: same story as BFS for the neighbor-scan kernels "
      "(cc/sssp/pagerank/bc) —\nsolid speedups on skewed graphs, parity-ish "
      "on Uniform. Triangle counting gains everywhere:\nits per-edge merge "
      "loops are long even on regular graphs, so spreading one vertex's "
      "merges\nacross W lanes always pays.\n");
}

void BM_App(benchmark::State& state, int which, Mapping mapping) {
  graph::Csr g =
      graph::make_dataset("RMAT", benchx::scale(), benchx::seed());
  if (which == 1) graph::assign_hash_weights(g, 16);
  if (which == 0) {
    graph::BuildOptions sym;
    sym.symmetrize = true;
    g = graph::build_csr(g.num_nodes(), graph::to_edge_list(g), sym);
  }
  for (auto _ : state) {
    double ms = 0;
    switch (which) {
      case 0: ms = cc_ms(g, mapping, 32); break;
      case 1: ms = sssp_ms(g, mapping, 32); break;
      default: ms = pr_ms(g, mapping, 32); break;
    }
    state.counters["modeled_ms"] = ms;
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  const char* names[] = {"cc", "sssp", "pagerank"};
  for (int which : {0, 1, 2}) {
    for (Mapping m : {Mapping::kThreadMapped, Mapping::kWarpCentric}) {
      benchmark::RegisterBenchmark(
          (std::string("app/") + names[which] + "/" +
           algorithms::to_string(m))
              .c_str(),
          BM_App, which, m)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

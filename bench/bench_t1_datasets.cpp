// T1 — the dataset table (paper Table 1).
//
// One row per graph instance: the size the paper reported for the real
// dataset (where applicable), the size of our calibrated stand-in at the
// current scale, and the degree-distribution shape numbers that drive
// every other experiment (max degree, Gini skew, share of edges held by
// the top 1% of nodes).
#include "bench_common.hpp"

#include "graph/metrics.hpp"

namespace {

using namespace maxwarp;

void print_table() {
  benchx::print_banner(
      "T1: graph datasets",
      "Characteristics of every instance used in the evaluation. '*' marks "
      "calibrated stand-ins for the paper's real graphs.");

  util::Table table({"graph", "paper |V|", "paper |E|", "ours |V|",
                     "ours |E|", "avg deg", "max deg", "gini",
                     "top1% edges", "skewed"});
  for (const auto& spec : graph::paper_datasets()) {
    const graph::Csr g = spec.make(benchx::scale(), benchx::seed());
    const auto stats = graph::degree_stats(g);
    table.row()
        .cell(spec.name)
        .cell(spec.paper_nodes ? util::format_si(
                                     static_cast<double>(spec.paper_nodes))
                               : std::string("-"))
        .cell(spec.paper_edges ? util::format_si(
                                     static_cast<double>(spec.paper_edges))
                               : std::string("-"))
        .cell(static_cast<std::uint64_t>(g.num_nodes()))
        .cell(g.num_edges())
        .cell(stats.mean, 2)
        .cell(static_cast<std::uint64_t>(stats.max))
        .cell(stats.gini, 3)
        .cell(stats.top1pct_edge_share * 100.0, 1)
        .cell(spec.skewed ? "yes" : "no");
  }
  table.print();
  // One line per dataset: the degree quantiles the adaptive auto-tuner
  // bins on (tune_adaptive_plan reads the same histogram/percentiles).
  std::printf("\nDegree percentiles (adaptive bin-tuner input):\n");
  for (const auto& spec : graph::paper_datasets()) {
    const graph::Csr g = spec.make(benchx::scale(), benchx::seed());
    const auto pct = graph::degree_percentiles(g);
    std::printf("  %-14s p50=%-6u p90=%-6u p99=%-6u max=%u\n",
                spec.name.c_str(), pct.p50, pct.p90, pct.p99, pct.max);
  }
  std::printf(
      "\nExpected shape: RMAT/LiveJournal*/Patents*/WikiTalk* show high "
      "gini and top-1%% share;\nRandom/Uniform/Grid are flat. The skewed "
      "rows are where warp-centric mapping pays off.\n");
}

void BM_GenerateDataset(benchmark::State& state,
                        const std::string& name) {
  for (auto _ : state) {
    const graph::Csr g =
        graph::make_dataset(name, benchx::scale(), benchx::seed());
    benchmark::DoNotOptimize(g.num_edges());
    state.counters["nodes"] = static_cast<double>(g.num_nodes());
    state.counters["edges"] = static_cast<double>(g.num_edges());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (const auto& spec : maxwarp::graph::paper_datasets()) {
    benchmark::RegisterBenchmark(("generate/" + spec.name).c_str(),
                                 BM_GenerateDataset, spec.name)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  maxwarp::benchx::embed_build_info();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

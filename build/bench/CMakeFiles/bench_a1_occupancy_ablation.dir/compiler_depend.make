# Empty compiler generated dependencies file for bench_a1_occupancy_ablation.
# This may be replaced when dependencies are built.

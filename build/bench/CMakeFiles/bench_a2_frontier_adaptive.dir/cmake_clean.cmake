file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_frontier_adaptive.dir/bench_a2_frontier_adaptive.cpp.o"
  "CMakeFiles/bench_a2_frontier_adaptive.dir/bench_a2_frontier_adaptive.cpp.o.d"
  "bench_a2_frontier_adaptive"
  "bench_a2_frontier_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_frontier_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

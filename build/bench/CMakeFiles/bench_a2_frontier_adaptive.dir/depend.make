# Empty dependencies file for bench_a2_frontier_adaptive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_ordering.dir/bench_a3_ordering.cpp.o"
  "CMakeFiles/bench_a3_ordering.dir/bench_a3_ordering.cpp.o.d"
  "bench_a3_ordering"
  "bench_a3_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

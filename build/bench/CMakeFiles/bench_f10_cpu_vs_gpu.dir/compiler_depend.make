# Empty compiler generated dependencies file for bench_f10_cpu_vs_gpu.
# This may be replaced when dependencies are built.

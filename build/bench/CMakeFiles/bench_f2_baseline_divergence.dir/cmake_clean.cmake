file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_baseline_divergence.dir/bench_f2_baseline_divergence.cpp.o"
  "CMakeFiles/bench_f2_baseline_divergence.dir/bench_f2_baseline_divergence.cpp.o.d"
  "bench_f2_baseline_divergence"
  "bench_f2_baseline_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_baseline_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_f2_baseline_divergence.
# This may be replaced when dependencies are built.

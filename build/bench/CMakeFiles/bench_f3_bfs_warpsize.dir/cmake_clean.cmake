file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_bfs_warpsize.dir/bench_f3_bfs_warpsize.cpp.o"
  "CMakeFiles/bench_f3_bfs_warpsize.dir/bench_f3_bfs_warpsize.cpp.o.d"
  "bench_f3_bfs_warpsize"
  "bench_f3_bfs_warpsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_bfs_warpsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

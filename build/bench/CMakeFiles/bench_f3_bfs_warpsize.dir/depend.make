# Empty dependencies file for bench_f3_bfs_warpsize.
# This may be replaced when dependencies are built.

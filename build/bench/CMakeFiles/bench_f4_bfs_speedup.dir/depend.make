# Empty dependencies file for bench_f4_bfs_speedup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_microbench.dir/bench_f5_microbench.cpp.o"
  "CMakeFiles/bench_f5_microbench.dir/bench_f5_microbench.cpp.o.d"
  "bench_f5_microbench"
  "bench_f5_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

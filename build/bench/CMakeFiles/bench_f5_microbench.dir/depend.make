# Empty dependencies file for bench_f5_microbench.
# This may be replaced when dependencies are built.

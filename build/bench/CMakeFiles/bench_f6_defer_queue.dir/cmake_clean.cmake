file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_defer_queue.dir/bench_f6_defer_queue.cpp.o"
  "CMakeFiles/bench_f6_defer_queue.dir/bench_f6_defer_queue.cpp.o.d"
  "bench_f6_defer_queue"
  "bench_f6_defer_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_defer_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

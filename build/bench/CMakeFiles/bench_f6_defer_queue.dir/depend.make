# Empty dependencies file for bench_f6_defer_queue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_dynamic_dist.dir/bench_f7_dynamic_dist.cpp.o"
  "CMakeFiles/bench_f7_dynamic_dist.dir/bench_f7_dynamic_dist.cpp.o.d"
  "bench_f7_dynamic_dist"
  "bench_f7_dynamic_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_dynamic_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

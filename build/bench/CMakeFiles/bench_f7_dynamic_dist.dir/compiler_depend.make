# Empty compiler generated dependencies file for bench_f7_dynamic_dist.
# This may be replaced when dependencies are built.

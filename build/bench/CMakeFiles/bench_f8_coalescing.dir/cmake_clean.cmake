file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_coalescing.dir/bench_f8_coalescing.cpp.o"
  "CMakeFiles/bench_f8_coalescing.dir/bench_f8_coalescing.cpp.o.d"
  "bench_f8_coalescing"
  "bench_f8_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_f8_coalescing.
# This may be replaced when dependencies are built.

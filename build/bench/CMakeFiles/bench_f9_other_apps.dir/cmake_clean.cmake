file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_other_apps.dir/bench_f9_other_apps.cpp.o"
  "CMakeFiles/bench_f9_other_apps.dir/bench_f9_other_apps.cpp.o.d"
  "bench_f9_other_apps"
  "bench_f9_other_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_other_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/network_structure_report.dir/network_structure_report.cpp.o"
  "CMakeFiles/network_structure_report.dir/network_structure_report.cpp.o.d"
  "network_structure_report"
  "network_structure_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_structure_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for network_structure_report.
# This may be replaced when dependencies are built.

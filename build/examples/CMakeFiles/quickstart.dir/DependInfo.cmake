
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/maxwarp_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/maxwarp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/warp/CMakeFiles/maxwarp_warp.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/maxwarp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/maxwarp_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxwarp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/road_network_sssp.dir/road_network_sssp.cpp.o"
  "CMakeFiles/road_network_sssp.dir/road_network_sssp.cpp.o.d"
  "road_network_sssp"
  "road_network_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/warp_tuning.dir/warp_tuning.cpp.o"
  "CMakeFiles/warp_tuning.dir/warp_tuning.cpp.o.d"
  "warp_tuning"
  "warp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

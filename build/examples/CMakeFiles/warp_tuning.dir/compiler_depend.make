# Empty compiler generated dependencies file for warp_tuning.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--nodes" "4096" "--avg-degree" "6")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_social]=] "/root/repo/build/examples/social_network_analysis" "--scale" "0.0625")
set_tests_properties([=[example_social]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_road]=] "/root/repo/build/examples/road_network_sssp" "--side" "24")
set_tests_properties([=[example_road]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_tuning]=] "/root/repo/build/examples/warp_tuning" "--dataset" "RMAT" "--scale" "0.0625")
set_tests_properties([=[example_tuning]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_report]=] "/root/repo/build/examples/network_structure_report" "--scale" "0.0625")
set_tests_properties([=[example_report]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")

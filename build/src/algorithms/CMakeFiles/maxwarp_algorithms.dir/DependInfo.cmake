
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bc_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/bc_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/bc_gpu.cpp.o.d"
  "/root/repo/src/algorithms/bfs_cpu_parallel.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/bfs_cpu_parallel.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/bfs_cpu_parallel.cpp.o.d"
  "/root/repo/src/algorithms/bfs_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/bfs_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/bfs_gpu.cpp.o.d"
  "/root/repo/src/algorithms/cc_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/cc_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/cc_gpu.cpp.o.d"
  "/root/repo/src/algorithms/coloring_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/coloring_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/coloring_gpu.cpp.o.d"
  "/root/repo/src/algorithms/cpu_reference.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/cpu_reference.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/cpu_reference.cpp.o.d"
  "/root/repo/src/algorithms/gpu_common.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/gpu_common.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/gpu_common.cpp.o.d"
  "/root/repo/src/algorithms/kcore_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/kcore_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/kcore_gpu.cpp.o.d"
  "/root/repo/src/algorithms/microbench.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/microbench.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/microbench.cpp.o.d"
  "/root/repo/src/algorithms/pagerank_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/pagerank_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/pagerank_gpu.cpp.o.d"
  "/root/repo/src/algorithms/spmv_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/spmv_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/spmv_gpu.cpp.o.d"
  "/root/repo/src/algorithms/sssp_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/sssp_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/sssp_gpu.cpp.o.d"
  "/root/repo/src/algorithms/tc_gpu.cpp" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/tc_gpu.cpp.o" "gcc" "src/algorithms/CMakeFiles/maxwarp_algorithms.dir/tc_gpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/maxwarp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/warp/CMakeFiles/maxwarp_warp.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/maxwarp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/maxwarp_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxwarp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

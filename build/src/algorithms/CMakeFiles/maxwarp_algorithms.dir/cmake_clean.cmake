file(REMOVE_RECURSE
  "CMakeFiles/maxwarp_algorithms.dir/bc_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/bc_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/bfs_cpu_parallel.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/bfs_cpu_parallel.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/bfs_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/bfs_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/cc_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/cc_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/coloring_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/coloring_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/cpu_reference.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/cpu_reference.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/gpu_common.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/gpu_common.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/kcore_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/kcore_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/microbench.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/microbench.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/pagerank_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/pagerank_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/spmv_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/spmv_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/sssp_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/sssp_gpu.cpp.o.d"
  "CMakeFiles/maxwarp_algorithms.dir/tc_gpu.cpp.o"
  "CMakeFiles/maxwarp_algorithms.dir/tc_gpu.cpp.o.d"
  "libmaxwarp_algorithms.a"
  "libmaxwarp_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwarp_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmaxwarp_algorithms.a"
)

# Empty compiler generated dependencies file for maxwarp_algorithms.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/maxwarp_gpu.dir/device.cpp.o"
  "CMakeFiles/maxwarp_gpu.dir/device.cpp.o.d"
  "libmaxwarp_gpu.a"
  "libmaxwarp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwarp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmaxwarp_gpu.a"
)

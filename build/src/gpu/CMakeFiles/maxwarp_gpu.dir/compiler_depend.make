# Empty compiler generated dependencies file for maxwarp_gpu.
# This may be replaced when dependencies are built.

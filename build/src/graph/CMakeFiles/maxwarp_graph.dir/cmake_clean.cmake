file(REMOVE_RECURSE
  "CMakeFiles/maxwarp_graph.dir/builder.cpp.o"
  "CMakeFiles/maxwarp_graph.dir/builder.cpp.o.d"
  "CMakeFiles/maxwarp_graph.dir/csr.cpp.o"
  "CMakeFiles/maxwarp_graph.dir/csr.cpp.o.d"
  "CMakeFiles/maxwarp_graph.dir/datasets.cpp.o"
  "CMakeFiles/maxwarp_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/maxwarp_graph.dir/generators.cpp.o"
  "CMakeFiles/maxwarp_graph.dir/generators.cpp.o.d"
  "CMakeFiles/maxwarp_graph.dir/io.cpp.o"
  "CMakeFiles/maxwarp_graph.dir/io.cpp.o.d"
  "CMakeFiles/maxwarp_graph.dir/metrics.cpp.o"
  "CMakeFiles/maxwarp_graph.dir/metrics.cpp.o.d"
  "libmaxwarp_graph.a"
  "libmaxwarp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwarp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

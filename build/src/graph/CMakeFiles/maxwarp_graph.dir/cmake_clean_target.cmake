file(REMOVE_RECURSE
  "libmaxwarp_graph.a"
)

# Empty dependencies file for maxwarp_graph.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/device_sim.cpp" "src/simt/CMakeFiles/maxwarp_simt.dir/device_sim.cpp.o" "gcc" "src/simt/CMakeFiles/maxwarp_simt.dir/device_sim.cpp.o.d"
  "/root/repo/src/simt/memory.cpp" "src/simt/CMakeFiles/maxwarp_simt.dir/memory.cpp.o" "gcc" "src/simt/CMakeFiles/maxwarp_simt.dir/memory.cpp.o.d"
  "/root/repo/src/simt/stats.cpp" "src/simt/CMakeFiles/maxwarp_simt.dir/stats.cpp.o" "gcc" "src/simt/CMakeFiles/maxwarp_simt.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/maxwarp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/maxwarp_simt.dir/device_sim.cpp.o"
  "CMakeFiles/maxwarp_simt.dir/device_sim.cpp.o.d"
  "CMakeFiles/maxwarp_simt.dir/memory.cpp.o"
  "CMakeFiles/maxwarp_simt.dir/memory.cpp.o.d"
  "CMakeFiles/maxwarp_simt.dir/stats.cpp.o"
  "CMakeFiles/maxwarp_simt.dir/stats.cpp.o.d"
  "libmaxwarp_simt.a"
  "libmaxwarp_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwarp_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmaxwarp_simt.a"
)

# Empty dependencies file for maxwarp_simt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/maxwarp_util.dir/cli.cpp.o"
  "CMakeFiles/maxwarp_util.dir/cli.cpp.o.d"
  "CMakeFiles/maxwarp_util.dir/rng.cpp.o"
  "CMakeFiles/maxwarp_util.dir/rng.cpp.o.d"
  "CMakeFiles/maxwarp_util.dir/stats.cpp.o"
  "CMakeFiles/maxwarp_util.dir/stats.cpp.o.d"
  "CMakeFiles/maxwarp_util.dir/table.cpp.o"
  "CMakeFiles/maxwarp_util.dir/table.cpp.o.d"
  "CMakeFiles/maxwarp_util.dir/timer.cpp.o"
  "CMakeFiles/maxwarp_util.dir/timer.cpp.o.d"
  "libmaxwarp_util.a"
  "libmaxwarp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwarp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

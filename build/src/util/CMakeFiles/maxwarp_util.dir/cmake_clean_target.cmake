file(REMOVE_RECURSE
  "libmaxwarp_util.a"
)

# Empty dependencies file for maxwarp_util.
# This may be replaced when dependencies are built.

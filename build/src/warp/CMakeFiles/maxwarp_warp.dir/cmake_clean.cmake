file(REMOVE_RECURSE
  "CMakeFiles/maxwarp_warp.dir/virtual_warp.cpp.o"
  "CMakeFiles/maxwarp_warp.dir/virtual_warp.cpp.o.d"
  "libmaxwarp_warp.a"
  "libmaxwarp_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwarp_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmaxwarp_warp.a"
)

# Empty dependencies file for maxwarp_warp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bc_gpu_test.dir/bc_gpu_test.cpp.o"
  "CMakeFiles/bc_gpu_test.dir/bc_gpu_test.cpp.o.d"
  "bc_gpu_test"
  "bc_gpu_test.pdb"
  "bc_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bc_gpu_test.
# This may be replaced when dependencies are built.

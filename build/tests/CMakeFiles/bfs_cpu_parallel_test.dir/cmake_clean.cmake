file(REMOVE_RECURSE
  "CMakeFiles/bfs_cpu_parallel_test.dir/bfs_cpu_parallel_test.cpp.o"
  "CMakeFiles/bfs_cpu_parallel_test.dir/bfs_cpu_parallel_test.cpp.o.d"
  "bfs_cpu_parallel_test"
  "bfs_cpu_parallel_test.pdb"
  "bfs_cpu_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_cpu_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bfs_cpu_parallel_test.
# This may be replaced when dependencies are built.

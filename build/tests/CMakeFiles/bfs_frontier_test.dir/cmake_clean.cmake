file(REMOVE_RECURSE
  "CMakeFiles/bfs_frontier_test.dir/bfs_frontier_test.cpp.o"
  "CMakeFiles/bfs_frontier_test.dir/bfs_frontier_test.cpp.o.d"
  "bfs_frontier_test"
  "bfs_frontier_test.pdb"
  "bfs_frontier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_frontier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

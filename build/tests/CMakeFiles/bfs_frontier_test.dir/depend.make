# Empty dependencies file for bfs_frontier_test.
# This may be replaced when dependencies are built.

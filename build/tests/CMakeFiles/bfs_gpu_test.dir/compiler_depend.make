# Empty compiler generated dependencies file for bfs_gpu_test.
# This may be replaced when dependencies are built.

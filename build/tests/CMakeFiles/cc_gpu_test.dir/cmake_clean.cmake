file(REMOVE_RECURSE
  "CMakeFiles/cc_gpu_test.dir/cc_gpu_test.cpp.o"
  "CMakeFiles/cc_gpu_test.dir/cc_gpu_test.cpp.o.d"
  "cc_gpu_test"
  "cc_gpu_test.pdb"
  "cc_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

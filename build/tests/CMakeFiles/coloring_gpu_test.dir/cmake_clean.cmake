file(REMOVE_RECURSE
  "CMakeFiles/coloring_gpu_test.dir/coloring_gpu_test.cpp.o"
  "CMakeFiles/coloring_gpu_test.dir/coloring_gpu_test.cpp.o.d"
  "coloring_gpu_test"
  "coloring_gpu_test.pdb"
  "coloring_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

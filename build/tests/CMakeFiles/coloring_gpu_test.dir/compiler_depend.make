# Empty compiler generated dependencies file for coloring_gpu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gpu_common_test.dir/gpu_common_test.cpp.o"
  "CMakeFiles/gpu_common_test.dir/gpu_common_test.cpp.o.d"
  "gpu_common_test"
  "gpu_common_test.pdb"
  "gpu_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

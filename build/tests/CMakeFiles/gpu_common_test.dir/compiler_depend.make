# Empty compiler generated dependencies file for gpu_common_test.
# This may be replaced when dependencies are built.

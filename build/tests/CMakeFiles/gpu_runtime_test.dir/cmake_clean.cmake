file(REMOVE_RECURSE
  "CMakeFiles/gpu_runtime_test.dir/gpu_runtime_test.cpp.o"
  "CMakeFiles/gpu_runtime_test.dir/gpu_runtime_test.cpp.o.d"
  "gpu_runtime_test"
  "gpu_runtime_test.pdb"
  "gpu_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gpu_runtime_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/graph_datasets_test.dir/graph_datasets_test.cpp.o"
  "CMakeFiles/graph_datasets_test.dir/graph_datasets_test.cpp.o.d"
  "graph_datasets_test"
  "graph_datasets_test.pdb"
  "graph_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

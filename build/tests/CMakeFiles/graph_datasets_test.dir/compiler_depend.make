# Empty compiler generated dependencies file for graph_datasets_test.
# This may be replaced when dependencies are built.

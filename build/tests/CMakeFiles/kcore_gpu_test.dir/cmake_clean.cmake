file(REMOVE_RECURSE
  "CMakeFiles/kcore_gpu_test.dir/kcore_gpu_test.cpp.o"
  "CMakeFiles/kcore_gpu_test.dir/kcore_gpu_test.cpp.o.d"
  "kcore_gpu_test"
  "kcore_gpu_test.pdb"
  "kcore_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kcore_gpu_test.
# This may be replaced when dependencies are built.

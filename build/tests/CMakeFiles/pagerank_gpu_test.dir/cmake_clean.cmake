file(REMOVE_RECURSE
  "CMakeFiles/pagerank_gpu_test.dir/pagerank_gpu_test.cpp.o"
  "CMakeFiles/pagerank_gpu_test.dir/pagerank_gpu_test.cpp.o.d"
  "pagerank_gpu_test"
  "pagerank_gpu_test.pdb"
  "pagerank_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

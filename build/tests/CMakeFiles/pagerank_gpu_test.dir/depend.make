# Empty dependencies file for pagerank_gpu_test.
# This may be replaced when dependencies are built.

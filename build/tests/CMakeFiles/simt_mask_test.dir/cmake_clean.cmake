file(REMOVE_RECURSE
  "CMakeFiles/simt_mask_test.dir/simt_mask_test.cpp.o"
  "CMakeFiles/simt_mask_test.dir/simt_mask_test.cpp.o.d"
  "simt_mask_test"
  "simt_mask_test.pdb"
  "simt_mask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_mask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

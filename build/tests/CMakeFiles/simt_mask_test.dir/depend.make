# Empty dependencies file for simt_mask_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/simt_membench_test.dir/simt_membench_test.cpp.o"
  "CMakeFiles/simt_membench_test.dir/simt_membench_test.cpp.o.d"
  "simt_membench_test"
  "simt_membench_test.pdb"
  "simt_membench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_membench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

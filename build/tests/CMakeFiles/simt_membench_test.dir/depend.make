# Empty dependencies file for simt_membench_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/simt_memory_test.dir/simt_memory_test.cpp.o"
  "CMakeFiles/simt_memory_test.dir/simt_memory_test.cpp.o.d"
  "simt_memory_test"
  "simt_memory_test.pdb"
  "simt_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for simt_memory_test.
# This may be replaced when dependencies are built.

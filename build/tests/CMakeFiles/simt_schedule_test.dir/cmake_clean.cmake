file(REMOVE_RECURSE
  "CMakeFiles/simt_schedule_test.dir/simt_schedule_test.cpp.o"
  "CMakeFiles/simt_schedule_test.dir/simt_schedule_test.cpp.o.d"
  "simt_schedule_test"
  "simt_schedule_test.pdb"
  "simt_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

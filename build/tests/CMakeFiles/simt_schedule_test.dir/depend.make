# Empty dependencies file for simt_schedule_test.
# This may be replaced when dependencies are built.

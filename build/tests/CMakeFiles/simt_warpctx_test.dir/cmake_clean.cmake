file(REMOVE_RECURSE
  "CMakeFiles/simt_warpctx_test.dir/simt_warpctx_test.cpp.o"
  "CMakeFiles/simt_warpctx_test.dir/simt_warpctx_test.cpp.o.d"
  "simt_warpctx_test"
  "simt_warpctx_test.pdb"
  "simt_warpctx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_warpctx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

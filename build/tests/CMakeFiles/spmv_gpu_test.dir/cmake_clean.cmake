file(REMOVE_RECURSE
  "CMakeFiles/spmv_gpu_test.dir/spmv_gpu_test.cpp.o"
  "CMakeFiles/spmv_gpu_test.dir/spmv_gpu_test.cpp.o.d"
  "spmv_gpu_test"
  "spmv_gpu_test.pdb"
  "spmv_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

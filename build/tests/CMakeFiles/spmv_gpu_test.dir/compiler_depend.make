# Empty compiler generated dependencies file for spmv_gpu_test.
# This may be replaced when dependencies are built.

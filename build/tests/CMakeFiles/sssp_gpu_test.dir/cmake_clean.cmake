file(REMOVE_RECURSE
  "CMakeFiles/sssp_gpu_test.dir/sssp_gpu_test.cpp.o"
  "CMakeFiles/sssp_gpu_test.dir/sssp_gpu_test.cpp.o.d"
  "sssp_gpu_test"
  "sssp_gpu_test.pdb"
  "sssp_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

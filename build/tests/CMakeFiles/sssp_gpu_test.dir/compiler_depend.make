# Empty compiler generated dependencies file for sssp_gpu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tc_gpu_test.dir/tc_gpu_test.cpp.o"
  "CMakeFiles/tc_gpu_test.dir/tc_gpu_test.cpp.o.d"
  "tc_gpu_test"
  "tc_gpu_test.pdb"
  "tc_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tc_gpu_test.
# This may be replaced when dependencies are built.

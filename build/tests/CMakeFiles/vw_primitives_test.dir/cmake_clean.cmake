file(REMOVE_RECURSE
  "CMakeFiles/vw_primitives_test.dir/vw_primitives_test.cpp.o"
  "CMakeFiles/vw_primitives_test.dir/vw_primitives_test.cpp.o.d"
  "vw_primitives_test"
  "vw_primitives_test.pdb"
  "vw_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

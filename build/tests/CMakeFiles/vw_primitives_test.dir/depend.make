# Empty dependencies file for vw_primitives_test.
# This may be replaced when dependencies are built.

// Concurrent queries: serve a batch of BFS/SSSP queries against one
// resident graph with algorithms::QueryEngine, and show what each layer
// buys — fusing up to 32 BFS queries into one multi-source sweep, and
// spreading independent work units across gpu::Streams so the overlap
// timeline lets them share the machine.
//
//   ./concurrent_queries [--nodes N] [--avg-degree D] [--seed S]
//                        [--queries Q] [--streams S] [--group K]
#include <cstdio>
#include <vector>

#include "algorithms/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

algorithms::BatchStats serve(const algorithms::GpuGraph& g,
                             std::span<const algorithms::Query> queries,
                             std::uint32_t streams, std::uint32_t group,
                             bool fuse, const char* label) {
  algorithms::QueryEngine engine(g, {.num_streams = streams,
                                     .bfs_group_size = group,
                                     .fuse_bfs = fuse});
  (void)engine.run(queries);
  const auto& s = engine.last_batch_stats();
  std::printf(
      "  %-28s %3u queries  %2u groups  %4llu launches  %8.3f ms\n", label,
      s.queries, s.fused_groups,
      static_cast<unsigned long long>(s.kernel_launches), s.modeled_ms);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::uint32_t>(args.get_int("nodes", 32768));
  const auto avg_degree =
      static_cast<std::uint64_t>(args.get_int("avg-degree", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto num_queries =
      static_cast<std::uint32_t>(args.get_int("queries", 24));
  const auto streams =
      static_cast<std::uint32_t>(args.get_int("streams", 4));
  const auto group = static_cast<std::uint32_t>(args.get_int("group", 8));

  // One resident graph, uploaded once. Weights make SSSP meaningful.
  graph::Csr host = graph::rmat(nodes, nodes * avg_degree, {}, {.seed = seed});
  graph::assign_hash_weights(host, 64);
  std::printf("graph: %s\n", host.describe().c_str());

  gpu::Device dev;
  algorithms::GpuGraph g(dev, host);

  // A mixed workload: mostly BFS reachability probes, some shortest-path
  // queries, sources spread over the graph.
  std::vector<algorithms::Query> queries;
  for (std::uint32_t i = 0; i < num_queries; ++i) {
    const auto src =
        static_cast<graph::NodeId>((i * 2654435761u) % host.num_nodes());
    queries.push_back(i % 4 == 3 ? algorithms::Query::sssp(src)
                                 : algorithms::Query::bfs(src));
  }
  std::printf("workload: %u queries (every 4th is SSSP)\n\n", num_queries);

  std::printf("modeled batch time by engine configuration:\n");
  const auto serial =
      serve(g, queries, 1, 1, /*fuse=*/false, "serial (1 stream, no fuse)");
  serve(g, queries, streams, 1, /*fuse=*/false, "streams only");
  serve(g, queries, 1, group, /*fuse=*/true, "fusion only");
  const auto full =
      serve(g, queries, streams, group, /*fuse=*/true, "streams + fusion");

  std::printf("\nbatch speedup vs serial: %.2fx\n",
              serial.modeled_ms / full.modeled_ms);

  // The engine is a scheduler, not a different algorithm: every query
  // returns bit-identical results no matter the configuration.
  algorithms::QueryEngine a(g, {.num_streams = 1, .fuse_bfs = false});
  algorithms::QueryEngine b(g, {.num_streams = streams,
                                .bfs_group_size = group,
                                .fuse_bfs = true});
  const auto ra = a.run(queries);
  const auto rb = b.run(queries);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].value != rb[i].value) {
      std::fprintf(stderr, "BUG: query %zu disagrees across configs\n", i);
      return 1;
    }
  }
  std::printf("all %zu results bit-identical across configurations\n",
              ra.size());
  return 0;
}

// Failback drill: the full device-health lifecycle on one fleet — kill,
// serve degraded, probation, canary probes, restore, and a full-fleet
// batch on the repaired group.
//
// Five phases over the same workload:
//   1. reference   — one clean device; produces the reference answers.
//   2. kill        — a two-device group with an ecc-fatal plan sized to
//                    exhaust the primary's retry ladder; the batch must
//                    complete on the spare, bit-identical, zero host
//                    fallbacks, and the primary must be marked dead.
//   3. maintenance — the modeled clock advances past the probation
//                    delay; fleet-maintenance passes run canary probes
//                    until N consecutive clean probes restore the
//                    member.
//   4. failback    — the next batch places work on the restored member
//                    again (visible in the placement log) and answers
//                    stay bit-identical.
//   5. replay      — the whole drill again; results, placements and the
//                    health audit log must reproduce bit-identically.
//
// Exit status is non-zero when any phase breaks its contract.
//
//   ./failback_drill
//   ./failback_drill --nodes 8192 --queries 64
//   ./failback_drill --plan "ecc-fatal:nth=1+:max=10;seed=3"   # one probe fails first
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/query_engine.hpp"
#include "gpu/device_group.hpp"
#include "graph/generators.hpp"
#include "simt/fault.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

struct DrillOutcome {
  std::vector<algorithms::QueryResult> degraded;  ///< batch under the kill
  std::vector<algorithms::QueryResult> restored;  ///< batch after failback
  algorithms::FleetReport maintenance;            ///< summed over passes
  std::vector<gpu::HealthRecord> health_log;
  std::vector<algorithms::UnitPlacement> failback_schedule;
  std::uint32_t kill_migrations = 0;
  std::uint32_t kill_fallbacks = 0;
  bool primary_died = false;
  bool primary_restored = false;
};

std::vector<algorithms::Query> make_batch(const graph::Csr& host,
                                          std::uint32_t count) {
  std::vector<algorithms::Query> batch;
  for (std::uint32_t q = 0; q < count; ++q) {
    batch.push_back(algorithms::Query::bfs((q * 977u) % host.num_nodes()));
  }
  return batch;
}

algorithms::QueryEngineOptions drill_options() {
  algorithms::QueryEngineOptions opts;
  // Three iteration-level attempts per engine-level attempt, three of
  // those: nine faulted launches exhaust a unit and kill the member.
  opts.resilience.max_retries = 2;
  // Restore within one maintenance pass once the probes come clean.
  opts.resilience.health.probes_to_restore = 2;
  opts.resilience.health.probes_per_pass = 2;
  return opts;
}

DrillOutcome run_drill(const graph::Csr& host, const std::string& plan,
                       std::uint32_t num_queries) {
  gpu::DeviceGroup group(2);
  group.arm(0, simt::FaultPlan::parse(plan));
  algorithms::QueryEngine engine(group, host, drill_options());

  DrillOutcome out;
  out.degraded = engine.run(make_batch(host, num_queries));
  out.kill_migrations = engine.last_batch_stats().migrations;
  out.kill_fallbacks = engine.last_batch_stats().fallback_queries;
  out.primary_died =
      group.health_state(0) == gpu::DeviceHealth::kDead;

  // Maintenance passes: each one advances the modeled clock past any
  // (possibly backed-off) probation delay, then probes. A healthy plan
  // restores in one pass; a plan with a residual fault spends the first
  // pass re-killing the member and restores on a later one.
  for (int pass = 0; pass < 5; ++pass) {
    if (group.healthy(0)) break;
    group.device(0).charge_delay_ms(1000.0);
    const auto report = engine.maintain_fleet();
    out.maintenance.probes += report.probes;
    out.maintenance.probe_failures += report.probe_failures;
    out.maintenance.restorations += report.restorations;
    out.maintenance.retired += report.retired;
  }
  out.primary_restored =
      group.health_state(0) == gpu::DeviceHealth::kHealthy;

  out.restored = engine.run(make_batch(host, num_queries));
  out.failback_schedule = engine.last_schedule();
  out.health_log = group.health_log();
  return out;
}

bool answers_match(const std::vector<algorithms::QueryResult>& got,
                   const std::vector<algorithms::QueryResult>& want,
                   const char* label) {
  bool ok = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!got[i].ok()) {
      std::printf("MISMATCH (%s): query %zu failed: %s\n", label, i,
                  got[i].status.to_string().c_str());
      ok = false;
    } else if (got[i].value != want[i].value) {
      std::printf("MISMATCH (%s): query %zu differs\n", label, i);
      ok = false;
    }
  }
  return ok;
}

void print_health_log(const DrillOutcome& o) {
  for (const auto& rec : o.health_log) {
    std::printf("  t=%9.3fms dev%zu %s -> %s: %s\n", rec.at_ms, rec.device,
                gpu::to_string(rec.from), gpu::to_string(rec.to),
                rec.reason.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string plan =
      args.get_string("plan", "ecc-fatal:nth=1+:max=9;seed=7");
  const auto nodes =
      static_cast<std::uint32_t>(args.get_int("nodes", 4096));
  const auto degree =
      static_cast<std::uint64_t>(args.get_int("degree", 8));
  const auto queries =
      static_cast<std::uint32_t>(args.get_int("queries", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  for (const auto& stray : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", stray.c_str());
  }

  const graph::Csr host = graph::rmat(nodes, nodes * degree, {},
                                      {.seed = seed});
  std::printf("failback drill: %u nodes, %llu edges, %u queries\n",
              host.num_nodes(),
              static_cast<unsigned long long>(host.num_edges()), queries);
  std::printf("primary plan: %s\n\n", plan.c_str());

  std::printf("[1/5] clean single-device reference\n");
  gpu::Device ref_dev;
  algorithms::GpuGraph ref_graph(ref_dev, host);
  algorithms::QueryEngine ref_engine(ref_graph);
  const auto reference = ref_engine.run(make_batch(host, queries));

  std::printf("[2/5] kill + degraded serve, [3/5] probation + probes, "
              "[4/5] failback batch\n");
  const DrillOutcome drill = run_drill(host, plan, queries);
  std::printf(
      "  kill: migrations=%u fallbacks=%u; maintenance: probes=%u "
      "failures=%u restorations=%u retired=%u\n",
      drill.kill_migrations, drill.kill_fallbacks, drill.maintenance.probes,
      drill.maintenance.probe_failures, drill.maintenance.restorations,
      drill.maintenance.retired);
  print_health_log(drill);

  bool ok = answers_match(drill.degraded, reference, "degraded batch");
  ok = answers_match(drill.restored, reference, "failback batch") && ok;

  if (!drill.primary_died) {
    std::printf("FAIL: kill plan never took the primary out of rotation\n");
    ok = false;
  }
  if (drill.kill_migrations == 0) {
    std::printf("FAIL: the kill never triggered a migration\n");
    ok = false;
  }
  if (drill.kill_fallbacks != 0) {
    std::printf("FAIL: %u queries fell back to the host with a healthy "
                "spare\n", drill.kill_fallbacks);
    ok = false;
  }
  if (!drill.primary_restored || drill.maintenance.restorations == 0) {
    std::printf("FAIL: canary probes never restored the primary\n");
    ok = false;
  }
  bool failback_placed = false;
  for (const auto& p : drill.failback_schedule) {
    if (p.device == 0) failback_placed = true;
  }
  if (!failback_placed) {
    std::printf("FAIL: the restored primary received no work\n");
    ok = false;
  }

  std::printf("\n[5/5] replay run (same plan, same seed)\n");
  const DrillOutcome replay = run_drill(host, plan, queries);
  for (std::size_t i = 0; i < drill.restored.size(); ++i) {
    if (drill.degraded[i].value != replay.degraded[i].value ||
        drill.degraded[i].device != replay.degraded[i].device ||
        drill.restored[i].value != replay.restored[i].value ||
        drill.restored[i].device != replay.restored[i].device) {
      std::printf("MISMATCH (replay): query %zu outcome differs\n", i);
      ok = false;
    }
  }
  if (drill.health_log.size() != replay.health_log.size()) {
    std::printf("MISMATCH (replay): health log length differs\n");
    ok = false;
  } else {
    for (std::size_t i = 0; i < drill.health_log.size(); ++i) {
      const auto& a = drill.health_log[i];
      const auto& b = replay.health_log[i];
      if (a.device != b.device || a.from != b.from || a.to != b.to ||
          a.at_ms != b.at_ms) {
        std::printf("MISMATCH (replay): health record %zu differs\n", i);
        ok = false;
      }
    }
  }

  std::printf("%s\n", ok ? "failback drill: killed, probed, restored and "
                           "re-scheduled deterministically"
                         : "failback drill: FAILED");
  return ok ? 0 : 1;
}

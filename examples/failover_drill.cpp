// Failover drill: serves a query batch over a gpu::DeviceGroup while a
// fault plan kills the primary device, and proves the failover contract:
// the batch migrates to a healthy spare (never the host), answers stay
// bit-identical to a clean single-device reference, and the whole drill
// replays deterministically.
//
// Three passes over the same workload:
//   1. reference — one clean device; produces the reference answers.
//   2. drill     — a device group with the plan armed on the primary;
//                  the engine ladder exhausts its retries there and
//                  migrates the work to a spare.
//   3. replay    — the same drill again; migrations, answers and the
//                  failover log must reproduce bit-identically.
//
// Exit status is non-zero when an answer diverges, a query falls back to
// the host while a healthy spare exists, a kill plan fails to trigger a
// migration, or the replay diverges.
//
//   ./failover_drill
//   ./failover_drill --devices 3 --plan "ecc-fatal:nth=4+:max=0;seed=7"
//   ./failover_drill --plan none            # unarmed fleet: no migration
//   ./failover_drill --lazy 1               # spare pays upload on failover
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/query_engine.hpp"
#include "gpu/device_group.hpp"
#include "graph/generators.hpp"
#include "simt/fault.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

struct DrillOutcome {
  std::vector<algorithms::QueryResult> results;
  algorithms::BatchStats stats;
  std::vector<gpu::FailoverRecord> log;
};

std::vector<algorithms::Query> make_batch(const graph::Csr& host,
                                          std::uint32_t count) {
  std::vector<algorithms::Query> batch;
  for (std::uint32_t q = 0; q < count; ++q) {
    batch.push_back(algorithms::Query::bfs((q * 977u) % host.num_nodes()));
  }
  return batch;
}

DrillOutcome run_drill(const graph::Csr& host, const std::string& plan,
                       std::size_t devices, std::uint32_t num_queries,
                       bool lazy) {
  gpu::DeviceGroup group(devices);
  if (!plan.empty()) {
    group.arm(0, simt::FaultPlan::parse(plan));
  }
  algorithms::QueryEngine engine(
      group, host, {},
      lazy ? algorithms::ReplicatedGraph::Upload::kLazy
           : algorithms::ReplicatedGraph::Upload::kEager);

  DrillOutcome out;
  out.results = engine.run(make_batch(host, num_queries));
  out.stats = engine.last_batch_stats();
  out.log = group.failover_log();
  return out;
}

void print_outcome(const DrillOutcome& o) {
  std::printf(
      "  migrations=%u migrated-units=%u checkpoint-resumes=%u "
      "retries=%u cpu-fallback=%u failed=%u\n",
      o.stats.migrations, o.stats.migrated_units,
      o.stats.checkpoint_resumes, o.stats.retries,
      o.stats.fallback_queries, o.stats.failed_queries);
  for (const auto& d : o.stats.per_device) {
    std::printf(
        "  dev%-2d units=%-3u launches=%-6llu modeled=%8.3fms "
        "serial=%8.3fms\n",
        d.device, d.units, static_cast<unsigned long long>(d.kernel_launches),
        d.modeled_ms, d.serial_ms);
  }
  for (const auto& r : o.log) {
    std::printf("  failover dev%d -> dev%d: %s\n", r.from, r.to,
                r.reason.c_str());
  }
}

bool answers_match(const std::vector<algorithms::QueryResult>& got,
                   const std::vector<algorithms::QueryResult>& want,
                   const char* label) {
  bool ok = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!got[i].ok()) {
      std::printf("MISMATCH (%s): query %zu failed: %s\n", label, i,
                  got[i].status.to_string().c_str());
      ok = false;
    } else if (got[i].value != want[i].value) {
      std::printf("MISMATCH (%s): query %zu differs\n", label, i);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  std::string plan =
      args.get_string("plan", "ecc-fatal:nth=1+:max=0;seed=7");
  if (plan == "none") plan.clear();
  const auto nodes =
      static_cast<std::uint32_t>(args.get_int("nodes", 4096));
  const auto degree =
      static_cast<std::uint64_t>(args.get_int("degree", 8));
  const auto queries =
      static_cast<std::uint32_t>(args.get_int("queries", 32));
  const auto devices =
      static_cast<std::size_t>(args.get_int("devices", 2));
  const bool lazy = args.get_int("lazy", 0) != 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  for (const auto& stray : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", stray.c_str());
  }

  const graph::Csr host = graph::rmat(nodes, nodes * degree, {},
                                      {.seed = seed});
  std::printf(
      "failover drill: %u nodes, %llu edges, %u queries, %zu devices "
      "(%s spares)\n",
      host.num_nodes(), static_cast<unsigned long long>(host.num_edges()),
      queries, devices, lazy ? "lazy" : "eager");
  std::printf("primary plan: %s\n\n", plan.empty() ? "<none>" : plan.c_str());

  std::printf("[1/3] clean single-device reference\n");
  const DrillOutcome reference = run_drill(host, "", 1, queries, false);

  std::printf("[2/3] drill run\n");
  const DrillOutcome drill = run_drill(host, plan, devices, queries, lazy);
  print_outcome(drill);

  std::printf("[3/3] replay run (same plan, same seed)\n\n");
  const DrillOutcome replay = run_drill(host, plan, devices, queries, lazy);

  bool ok = answers_match(drill.results, reference.results, "drill");

  if (plan.empty()) {
    if (drill.stats.migrations != 0 || !drill.log.empty()) {
      std::printf("FAIL: unarmed fleet migrated\n");
      ok = false;
    }
  } else if (devices > 1) {
    // The contract under a killed primary: migration, not host fallback.
    if (drill.stats.migrations == 0) {
      std::printf("FAIL: kill plan never triggered a migration\n");
      ok = false;
    }
    if (drill.stats.fallback_queries != 0) {
      std::printf(
          "FAIL: %u queries fell back to the host with a healthy spare\n",
          drill.stats.fallback_queries);
      ok = false;
    }
  }

  if (drill.stats.migrations != replay.stats.migrations ||
      drill.log.size() != replay.log.size() ||
      drill.stats.modeled_ms != replay.stats.modeled_ms) {
    std::printf("MISMATCH (replay): drill accounting differs\n");
    ok = false;
  }
  for (std::size_t i = 0; i < drill.results.size(); ++i) {
    if (drill.results[i].value != replay.results[i].value ||
        drill.results[i].device != replay.results[i].device) {
      std::printf("MISMATCH (replay): query %zu outcome differs\n", i);
      ok = false;
    }
  }

  std::printf("%s\n", ok ? "failover drill: batch served with "
                           "bit-identical answers, replay deterministic"
                         : "failover drill: FAILED");
  return ok ? 0 : 1;
}

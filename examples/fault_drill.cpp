// Fault drill: runs GPU algorithms and a query batch under an injected
// fault plan and shows the recovery machinery doing its job.
//
// Three passes over the same workload:
//   1. clean      — no plan armed; produces the reference answers.
//   2. armed      — the plan fires; ResilientLoop checkpoints/retries and
//                   the QueryEngine walks its degradation ladder.
//   3. replay     — the same plan re-armed; every fault and every answer
//                   must reproduce bit-identically (fixed seed).
//
// Exit status is non-zero when a recovered answer differs from the clean
// reference or the replay diverges — i.e. when recovery *didn't* work.
//
//   ./fault_drill --plan "hang:nth=3;ecc-fatal:p=0.01:max=0;seed=7"
//   ./fault_drill --plan "launch:p=0.05:max=0;seed=1" --nodes 8192
//   ./fault_drill --plan "alloc:nth=4" --queries 24
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/bfs_gpu.hpp"
#include "algorithms/gpu_graph.hpp"
#include "algorithms/pagerank_gpu.hpp"
#include "algorithms/query_engine.hpp"
#include "graph/generators.hpp"
#include "simt/fault.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

struct DrillOutcome {
  std::vector<std::uint32_t> bfs_levels;
  std::vector<float> ranks;
  // Empty when the run escaped with a structured error instead of an
  // answer — allowed (e.g. an allocation fault during setup, before any
  // checkpoint exists), as long as the replay reproduces it.
  std::string bfs_error;
  std::string pr_error;
  std::vector<algorithms::QueryResult> queries;
  algorithms::BatchStats batch;
  algorithms::RecoveryStats bfs_recovery;
  algorithms::RecoveryStats pr_recovery;
  std::vector<simt::FaultEvent> history;
};

DrillOutcome run_drill(const graph::Csr& host, const std::string& plan,
                       std::uint32_t num_queries) {
  gpu::Device device;
  algorithms::GpuGraph graph(device, host);
  if (!plan.empty()) {
    device.faults().arm(simt::FaultPlan::parse(plan));
  }

  DrillOutcome out;
  try {
    auto bfs = algorithms::bfs_gpu(graph, 0);
    out.bfs_levels = std::move(bfs.level);
    out.bfs_recovery = bfs.stats.recovery;
  } catch (const gpu::DeviceError& e) {
    out.bfs_error = e.status().to_string();
    std::printf("  bfs_gpu: structured error escaped: %s\n",
                out.bfs_error.c_str());
  }
  try {
    algorithms::PageRankParams params;
    params.iterations = 10;
    auto pr = algorithms::pagerank_gpu(graph, params);
    out.ranks = std::move(pr.rank);
    out.pr_recovery = pr.stats.recovery;
  } catch (const gpu::DeviceError& e) {
    out.pr_error = e.status().to_string();
    std::printf("  pagerank_gpu: structured error escaped: %s\n",
                out.pr_error.c_str());
  }

  std::vector<algorithms::Query> batch;
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    batch.push_back(
        algorithms::Query::bfs((q * 977u) % host.num_nodes()));
  }
  algorithms::QueryEngine engine(graph);
  out.queries = engine.run(batch);
  out.batch = engine.last_batch_stats();
  out.history = device.faults().history();
  return out;
}

void print_recovery(const char* what, const algorithms::RecoveryStats& r) {
  std::printf(
      "  %-10s retries=%u checkpoints=%u restores=%u refreshes=%u "
      "backoff=%.3fms\n",
      what, r.retries, r.checkpoints, r.restores, r.graph_refreshes,
      r.backoff_ms);
}

/// Armed vs clean: every answer the armed run *did* produce must be
/// bit-identical to the reference. A run that escaped with a structured
/// error produced no answer and is judged by the replay check instead.
bool recovered_answers_match(const DrillOutcome& clean,
                             const DrillOutcome& armed) {
  bool ok = true;
  if (armed.bfs_error.empty() && armed.bfs_levels != clean.bfs_levels) {
    std::printf("MISMATCH (armed vs clean): bfs levels differ\n");
    ok = false;
  }
  if (armed.pr_error.empty() && armed.ranks != clean.ranks) {
    std::printf("MISMATCH (armed vs clean): pagerank vector differs\n");
    ok = false;
  }
  for (std::size_t i = 0; i < armed.queries.size(); ++i) {
    if (armed.queries[i].ok() &&
        armed.queries[i].value != clean.queries[i].value) {
      std::printf("MISMATCH (armed vs clean): query %zu differs\n", i);
      ok = false;
    }
  }
  return ok;
}

/// Replay vs armed: outcomes — answers *and* errors — must reproduce
/// bit-identically under the re-armed plan.
bool replay_identical(const DrillOutcome& a, const DrillOutcome& b) {
  bool ok = true;
  if (a.bfs_levels != b.bfs_levels || a.bfs_error != b.bfs_error) {
    std::printf("MISMATCH (replay): bfs outcome differs\n");
    ok = false;
  }
  if (a.ranks != b.ranks || a.pr_error != b.pr_error) {
    std::printf("MISMATCH (replay): pagerank outcome differs\n");
    ok = false;
  }
  if (a.history.size() != b.history.size()) {
    std::printf("MISMATCH (replay): %zu faults fired vs %zu\n",
                b.history.size(), a.history.size());
    ok = false;
  }
  if (a.queries.size() != b.queries.size()) {
    std::printf("MISMATCH (replay): query count differs\n");
    return false;
  }
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].value != b.queries[i].value ||
        a.queries[i].ok() != b.queries[i].ok()) {
      std::printf("MISMATCH (replay): query %zu outcome differs\n", i);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string plan =
      args.get_string("plan", "hang:nth=3;ecc-fatal:nth=5;seed=7");
  const auto nodes =
      static_cast<std::uint32_t>(args.get_int("nodes", 4096));
  const auto degree =
      static_cast<std::uint64_t>(args.get_int("degree", 8));
  const auto queries =
      static_cast<std::uint32_t>(args.get_int("queries", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  for (const auto& stray : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", stray.c_str());
  }

  const graph::Csr host = graph::rmat(nodes, nodes * degree, {},
                                      {.seed = seed});
  std::printf("fault drill: %u nodes, %llu edges, %u queries\n",
              host.num_nodes(),
              static_cast<unsigned long long>(host.num_edges()), queries);
  std::printf("plan: %s\n\n", plan.c_str());

  std::printf("[1/3] clean reference run\n");
  const DrillOutcome clean = run_drill(host, "", queries);

  std::printf("[2/3] armed run\n");
  const DrillOutcome armed = run_drill(host, plan, queries);
  print_recovery("bfs", armed.bfs_recovery);
  print_recovery("pagerank", armed.pr_recovery);
  std::printf(
      "  queries    failed=%u degraded=%u cpu-fallback=%u retries=%u "
      "isolated-groups=%u\n",
      armed.batch.failed_queries, armed.batch.degraded_queries,
      armed.batch.fallback_queries, armed.batch.retries,
      armed.batch.isolated_groups);
  std::printf("  injected faults: %zu\n", armed.history.size());
  for (const simt::FaultEvent& ev : armed.history) {
    std::printf("    %-9s occurrence=%llu label='%s'\n",
                simt::to_string(ev.kind),
                static_cast<unsigned long long>(ev.occurrence),
                ev.label.c_str());
  }

  std::printf("[3/3] replay run (same plan, same seed)\n\n");
  const DrillOutcome replay = run_drill(host, plan, queries);

  const bool ok = recovered_answers_match(clean, armed) &&
                  replay_identical(armed, replay);
  std::printf("%s\n", ok ? "fault drill: every outcome recovered "
                           "bit-identically or failed structurally, "
                           "replay deterministic"
                         : "fault drill: FAILED");
  return ok ? 0 : 1;
}

// Launch-graph verification: record every launch/copy/alloc the query
// engine issues for a concurrent batch, reconstruct happens-before from
// stream FIFO order and event edges, and report cross-stream hazards.
//
// The simulator executes eagerly in host issue order, so a missing
// Stream::wait never corrupts results here — but it WOULD on hardware.
// This example shows both sides: the clean engine-served batch, and (with
// --inject-missing-wait) a seeded bug where the resident graph is
// uploaded on a private stream that the engine's streams never wait on.
// The analyzer flags the latter as cross-stream RAW hazards against the
// fused kernels.
//
//   ./launch_graph_verify [--nodes N] [--avg-degree D] [--seed S]
//                         [--queries Q] [--streams S] [--group K]
//                         [--inject-missing-wait] [--leaks]
//                         [--dot FILE] [--json FILE]
//
// Exit status: 0 when the recorded graph is hazard-free, 2 when the
// analyzer reports errors (the seeded bug), 1 on usage problems.
#include <cstdio>
#include <fstream>
#include <optional>
#include <vector>

#include "algorithms/query_engine.hpp"
#include "gpu/stream.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

bool dump(const std::string& path, const std::string& text,
          const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "launch_graph_verify: cannot write %s\n",
                 path.c_str());
    return false;
  }
  out << text;
  std::printf("%s dump written to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 8192));
  const auto avg_degree =
      static_cast<std::uint64_t>(args.get_int("avg-degree", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto num_queries =
      static_cast<std::uint32_t>(args.get_int("queries", 16));
  const auto streams = static_cast<std::uint32_t>(args.get_int("streams", 4));
  const auto group = static_cast<std::uint32_t>(args.get_int("group", 8));
  const bool inject = args.get_bool("inject-missing-wait", false);
  const bool leaks = args.get_bool("leaks", false);
  const std::string dot_path = args.get_string("dot", "");
  const std::string json_path = args.get_string("json", "");
  for (const auto& flag : args.unqueried()) {
    std::fprintf(stderr, "launch_graph_verify: unknown flag --%s\n",
                 flag.c_str());
    return 1;
  }

  // Arm both checkers: simtsan gives the recorder exact per-launch
  // buffer access sets, and the launch graph adds the cross-stream view
  // simtsan cannot see (it checks within one kernel at a time).
  simt::SimConfig cfg;
  cfg.sanitize = true;
  cfg.record_launch_graph = true;
  gpu::Device dev(cfg);

  graph::Csr host = graph::rmat(nodes, nodes * avg_degree, {}, {.seed = seed});
  std::printf("graph: %s\n", host.describe().c_str());

  // Upload the resident graph. Correct version: default stream, which
  // orders the upload before all later work (legacy-stream semantics).
  // Seeded bug: upload on a private stream and never synchronize it, so
  // nothing orders the engine's kernels after the CSR copies.
  gpu::Stream upload_stream(dev);
  std::optional<algorithms::GpuGraph> graph;
  if (inject) {
    std::printf("injecting: resident graph uploaded on stream %u with no "
                "synchronize/wait\n",
                upload_stream.id());
    gpu::StreamScope scope(dev, upload_stream);
    graph.emplace(dev, host);
  } else {
    graph.emplace(dev, host);
  }

  algorithms::QueryEngine engine(*graph, {.num_streams = streams,
                                          .bfs_group_size = group,
                                          .verify = true});
  std::vector<algorithms::Query> queries;
  for (std::uint32_t i = 0; i < num_queries; ++i) {
    queries.push_back(algorithms::Query::bfs(
        static_cast<graph::NodeId>((i * 2654435761u) % host.num_nodes())));
  }
  const auto results = engine.run(queries);
  std::size_t answered = 0;
  for (const auto& r : results) answered += r.ok() ? 1 : 0;
  const auto& s = engine.last_batch_stats();
  std::printf("served %zu/%zu queries, %u fused groups over %u streams, "
              "%.3f modeled ms\n\n",
              answered, results.size(), s.fused_groups, s.streams_used,
              s.modeled_ms);

  // The engine already analyzed the batch (verify=true); re-run with the
  // example's own options so --leaks can widen the report.
  analysis::AnalyzerOptions opts;
  opts.report_leaks = leaks;
  const analysis::HazardReport report = dev.verify_launch_graph(opts);
  std::printf("%s\n", report.text().c_str());

  if (!dot_path.empty() &&
      !dump(dot_path, dev.launch_graph()->to_dot(), "DOT")) {
    return 1;
  }
  if (!json_path.empty() &&
      !dump(json_path, dev.launch_graph()->to_json(), "JSON")) {
    return 1;
  }

  if (report.errors() > 0) {
    std::printf("\nverdict: HAZARDOUS — on real hardware this ordering "
                "can corrupt results\n");
    return 2;
  }
  std::printf("\nverdict: launch graph is hazard-free\n");
  return 0;
}

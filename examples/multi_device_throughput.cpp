// Multi-device throughput: scales one query batch over a growing
// gpu::DeviceGroup and reports the group-makespan speedup the balanced
// scheduler buys.
//
// The batch is split into independent work units (fused MS-BFS groups
// plus SSSP singles); ResiliencePolicy::Scheduling::kBalanced costs each
// unit from the host CSR's degree histogram and LPT-places them across
// every healthy member, so the group finishes in roughly 1/N of the
// serial makespan while answers stay bit-identical to the one-device
// plan (BFS levels and SSSP distances do not care where they ran).
//
// Self-asserting: exits non-zero when a result diverges from the serial
// reference, when any scheduled member received no work, or when the
// group speedup falls below the floor (default 1.5x at 2 devices,
// scaled as devices/2 * 1.5 beyond — override with --min-speedup).
//
//   ./multi_device_throughput
//   ./multi_device_throughput --devices 4 --queries 64 --group-size 4
//   ./multi_device_throughput --sssp 8      # mixed BFS + SSSP batch
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/query_engine.hpp"
#include "gpu/device_group.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

std::vector<algorithms::Query> make_batch(const graph::Csr& host,
                                          std::uint32_t bfs_n,
                                          std::uint32_t sssp_n) {
  std::vector<algorithms::Query> batch;
  for (std::uint32_t q = 0; q < bfs_n; ++q) {
    batch.push_back(algorithms::Query::bfs((q * 977u) % host.num_nodes()));
  }
  for (std::uint32_t q = 0; q < sssp_n; ++q) {
    batch.push_back(
        algorithms::Query::sssp((q * 131u + 5) % host.num_nodes()));
  }
  return batch;
}

struct Point {
  std::vector<algorithms::QueryResult> results;
  algorithms::BatchStats stats;
  std::size_t members_used = 0;
};

Point run_point(const graph::Csr& host, std::size_t devices,
                const std::vector<algorithms::Query>& batch,
                std::uint32_t group_size) {
  gpu::DeviceGroup group(devices);
  algorithms::QueryEngineOptions opts;
  opts.bfs_group_size = group_size;
  algorithms::QueryEngine engine(group, host, opts);
  Point p;
  p.results = engine.run(batch);
  p.stats = engine.last_batch_stats();
  for (const auto& d : p.stats.per_device) {
    if (d.units > 0) ++p.members_used;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::uint32_t>(args.get_int("nodes", 4096));
  const auto degree =
      static_cast<std::uint64_t>(args.get_int("degree", 8));
  const auto bfs_n =
      static_cast<std::uint32_t>(args.get_int("queries", 32));
  const auto sssp_n = static_cast<std::uint32_t>(args.get_int("sssp", 0));
  const auto devices =
      static_cast<std::size_t>(args.get_int("devices", 4));
  const auto group_size =
      static_cast<std::uint32_t>(args.get_int("group-size", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double min_x2 = args.get_double("min-speedup", 1.5);
  for (const auto& stray : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", stray.c_str());
  }

  graph::Csr host = graph::rmat(nodes, nodes * degree, {}, {.seed = seed});
  if (sssp_n > 0) graph::assign_hash_weights(host, 20);
  const auto batch = make_batch(host, bfs_n, sssp_n);

  std::printf(
      "multi-device throughput: %u nodes, %llu edges, %u bfs + %u sssp "
      "queries, fused groups of %u\n\n",
      host.num_nodes(), static_cast<unsigned long long>(host.num_edges()),
      bfs_n, sssp_n, group_size);

  const Point serial = run_point(host, 1, batch, group_size);
  std::printf("%8s  %18s  %8s  %12s\n", "devices", "group makespan ms",
              "speedup", "members used");

  bool ok = true;
  for (std::size_t n = 1; n <= devices; n *= 2) {
    const Point p = n == 1 ? serial : run_point(host, n, batch, group_size);
    const double speedup =
        p.stats.group_makespan_ms > 0
            ? serial.stats.group_makespan_ms / p.stats.group_makespan_ms
            : 0.0;
    std::printf("%8zu  %18.3f  %7.2fx  %9zu/%zu\n", n,
                p.stats.group_makespan_ms, speedup, p.members_used, n);

    for (std::size_t i = 0; i < p.results.size(); ++i) {
      if (!p.results[i].ok()) {
        std::printf("FAIL: query %zu failed on %zu devices: %s\n", i, n,
                    p.results[i].status.to_string().c_str());
        ok = false;
      } else if (p.results[i].value != serial.results[i].value) {
        std::printf("FAIL: query %zu diverges on %zu devices\n", i, n);
        ok = false;
      }
    }
    // Every member must pull its weight while units outnumber devices.
    const std::size_t units = p.stats.fused_groups + sssp_n;
    if (p.members_used < n && units >= n) {
      std::printf("FAIL: only %zu of %zu members received work\n",
                  p.members_used, n);
      ok = false;
    }
    const double floor = min_x2 * (static_cast<double>(n) / 2.0);
    if (n > 1 && speedup < floor) {
      std::printf("FAIL: %zu-device speedup %.2fx below %.2fx floor\n", n,
                  speedup, floor);
      ok = false;
    }
  }

  std::printf("\n%s\n", ok ? "PASS: balanced scheduling scales the batch"
                           : "FAIL: see mismatches above");
  return ok ? 0 : 1;
}

// Structural profile of a network on the simulated GPU.
//
// Uses the extension kernels: k-core decomposition (engagement shells),
// triangle counting (clustering), Jones-Plassmann coloring (conflict-free
// scheduling classes), and sampled betweenness centrality (brokerage) —
// each in its warp-centric form, with the thread-mapped time shown for
// contrast. A compact demonstration that the virtual-warp method is a
// reusable building block, not a BFS trick.
//
//   ./network_structure_report [--scale S] [--seed X] [--width W]
#include <algorithm>
#include <cstdio>

#include "algorithms/bc_gpu.hpp"
#include "algorithms/coloring_gpu.hpp"
#include "algorithms/kcore_gpu.hpp"
#include "algorithms/tc_gpu.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace maxwarp;

namespace {

algorithms::KernelOptions options(bool warp_centric, int width) {
  algorithms::KernelOptions opts;
  opts.mapping = warp_centric ? algorithms::Mapping::kWarpCentric
                              : algorithms::Mapping::kThreadMapped;
  opts.virtual_warp_width = width;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.5);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int width = static_cast<int>(args.get_int("width", 16));

  // Work on the undirected closure of a social-graph stand-in.
  graph::Csr directed = graph::make_dataset("RMAT", scale, seed);
  graph::BuildOptions sym;
  sym.symmetrize = true;
  const graph::Csr g = graph::build_csr(
      directed.num_nodes(), graph::to_edge_list(directed), sym);
  std::printf("network: %s\n\n", g.describe().c_str());

  util::Table report({"analysis", "warp-centric ms", "thread-mapped ms",
                      "speedup", "finding"});

  // --- cohesion: how deep do the k-cores go? -----------------------------
  {
    std::uint32_t deepest = 0;
    double warp_ms = 0, base_ms = 0;
    char finding[96];
    for (std::uint32_t k = 2;; k *= 2) {
      gpu::Device dev;
      const auto r = algorithms::k_core_gpu(algorithms::GpuGraph(dev, g), k, options(true, width));
      warp_ms += r.stats.kernel_ms(dev.config());
      gpu::Device dev2;
      base_ms += algorithms::k_core_gpu(algorithms::GpuGraph(dev2, g), k, options(false, width))
                     .stats.kernel_ms(dev2.config());
      if (r.survivors == 0) break;
      deepest = k;
      if (k > g.num_nodes()) break;
    }
    std::snprintf(finding, sizeof(finding), "deepest non-empty core: k=%u",
                  deepest);
    report.row().cell("k-core shells").cell(warp_ms, 3).cell(base_ms, 3)
        .cell(base_ms / warp_ms, 2).cell(finding);
  }

  // --- clustering: triangles ----------------------------------------------
  {
    gpu::Device dev;
    const auto r = algorithms::triangle_count_gpu(algorithms::GpuGraph(dev, g), options(true, width));
    const double warp_ms = r.stats.kernel_ms(dev.config());
    gpu::Device dev2;
    const double base_ms =
        algorithms::triangle_count_gpu(algorithms::GpuGraph(dev2, g), options(false, width))
            .stats.kernel_ms(dev2.config());
    char finding[96];
    std::snprintf(finding, sizeof(finding), "%llu triangles",
                  static_cast<unsigned long long>(r.triangles));
    report.row().cell("triangle count").cell(warp_ms, 3).cell(base_ms, 3)
        .cell(base_ms / warp_ms, 2).cell(finding);
  }

  // --- scheduling classes: graph coloring ---------------------------------
  {
    gpu::Device dev;
    const auto r =
        algorithms::color_graph_gpu(algorithms::GpuGraph(dev, g), options(true, width));
    const double warp_ms = r.stats.kernel_ms(dev.config());
    gpu::Device dev2;
    const double base_ms =
        algorithms::color_graph_gpu(algorithms::GpuGraph(dev2, g), options(false, width))
            .stats.kernel_ms(dev2.config());
    char finding[96];
    std::snprintf(finding, sizeof(finding),
                  "%u colors (max degree %u)", r.colors_used,
                  g.max_degree());
    report.row().cell("JP coloring").cell(warp_ms, 3).cell(base_ms, 3)
        .cell(base_ms / warp_ms, 2).cell(finding);
  }

  // --- brokerage: sampled betweenness -------------------------------------
  {
    std::vector<graph::NodeId> sources;
    for (graph::NodeId s = 0; s < 8 && s < g.num_nodes(); ++s) {
      sources.push_back(s * (g.num_nodes() / 8));
    }
    gpu::Device dev;
    const auto r = algorithms::betweenness_gpu(algorithms::GpuGraph(dev, g), sources, options(true, width));
    const double warp_ms = r.stats.kernel_ms(dev.config());
    gpu::Device dev2;
    const double base_ms =
        algorithms::betweenness_gpu(algorithms::GpuGraph(dev2, g), sources, options(false, width))
            .stats.kernel_ms(dev2.config());
    const auto broker = static_cast<std::size_t>(
        std::max_element(r.centrality.begin(), r.centrality.end()) -
        r.centrality.begin());
    char finding[96];
    std::snprintf(finding, sizeof(finding),
                  "top broker: node %zu (deg %u)", broker,
                  g.degree(static_cast<graph::NodeId>(broker)));
    report.row().cell("betweenness (8 src)").cell(warp_ms, 3)
        .cell(base_ms, 3).cell(base_ms / warp_ms, 2).cell(finding);
  }

  report.print();
  std::printf(
      "\nAll four analyses run the same virtual-warp machinery (W=%d) over "
      "different inner loops;\nthe speedup column shows what it buys on "
      "each.\n",
      width);
  return 0;
}

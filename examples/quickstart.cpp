// Quickstart: generate a scale-free graph, run BFS on the simulated GPU
// with the thread-mapped baseline and with the virtual warp-centric
// kernel, and print what changed. Mirrors the README's first code block.
//
//   ./quickstart [--nodes N] [--avg-degree D] [--seed S] [--width W]
#include <cstdio>

#include "algorithms/bfs_gpu.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::uint32_t>(args.get_int("nodes", 65536));
  const auto avg_degree =
      static_cast<std::uint64_t>(args.get_int("avg-degree", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int width = static_cast<int>(args.get_int("width", 32));

  // 1. A graph. RMAT gives the heavy-tailed degree distribution that
  //    real-world graphs have — and that breaks naive GPU kernels.
  const graph::Csr g =
      graph::rmat(nodes, nodes * avg_degree, {}, {.seed = seed});
  std::printf("graph: %s\n\n", g.describe().c_str());

  // 2. A simulated GPU device. SimConfig controls the machine shape; the
  //    defaults model a mid-size part (16 SMs, 32-wide warps).
  const graph::NodeId source = 0;

  // 3. Baseline: one thread per vertex (how most early CUDA graph code
  //    was written).
  gpu::Device dev_base;
  algorithms::KernelOptions baseline;
  baseline.mapping = algorithms::Mapping::kThreadMapped;
  const auto base = algorithms::bfs_gpu(algorithms::GpuGraph(dev_base, g), source, baseline);
  std::printf("thread-mapped baseline:\n%s\n",
              base.stats.kernels.summary(dev_base.config()).c_str());

  // 4. The paper's method: virtual warps of W lanes cooperate per vertex.
  gpu::Device dev_warp;
  algorithms::KernelOptions warp;
  warp.mapping = algorithms::Mapping::kWarpCentric;
  warp.virtual_warp_width = width;
  const auto fast = algorithms::bfs_gpu(algorithms::GpuGraph(dev_warp, g), source, warp);
  std::printf("virtual warp-centric (W=%d):\n%s\n", width,
              fast.stats.kernels.summary(dev_warp.config()).c_str());

  const double speedup =
      static_cast<double>(base.stats.kernels.elapsed_cycles) /
      static_cast<double>(fast.stats.kernels.elapsed_cycles);
  std::printf("reached %llu nodes in %u levels; speedup %.2fx\n",
              static_cast<unsigned long long>(fast.reached_nodes),
              fast.depth, speedup);

  // Same answer either way — the mapping only changes *how* lanes are used.
  if (base.level != fast.level) {
    std::fprintf(stderr, "BUG: kernels disagree\n");
    return 1;
  }
  return 0;
}

// Route planning on a road-network-like graph.
//
// Road networks are the *counter-case* for GPU level-synchronous graph
// algorithms: bounded degree (no imbalance to fix) and huge diameter
// (thousands of near-empty kernel launches). This example runs weighted
// shortest paths on a grid, validates against Dijkstra on the CPU, and
// shows (a) thread-mapping holding its own, and (b) the per-level launch
// overhead dominating — both the behaviours the paper observes for such
// graphs.
//
//   ./road_network_sssp [--side N] [--max-weight W] [--width K]
#include <cstdio>

#include "algorithms/cpu_reference.hpp"
#include "algorithms/sssp_gpu.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace maxwarp;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const auto side = static_cast<std::uint32_t>(args.get_int("side", 128));
  const auto max_weight =
      static_cast<std::uint32_t>(args.get_int("max-weight", 100));
  const int width = static_cast<int>(args.get_int("width", 4));

  graph::Csr roads = graph::grid2d(side, side);
  graph::assign_hash_weights(roads, max_weight);
  std::printf("road network: %s\n", roads.describe().c_str());

  const graph::NodeId depot = 0;                        // top-left corner
  const graph::NodeId customer = roads.num_nodes() - 1;  // bottom-right

  // Ground truth on the CPU.
  const auto dijkstra = algorithms::sssp_cpu(roads, depot);

  util::Table table({"engine", "modeled/measured ms", "rounds",
                     "launch overhead %", "dist(depot->customer)"});

  for (bool warp_centric : {false, true}) {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = warp_centric ? algorithms::Mapping::kWarpCentric
                                : algorithms::Mapping::kThreadMapped;
    opts.virtual_warp_width = width;
    const auto r = algorithms::sssp_gpu(algorithms::GpuGraph(dev, roads), depot, opts);

    // How much of the modeled time is fixed per-launch overhead? On
    // high-diameter graphs this is the dominant term (the paper's reason
    // to prefer CPUs or hybrid schemes there).
    const auto& cfg = dev.config();
    const double overhead_ms = cfg.cycles_to_ms(
        r.stats.kernels.launches * cfg.kernel_launch_overhead_cycles);
    const double total_ms = r.stats.kernel_ms(cfg);
    char engine[64];
    std::snprintf(engine, sizeof(engine), "gpu %s W=%d",
                  warp_centric ? "warp-centric" : "thread-mapped",
                  warp_centric ? width : 1);
    table.row()
        .cell(engine)
        .cell(total_ms, 3)
        .cell(static_cast<std::uint64_t>(r.stats.iterations))
        .cell(overhead_ms / total_ms * 100.0, 1)
        .cell(static_cast<std::uint64_t>(r.dist[customer]));

    // Every GPU variant must agree with Dijkstra exactly.
    for (std::uint32_t v = 0; v < roads.num_nodes(); ++v) {
      const std::uint64_t want = dijkstra[v];
      const std::uint64_t got = r.dist[v] == algorithms::kInfDist
                                    ? algorithms::kUnreachedDist
                                    : r.dist[v];
      if (want != got) {
        std::fprintf(stderr, "BUG: node %u disagrees with Dijkstra\n", v);
        return 1;
      }
    }
  }

  {
    util::Timer timer;
    const auto d = algorithms::sssp_cpu(roads, depot);
    table.row()
        .cell("cpu dijkstra (measured)")
        .cell(timer.millis(), 3)
        .cell(std::uint64_t{1})
        .cell(0.0, 1)
        .cell(static_cast<std::uint64_t>(d[customer]));
  }

  table.print();
  std::printf(
      "\nAll engines agree on every distance. Note the launch-overhead "
      "share: Bellman-Ford needs\n~%u rounds on this %ux%u grid, so the "
      "GPU spends much of its modeled time dispatching\nnearly-empty "
      "kernels — the regime where the paper recommends small W or a CPU.\n",
      side * 2, side, side);
  return 0;
}

// Social-network analysis pipeline on the simulated GPU.
//
// The scenario from the paper's motivation: a heavy-tailed social graph
// (LiveJournal-like), on which an analyst wants reachability (BFS from a
// seed user), community structure (connected components), and influence
// (PageRank). Every kernel runs in both mappings so the report shows what
// the virtual-warp method buys on each stage.
//
//   ./social_network_analysis [--scale S] [--seed X] [--width W]
#include <cstdio>

#include "algorithms/bfs_gpu.hpp"
#include "algorithms/cc_gpu.hpp"
#include "algorithms/pagerank_gpu.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace maxwarp;

namespace {

graph::NodeId most_followed(const graph::Csr& g) {
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int width = static_cast<int>(args.get_int("width", 16));

  const graph::Csr social =
      graph::make_dataset("LiveJournal*", scale, seed);
  const auto stats = graph::degree_stats(social);
  std::printf("social graph: %s\n", social.describe().c_str());
  std::printf("degree skew: gini=%.3f, top-1%% of users hold %.1f%% of "
              "edges\n\n",
              stats.gini, stats.top1pct_edge_share * 100.0);

  util::Table report({"stage", "mapping", "modeled ms", "SIMD util %",
                      "result"});

  // --- Stage 1: reachability from the most-followed user ----------------
  const graph::NodeId seed_user = most_followed(social);
  for (bool warp_centric : {false, true}) {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = warp_centric ? algorithms::Mapping::kWarpCentric
                                : algorithms::Mapping::kThreadMapped;
    opts.virtual_warp_width = width;
    const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, social), seed_user, opts);
    char result[64];
    std::snprintf(result, sizeof(result), "%llu users within %u hops",
                  static_cast<unsigned long long>(r.reached_nodes),
                  r.depth);
    report.row()
        .cell("reachability (BFS)")
        .cell(algorithms::to_string(opts.mapping))
        .cell(r.stats.kernel_ms(dev.config()), 3)
        .cell(r.stats.kernels.counters.simd_utilization() * 100.0, 1)
        .cell(result);
  }

  // --- Stage 2: communities (components of the mutual-follow graph) -----
  graph::BuildOptions sym;
  sym.symmetrize = true;
  const graph::Csr mutual = graph::build_csr(
      social.num_nodes(), graph::to_edge_list(social), sym);
  for (bool warp_centric : {false, true}) {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = warp_centric ? algorithms::Mapping::kWarpCentric
                                : algorithms::Mapping::kThreadMapped;
    opts.virtual_warp_width = width;
    const auto r = algorithms::connected_components_gpu(algorithms::GpuGraph(dev, mutual), opts);
    std::uint32_t components = 0;
    for (std::uint32_t v = 0; v < mutual.num_nodes(); ++v) {
      if (r.label[v] == v) ++components;
    }
    char result[64];
    std::snprintf(result, sizeof(result), "%u communities", components);
    report.row()
        .cell("communities (CC)")
        .cell(algorithms::to_string(opts.mapping))
        .cell(r.stats.kernel_ms(dev.config()), 3)
        .cell(r.stats.kernels.counters.simd_utilization() * 100.0, 1)
        .cell(result);
  }

  // --- Stage 3: influence (PageRank) -------------------------------------
  for (bool warp_centric : {false, true}) {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = warp_centric ? algorithms::Mapping::kWarpCentric
                                : algorithms::Mapping::kThreadMapped;
    opts.virtual_warp_width = width;
    algorithms::PageRankParams params;
    params.iterations = 20;
    const auto r = algorithms::pagerank_gpu(algorithms::GpuGraph(dev, social), params, opts);
    graph::NodeId top = 0;
    for (std::uint32_t v = 1; v < social.num_nodes(); ++v) {
      if (r.rank[v] > r.rank[top]) top = v;
    }
    char result[64];
    std::snprintf(result, sizeof(result), "top user #%u (rank %.2e)", top,
                  static_cast<double>(r.rank[top]));
    report.row()
        .cell("influence (PageRank)")
        .cell(algorithms::to_string(opts.mapping))
        .cell(r.stats.kernel_ms(dev.config()), 3)
        .cell(r.stats.kernels.counters.simd_utilization() * 100.0, 1)
        .cell(result);
  }

  report.print();
  std::printf(
      "\nEvery stage computes identical results under both mappings; the "
      "virtual-warp rows should\nshow lower modeled time and higher lane "
      "utilization on this heavy-tailed graph (W=%d).\n",
      width);
  return 0;
}

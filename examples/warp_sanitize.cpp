// simtsan driver: runs any registered GPU algorithm under the warp-level
// sanitizer and prints the accumulated SanitizerReport.
//
// The sanitizer checks every device access a kernel issues (the simulator
// is deterministic, so checking is exact): out-of-bounds / use-after-free,
// uninitialized reads, intra-warp same-instruction write conflicts,
// cross-warp races within a launch, and coalescing / bank-conflict perf
// lint. Exit status is non-zero when error-severity findings remain.
//
//   ./warp_sanitize --algo bfs --dataset RMAT --scale 0.25
//   ./warp_sanitize --algo all --rmat-nodes 4096 --rmat-degree 8
//   ./warp_sanitize --algo sssp --edges my_graph.txt --strict
//
// --strict escalates warnings (cross-warp read/write hazards the
// level-synchronous kernels rely on by design) into failures too.
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "algorithms/bc_gpu.hpp"
#include "algorithms/bfs_gpu.hpp"
#include "algorithms/cc_gpu.hpp"
#include "algorithms/coloring_gpu.hpp"
#include "algorithms/kcore_gpu.hpp"
#include "algorithms/pagerank_gpu.hpp"
#include "algorithms/spmv_gpu.hpp"
#include "algorithms/sssp_gpu.hpp"
#include "algorithms/tc_gpu.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"

using namespace maxwarp;

namespace {

graph::Csr load_graph(const util::CliArgs& args) {
  if (args.has("edges")) {
    return graph::read_edge_list_file(args.get_string("edges", ""));
  }
  if (args.has("rmat-nodes")) {
    const auto n =
        static_cast<std::uint32_t>(args.get_int("rmat-nodes", 65536));
    const auto d =
        static_cast<std::uint64_t>(args.get_int("rmat-degree", 8));
    return graph::rmat(n, n * d, {},
                       {.seed = static_cast<std::uint64_t>(
                            args.get_int("seed", 42))});
  }
  return graph::make_dataset(args.get_string("dataset", "RMAT"),
                             args.get_double("scale", 0.25),
                             static_cast<std::uint64_t>(
                                 args.get_int("seed", 42)));
}

struct AlgoEntry {
  const char* name;
  std::function<void(gpu::Device&, const graph::Csr&,
                     const algorithms::KernelOptions&)> run;
};

graph::Csr with_weights(const graph::Csr& g) {
  graph::Csr weighted = g;
  if (!weighted.weighted()) graph::assign_hash_weights(weighted, 20);
  return weighted;
}

const std::vector<AlgoEntry>& registry() {
  static const std::vector<AlgoEntry> algos = {
      {"bfs",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::bfs_gpu(algorithms::GpuGraph(d, g), 0, o);
       }},
      {"bfs-queue",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         auto opts = o;
         opts.frontier = algorithms::Frontier::kQueue;
         (void)algorithms::bfs_gpu(algorithms::GpuGraph(d, g), 0, opts);
       }},
      {"bfs-adaptive",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions&) {
         (void)algorithms::bfs_gpu_adaptive(algorithms::GpuGraph(d, g), 0);
       }},
      {"bfs-dopt",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions&) {
         (void)algorithms::bfs_gpu_direction_optimized(algorithms::GpuGraph(d, g), 0);
       }},
      {"sssp",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::sssp_gpu(algorithms::GpuGraph(d, with_weights(g)), 0, o);
       }},
      {"cc",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::connected_components_gpu(algorithms::GpuGraph(d, g), o);
       }},
      {"pagerank",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::pagerank_gpu(algorithms::GpuGraph(d, g), {}, o);
       }},
      {"bc",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         std::vector<graph::NodeId> sources(
             std::min<std::uint32_t>(4, g.num_nodes()));
         std::iota(sources.begin(), sources.end(), 0u);
         (void)algorithms::betweenness_gpu(algorithms::GpuGraph(d, g), sources, o);
       }},
      {"tc",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::triangle_count_gpu(algorithms::GpuGraph(d, g), o);
       }},
      {"kcore",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::k_core_gpu(algorithms::GpuGraph(d, g), 3, o);
       }},
      {"coloring",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         (void)algorithms::color_graph_gpu(algorithms::GpuGraph(d, g), o);
       }},
      {"spmv",
       [](gpu::Device& d, const graph::Csr& g,
          const algorithms::KernelOptions& o) {
         const graph::Csr weighted = with_weights(g);
         const std::vector<float> x(weighted.num_nodes(), 1.0f);
         (void)algorithms::spmv_gpu(algorithms::GpuGraph(d, weighted), x, o);
       }},
  };
  return algos;
}

/// Runs one algorithm under a fresh sanitized device; returns whether it
/// came out acceptable (no errors; in strict mode, no warnings either).
bool sanitize_one(const AlgoEntry& algo, const graph::Csr& g,
                  const algorithms::KernelOptions& opts, bool strict) {
  simt::SimConfig cfg;
  cfg.sanitize = true;
  gpu::Device device(cfg);
  std::printf("== %s ==\n", algo.name);
  bool faulted = false;
  try {
    algo.run(device, g, opts);
  } catch (const simt::SanitizerFault& f) {
    std::printf("FAULT: %s\n", f.what());
    faulted = true;
  }
  const simt::SanitizerReport& report = device.sanitizer()->report();
  std::printf("%s\n", report.text().c_str());
  const bool ok =
      !faulted && report.clean() && (!strict || report.warnings() == 0);
  std::printf("%s: %s\n\n", algo.name, ok ? "OK" : "FINDINGS");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string which = args.get_string("algo", "all");
  const bool strict = args.get_bool("strict", false);

  algorithms::KernelOptions opts;
  opts.virtual_warp_width =
      static_cast<int>(args.get_int("width", opts.virtual_warp_width));
  const std::string mapping = args.get_string("mapping", "warp");
  if (mapping == "thread") {
    opts.mapping = algorithms::Mapping::kThreadMapped;
  } else if (mapping == "dynamic") {
    opts.mapping = algorithms::Mapping::kWarpCentricDynamic;
  } else if (mapping == "defer") {
    opts.mapping = algorithms::Mapping::kWarpCentricDefer;
  } else if (mapping == "adaptive") {
    opts.mapping = algorithms::Mapping::kAdaptive;
  }

  const graph::Csr g = load_graph(args);
  for (const auto& stray : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", stray.c_str());
  }
  std::printf("simtsan sweep: %u nodes, %llu edges\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  int failures = 0;
  bool matched = false;
  for (const AlgoEntry& algo : registry()) {
    if (which != "all" && which != algo.name) continue;
    matched = true;
    if (!sanitize_one(algo, g, opts, strict)) ++failures;
  }
  if (!matched) {
    std::fprintf(stderr, "unknown --algo '%s'; known:", which.c_str());
    for (const AlgoEntry& algo : registry()) {
      std::fprintf(stderr, " %s", algo.name);
    }
    std::fprintf(stderr, " all\n");
    return 2;
  }
  if (failures > 0) {
    std::printf("simtsan: %d algorithm(s) with findings\n", failures);
    return 1;
  }
  std::printf("simtsan: all checked algorithms clean\n");
  return 0;
}

// Interactive tuning assistant for the virtual-warp width.
//
// Given a graph (a named dataset, a generator spec, or an edge-list file),
// sweeps W and the extra techniques and prints a tuning report with a
// recommendation — the workflow a performance engineer would follow with
// the real library before shipping a kernel configuration.
//
//   ./warp_tuning --dataset RMAT
//   ./warp_tuning --edges my_graph.txt
//   ./warp_tuning --rmat-nodes 100000 --rmat-degree 12
#include <cstdio>
#include <string>

#include "algorithms/bfs_gpu.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace maxwarp;

namespace {

graph::Csr load_graph(const util::CliArgs& args) {
  if (args.has("edges")) {
    return graph::read_edge_list_file(args.get_string("edges", ""));
  }
  if (args.has("rmat-nodes")) {
    const auto n =
        static_cast<std::uint32_t>(args.get_int("rmat-nodes", 65536));
    const auto d =
        static_cast<std::uint64_t>(args.get_int("rmat-degree", 8));
    return graph::rmat(n, n * d, {},
                       {.seed = static_cast<std::uint64_t>(
                            args.get_int("seed", 42))});
  }
  return graph::make_dataset(args.get_string("dataset", "RMAT"),
                             args.get_double("scale", 1.0),
                             static_cast<std::uint64_t>(
                                 args.get_int("seed", 42)));
}

graph::NodeId pick_source(const graph::Csr& g) {
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const graph::Csr g = load_graph(args);
  for (const auto& stray : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", stray.c_str());
  }

  const auto stats = graph::degree_stats(g);
  std::printf("graph: %s\n", g.describe().c_str());
  std::printf("degree: mean=%.1f sigma=%.1f max=%u gini=%.3f\n\n",
              stats.mean, stats.stddev, stats.max, stats.gini);

  const graph::NodeId source = pick_source(g);

  // Baseline first.
  const auto base = [&] {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = algorithms::Mapping::kThreadMapped;
    const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, g), source, opts);
    return r.stats.kernel_ms(dev.config());
  }();

  util::Table table({"configuration", "modeled ms", "speedup",
                     "SIMD util %"});
  table.row().cell("thread-mapped baseline").cell(base, 3).cell(1.0, 2)
      .cell(0.0, 1);

  double best_ms = base;
  std::string best_name = "thread-mapped baseline";
  for (int w : {2, 4, 8, 16, 32}) {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = algorithms::Mapping::kWarpCentric;
    opts.virtual_warp_width = w;
    const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, g), source, opts);
    const double ms = r.stats.kernel_ms(dev.config());
    const std::string name = "warp-centric W=" + std::to_string(w);
    table.row()
        .cell(name)
        .cell(ms, 3)
        .cell(base / ms, 2)
        .cell(r.stats.kernels.counters.simd_utilization() * 100.0, 1);
    if (ms < best_ms) {
      best_ms = ms;
      best_name = name;
    }
  }

  // The two generic techniques on top of the best pure width.
  for (auto mapping : {algorithms::Mapping::kWarpCentricDynamic,
                       algorithms::Mapping::kWarpCentricDefer}) {
    gpu::Device dev;
    algorithms::KernelOptions opts;
    opts.mapping = mapping;
    opts.virtual_warp_width = 16;
    opts.defer_threshold =
        std::max<std::uint32_t>(64, stats.max / 16);
    const auto r = algorithms::bfs_gpu(algorithms::GpuGraph(dev, g), source, opts);
    const double ms = r.stats.kernel_ms(dev.config());
    const std::string name = algorithms::to_string(mapping) + " W=16";
    table.row()
        .cell(name)
        .cell(ms, 3)
        .cell(base / ms, 2)
        .cell(r.stats.kernels.counters.simd_utilization() * 100.0, 1);
    if (ms < best_ms) {
      best_ms = ms;
      best_name = name;
    }
  }

  table.print();
  std::printf("\nrecommendation: %s (%.2fx over the baseline)\n",
              best_name.c_str(), base / best_ms);
  if (stats.gini < 0.2) {
    std::printf(
        "note: this graph's degrees are nearly uniform — small W (or the "
        "plain baseline) is\nexpected to win; large W only wastes lanes "
        "here.\n");
  } else if (stats.max > 64 * stats.mean) {
    std::printf(
        "note: extreme hubs present (max degree %ux the mean) — consider "
        "the defer queue if the\nhub sits alone on a BFS level.\n",
        static_cast<unsigned>(stats.max / stats.mean));
  }
  return 0;
}

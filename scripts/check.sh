#!/usr/bin/env bash
# Tier-1 gate: build + test the normal configuration, smoke the benchmark
# harness (Release only — debug timings are refused), then rebuild + test
# under the host-side sanitizers: ASan/UBSan over the whole tree, and TSan
# over the parallel execution engine (both complementary to the simulator's
# own simtsan layer, which checks *simulated* accesses).
#
#   scripts/check.sh            # all configurations
#   scripts/check.sh --fast     # normal configuration only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== normal configuration (Release) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build -j "$jobs" --output-on-failure

echo "== clang-tidy (bugprone / performance / naming, warnings-as-errors) =="
# .clang-tidy at the repo root sets the check list and WarningsAsErrors;
# the stage is advisory-skipped where LLVM tooling is not installed.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p build "$(pwd)/(src|bench|examples|tests)/.*"
elif command -v clang-tidy >/dev/null 2>&1; then
  git ls-files 'src/**/*.cpp' | xargs -P "$jobs" -n 4 \
    clang-tidy -quiet -p build
else
  echo "check.sh: clang-tidy not found, skipping tidy stage" >&2
fi

# Refuse benchmark artifacts from a debug build: the binaries embed their
# build flavour in the JSON ("maxwarp_build_type"), check it after each run.
require_release_bench() {
  local json="$1"
  if ! grep -q '"maxwarp_build_type": "release"' "$json"; then
    echo "check.sh: $json was produced by a non-Release build" >&2
    exit 1
  fi
}

echo "== bench smoke (query engine) =="
./build/bench/bench_e1_query_engine \
  --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_query_engine.json \
  --benchmark_out_format=json
require_release_bench BENCH_query_engine.json

echo "== bench smoke (execution engine) =="
MAXWARP_SCALE="${MAXWARP_SCALE:-0.25}" ./build/bench/bench_e2_sim_engine \
  --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_sim_engine.json \
  --benchmark_out_format=json
require_release_bench BENCH_sim_engine.json

echo "== bench smoke (adaptive frontier) =="
MAXWARP_SCALE="${MAXWARP_SCALE:-0.25}" ./build/bench/bench_a2_frontier_adaptive \
  --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_frontier_adaptive.json \
  --benchmark_out_format=json
require_release_bench BENCH_frontier_adaptive.json

echo "== fault drill (recovery + determinism under injected faults) =="
./build/examples/fault_drill --nodes 4096 --queries 16 \
  --plan "hang:nth=3;ecc-fatal:p=0.02:max=0;launch:p=0.02:max=0;seed=11"

echo "== failover drill (unarmed fleet, then killed primary) =="
# The drill asserts internally: an unarmed group must not migrate, and a
# killed primary must migrate to the spare — never the host reference.
./build/examples/failover_drill --nodes 4096 --queries 32 --plan none
./build/examples/failover_drill --nodes 4096 --queries 32 \
  --plan "ecc-fatal:nth=1+:max=0;seed=7"

echo "== failback drill (kill, probe, restore, full-fleet batch) =="
# Self-asserting: the killed primary must serve degraded with no host
# fallback, canary probes must restore it after the probation delay, and
# the next batch must place work on it again — deterministically.
./build/examples/failback_drill --nodes 4096 --queries 32 \
  --plan "ecc-fatal:nth=1+:max=9;seed=7"
./build/examples/failback_drill --nodes 4096 --queries 32 \
  --plan "ecc-fatal:nth=1+:max=10;seed=3"

echo "== multi-device throughput (balanced scheduling scales the batch) =="
# Self-asserting: answers must match the serial plan bit-for-bit, every
# member must receive work, and the group makespan must scale.
./build/examples/multi_device_throughput --nodes 4096 --queries 32 \
  --sssp 4 --devices 4 --group-size 4

echo "== launch-graph verify (clean batch, then seeded missing-wait) =="
./build/examples/launch_graph_verify --nodes 4096 --queries 16
if ./build/examples/launch_graph_verify --nodes 4096 --queries 16 \
  --inject-missing-wait >/dev/null; then
  echo "check.sh: analyzer MISSED the seeded missing-wait hazard" >&2
  exit 1
else
  echo "seeded missing-wait hazard caught (nonzero exit), as required"
fi

echo "== bench smoke (fault-machinery overhead) =="
MAXWARP_SCALE="${MAXWARP_SCALE:-0.25}" ./build/bench/bench_e3_fault_overhead \
  --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_fault_overhead.json \
  --benchmark_out_format=json
require_release_bench BENCH_fault_overhead.json

echo "== bench smoke (multi-device failover) =="
MAXWARP_SCALE="${MAXWARP_SCALE:-0.25}" ./build/bench/bench_e4_multi_device \
  --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_multi_device.json \
  --benchmark_out_format=json
require_release_bench BENCH_multi_device.json

echo "== perf regression guard (modeled counters vs committed JSONs) =="
if command -v python3 >/dev/null; then
  # Three artifacts are held to a tighter 2% band: the whole point of the
  # fault-overhead, launch-graph-recording and unarmed-spare gates is
  # that the standing machinery stays within 2% of free.
  python3 scripts/perf_guard.py \
    --file-tolerance BENCH_fault_overhead.json=0.02 \
    --file-tolerance BENCH_query_engine.json=0.02 \
    --file-tolerance BENCH_multi_device.json=0.02 \
    BENCH_query_engine.json BENCH_sim_engine.json \
    BENCH_frontier_adaptive.json BENCH_fault_overhead.json \
    BENCH_multi_device.json
else
  echo "check.sh: python3 not found, skipping perf guard" >&2
fi

if [[ "$fast" == 0 ]]; then
  echo "== SANITIZE=ON configuration (ASan+UBSan) =="
  cmake -B build-asan -S . -DSANITIZE=ON >/dev/null
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan -j "$jobs" --output-on-failure

  echo "== SANITIZE=thread configuration (TSan, engine tests) =="
  cmake -B build-tsan -S . -DSANITIZE=thread \
    -DMAXWARP_BUILD_BENCH=OFF -DMAXWARP_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan -j "$jobs" --target simt_engine_test
  ctest --test-dir build-tsan -j "$jobs" --output-on-failure \
    -R 'HostPool|Engine'
fi

echo "check.sh: all green"

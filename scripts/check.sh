#!/usr/bin/env bash
# Tier-1 gate: build + test the normal configuration, then build + test
# again with SANITIZE=ON (host-side ASan/UBSan over the whole tree,
# complementary to the simulator's own simtsan layer).
#
#   scripts/check.sh            # both configurations
#   scripts/check.sh --fast     # normal configuration only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== normal configuration =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build -j "$jobs" --output-on-failure

echo "== bench smoke (query engine) =="
./build/bench/bench_e1_query_engine \
  --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_query_engine.json \
  --benchmark_out_format=json

if [[ "$fast" == 0 ]]; then
  echo "== SANITIZE=ON configuration =="
  cmake -B build-asan -S . -DSANITIZE=ON >/dev/null
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan -j "$jobs" --output-on-failure
fi

echo "check.sh: all green"

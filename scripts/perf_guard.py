#!/usr/bin/env python3
"""Perf-regression guard over committed benchmark JSON artifacts.

Compares freshly produced ``--benchmark_out`` JSON files against the
version committed at HEAD (``git show HEAD:<file>``) and fails when any
*modeled* metric drifts beyond a tolerance band.

Only user counters are compared (``adaptive_ms``, ``modeled_ms``,
``ratio``, ...): they come from the deterministic simulator cost model,
so any drift is a real behavioural change. Wall-clock fields
(``real_time`` / ``cpu_time`` / ``items_per_second``) are machine noise
and are never gated on.

Counters named ``speedup*`` / ``scaling*`` (or ending in ``_speedup`` /
``_scaling``) are higher-is-better: only a *decrease* beyond the band
fails the gate, so a scheduler improvement never trips its own guard
while a scaling regression still does.

Usage:
    scripts/perf_guard.py [--tolerance 0.10] BENCH_a.json BENCH_b.json ...
    scripts/perf_guard.py --file-tolerance BENCH_fault_overhead.json=0.02 \
        BENCH_a.json BENCH_fault_overhead.json

``--file-tolerance FILE=BAND`` (repeatable) overrides the band for one
artifact — e.g. the fault-overhead gate is held to 2% while the default
band stays 10%.

Exit status: 0 when every compared counter stays within the band, 1
otherwise. A fresh artifact with no committed baseline is a failure (the
gate would otherwise silently stop guarding a renamed/deleted artifact);
pass ``--allow-missing-baseline`` to downgrade that to a note, e.g. on
the first commit that introduces a new benchmark. A malformed JSON on
either side is reported as a named violation, never a traceback. The
band can also be set via MAXWARP_PERF_TOLERANCE.
"""

import argparse
import json
import os
import subprocess
import sys

# Google-benchmark per-run bookkeeping: everything else in a benchmark
# entry is a user counter.
STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "label", "error_occurred",
    "error_message",
    # wall-clock derived — machine noise, never gated:
    "items_per_second", "bytes_per_second",
}


def counters(entry):
    return {
        k: v
        for k, v in entry.items()
        if k not in STANDARD_KEYS and isinstance(v, (int, float))
    }


def higher_is_better(key):
    """Speedup-style counters are guarded one-sided: gains never fail."""
    k = key.lower()
    return (k.startswith(("speedup", "scaling"))
            or k.endswith(("_speedup", "_scaling")))


def load_committed(path):
    """(baseline dict, error string) — exactly one of the two is None."""
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD:{path}"],
            capture_output=True, check=True,
        ).stdout
    except FileNotFoundError:
        return None, f"{path}: git not found, cannot read committed baseline"
    except subprocess.CalledProcessError:
        return None, f"{path}: no baseline committed at HEAD"
    try:
        baseline = json.loads(out)
    except json.JSONDecodeError as e:
        return None, f"{path}: committed baseline is not valid JSON ({e})"
    if not isinstance(baseline, dict):
        return None, f"{path}: committed baseline is not a JSON object"
    return baseline, None


def compare(path, tolerance, allow_missing_baseline):
    """Returns a list of violation strings for one artifact."""
    baseline, err = load_committed(path)
    if baseline is None:
        if allow_missing_baseline and err.endswith("committed at HEAD"):
            print(f"perf_guard: {path}: no committed baseline, skipping "
                  "(--allow-missing-baseline)")
            return []
        return [err]
    try:
        with open(path) as f:
            fresh = json.load(f)
    except json.JSONDecodeError as e:
        return [f"{path}: fresh artifact is not valid JSON ({e})"]
    if not isinstance(fresh, dict):
        return [f"{path}: fresh artifact is not a JSON object"]

    base_runs = {b["name"]: b for b in baseline.get("benchmarks", [])}
    fresh_runs = {b["name"]: b for b in fresh.get("benchmarks", [])}

    violations = []
    for name in sorted(base_runs.keys() - fresh_runs.keys()):
        violations.append(f"{path}: benchmark disappeared: {name}")
    for name in sorted(fresh_runs.keys() - base_runs.keys()):
        print(f"perf_guard: {path}: new benchmark (no baseline): {name}")

    checked = 0
    for name in sorted(base_runs.keys() & fresh_runs.keys()):
        base_c = counters(base_runs[name])
        fresh_c = counters(fresh_runs[name])
        for key in sorted(base_c.keys() & fresh_c.keys()):
            old, new = base_c[key], fresh_c[key]
            checked += 1
            if old == new:
                continue
            denom = abs(old) if old != 0 else 1.0
            if higher_is_better(key):
                # One-sided: only a decrease beyond the band regresses.
                drop = (old - new) / denom
                if drop > tolerance:
                    violations.append(
                        f"{path}: {name}: {key} regressed "
                        f"{old:.6g} -> {new:.6g} "
                        f"(-{drop:.1%} > {tolerance:.0%}, higher-is-better)"
                    )
                continue
            drift = abs(new - old) / denom
            if drift > tolerance:
                violations.append(
                    f"{path}: {name}: {key} drifted "
                    f"{old:.6g} -> {new:.6g} ({drift:+.1%} > {tolerance:.0%})"
                )
    print(f"perf_guard: {path}: {checked} counters within {tolerance:.0%}"
          if not violations else
          f"perf_guard: {path}: {len(violations)} violation(s)")
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="fresh benchmark JSONs")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("MAXWARP_PERF_TOLERANCE", "0.10")),
        help="allowed relative drift per counter (default 0.10)")
    parser.add_argument(
        "--file-tolerance", action="append", default=[],
        metavar="FILE=BAND",
        help="per-artifact tolerance override, repeatable")
    parser.add_argument(
        "--allow-missing-baseline", action="store_true",
        help="skip (instead of fail) artifacts with no committed baseline")
    args = parser.parse_args()

    per_file = {}
    for spec in args.file_tolerance:
        path, sep, band = spec.partition("=")
        if not sep:
            parser.error(f"--file-tolerance needs FILE=BAND, got '{spec}'")
        try:
            per_file[path] = float(band)
        except ValueError:
            parser.error(f"--file-tolerance band must be a number: '{spec}'")

    all_violations = []
    for path in args.files:
        if not os.path.exists(path):
            all_violations.append(f"{path}: fresh artifact missing")
            continue
        all_violations.extend(
            compare(path, per_file.get(path, args.tolerance),
                    args.allow_missing_baseline))

    if all_violations:
        print("perf_guard: FAILED", file=sys.stderr)
        for v in all_violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("perf_guard: all modeled counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

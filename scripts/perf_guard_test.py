#!/usr/bin/env python3
"""Smoke tests for perf_guard.py failure modes.

Runs the guard as a subprocess against a throwaway git repo so the
``git show HEAD:<file>`` path is exercised for real. Verifies the three
behaviours the tier-1 gate depends on: in-band counters pass, drifted
counters fail with a named violation, and missing/malformed baselines
fail with a clear one-line message instead of a traceback.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GUARD = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "perf_guard.py")


def bench_json(modeled_ms, **extra_counters):
    return json.dumps({
        "context": {"maxwarp_build_type": "release"},
        "benchmarks": [{
            "name": "bm_query_engine/batch32",
            "run_type": "iteration",
            "iterations": 3,
            "real_time": 1.0,
            "cpu_time": 1.0,
            "time_unit": "ms",
            "modeled_ms": modeled_ms,
            **extra_counters,
        }],
    })


class PerfGuardTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.repo = self.dir.name
        self.git("init", "-q")
        self.git("config", "user.email", "perf@guard.test")
        self.git("config", "user.name", "perf guard test")

    def tearDown(self):
        self.dir.cleanup()

    def git(self, *argv):
        subprocess.run(["git", *argv], cwd=self.repo, check=True,
                       capture_output=True)

    def commit(self, name, content):
        with open(os.path.join(self.repo, name), "w") as f:
            f.write(content)
        self.git("add", name)
        self.git("commit", "-q", "-m", f"baseline {name}")

    def write(self, name, content):
        with open(os.path.join(self.repo, name), "w") as f:
            f.write(content)

    def guard(self, *argv):
        return subprocess.run(
            [sys.executable, GUARD, *argv], cwd=self.repo,
            capture_output=True, text=True)

    def test_within_tolerance_passes(self):
        self.commit("BENCH_x.json", bench_json(10.0))
        self.write("BENCH_x.json", bench_json(10.5))
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("within tolerance", r.stdout)

    def test_drift_fails_with_named_counter(self):
        self.commit("BENCH_x.json", bench_json(10.0))
        self.write("BENCH_x.json", bench_json(20.0))
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("modeled_ms drifted", r.stderr)

    def test_missing_baseline_fails_clearly(self):
        self.write("BENCH_new.json", bench_json(1.0))
        # The repo needs at least one commit for HEAD to resolve.
        self.commit("other.txt", "x\n")
        r = self.guard("BENCH_new.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("no baseline committed at HEAD", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_missing_baseline_can_be_allowed(self):
        self.write("BENCH_new.json", bench_json(1.0))
        self.commit("other.txt", "x\n")
        r = self.guard("--allow-missing-baseline", "BENCH_new.json")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_malformed_committed_baseline_fails_clearly(self):
        self.commit("BENCH_x.json", "{not json")
        self.write("BENCH_x.json", bench_json(1.0))
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("committed baseline is not valid JSON", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_malformed_fresh_artifact_fails_clearly(self):
        self.commit("BENCH_x.json", bench_json(1.0))
        self.write("BENCH_x.json", "also not json")
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("fresh artifact is not valid JSON", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_absent_fresh_artifact_fails(self):
        self.commit("other.txt", "x\n")
        r = self.guard("BENCH_gone.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("fresh artifact missing", r.stderr)

    def test_speedup_increase_passes(self):
        # scaling_x2 is higher-is-better: a big gain never fails the gate.
        self.commit("BENCH_x.json", bench_json(10.0, scaling_x2=1.8))
        self.write("BENCH_x.json", bench_json(10.0, scaling_x2=3.6))
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_speedup_decrease_fails(self):
        self.commit("BENCH_x.json", bench_json(10.0, scaling_x2=1.8))
        self.write("BENCH_x.json", bench_json(10.0, scaling_x2=1.2))
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("scaling_x2 regressed", r.stderr)
        self.assertIn("higher-is-better", r.stderr)

    def test_speedup_decrease_within_band_passes(self):
        self.commit("BENCH_x.json", bench_json(10.0, scaling_x2=2.00))
        self.write("BENCH_x.json", bench_json(10.0, scaling_x2=1.95))
        r = self.guard("BENCH_x.json")
        self.assertEqual(r.returncode, 0, r.stderr)


if __name__ == "__main__":
    unittest.main()

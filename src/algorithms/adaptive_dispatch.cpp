#include "algorithms/adaptive_dispatch.hpp"

#include <algorithm>
#include <vector>

namespace maxwarp::algorithms {

namespace {

/// Candidate widths for calibrating one bin: every valid width from the
/// configured floor up. Probes are cheap (256 vertices, setup-cached), so
/// there is no reason to trust the analytic pick's neighbourhood only.
std::vector<int> probe_widths(int min_width) {
  std::vector<int> out;
  for (int w : {1, 2, 4, 8, 16, 32}) {
    if (w >= min_width) out.push_back(w);
  }
  return out;
}

/// Measured refinement of the analytic plan: per non-team bin, expand a
/// deterministic strided sample of its vertices (a generic gather body
/// shaped like the expand kernels) under each candidate W and keep the
/// cheapest. Candidates are compared on busy_cycles (total work summed
/// over SMs): a 256-vertex probe underfills the machine by a different
/// factor per W, so makespans would bias toward whichever W launches
/// more warps, while total work is fill-independent and tracks the
/// full-graph makespan of a machine-filling sweep. The sample is drawn
/// as contiguous 32-entry runs spread evenly across the bin: a real
/// sweep strips consecutive entries, so narrow widths earn cross-group
/// coalescing of adjacent CSR segments — per-lane striding would erase
/// exactly that effect and bias every probe toward wide W, while a plain
/// prefix would over-weight whatever structure sits at the bin's front.
/// Probe launches land in the setup ledger, not in any run's stats.
void calibrate(gpu::Device& device, const GpuCsr& csr, AdaptiveState& st,
               const KernelOptions& opts, const std::string& label) {
  const simt::DevPtr<const std::uint32_t> row = csr.row();
  const simt::DevPtr<const std::uint32_t> adj = csr.adj();
  const simt::DevPtr<const std::uint32_t> entries = st.entries();
  const std::vector<int> widths = probe_widths(opts.adaptive.min_width);
  if (widths.size() < 2) {
    st.plan.calibrated = true;
    return;
  }
  for (std::size_t b = 0; b < st.bins(); ++b) {
    AdaptiveBin& bin = st.plan.bins[b];
    if (bin.team_warps > 1) continue;
    const std::uint32_t count = st.bin_count(b);
    const std::uint32_t sample = std::min<std::uint32_t>(count, 256);
    if (sample == 0) continue;
    const std::uint32_t run_len = std::min<std::uint32_t>(sample, 32);
    const std::uint32_t runs = (sample + run_len - 1) / run_len;
    const std::uint32_t run_stride =
        runs > 1 ? (count - run_len) / (runs - 1) : 0;
    const std::uint32_t first = st.bin_first(b);
    const auto sample_entry = [=](std::uint32_t idx) {
      return first + (idx / run_len) * run_stride + idx % run_len;
    };
    int best = bin.width;
    std::uint64_t best_cycles = 0;
    bool have_best = false;
    for (int w : widths) {
      const vw::Layout layout(w);
      const std::string probe_label = label + ".probe." +
                                      bin_label(st.plan, b) + ".w" +
                                      std::to_string(w);
      const std::uint64_t warps_needed =
          (sample + static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(warps_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
      const simt::KernelStats ks = device.launch(
          dims.named(probe_label), [&](simt::WarpCtx& ctx) {
            for (std::uint64_t round = 0; round * total_groups < sample;
                 ++round) {
              simt::Lanes<std::uint32_t> idx{};
              const simt::LaneMask valid = vw::assign_static_tasks(
                  ctx, layout, round, total_groups, sample, idx);
              if (valid == 0) continue;
              simt::Lanes<std::uint32_t> v{};
              ctx.with_mask(valid, [&] {
                ctx.load_global(entries, [&](int lane) {
                  return sample_entry(idx[static_cast<std::size_t>(lane)]);
                }, v);
              });
              simt::Lanes<std::uint32_t> begin{}, end{};
              vw::load_task_ranges(ctx, row, v, valid, begin, end);
              vw::simd_strip_loop(
                  ctx, layout, begin, end, valid,
                  [&](const simt::Lanes<std::uint32_t>& cursor) {
                    simt::Lanes<std::uint32_t> nbr{};
                    ctx.load_global(adj, [&](int lane) {
                      return cursor[static_cast<std::size_t>(lane)];
                    }, nbr);
                    // Scattered per-neighbour gather, the load every
                    // expand kernel performs (levels/labels/ranks).
                    simt::Lanes<std::uint32_t> probe{};
                    ctx.load_global(row, [&](int lane) {
                      return nbr[static_cast<std::size_t>(lane)];
                    }, probe);
                    ctx.alu([](int) {});
                  });
            }
          });
      st.setup.add(probe_label, ks);
      if (!have_best || ks.busy_cycles < best_cycles) {
        have_best = true;
        best_cycles = ks.busy_cycles;
        best = w;
      }
    }
    bin.width = best;
  }
  st.plan.calibrated = true;
}

}  // namespace

AdaptiveState build_adaptive_state(gpu::Device& device, const GpuCsr& csr,
                                   const graph::Csr& host,
                                   const KernelOptions& opts,
                                   const std::string& label) {
  AdaptiveState st;
  st.plan = tune_adaptive_plan(host, device.config(), opts);
  st.partitioner = std::make_unique<vw::BinPartitioner>(
      device, std::max<std::uint32_t>(1, csr.num_nodes()), st.plan.bounds(),
      label + ".partition");
  st.partition = st.partitioner->partition_range(csr.row(), csr.num_nodes());
  st.setup.add(label + ".partition", st.partition.stats);
  if (opts.adaptive.calibrate) {
    calibrate(device, csr, st, opts, label);
    // Calibration can equalize neighbouring widths; merging those bins
    // (and repartitioning under the merged bounds) drops slot
    // bookkeeping and can restore the single-bin identity fast path.
    bool merged = false;
    for (std::size_t b = 0; b + 1 < st.plan.bins.size();) {
      AdaptiveBin& cur = st.plan.bins[b];
      const AdaptiveBin& nxt = st.plan.bins[b + 1];
      if (cur.team_warps == 1 && nxt.team_warps == 1 &&
          cur.width == nxt.width) {
        cur.max_degree = nxt.max_degree;
        st.plan.bins.erase(st.plan.bins.begin() +
                           static_cast<std::ptrdiff_t>(b) + 1);
        merged = true;
      } else {
        ++b;
      }
    }
    if (merged) {
      st.partitioner = std::make_unique<vw::BinPartitioner>(
          device, std::max<std::uint32_t>(1, csr.num_nodes()),
          st.plan.bounds(), label + ".partition");
      st.partition =
          st.partitioner->partition_range(csr.row(), csr.num_nodes());
      st.setup.add(label + ".partition", st.partition.stats);
    }
  }
  // A one-bin full-range partition lists vertices 0..n-1 verbatim, so
  // sweeps can skip the indirection load.
  st.identity_entries = st.plan.bins.size() == 1;
  return st;
}

}  // namespace maxwarp::algorithms

// Degree-binned adaptive dispatch (Mapping::kAdaptive).
//
// An AdaptiveState is the cached per-graph half: the auto-tuned plan
// (tune_adaptive_plan), the full-vertex degree partition produced by
// vw::BinPartitioner, and the setup cost ledger. GpuGraph builds one
// lazily per direction (forward / reverse CSR) and caches it, so repeated
// runs — a QueryEngine batch, a PageRank iteration loop — pay the
// partition and optional calibration once, exactly like the cached
// reverse-CSR upload.
//
// The per-run half is adaptive_sweep: all plain bins run in ONE fused
// launch (launch_bins_fused) whose warp slots are dealt round-robin
// across the bins; each warp resolves its bin and runs the caller's
// group body with that bin's virtual-warp Layout. Fusing matters: separate per-bin kernels
// serialize on the stream and each underfills the machine (a hub bin is
// a few hundred warps), so their summed makespans lose to a single
// full-occupancy launch even when every bin's W is optimal. Bins whose
// plan entry has team_warps > 1 (outlier hubs) are still drained by a
// separate team kernel — several cooperating physical warps per vertex,
// the defer-queue drain idiom — when the algorithm's edge phase is
// order-safe (integer atomics / idempotent stores). Ordered
// floating-point kernels pass no team body and outlier bins fold into
// the fused sweep at W=32.
//
// Determinism: bins partition the vertex set, every bin segment lists its
// vertices in ascending id order, and warps execute in launch order, so a
// sweep visits each vertex exactly once under a fixed, reproducible
// schedule. Combined with vw::simd_strip_accumulate (sequential-edge-
// order folds) this keeps kAdaptive results bit-identical to any static
// mapping for every algorithm in this library.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "simt/lanes.hpp"
#include "simt/mask.hpp"
#include "simt/stats.hpp"
#include "simt/warp_ctx.hpp"
#include "warp/bin_partition.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

/// Cached per-graph adaptive dispatch state (see file comment).
struct AdaptiveState {
  AdaptivePlan plan;
  /// Owns the bin-grouped vertex-id buffer; retained (not re-run) so the
  /// cached full-vertex partition below stays valid for the lifetime of
  /// the graph handle. Frontier partitions use their own partitioner.
  std::unique_ptr<vw::BinPartitioner> partitioner;
  vw::BinPartition partition;  ///< full-vertex segments, ascending ids
  /// One-time cost of building this state (partition kernels, calibration
  /// probes), amortized across every run that reuses the cache.
  simt::StatsLedger setup;

  /// True when the cached partition is the identity permutation (single-
  /// bin plan over the full vertex range): sweeps then skip the entry
  /// indirection load entirely, making one-bin kAdaptive cost-identical
  /// to the equivalent static launch.
  bool identity_entries = false;

  std::size_t bins() const { return plan.bins.size(); }
  std::uint32_t bin_first(std::size_t b) const {
    return partition.offset[b];
  }
  std::uint32_t bin_count(std::size_t b) const { return partition.count(b); }
  simt::DevPtr<const std::uint32_t> entries() const {
    return partitioner->entries();
  }
};

/// Builds (tunes + partitions + optionally calibrates) the state for one
/// CSR. `label` prefixes the setup kernel names ("adaptive" /
/// "adaptive.rev").
AdaptiveState build_adaptive_state(gpu::Device& device, const GpuCsr& csr,
                                   const graph::Csr& host,
                                   const KernelOptions& opts,
                                   const std::string& label);

/// Launches `body` once over `count` entries starting at `entries[first]`
/// with the given virtual-warp layout. The body sees
/// body(w, layout, valid, vertex): `vertex[lane]` is the group's resolved
/// vertex id (replicated across the group), `valid` the usual mask.
template <typename BodyF>
simt::KernelStats launch_bin(gpu::Device& device,
                             simt::DevPtr<const std::uint32_t> entries,
                             std::uint32_t first, std::uint32_t count,
                             const vw::Layout& layout,
                             const std::string& label, BodyF&& body) {
  const std::uint64_t warps_needed =
      (static_cast<std::uint64_t>(count) +
       static_cast<std::uint64_t>(layout.groups()) - 1) /
      static_cast<std::uint64_t>(layout.groups());
  const auto dims = device.dims_for_threads(warps_needed * simt::kWarpSize);
  const std::uint64_t total_groups =
      dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
  return device.launch(dims.named(label), [&](simt::WarpCtx& w) {
    for (std::uint64_t round = 0; round * total_groups < count; ++round) {
      simt::Lanes<std::uint32_t> idx{};
      const simt::LaneMask valid =
          vw::assign_static_tasks(w, layout, round, total_groups, count, idx);
      if (valid == 0) continue;
      simt::Lanes<std::uint32_t> vertex{};
      w.with_mask(valid, [&] {
        // Resolve the bin entry to a vertex id (replicated per group;
        // consecutive groups read consecutive entries, so this coalesces).
        w.load_global(entries, [&](int lane) {
          return first + idx[static_cast<std::size_t>(lane)];
        }, vertex);
      });
      body(w, layout, valid, vertex);
    }
  });
}

/// One bin's slice of a fused launch: `count` entries starting at
/// `entries[first]`, swept at virtual-warp width `width`.
struct BinSlice {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  int width = 32;
};

/// Fused multi-bin launch: each physical warp grid-strides over warp
/// slots, resolves its slot's bin, and runs `body` with that bin's
/// layout. One launch fills the machine where per-bin kernels would each
/// underfill it and serialize. Slots are dealt proportionally across
/// bins (bin b's k-th warp at fraction (2k+1)/(2*c_b) of the deal):
/// per-slot cost differs by bin, and under the simulator's
/// block-round-robin SM placement a bin-major deal parks whole
/// same-cost bins on the same few SMs — the proportional deal flattens
/// per-block cost so the makespan tracks busy/num_sms. `identity` marks `entries` as the identity
/// permutation (single-bin full-range partitions), eliding the
/// indirection load. The deal order is a pure function of the slice
/// table, so the visit schedule stays deterministic, and each vertex is
/// swept by the same (bin, W, group) regardless of slot order.
template <typename BodyF>
simt::KernelStats launch_bins_fused(
    gpu::Device& device, simt::DevPtr<const std::uint32_t> entries,
    const std::vector<BinSlice>& slices, bool identity,
    const std::string& label, BodyF&& body) {
  std::vector<std::uint64_t> bin_warps(slices.size(), 0);
  std::uint64_t total_slots = 0;
  for (std::size_t b = 0; b < slices.size(); ++b) {
    const vw::Layout layout(slices[b].width);
    bin_warps[b] = (static_cast<std::uint64_t>(slices[b].count) +
                    static_cast<std::uint64_t>(layout.groups()) - 1) /
                   static_cast<std::uint64_t>(layout.groups());
    total_slots += bin_warps[b];
  }
  // Host-side slot table: slot -> (bin, warp index within bin).
  struct SlotRef {
    std::uint32_t bin;
    std::uint32_t warp;
  };
  std::vector<SlotRef> slot_map;
  slot_map.reserve(total_slots);
  // Proportional merge: bin b's warp k sits at fraction (2k+1)/(2*c_b)
  // of the deal, so a 12-warp bin lands every total/12 slots instead of
  // bunching at the front (a one-per-round deal would exhaust small bins
  // in the first few blocks, recreating the hot-SM cluster).
  std::vector<std::uint64_t> next(slices.size(), 0);
  const auto pos_less = [&](std::size_t a, std::size_t b) {
    // (2*next[a]+1)/c_a < (2*next[b]+1)/c_b, exact in 128-bit.
    const unsigned __int128 lhs =
        static_cast<unsigned __int128>(2 * next[a] + 1) * bin_warps[b];
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(2 * next[b] + 1) * bin_warps[a];
    return lhs < rhs;
  };
  while (slot_map.size() < total_slots) {
    std::size_t pick = slices.size();
    for (std::size_t b = 0; b < slices.size(); ++b) {
      if (next[b] >= bin_warps[b]) continue;
      if (pick == slices.size() || pos_less(b, pick)) pick = b;
    }
    slot_map.push_back({static_cast<std::uint32_t>(pick),
                        static_cast<std::uint32_t>(next[pick])});
    ++next[pick];
  }
  const auto dims = device.dims_for_threads(
      std::max<std::uint64_t>(1, total_slots) * simt::kWarpSize);
  const std::uint64_t stride = dims.warp_count();
  return device.launch(dims.named(label), [&](simt::WarpCtx& w) {
    for (std::uint64_t slot = w.global_warp_id(); slot < total_slots;
         slot += stride) {
      const SlotRef ref = slot_map[slot];
      const BinSlice& s = slices[ref.bin];
      const vw::Layout layout(s.width);
      const std::uint64_t base =
          static_cast<std::uint64_t>(ref.warp) *
          static_cast<std::uint64_t>(layout.groups());
      simt::Lanes<std::uint32_t> idx{};
      w.alu([&](int lane) {
        idx[static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(
            base + static_cast<std::uint64_t>(layout.group_of(lane)));
      });
      const simt::LaneMask valid = w.ballot([&](int lane) {
        return base + static_cast<std::uint64_t>(layout.group_of(lane)) <
               s.count;
      });
      if (valid == 0) continue;
      simt::Lanes<std::uint32_t> vertex{};
      if (identity) {
        w.alu([&](int lane) {
          const auto i = static_cast<std::size_t>(lane);
          vertex[i] = s.first + idx[i];
        });
      } else {
        w.with_mask(valid, [&] {
          // Consecutive groups read consecutive entries: coalesces.
          w.load_global(entries, [&](int lane) {
            return s.first + idx[static_cast<std::size_t>(lane)];
          }, vertex);
        });
      }
      body(w, layout, valid, vertex);
    }
  });
}

/// Team drain for an outlier bin: `team_warps` physical warps cooperate
/// on each vertex (the defer-queue drain geometry — one warp per block,
/// least-loaded scheduling, grid-strided over the bin). The team body
/// sees team(w, vertex, part, team_warps) with `vertex` warp-uniform and
/// `part` this warp's index within its team; pair with
/// adaptive_team_strip to strip the vertex's edges across the team.
template <typename TeamF>
simt::KernelStats launch_bin_teams(
    gpu::Device& device, simt::DevPtr<const std::uint32_t> entries,
    std::uint32_t first, std::uint32_t count, std::uint32_t team_warps,
    std::uint32_t resident_warps_per_sm, const std::string& label,
    TeamF&& team) {
  const std::uint64_t cap =
      std::uint64_t{device.config().num_sms} * resident_warps_per_sm /
      std::max<std::uint32_t>(1, team_warps);
  const std::uint64_t team_count =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(count, cap));
  const std::uint64_t n_warps = team_count * team_warps;
  auto dims = device.dims_for_warps(n_warps);
  dims.policy = simt::SchedulePolicy::kLeastLoaded;
  return device.launch(dims.named(label), [&](simt::WarpCtx& w) {
    const std::uint64_t t = w.global_warp_id() / team_warps;
    const auto part = static_cast<std::uint32_t>(
        w.global_warp_id() % team_warps);
    for (std::uint64_t e = t; e < count; e += team_count) {
      const std::uint32_t v = w.load_global_uniform(entries, first + e);
      team(w, v, part, team_warps);
    }
  });
}

/// Strips vertex `v`'s [row[v], row[v+1]) range across a team: warp
/// `part` of `team_warps` covers edges part*32 + lane, stepping
/// team_warps*32 — each warp stays fully coalesced while the team spans
/// the hub. `edge(cursor)` runs per strip like simd_strip_loop's body.
template <typename EdgeF>
void adaptive_team_strip(simt::WarpCtx& w,
                         simt::DevPtr<const std::uint32_t> row,
                         std::uint32_t v, std::uint32_t part,
                         std::uint32_t team_warps, EdgeF&& edge) {
  const std::uint32_t begin = w.load_global_uniform(row, v);
  const std::uint32_t end = w.load_global_uniform(row, v + 1);
  simt::Lanes<std::uint32_t> cursor{};
  w.alu([&](int lane) {
    cursor[static_cast<std::size_t>(lane)] =
        begin + part * static_cast<std::uint32_t>(simt::kWarpSize) +
        static_cast<std::uint32_t>(lane);
  });
  const std::uint32_t step =
      team_warps * static_cast<std::uint32_t>(simt::kWarpSize);
  w.loop_while(
      [&](int lane) {
        return cursor[static_cast<std::size_t>(lane)] < end;
      },
      [&] {
        edge(cursor);
        w.alu([&](int lane) {
          cursor[static_cast<std::size_t>(lane)] += step;
        });
      });
}

/// Full adaptive sweep: every non-empty bin folded into one fused launch
/// tagged "<name>.binned" in stats.bins (team-marked bins run at W=32 —
/// this overload has no order-safe team body).
template <typename BodyF>
void adaptive_sweep(gpu::Device& device, const AdaptiveState& st,
                    const std::string& name, GpuRunStats& stats,
                    BodyF&& body) {
  std::vector<BinSlice> slices;
  slices.reserve(st.bins());
  for (std::size_t b = 0; b < st.bins(); ++b) {
    const std::uint32_t count = st.bin_count(b);
    if (count == 0) continue;
    slices.push_back({st.bin_first(b), count, st.plan.bins[b].width});
  }
  if (slices.empty()) return;
  const std::string label = name + ".binned";
  const simt::KernelStats ks = launch_bins_fused(
      device, st.entries(), slices, st.identity_entries, label, body);
  stats.kernels.add(ks);
  stats.bins.add(label, ks);
}

/// Adaptive sweep with a team drain for outlier bins (order-safe edge
/// phases only — see file comment): plain bins fuse into one
/// "<name>.binned" launch, each team bin drains as its own
/// "<name>.<bin label>" kernel.
template <typename BodyF, typename TeamF>
void adaptive_sweep_with_teams(gpu::Device& device, const AdaptiveState& st,
                               std::uint32_t resident_warps_per_sm,
                               const std::string& name, GpuRunStats& stats,
                               BodyF&& body, TeamF&& team) {
  std::vector<BinSlice> slices;
  slices.reserve(st.bins());
  for (std::size_t b = 0; b < st.bins(); ++b) {
    const std::uint32_t count = st.bin_count(b);
    if (count == 0 || st.plan.bins[b].team_warps > 1) continue;
    slices.push_back({st.bin_first(b), count, st.plan.bins[b].width});
  }
  if (!slices.empty()) {
    const std::string label = name + ".binned";
    const simt::KernelStats ks = launch_bins_fused(
        device, st.entries(), slices, st.identity_entries, label, body);
    stats.kernels.add(ks);
    stats.bins.add(label, ks);
  }
  for (std::size_t b = 0; b < st.bins(); ++b) {
    const std::uint32_t count = st.bin_count(b);
    if (count == 0 || st.plan.bins[b].team_warps <= 1) continue;
    const std::string label = name + "." + bin_label(st.plan, b);
    const simt::KernelStats ks = launch_bin_teams(
        device, st.entries(), st.bin_first(b), count,
        st.plan.bins[b].team_warps, resident_warps_per_sm, label, team);
    stats.kernels.add(ks);
    stats.bins.add(label, ks);
  }
}

}  // namespace maxwarp::algorithms

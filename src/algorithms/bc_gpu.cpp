#include "algorithms/bc_gpu.hpp"

#include <queue>
#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/cpu_reference.hpp"
#include "algorithms/resilience.hpp"
#include "gpu/buffer.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

namespace {

/// Runs `body(w, layout, valid, task)` for every vertex task under the
/// given layout (the static grid-stride pattern shared by all BC kernels).
template <typename BodyF>
simt::KernelStats launch_over_vertices(gpu::Device& device,
                                       const vw::Layout& layout,
                                       std::uint32_t n,
                                       const std::string& label,
                                       BodyF&& body) {
  const std::uint64_t warps_needed =
      (static_cast<std::uint64_t>(n) +
       static_cast<std::uint64_t>(layout.groups()) - 1) /
      static_cast<std::uint64_t>(layout.groups());
  const auto dims = device.dims_for_threads(warps_needed * simt::kWarpSize);
  const std::uint64_t total_groups =
      dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
  return device.launch(dims.named(label), [&, n](WarpCtx& w) {
    for (std::uint64_t round = 0; round * total_groups < n; ++round) {
      Lanes<std::uint32_t> task{};
      const LaneMask valid =
          vw::assign_static_tasks(w, layout, round, total_groups, n, task);
      if (valid != 0) body(w, layout, valid, task);
    }
  });
}

}  // namespace

GpuBcResult betweenness_gpu(const GpuGraph& g,
                            std::span<const NodeId> sources,
                            const KernelOptions& opts) {
  gpu::Device& device = g.device();
  validate_kernel_options(opts, "betweenness_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "betweenness_gpu: supports thread-mapped, warp-centric, and "
        "adaptive");
  }
  const std::uint32_t n = g.num_nodes();
  GpuBcResult result;
  result.stats.kernels.launches = 0;
  result.centrality.assign(n, 0.0f);
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  const GpuCsr& gpu_graph = g.csr();
  const auto row = gpu_graph.row();
  const auto adj = gpu_graph.adj();
  // Shortest-path counts are gathered as a pull over the transpose so the
  // per-vertex sum runs in sequential in-edge order — the push variant's
  // float atomics would make sigma depend on warp scheduling and break
  // the cross-mapping bit-identity contract.
  const GpuCsr& gpu_rev = g.reverse_csr();
  const auto rev_row = gpu_rev.row();
  const auto rev_adj = gpu_rev.adj();
  // Ordered float folds tolerate no team drains, so both directions use
  // plain per-bin sweeps (outlier bins fall back to full warps).
  const AdaptiveState* fwd_adaptive = opts.mapping == Mapping::kAdaptive
                                          ? &g.adaptive_state(opts)
                                          : nullptr;
  const AdaptiveState* rev_adaptive = opts.mapping == Mapping::kAdaptive
                                          ? &g.adaptive_state(opts, true)
                                          : nullptr;

  gpu::DeviceBuffer<std::uint32_t> level(device, n);
  gpu::DeviceBuffer<float> sigma(device, n);
  gpu::DeviceBuffer<float> delta(device, n);
  gpu::DeviceBuffer<float> bc(device, n);
  gpu::DeviceBuffer<std::uint32_t> changed(device, 1);
  bc.fill(0.0f);

  auto level_ptr = level.ptr();
  auto sigma_ptr = sigma.ptr();
  auto delta_ptr = delta.ptr();
  auto bc_ptr = bc.ptr();
  auto changed_ptr = changed.ptr();

  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);

  // Checkpoint/retry at each pass barrier (inactive unless a fault plan
  // is armed). bc accumulates across sources, so it must roll back too.
  ResilientLoop loop(g, opts, "betweenness_gpu");
  loop.track(level);
  loop.track(sigma);
  loop.track(delta);
  loop.track(bc);
  loop.track(changed);

  for (const NodeId source : sources) {
    if (source >= n) {
      throw std::out_of_range("betweenness_gpu: source out of range");
    }
    level.fill(kUnreached);
    sigma.fill(0.0f);
    delta.fill(0.0f);
    level.write(source, 0);
    sigma.write(source, 1.0f);

    // ---- forward: levels and shortest-path counts -----------------------
    std::uint32_t depth = 0;
    for (std::uint32_t current = 0;; ++current) {
      loop.iteration([&] {
      changed.fill(0);
      // Pass 1: settle level current+1 (plain BFS step; the level store
      // is idempotent, so any bin split or W gives the same array).
      const auto expand_body = [&](WarpCtx& w, const vw::Layout& bl,
                                   LaneMask valid,
                                   const Lanes<std::uint32_t>& task) {
        Lanes<std::uint32_t> lvl{};
        w.with_mask(valid, [&] {
          w.load_global(level_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, lvl);
        });
        const LaneMask on = valid & w.ballot([&](int l) {
          return lvl[static_cast<std::size_t>(l)] == current;
        });
        if (on == 0) return;
        Lanes<std::uint32_t> begin{}, end{};
        vw::load_task_ranges(w, row, task, on, begin, end);
        vw::simd_strip_loop(
            w, bl, begin, end, on,
            [&](const Lanes<std::uint32_t>& cursor) {
              Lanes<std::uint32_t> nbr{};
              w.load_global(adj, [&](int l) {
                return cursor[static_cast<std::size_t>(l)];
              }, nbr);
              Lanes<std::uint32_t> nl{};
              w.load_global(level_ptr, [&](int l) {
                return nbr[static_cast<std::size_t>(l)];
              }, nl);
              const LaneMask fresh = w.ballot([&](int l) {
                return nl[static_cast<std::size_t>(l)] == kUnreached;
              });
              w.with_mask(fresh, [&] {
                w.store_global(level_ptr, [&](int l) {
                  return nbr[static_cast<std::size_t>(l)];
                }, [&](int) { return current + 1; });
                w.store_global(changed_ptr, [](int) { return 0; },
                               [](int) { return 1u; });
              });
            });
      };
      if (fwd_adaptive != nullptr) {
        adaptive_sweep(device, *fwd_adaptive, "bc.expand", result.stats,
                       expand_body);
      } else {
        result.stats.kernels.add(launch_over_vertices(
            device, layout, n, "bc.expand", expand_body));
      }
      });
      ++result.stats.iterations;
      if (changed.read(0) == 0) {
        depth = current;
        break;
      }
      // Pass 2: sigma for the freshly settled level, pulled over in-edges
      // in sequential order (predecessors are exactly the in-neighbours
      // sitting one level up).
      const auto sigma_body = [&](WarpCtx& w, const vw::Layout& bl,
                                  LaneMask valid,
                                  const Lanes<std::uint32_t>& task) {
        Lanes<std::uint32_t> lvl{};
        w.with_mask(valid, [&] {
          w.load_global(level_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, lvl);
        });
        const LaneMask on = valid & w.ballot([&](int l) {
          return lvl[static_cast<std::size_t>(l)] == current + 1;
        });
        if (on == 0) return;
        Lanes<std::uint32_t> begin{}, end{};
        vw::load_task_ranges(w, rev_row, task, on, begin, end);
        Lanes<std::uint32_t> src{}, sl{};
        Lanes<float> ss{};
        const Lanes<float> sums = vw::simd_strip_accumulate<float>(
            w, bl, begin, end, on,
            [&](const Lanes<std::uint32_t>& cursor) {
              w.load_global(rev_adj, [&](int l) {
                return cursor[static_cast<std::size_t>(l)];
              }, src);
              w.load_global(level_ptr, [&](int l) {
                return src[static_cast<std::size_t>(l)];
              }, sl);
              w.load_global(sigma_ptr, [&](int l) {
                return src[static_cast<std::size_t>(l)];
              }, ss);
            },
            [&](int l) {
              const auto i = static_cast<std::size_t>(l);
              return sl[i] == current ? ss[i] : 0.0f;
            });
        w.with_mask(on & leader_lane_mask(bl.width), [&] {
          w.store_global(sigma_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, [&](int l) { return sums[static_cast<std::size_t>(l)]; });
        });
      };
      loop.iteration([&] {
      if (rev_adaptive != nullptr) {
        adaptive_sweep(device, *rev_adaptive, "bc.sigma", result.stats,
                       sigma_body);
      } else {
        result.stats.kernels.add(launch_over_vertices(
            device, layout, n, "bc.sigma", sigma_body));
      }
      });
    }

    // ---- backward: dependency accumulation ------------------------------
    // Levels depth-1 .. 0; delta[v] = sum over successors u of
    // sigma[v]/sigma[u] * (1 + delta[u]), folded in sequential edge order
    // so the float value is the same under every mapping.
    for (std::uint32_t lvl_i = depth; lvl_i-- > 0;) {
      const auto dep_body = [&](WarpCtx& w, const vw::Layout& bl,
                                LaneMask valid,
                                const Lanes<std::uint32_t>& task) {
        Lanes<std::uint32_t> lvl{};
        w.with_mask(valid, [&] {
          w.load_global(level_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, lvl);
        });
        const LaneMask on = valid & w.ballot([&](int l) {
          return lvl[static_cast<std::size_t>(l)] == lvl_i;
        });
        if (on == 0) return;
        Lanes<float> own_sigma{};
        w.with_mask(on, [&] {
          w.load_global(sigma_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, own_sigma);
        });
        Lanes<std::uint32_t> begin{}, end{};
        vw::load_task_ranges(w, row, task, on, begin, end);
        Lanes<std::uint32_t> nbr{}, nl{};
        Lanes<float> nbr_sigma{}, nbr_delta{};
        const Lanes<float> dep = vw::simd_strip_accumulate<float>(
            w, bl, begin, end, on,
            [&](const Lanes<std::uint32_t>& cursor) {
              w.load_global(adj, [&](int l) {
                return cursor[static_cast<std::size_t>(l)];
              }, nbr);
              w.load_global(level_ptr, [&](int l) {
                return nbr[static_cast<std::size_t>(l)];
              }, nl);
              w.load_global(sigma_ptr, [&](int l) {
                return nbr[static_cast<std::size_t>(l)];
              }, nbr_sigma);
              w.load_global(delta_ptr, [&](int l) {
                return nbr[static_cast<std::size_t>(l)];
              }, nbr_delta);
            },
            [&](int l) {
              const auto i = static_cast<std::size_t>(l);
              if (nl[i] != lvl_i + 1) return 0.0f;
              return own_sigma[i] / nbr_sigma[i] * (1.0f + nbr_delta[i]);
            });
        const LaneMask leaders = on & leader_lane_mask(bl.width);
        w.with_mask(leaders, [&] {
          w.store_global(delta_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, [&](int l) { return dep[static_cast<std::size_t>(l)]; });
          // bc[v] += delta[v] for v != source.
          const LaneMask not_source = w.ballot([&](int l) {
            return task[static_cast<std::size_t>(l)] != source;
          });
          w.with_mask(not_source, [&] {
            Lanes<float> prev{};
            w.load_global(bc_ptr, [&](int l) {
              return task[static_cast<std::size_t>(l)];
            }, prev);
            w.store_global(bc_ptr, [&](int l) {
              return task[static_cast<std::size_t>(l)];
            }, [&](int l) {
              const auto i = static_cast<std::size_t>(l);
              return prev[i] + dep[i];
            });
          });
        });
      };
      loop.iteration([&] {
      if (fwd_adaptive != nullptr) {
        adaptive_sweep(device, *fwd_adaptive, "bc.delta", result.stats,
                       dep_body);
      } else {
        result.stats.kernels.add(launch_over_vertices(
            device, layout, n, "bc.delta", dep_body));
      }
      });
      ++result.stats.iterations;
    }
  }

  result.centrality = bc.download();
  result.stats.recovery = loop.stats();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

std::vector<double> betweenness_cpu(const graph::Csr& g,
                                    std::span<const NodeId> sources) {
  const std::uint32_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  std::vector<std::uint32_t> level(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<NodeId> order;  // vertices in visit order (for the backward
                              // sweep in reverse)
  order.reserve(n);

  for (const NodeId source : sources) {
    if (source >= n) {
      throw std::out_of_range("betweenness_cpu: source out of range");
    }
    std::fill(level.begin(), level.end(), kUnreached);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();

    level[source] = 0;
    sigma[source] = 1.0;
    std::queue<NodeId> queue;
    queue.push(source);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      order.push_back(v);
      for (const NodeId u : g.neighbors(v)) {
        if (level[u] == kUnreached) {
          level[u] = level[v] + 1;
          queue.push(u);
        }
        if (level[u] == level[v] + 1) sigma[u] += sigma[v];
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId v = *it;
      for (const NodeId u : g.neighbors(v)) {
        if (level[u] == level[v] + 1) {
          delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
        }
      }
      if (v != source) bc[v] += delta[v];
    }
  }
  return bc;
}

}  // namespace maxwarp::algorithms

// GPU betweenness centrality (Brandes' algorithm, unweighted).
//
// Per source: a forward level-synchronous BFS that also counts shortest
// paths (sigma), then a backward sweep from the deepest level accumulating
// dependencies (delta). Both phases iterate neighbor lists per vertex, so
// the virtual-warp mapping applies to both; the backward sweep needs no
// atomics (each vertex owns its delta, accumulated group-locally and
// reduced). Exact BC sums over all sources (O(nm)); the API takes an
// explicit source set so callers can do exact (all nodes) or
// sampled/approximate BC.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuBcResult {
  /// Accumulated dependency per node over the given sources (the paper's
  /// convention: unnormalized, directed contributions).
  std::vector<float> centrality;
  GpuRunStats stats;
};

/// Runs Brandes forward+backward passes for each source and accumulates.
/// Supports Mapping::kThreadMapped and Mapping::kWarpCentric.
GpuBcResult betweenness_gpu(const GpuGraph& g,
                            std::span<const graph::NodeId> sources,
                            const KernelOptions& opts = {});

/// CPU reference (double precision) with the same source-set semantics.
std::vector<double> betweenness_cpu(const graph::Csr& g,
                                    std::span<const graph::NodeId> sources);

}  // namespace maxwarp::algorithms

#include "algorithms/bfs_cpu_parallel.hpp"

#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>

#include "algorithms/cpu_reference.hpp"
#include "util/timer.hpp"

namespace maxwarp::algorithms {

using graph::Csr;
using graph::NodeId;

ParallelBfsResult bfs_cpu_parallel(const Csr& g, NodeId source,
                                   int num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("bfs_cpu_parallel: num_threads must be >= 1");
  }
  const std::uint32_t n = g.num_nodes();
  ParallelBfsResult result;
  result.level.assign(n, kUnreached);
  if (source >= n) return result;

  util::Timer timer;
  // Atomic view of the level array for CAS claims.
  std::vector<std::atomic<std::uint32_t>> level(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    level[v].store(kUnreached, std::memory_order_relaxed);
  }
  level[source].store(0, std::memory_order_relaxed);

  std::vector<NodeId> frontier{source};
  std::vector<std::vector<NodeId>> local_next(
      static_cast<std::size_t>(num_threads));
  std::uint32_t depth = 0;

  while (!frontier.empty()) {
    const std::uint32_t next_depth = depth + 1;
    const std::size_t per_thread =
        (frontier.size() + static_cast<std::size_t>(num_threads) - 1) /
        static_cast<std::size_t>(num_threads);

    auto worker = [&](int t) {
      auto& next = local_next[static_cast<std::size_t>(t)];
      next.clear();
      const std::size_t begin = static_cast<std::size_t>(t) * per_thread;
      const std::size_t end = std::min(begin + per_thread, frontier.size());
      for (std::size_t i = begin; i < end; ++i) {
        for (NodeId u : g.neighbors(frontier[i])) {
          std::uint32_t expected = kUnreached;
          if (level[u].compare_exchange_strong(expected, next_depth,
                                               std::memory_order_relaxed)) {
            next.push_back(u);
          }
        }
      }
    };

    if (num_threads == 1) {
      worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(num_threads));
      for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
      for (auto& th : threads) th.join();
    }

    frontier.clear();
    for (auto& next : local_next) {
      frontier.insert(frontier.end(), next.begin(), next.end());
    }
    ++depth;
  }

  result.elapsed_seconds = timer.seconds();
  // `depth` counted processed frontiers (levels 0..depth-1); report the
  // deepest level reached, matching the GPU driver and bfs_eccentricity.
  result.depth = depth > 0 ? depth - 1 : 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    result.level[v] = level[v].load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace maxwarp::algorithms

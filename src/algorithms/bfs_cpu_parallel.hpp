// Multi-threaded level-synchronous CPU BFS.
//
// The other end of the paper's CPU-vs-GPU figure. Classic two-array
// level-sync structure: each thread scans a contiguous slice of the
// current frontier and claims unvisited neighbours with a CAS, appending
// to a thread-local next-frontier that is concatenated after the level
// barrier (avoids a shared atomic cursor hot spot).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct ParallelBfsResult {
  std::vector<std::uint32_t> level;
  std::uint32_t depth = 0;      ///< number of levels executed
  double elapsed_seconds = 0;   ///< measured wall time of the traversal
};

/// Runs BFS with `num_threads` worker threads (1 = sequential code path).
ParallelBfsResult bfs_cpu_parallel(const graph::Csr& g,
                                   graph::NodeId source, int num_threads);

}  // namespace maxwarp::algorithms

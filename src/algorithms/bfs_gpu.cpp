#include "algorithms/bfs_gpu.hpp"

#include <memory>
#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/resilience.hpp"
#include "graph/builder.hpp"

#include "simt/device_sim.hpp"
#include "warp/bin_partition.hpp"
#include "warp/defer_queue.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

namespace {

/// Expands the frontier neighbours found at `cursor` positions: claims
/// unvisited ones by writing next_level and raises the changed flag.
/// Shared by every kernel variant (this is the SIMD-phase body).
struct ExpandBody {
  simt::DevPtr<const std::uint32_t> adj;
  simt::DevPtr<std::uint32_t> levels;
  simt::DevPtr<std::uint32_t> changed;
  std::uint32_t next_level;

  void operator()(WarpCtx& w, const Lanes<std::uint32_t>& cursor) const {
    Lanes<std::uint32_t> nbr{};
    w.load_global(adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    Lanes<std::uint32_t> nbr_level{};
    w.load_global(levels, [&](int l) {
      return nbr[static_cast<std::size_t>(l)];
    }, nbr_level);
    const LaneMask fresh = w.ballot([&](int l) {
      return nbr_level[static_cast<std::size_t>(l)] == kUnreached;
    });
    w.with_mask(fresh, [&] {
      w.store_global(levels, [&](int l) {
        return nbr[static_cast<std::size_t>(l)];
      }, [&](int) { return next_level; });
      w.store_global(changed, [](int) { return 0; }, [](int) { return 1; });
    });
  }
};

/// One virtual-warp frontier pass over the groups' assigned tasks:
/// SISD filter (level == cur), SISD range fetch, SIMD expansion.
/// `defer` may be null; when set, tasks above the threshold are pushed to
/// the queue instead of expanded inline.
void expand_groups(WarpCtx& w, const vw::Layout& layout,
                   const Lanes<std::uint32_t>& task, LaneMask valid,
                   simt::DevPtr<const std::uint32_t> row,
                   std::uint32_t current_level, const ExpandBody& body,
                   const vw::DeferQueueView* defer,
                   std::uint32_t defer_capacity,
                   std::uint32_t defer_threshold,
                   std::uint32_t leader_mask) {
  if (valid == 0) return;

  Lanes<std::uint32_t> level_of_task{};
  w.with_mask(valid, [&] {
    w.load_global(body.levels, [&](int l) {
      return task[static_cast<std::size_t>(l)];
    }, level_of_task);
  });
  LaneMask on = valid & w.ballot([&](int l) {
    return level_of_task[static_cast<std::size_t>(l)] == current_level;
  });
  if (on == 0) return;

  Lanes<std::uint32_t> begin{}, end{};
  vw::load_task_ranges(w, row, task, on, begin, end);

  if (defer != nullptr) {
    const LaneMask big = on & w.ballot([&](int l) {
      const auto i = static_cast<std::size_t>(l);
      return end[i] - begin[i] > defer_threshold;
    });
    if (big != 0) {
      vw::defer_push(w, *defer, defer_capacity, big & leader_mask, task);
      on &= ~big;
    }
  }

  vw::simd_strip_loop(w, layout, begin, end, on,
                      [&](const Lanes<std::uint32_t>& cursor) {
                        body(w, cursor);
                      });
}

/// Claims neighbours with CAS and enqueues the winners onto the next
/// frontier. `aggregated` selects warp-aggregated enqueue (one atomic per
/// warp) vs the naive per-lane atomic (what early queue-based kernels did;
/// its serialization shows up in the atomic-conflict counters).
struct QueueExpandBody {
  simt::DevPtr<const std::uint32_t> adj;
  simt::DevPtr<std::uint32_t> levels;
  simt::DevPtr<std::uint32_t> out_entries;
  simt::DevPtr<std::uint32_t> out_count;
  std::uint32_t next_level;
  std::uint32_t capacity;
  bool aggregated;

  void operator()(WarpCtx& w, const Lanes<std::uint32_t>& cursor) const {
    Lanes<std::uint32_t> nbr{};
    w.load_global(adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    const Lanes<std::uint32_t> old = w.atomic_cas(
        levels, [&](int l) { return nbr[static_cast<std::size_t>(l)]; },
        [](int) { return kUnreached; }, [&](int) { return next_level; });
    const LaneMask claimed = w.ballot([&](int l) {
      return old[static_cast<std::size_t>(l)] == kUnreached;
    });
    if (claimed == 0) return;
    if (aggregated) {
      vw::warp_aggregated_push(w, out_entries, out_count, capacity,
                               claimed, nbr);
    } else {
      w.with_mask(claimed, [&] {
        const Lanes<std::uint32_t> slot = w.atomic_add(
            out_count, [](int) { return 0; }, [](int) { return 1u; });
        w.store_global(out_entries, [&](int l) {
          return slot[static_cast<std::size_t>(l)];
        }, [&](int l) { return nbr[static_cast<std::size_t>(l)]; });
      });
    }
  }
};

/// Queue-frontier BFS driver (Frontier::kQueue).
GpuBfsResult bfs_gpu_queue(const GpuGraph& gg, NodeId source,
                           const KernelOptions& opts) {
  gpu::Device& device = gg.device();
  const GpuCsr& g = gg.csr();
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "bfs_gpu: queue frontier supports thread-mapped, warp-centric, and "
        "adaptive");
  }
  const std::uint32_t n = g.num_nodes();
  GpuBfsResult result;
  result.stats.kernels.launches = 0;
  if (n == 0 || source >= n) {
    result.level.assign(n, kUnreached);
    return result;
  }
  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> levels(device, n);
  levels.fill(kUnreached);
  levels.write(source, 0);
  gpu::DeviceBuffer<std::uint32_t> queue_a(device, n);
  gpu::DeviceBuffer<std::uint32_t> queue_b(device, n);
  gpu::DeviceBuffer<std::uint32_t> count_out(device, 1);
  queue_a.write(0, source);

  const auto row = g.row();
  const auto adj = g.adj();
  auto levels_ptr = levels.ptr();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  const bool aggregated = opts.mapping != Mapping::kThreadMapped;

  // kAdaptive re-bins every frontier: the cached full-vertex partition in
  // the graph's AdaptiveState does not describe a queue, so a run-local
  // partitioner splits each level's frontier by degree (those kernels are
  // charged to this run). Single-bin plans skip the partition entirely.
  const AdaptivePlan* plan = nullptr;
  std::unique_ptr<vw::BinPartitioner> frontier_bins;
  if (opts.mapping == Mapping::kAdaptive) {
    plan = &gg.adaptive_state(opts).plan;
    if (plan->bins.size() > 1) {
      frontier_bins = std::make_unique<vw::BinPartitioner>(
          device, n, plan->bounds(), "bfs.queue.partition");
    }
  }

  std::uint32_t frontier_size = 1;
  std::uint32_t current = 0;
  gpu::DeviceBuffer<std::uint32_t>* in = &queue_a;
  gpu::DeviceBuffer<std::uint32_t>* out = &queue_b;

  // Checkpoint/retry at the level barrier (inactive unless a fault plan
  // is armed). Host state (frontier_size/current/in/out) only advances
  // after a level commits, so a rollback is purely device-side.
  ResilientLoop loop(gg, opts, "bfs_gpu.queue");
  loop.track(levels);
  loop.track(queue_a);
  loop.track(queue_b);
  loop.track(count_out);

  while (frontier_size > 0) {
    loop.iteration([&] {
    count_out.fill(0);
    const QueueExpandBody body{adj,       levels_ptr,      out->ptr(),
                               count_out.ptr(), current + 1, n,
                               aggregated};
    auto in_ptr = in->cptr();

    if (opts.mapping == Mapping::kAdaptive) {
      // Frontier vertices arrive resolved (launch_bin indirects through
      // the queue / bin entries); load the range and strip-expand.
      const auto expand_entry = [&](WarpCtx& w, const vw::Layout& bl,
                                    LaneMask valid,
                                    const Lanes<std::uint32_t>& v) {
        Lanes<std::uint32_t> begin{}, end{};
        w.with_mask(valid, [&] {
          w.load_global(row, [&](int l) {
            return v[static_cast<std::size_t>(l)];
          }, begin);
          w.load_global(row, [&](int l) {
            return v[static_cast<std::size_t>(l)] + 1;
          }, end);
        });
        vw::simd_strip_loop(w, bl, begin, end, valid,
                            [&](const Lanes<std::uint32_t>& cursor) {
                              body(w, cursor);
                            });
      };
      if (frontier_bins == nullptr) {
        // One-bin plan: the whole frontier runs at that bin's width.
        const vw::Layout bl(plan->bins[0].width);
        const std::string label =
            "bfs.queue.expand." + bin_label(*plan, 0);
        const simt::KernelStats ks = launch_bin(
            device, in_ptr, 0, frontier_size, bl, label, expand_entry);
        result.stats.kernels.add(ks);
        result.stats.bins.add(label, ks);
      } else {
        const vw::BinPartition bp =
            frontier_bins->partition_list(row, in_ptr, frontier_size);
        result.stats.kernels.add(bp.stats);
        result.stats.bins.add("bfs.queue.partition", bp.stats);
        // Plain bins fuse into one full-occupancy launch; team-marked
        // hub bins drain separately (CAS claims and aggregated pushes
        // are order-safe under warp teams).
        std::vector<BinSlice> slices;
        slices.reserve(plan->bins.size());
        for (std::size_t b = 0; b < plan->bins.size(); ++b) {
          const std::uint32_t cnt = bp.count(b);
          if (cnt == 0 || plan->bins[b].team_warps > 1) continue;
          slices.push_back({bp.offset[b], cnt, plan->bins[b].width});
        }
        if (!slices.empty()) {
          const simt::KernelStats ks = launch_bins_fused(
              device, frontier_bins->entries(), slices,
              /*identity=*/false, "bfs.queue.expand.binned", expand_entry);
          result.stats.kernels.add(ks);
          result.stats.bins.add("bfs.queue.expand.binned", ks);
        }
        for (std::size_t b = 0; b < plan->bins.size(); ++b) {
          const std::uint32_t cnt = bp.count(b);
          if (cnt == 0 || plan->bins[b].team_warps <= 1) continue;
          const std::string label =
              "bfs.queue.expand." + bin_label(*plan, b);
          const simt::KernelStats ks = launch_bin_teams(
              device, frontier_bins->entries(), bp.offset[b], cnt,
              plan->bins[b].team_warps, opts.resident_warps_per_sm, label,
              [&](WarpCtx& w, std::uint32_t v, std::uint32_t part,
                  std::uint32_t tw) {
                adaptive_team_strip(
                    w, row, v, part, tw,
                    [&](const Lanes<std::uint32_t>& cursor) {
                      body(w, cursor);
                    });
              });
          result.stats.kernels.add(ks);
          result.stats.bins.add(label, ks);
        }
      }
    } else if (opts.mapping == Mapping::kThreadMapped) {
      const auto dims = device.dims_for_threads(frontier_size);
      result.stats.kernels.add(device.launch(
          dims.named("bfs.queue.expand.thread"), [&, frontier_size](
                                                     WarpCtx& w) {
        Lanes<std::uint32_t> v{};
        w.load_global(in_ptr, [&](int l) { return w.thread_id(l); }, v);
        Lanes<std::uint32_t> it{}, end{};
        w.load_global(row, [&](int l) {
          return v[static_cast<std::size_t>(l)];
        }, it);
        w.load_global(row, [&](int l) {
          return v[static_cast<std::size_t>(l)] + 1;
        }, end);
        w.loop_while(
            [&](int l) {
              return it[static_cast<std::size_t>(l)] <
                     end[static_cast<std::size_t>(l)];
            },
            [&] {
              body(w, it);
              w.alu([&](int l) { ++it[static_cast<std::size_t>(l)]; });
            });
      }));
    } else {
      const std::uint64_t warps_needed =
          (static_cast<std::uint64_t>(frontier_size) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(warps_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
      result.stats.kernels.add(device.launch(
          dims.named("bfs.queue.expand.vwarp"), [&, frontier_size](
                                                    WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < frontier_size;
             ++round) {
          Lanes<std::uint32_t> entry{};
          const LaneMask valid = vw::assign_static_tasks(
              w, layout, round, total_groups, frontier_size, entry);
          if (valid == 0) continue;
          // Indirect through the queue: the group's vertex.
          Lanes<std::uint32_t> v{};
          w.with_mask(valid, [&] {
            w.load_global(in_ptr, [&](int l) {
              return entry[static_cast<std::size_t>(l)];
            }, v);
          });
          Lanes<std::uint32_t> begin{}, end{};
          w.with_mask(valid, [&] {
            w.load_global(row, [&](int l) {
              return v[static_cast<std::size_t>(l)];
            }, begin);
            w.load_global(row, [&](int l) {
              return v[static_cast<std::size_t>(l)] + 1;
            }, end);
          });
          vw::simd_strip_loop(w, layout, begin, end, valid,
                              [&](const Lanes<std::uint32_t>& cursor) {
                                body(w, cursor);
                              });
        }
      }));
    }
    });

    ++result.stats.iterations;
    frontier_size = count_out.read(0);
    std::swap(in, out);
    ++current;
  }

  result.depth = current - 1;
  result.level = levels.download();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.level[v] != kUnreached) ++result.reached_nodes;
  }
  result.stats.recovery = loop.stats();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

/// Level-array / queue dispatch over the graph handle (the whole
/// historical bfs_gpu body); the public entry points wrap it.
GpuBfsResult bfs_gpu_on(const GpuGraph& gg, NodeId source,
                        const KernelOptions& opts) {
  validate_kernel_options(opts, "bfs_gpu");
  if (opts.frontier == Frontier::kQueue) {
    return bfs_gpu_queue(gg, source, opts);
  }
  gpu::Device& device = gg.device();
  const GpuCsr& g = gg.csr();
  const std::uint32_t n = g.num_nodes();
  GpuBfsResult result;
  result.stats.kernels.launches = 0;
  if (n == 0 || source >= n) {
    result.level.assign(n, kUnreached);
    return result;
  }

  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> levels(device, n);
  levels.fill(kUnreached);
  levels.write(source, 0);
  gpu::DeviceBuffer<std::uint32_t> changed(device, 1);
  gpu::DeviceBuffer<std::uint32_t> work_counter(device, 1);

  const auto row = g.row();
  const auto adj = g.adj();
  auto levels_ptr = levels.ptr();
  auto changed_ptr = changed.ptr();

  vw::DeferQueue defer_queue(
      device, opts.mapping == Mapping::kWarpCentricDefer ? n : 1);

  const auto& cfg = device.config();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  const std::uint32_t leader_mask =
      leader_lane_mask(layout.width);
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &gg.adaptive_state(opts)
                                      : nullptr;

  // Checkpoint/retry at the level barrier (inactive unless a fault plan
  // is armed). The defer queue is rebuilt from scratch inside each level,
  // so it needs no tracking.
  ResilientLoop loop(gg, opts, "bfs_gpu.level");
  loop.track(levels);
  loop.track(changed);
  loop.track(work_counter);

  for (std::uint32_t current = 0;; ++current) {
    loop.iteration([&] {
    changed.fill(0);
    const std::uint32_t next = current + 1;
    const ExpandBody body{adj, levels_ptr, changed_ptr, next};

    if (adaptive != nullptr) {
      // Degree-binned sweep; the level store is idempotent, so outlier
      // hubs may be drained by warp teams without changing the result.
      const auto bin_body = [&](WarpCtx& w, const vw::Layout& bl,
                                LaneMask valid,
                                const Lanes<std::uint32_t>& task) {
        expand_groups(w, bl, task, valid, row, current, body, nullptr, 0, 0,
                      leader_lane_mask(bl.width));
      };
      const auto team_body = [&](WarpCtx& w, std::uint32_t v,
                                 std::uint32_t part, std::uint32_t tw) {
        if (w.load_global_uniform(levels_ptr, v) != current) return;
        adaptive_team_strip(w, row, v, part, tw,
                            [&](const Lanes<std::uint32_t>& cursor) {
                              body(w, cursor);
                            });
      };
      adaptive_sweep_with_teams(device, *adaptive,
                                opts.resident_warps_per_sm,
                                "bfs.level.expand", result.stats, bin_body,
                                team_body);
    } else if (opts.mapping == Mapping::kThreadMapped) {
      // Baseline: thread t owns vertex t and expands its list serially —
      // written exactly as the CUDA original (per-lane while loop).
      const auto dims = device.dims_for_threads(n);
      result.stats.kernels.add(device.launch(
          dims.named("bfs.level.expand.thread"), [&, n](WarpCtx& w) {
        Lanes<std::uint32_t> v{};
        w.alu([&](int l) {
          v[static_cast<std::size_t>(l)] =
              static_cast<std::uint32_t>(w.thread_id(l));
        });
        Lanes<std::uint32_t> lvl{};
        w.load_global(levels_ptr, [&](int l) {
          return v[static_cast<std::size_t>(l)];
        }, lvl);
        const LaneMask on = w.ballot([&](int l) {
          return lvl[static_cast<std::size_t>(l)] == current;
        });
        if (on == 0) return;
        Lanes<std::uint32_t> it{}, end{};
        w.with_mask(on, [&] {
          w.load_global(row, [&](int l) {
            return v[static_cast<std::size_t>(l)];
          }, it);
          w.load_global(row, [&](int l) {
            return v[static_cast<std::size_t>(l)] + 1;
          }, end);
          w.loop_while(
              [&](int l) {
                return it[static_cast<std::size_t>(l)] <
                       end[static_cast<std::size_t>(l)];
              },
              [&] {
                body(w, it);
                w.alu([&](int l) { ++it[static_cast<std::size_t>(l)]; });
              });
        });
      }));
    } else if (opts.mapping == Mapping::kWarpCentricDynamic) {
      // Dynamic distribution: every warp claims one chunk of vertices from
      // the global counter; the launch uses least-loaded block scheduling
      // (see SchedulePolicy) to model the rebalancing the claims buy.
      work_counter.fill(0);
      auto counter_ptr = work_counter.ptr();
      const std::uint32_t chunk = std::max<std::uint32_t>(
          opts.dynamic_chunk, static_cast<std::uint32_t>(layout.groups()));
      const std::uint64_t warps_needed =
          (static_cast<std::uint64_t>(n) + chunk - 1) / chunk;
      auto dims = device.dims_for_warps(warps_needed);
      dims.policy = simt::SchedulePolicy::kLeastLoaded;
      result.stats.kernels.add(device.launch(
          dims.named("bfs.level.expand.dynamic"), [&, n, chunk](WarpCtx& w) {
        const std::uint32_t start = vw::claim_chunk(w, counter_ptr, chunk);
        if (start >= n) return;
        for (std::uint32_t off = 0; off < chunk;
             off += static_cast<std::uint32_t>(layout.groups())) {
          Lanes<std::uint32_t> task{};
          const std::uint32_t remaining = chunk - off;
          const LaneMask valid = vw::assign_chunk_tasks(
              w, layout, start + off,
              std::min<std::uint32_t>(
                  remaining, static_cast<std::uint32_t>(layout.groups())),
              n, task);
          expand_groups(w, layout, task, valid, row, current, body, nullptr,
                        0, 0, leader_mask);
          if (start + off + layout.groups() >= n) break;
        }
      }));
    } else {
      // Static warp-centric (and its defer variant): one virtual warp per
      // vertex, grid sized to cover every vertex in a single round.
      const std::uint64_t groups_needed =
          (static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(groups_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
      const bool deferring = opts.mapping == Mapping::kWarpCentricDefer;
      const vw::DeferQueueView queue_view = defer_queue.view();
      const std::uint32_t defer_capacity = defer_queue.capacity();
      const std::uint32_t threshold = opts.defer_threshold;

      if (deferring) defer_queue.reset();
      result.stats.kernels.add(device.launch(
          dims.named("bfs.level.expand.vwarp"), [&, n](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < n; ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid =
              vw::assign_static_tasks(w, layout, round, total_groups, n,
                                      task);
          expand_groups(w, layout, task, valid, row, current, body,
                        deferring ? &queue_view : nullptr, defer_capacity,
                        threshold, leader_mask);
        }
      }));

      if (deferring) {
        // The counter records demand; drain only what was actually stored.
        const std::uint32_t queued = defer_queue.stored();
        if (queued > 0) {
          // Drain: teams of `warps_per_deferred_task` physical warps expand
          // one hub vertex with fully coalesced 32-wide strips each.
          const std::uint32_t wpt =
              std::max<std::uint32_t>(1, opts.warps_per_deferred_task);
          const std::uint64_t drain_warps =
              std::min<std::uint64_t>(
                  static_cast<std::uint64_t>(queued) * wpt,
                  static_cast<std::uint64_t>(cfg.num_sms) *
                      opts.resident_warps_per_sm);
          const std::uint64_t teams = std::max<std::uint64_t>(
              1, drain_warps / wpt);
          // One warp per block so a team's parts land on different SMs,
          // and least-loaded placement (the queue is drained on demand).
          auto dims2 = device.dims_for_warps(teams * wpt);
          dims2.policy = simt::SchedulePolicy::kLeastLoaded;
          result.stats.kernels.add(device.launch(
              dims2.named("bfs.defer.drain"), [&, queued, wpt](
                                                  WarpCtx& w) {
            const std::uint64_t team =
                w.global_warp_id() / wpt;
            const std::uint32_t part = w.global_warp_id() % wpt;
            const std::uint64_t team_count = dims2.warp_count() / wpt;
            for (std::uint64_t e = team; e < queued; e += team_count) {
              const std::uint32_t v =
                  w.load_global_uniform(queue_view.entries, e);
              const std::uint32_t beg = w.load_global_uniform(row, v);
              const std::uint32_t rend = w.load_global_uniform(row, v + 1);
              Lanes<std::uint32_t> cursor{};
              w.alu([&](int l) {
                cursor[static_cast<std::size_t>(l)] =
                    beg + part * simt::kWarpSize +
                    static_cast<std::uint32_t>(l);
              });
              const std::uint32_t step = wpt * simt::kWarpSize;
              w.loop_while(
                  [&](int l) {
                    return cursor[static_cast<std::size_t>(l)] < rend;
                  },
                  [&] {
                    body(w, cursor);
                    w.alu([&](int l) {
                      cursor[static_cast<std::size_t>(l)] += step;
                    });
                  });
            }
          }));
        }
      }
    }
    });

    ++result.stats.iterations;
    if (changed.read(0) == 0) {
      result.depth = current;  // last level that produced no new nodes
      break;
    }
  }

  result.level = levels.download();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.level[v] != kUnreached) ++result.reached_nodes;
  }
  result.stats.recovery = loop.stats();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace

GpuBfsResult bfs_gpu(const GpuGraph& g, NodeId source,
                     const KernelOptions& opts) {
  GpuBfsResult result = bfs_gpu_on(g, source, opts);
  result.traversed_edges = g.traversed_edges(result.level, kUnreached);
  return result;
}

namespace {

/// Queue expansion that additionally accumulates the claimed vertices'
/// out-degree sum (one warp-reduced atomic per warp) so the adaptive
/// driver can pick the next level's W.
struct AdaptiveExpandBody {
  QueueExpandBody inner;
  simt::DevPtr<const std::uint32_t> row;
  simt::DevPtr<std::uint32_t> degree_sum;

  void operator()(WarpCtx& w, const Lanes<std::uint32_t>& cursor) const {
    Lanes<std::uint32_t> nbr{};
    w.load_global(inner.adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    const Lanes<std::uint32_t> old = w.atomic_cas(
        inner.levels,
        [&](int l) { return nbr[static_cast<std::size_t>(l)]; },
        [](int) { return kUnreached; },
        [&](int) { return inner.next_level; });
    const LaneMask claimed = w.ballot([&](int l) {
      return old[static_cast<std::size_t>(l)] == kUnreached;
    });
    if (claimed == 0) return;
    vw::warp_aggregated_push(w, inner.out_entries, inner.out_count,
                             inner.capacity, claimed, nbr);
    w.with_mask(claimed, [&] {
      Lanes<std::uint32_t> begin{}, end{};
      w.load_global(row, [&](int l) {
        return nbr[static_cast<std::size_t>(l)];
      }, begin);
      w.load_global(row, [&](int l) {
        return nbr[static_cast<std::size_t>(l)] + 1;
      }, end);
      Lanes<std::uint32_t> deg{};
      w.alu([&](int l) {
        const auto i = static_cast<std::size_t>(l);
        deg[i] = end[i] - begin[i];
      });
      const std::uint32_t warp_deg = w.reduce_add(deg);
      if (warp_deg != 0) {
        const int leader = simt::first_lane(w.active());
        w.with_mask(simt::lane_bit(leader), [&] {
          w.atomic_add(degree_sum, [](int) { return 0; },
                       [&](int) { return warp_deg; });
        });
      }
    });
  }
};

int adaptive_width_for(std::uint64_t degree_sum, std::uint32_t frontier,
                       int min_width, std::uint32_t num_sms) {
  if (frontier == 0) return min_width;
  // Lane-efficiency term: match W to the average out-degree.
  const std::uint64_t avg =
      (degree_sum + frontier - 1) / frontier;  // ceil(avg out-degree)
  // Occupancy term: a small frontier at small W yields too few warps to
  // feed the SMs (warps = ceil(frontier * W / 32)); raise W until the
  // launch has ~16 warps per SM. Costs nothing on tiny frontiers (idle
  // lanes were idle anyway) and vanishes on large ones.
  const std::uint64_t target_warps =
      static_cast<std::uint64_t>(num_sms) * 16;
  const std::uint64_t occupancy =
      (target_warps * simt::kWarpSize + frontier - 1) / frontier;
  std::uint64_t w = std::bit_ceil(
      std::max<std::uint64_t>(std::max(avg, occupancy), 1));
  w = std::min<std::uint64_t>(w, simt::kWarpSize);
  return std::max(static_cast<int>(w), min_width);
}

GpuBfsResult bfs_gpu_adaptive_on(gpu::Device& device, const GpuCsr& g,
                                 NodeId source, int min_width) {
  if (!vw::Layout::valid_width(min_width)) {
    throw std::invalid_argument("bfs_gpu_adaptive: invalid min_width");
  }
  const std::uint32_t n = g.num_nodes();
  GpuBfsResult result;
  result.stats.kernels.launches = 0;
  if (n == 0 || source >= n) {
    result.level.assign(n, kUnreached);
    return result;
  }
  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> levels(device, n);
  levels.fill(kUnreached);
  levels.write(source, 0);
  gpu::DeviceBuffer<std::uint32_t> queue_a(device, n);
  gpu::DeviceBuffer<std::uint32_t> queue_b(device, n);
  gpu::DeviceBuffer<std::uint32_t> count_out(device, 1);
  gpu::DeviceBuffer<std::uint32_t> degree_sum(device, 1);
  queue_a.write(0, source);

  const auto row = g.row();
  const auto adj = g.adj();
  auto levels_ptr = levels.ptr();

  std::uint32_t frontier_size = 1;
  std::uint32_t current = 0;
  // Level 0 contains only the source, whose degree the host knows.
  const std::uint32_t source_degree =
      row.host[source + 1] - row.host[source];
  auto next_width_hint = static_cast<std::uint32_t>(
      adaptive_width_for(source_degree, 1, min_width, device.config().num_sms));

  gpu::DeviceBuffer<std::uint32_t>* in = &queue_a;
  gpu::DeviceBuffer<std::uint32_t>* out = &queue_b;

  while (frontier_size > 0) {
    count_out.fill(0);
    degree_sum.fill(0);
    const vw::Layout layout(static_cast<int>(next_width_hint));
    result.adaptive_widths.push_back(layout.width);

    const QueueExpandBody inner{adj,       levels_ptr,      out->ptr(),
                                count_out.ptr(), current + 1, n,
                                /*aggregated=*/true};
    const AdaptiveExpandBody body{inner, row, degree_sum.ptr()};
    auto in_ptr = in->cptr();

    const std::uint64_t warps_needed =
        (static_cast<std::uint64_t>(frontier_size) +
         static_cast<std::uint64_t>(layout.groups()) - 1) /
        static_cast<std::uint64_t>(layout.groups());
    const auto dims =
        device.dims_for_threads(warps_needed * simt::kWarpSize);
    const std::uint64_t total_groups =
        dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

    result.stats.kernels.add(device.launch(
        dims.named("bfs.adaptive.expand"), [&, frontier_size](WarpCtx& w) {
      for (std::uint64_t round = 0; round * total_groups < frontier_size;
           ++round) {
        Lanes<std::uint32_t> entry{};
        const LaneMask valid = vw::assign_static_tasks(
            w, layout, round, total_groups, frontier_size, entry);
        if (valid == 0) continue;
        Lanes<std::uint32_t> v{};
        w.with_mask(valid, [&] {
          w.load_global(in_ptr, [&](int l) {
            return entry[static_cast<std::size_t>(l)];
          }, v);
        });
        Lanes<std::uint32_t> begin{}, end{};
        w.with_mask(valid, [&] {
          w.load_global(row, [&](int l) {
            return v[static_cast<std::size_t>(l)];
          }, begin);
          w.load_global(row, [&](int l) {
            return v[static_cast<std::size_t>(l)] + 1;
          }, end);
        });
        vw::simd_strip_loop(w, layout, begin, end, valid,
                            [&](const Lanes<std::uint32_t>& cursor) {
                              body(w, cursor);
                            });
      }
    }));

    ++result.stats.iterations;
    frontier_size = count_out.read(0);
    const std::uint32_t degsum = degree_sum.read(0);
    next_width_hint = static_cast<std::uint32_t>(
        adaptive_width_for(degsum, frontier_size, min_width, device.config().num_sms));
    std::swap(in, out);
    ++current;
  }

  result.depth = current - 1;
  result.level = levels.download();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.level[v] != kUnreached) ++result.reached_nodes;
  }
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace

GpuBfsResult bfs_gpu_adaptive(const GpuGraph& g, NodeId source,
                              int min_width) {
  GpuBfsResult result =
      bfs_gpu_adaptive_on(g.device(), g.csr(), source, min_width);
  result.traversed_edges = g.traversed_edges(result.level, kUnreached);
  return result;
}

namespace {

GpuBfsResult bfs_gpu_dopt_on(const GpuGraph& g, NodeId source, int width,
                             std::uint32_t alpha, std::uint32_t beta) {
  gpu::Device& device = g.device();
  if (!vw::Layout::valid_width(width)) {
    throw std::invalid_argument(
        "bfs_gpu_direction_optimized: invalid virtual warp width");
  }
  if (alpha == 0 || beta == 0) {
    throw std::invalid_argument(
        "bfs_gpu_direction_optimized: alpha/beta must be > 0");
  }
  const std::uint32_t n = g.num_nodes();
  GpuBfsResult result;
  result.stats.kernels.launches = 0;
  if (n == 0 || source >= n) {
    result.level.assign(n, kUnreached);
    return result;
  }

  // The pull step scans in-neighbours. The handle caches the transpose
  // (and aliases the forward CSR when the graph is symmetric), so only
  // the first directed run pays the build + upload.
  const double transfer_before = device.transfer_totals().modeled_ms;
  const GpuCsr& fwd = g.csr();
  const GpuCsr& rev = g.reverse_csr();

  gpu::DeviceBuffer<std::uint32_t> levels(device, n);
  levels.fill(kUnreached);
  levels.write(source, 0);
  gpu::DeviceBuffer<std::uint32_t> visited_count(device, 1);

  auto levels_ptr = levels.ptr();
  auto count_ptr = visited_count.ptr();
  const vw::Layout layout(width);
  const std::uint32_t leader_mask = leader_lane_mask(layout.width);

  const std::uint64_t warps_needed =
      (static_cast<std::uint64_t>(n) +
       static_cast<std::uint64_t>(layout.groups()) - 1) /
      static_cast<std::uint64_t>(layout.groups());
  const auto dims = device.dims_for_threads(warps_needed * simt::kWarpSize);
  const std::uint64_t total_groups =
      dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

  std::uint32_t frontier_size = 1;
  bool bottom_up = false;

  for (std::uint32_t current = 0;; ++current) {
    // Beamer-style switching with hysteresis.
    if (!bottom_up && frontier_size > n / alpha) bottom_up = true;
    if (bottom_up && frontier_size < n / beta) bottom_up = false;
    result.level_directions.push_back(bottom_up ? 1 : 0);
    visited_count.fill(0);

    if (!bottom_up) {
      // Push: frontier vertices (level == current) expand out-neighbours.
      const auto row = fwd.row();
      const auto adj = fwd.adj();
      result.stats.kernels.add(device.launch(
          dims.named("bfs.dopt.push"), [&, n](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < n; ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid = vw::assign_static_tasks(
              w, layout, round, total_groups, n, task);
          if (valid == 0) continue;
          Lanes<std::uint32_t> lvl{};
          w.with_mask(valid, [&] {
            w.load_global(levels_ptr, [&](int l) {
              return task[static_cast<std::size_t>(l)];
            }, lvl);
          });
          const LaneMask on = valid & w.ballot([&](int l) {
            return lvl[static_cast<std::size_t>(l)] == current;
          });
          if (on == 0) continue;
          Lanes<std::uint32_t> begin{}, end{};
          vw::load_task_ranges(w, row, task, on, begin, end);
          vw::simd_strip_loop(
              w, layout, begin, end, on,
              [&](const Lanes<std::uint32_t>& cursor) {
                Lanes<std::uint32_t> nbr{};
                w.load_global(adj, [&](int l) {
                  return cursor[static_cast<std::size_t>(l)];
                }, nbr);
                const Lanes<std::uint32_t> old = w.atomic_cas(
                    levels_ptr,
                    [&](int l) { return nbr[static_cast<std::size_t>(l)]; },
                    [](int) { return kUnreached; },
                    [&](int) { return current + 1; });
                const LaneMask claimed = w.ballot([&](int l) {
                  return old[static_cast<std::size_t>(l)] == kUnreached;
                });
                w.with_mask(claimed, [&] {
                  Lanes<std::uint32_t> ones =
                      simt::make_lanes<std::uint32_t>(1);
                  std::uint32_t total = 0;
                  (void)w.exclusive_scan_add(ones, total);
                  const int leader = simt::first_lane(w.active());
                  w.with_mask(simt::lane_bit(leader), [&] {
                    w.atomic_add(count_ptr, [](int) { return 0; },
                                 [&](int) { return total; });
                  });
                });
              });
        }
      }));
    } else {
      // Pull: unvisited vertices scan in-neighbours for a frontier parent
      // and stop their group's scan at the first hit.
      const auto row = rev.row();
      const auto adj = rev.adj();
      result.stats.kernels.add(device.launch(
          dims.named("bfs.dopt.pull"), [&, n](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < n; ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid = vw::assign_static_tasks(
              w, layout, round, total_groups, n, task);
          if (valid == 0) continue;
          Lanes<std::uint32_t> lvl{};
          w.with_mask(valid, [&] {
            w.load_global(levels_ptr, [&](int l) {
              return task[static_cast<std::size_t>(l)];
            }, lvl);
          });
          const LaneMask unvisited = valid & w.ballot([&](int l) {
            return lvl[static_cast<std::size_t>(l)] == kUnreached;
          });
          if (unvisited == 0) continue;
          Lanes<std::uint32_t> begin{}, end{};
          vw::load_task_ranges(w, row, task, unvisited, begin, end);

          // Early-exit strip scan: a group stops once any of its lanes
          // found a parent (the saving that makes pull cheap).
          Lanes<std::uint32_t> cursor{};
          w.alu([&](int l) {
            cursor[static_cast<std::size_t>(l)] =
                begin[static_cast<std::size_t>(l)] +
                static_cast<std::uint32_t>(layout.lane_in_group(l));
          });
          LaneMask found_groups = 0;  // group-aligned mask of done groups
          w.with_mask(unvisited, [&] {
            w.loop_while(
                [&](int l) {
                  const auto i = static_cast<std::size_t>(l);
                  return cursor[i] < end[i] &&
                         !simt::lane_active(found_groups, l);
                },
                [&] {
                  Lanes<std::uint32_t> parent{};
                  w.load_global(adj, [&](int l) {
                    return cursor[static_cast<std::size_t>(l)];
                  }, parent);
                  Lanes<std::uint32_t> plvl{};
                  w.load_global(levels_ptr, [&](int l) {
                    return parent[static_cast<std::size_t>(l)];
                  }, plvl);
                  const LaneMask hit = w.ballot([&](int l) {
                    return plvl[static_cast<std::size_t>(l)] == current;
                  });
                  if (hit != 0) {
                    // Expand per-lane hits to whole groups (one issue:
                    // the __any_sync of the real kernel).
                    w.alu([](int) {});
                    for (int grp = 0; grp < layout.groups(); ++grp) {
                      const LaneMask gm = simt::group_mask(grp,
                                                           layout.width);
                      if (hit & gm) found_groups |= gm;
                    }
                  }
                  w.alu([&](int l) {
                    cursor[static_cast<std::size_t>(l)] +=
                        static_cast<std::uint32_t>(layout.width);
                  });
                });
          });
          if (found_groups == 0) continue;
          const LaneMask winners =
              unvisited & found_groups & leader_mask;
          w.with_mask(winners, [&] {
            w.store_global(levels_ptr, [&](int l) {
              return task[static_cast<std::size_t>(l)];
            }, [&](int) { return current + 1; });
            Lanes<std::uint32_t> ones = simt::make_lanes<std::uint32_t>(1);
            std::uint32_t total = 0;
            (void)w.exclusive_scan_add(ones, total);
            const int leader = simt::first_lane(w.active());
            w.with_mask(simt::lane_bit(leader), [&] {
              w.atomic_add(count_ptr, [](int) { return 0; },
                           [&](int) { return total; });
            });
          });
        }
      }));
    }

    ++result.stats.iterations;
    frontier_size = visited_count.read(0);
    if (frontier_size == 0) {
      result.depth = current;
      break;
    }
  }

  result.level = levels.download();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.level[v] != kUnreached) {
      ++result.reached_nodes;
      result.traversed_edges += g.host().degree(v);
    }
  }
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace

GpuBfsResult bfs_gpu_direction_optimized(const GpuGraph& g, NodeId source,
                                         const KernelOptions& opts) {
  validate_kernel_options(opts, "bfs_gpu_direction_optimized");
  return bfs_gpu_dopt_on(g, source, opts.virtual_warp_width,
                         opts.direction.alpha, opts.direction.beta);
}

}  // namespace maxwarp::algorithms

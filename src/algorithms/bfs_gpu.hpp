// GPU breadth-first search — the paper's primary evaluation workload.
//
// Level-synchronous structure (one kernel launch per BFS level, the level
// array doubling as the visited set), after Harish & Narayanan, which is
// the baseline the paper measures against. Four kernel variants share the
// driver, selected by KernelOptions::mapping:
//
//   kThreadMapped        one thread owns one vertex and walks its whole
//                        neighbor list serially — intra-warp imbalance grows
//                        with the degree spread inside each 32-vertex window;
//   kWarpCentric         virtual warps of W lanes own a vertex and expand
//                        its list cooperatively (the paper's method);
//   kWarpCentricDynamic  adds global work-chunk claiming via atomicAdd;
//   kWarpCentricDefer    adds the outlier queue: degree > threshold is
//                        deferred and drained by multi-warp teams.
//
// Every entry point takes a GpuGraph (gpu_graph.hpp): upload once, query
// many times.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/cpu_reference.hpp"  // kUnreached
#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuBfsResult {
  std::vector<std::uint32_t> level;  ///< per node; kUnreached if untouched
  std::uint32_t depth = 0;           ///< number of non-empty levels
  GpuRunStats stats;
  std::uint64_t reached_nodes = 0;
  /// Sum of out-degrees of reached nodes (standard TEPS accounting).
  std::uint64_t traversed_edges = 0;
  /// Filled by bfs_gpu_adaptive only: the W chosen for each level.
  std::vector<int> adaptive_widths;
  /// Filled by bfs_gpu_direction_optimized only: 0 = top-down (push),
  /// 1 = bottom-up (pull), one entry per level.
  std::vector<int> level_directions;
};

/// Runs BFS from `source` on the resident graph.
GpuBfsResult bfs_gpu(const GpuGraph& g, graph::NodeId source,
                     const KernelOptions& opts = {});

/// Adaptive virtual-warp BFS (the follow-up the authors published after
/// this paper: choose the implementation per level). Queue-frontier,
/// warp-centric, but the width W is re-chosen before every level from the
/// next frontier's measured size and total out-degree (the expansion
/// kernel accumulates the degree sum while claiming vertices, so the
/// heuristic costs two extra gathers per claimed vertex and one device
/// read per level). W_level = bit_ceil(avg out-degree), clamped to
/// [min_width, 32]. Ignores opts.mapping/frontier/virtual_warp_width.
GpuBfsResult bfs_gpu_adaptive(const GpuGraph& g, graph::NodeId source,
                              int min_width = 2);

/// Direction-optimizing BFS (Beamer-style push/pull hybrid — the
/// extension later GPU BFS frameworks layered on top of warp-centric
/// kernels). Small frontiers expand top-down (push); once the frontier
/// covers a large fraction of the graph, unvisited vertices instead scan
/// their *in*-neighbours for a frontier parent and stop at the first hit
/// (pull), which skips most of the edge work of the boom level. The pull
/// step uses g.reverse_csr() — built once and cached on the handle.
/// Thresholds come from opts.direction; both step kernels use
/// opts.virtual_warp_width. `result.level_directions` records the
/// direction chosen per level.
GpuBfsResult bfs_gpu_direction_optimized(const GpuGraph& g,
                                         graph::NodeId source,
                                         const KernelOptions& opts = {});

}  // namespace maxwarp::algorithms

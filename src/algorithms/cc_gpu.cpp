#include "algorithms/cc_gpu.hpp"

#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/resilience.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

namespace {

GpuCcResult cc_gpu_on(const GpuGraph& gg, const KernelOptions& opts) {
  gpu::Device& device = gg.device();
  const GpuCsr& g = gg.csr();
  validate_kernel_options(opts, "connected_components_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "connected_components_gpu: supports thread-mapped, warp-centric, "
        "and adaptive");
  }
  const std::uint32_t n = g.num_nodes();
  GpuCcResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> label(device, n);
  {
    std::vector<std::uint32_t> init(n);
    for (std::uint32_t v = 0; v < n; ++v) init[v] = v;
    label.upload(init);
  }
  gpu::DeviceBuffer<std::uint32_t> changed(device, 1);

  const auto row = g.row();
  const auto adj = g.adj();
  auto label_ptr = label.ptr();
  auto changed_ptr = changed.ptr();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &gg.adaptive_state(opts)
                                      : nullptr;

  // Edge phase shared by every variant: push the vertex's label to each
  // neighbour with atomic_min and raise the changed flag on improvement.
  const auto push_edges = [&](WarpCtx& w,
                              const Lanes<std::uint32_t>& cursor,
                              const Lanes<std::uint32_t>& own_label) {
    Lanes<std::uint32_t> nbr{};
    w.load_global(adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    const Lanes<std::uint32_t> old = w.atomic_min(
        label_ptr,
        [&](int l) { return nbr[static_cast<std::size_t>(l)]; },
        [&](int l) { return own_label[static_cast<std::size_t>(l)]; });
    const LaneMask improved = w.ballot([&](int l) {
      const auto i = static_cast<std::size_t>(l);
      return own_label[i] < old[i];
    });
    w.with_mask(improved, [&] {
      w.store_global(changed_ptr, [](int) { return 0; },
                     [](int) { return 1u; });
    });
  };
  const auto sweep_body = [&](WarpCtx& w, const vw::Layout& bl,
                              LaneMask valid,
                              const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> own_label{};
    w.with_mask(valid, [&] {
      w.load_global(label_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, own_label);
    });
    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, valid, begin, end);
    vw::simd_strip_loop(w, bl, begin, end, valid,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          push_edges(w, cursor, own_label);
                        });
  };
  // atomic_min label propagation commutes, so outlier hubs can be split
  // across cooperating warp teams without changing the fixpoint.
  const auto team_body = [&](WarpCtx& w, std::uint32_t v,
                             std::uint32_t part, std::uint32_t tw) {
    const std::uint32_t lbl = w.load_global_uniform(label_ptr, v);
    Lanes<std::uint32_t> own_label{};
    w.alu([&](int l) {
      own_label[static_cast<std::size_t>(l)] = lbl;
    });
    adaptive_team_strip(w, row, v, part, tw,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          push_edges(w, cursor, own_label);
                        });
  };

  // Checkpoint/retry at the sweep barrier (inactive unless a fault plan
  // is armed).
  ResilientLoop loop(gg, opts, "connected_components_gpu");
  loop.track(label);
  loop.track(changed);

  for (;;) {
    loop.iteration([&] {
    changed.fill(0);
    if (adaptive != nullptr) {
      adaptive_sweep_with_teams(device, *adaptive,
                                opts.resident_warps_per_sm, "cc.push",
                                result.stats, sweep_body, team_body);
    } else {
      const std::uint64_t groups_needed =
          (static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(groups_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

      result.stats.kernels.add(
          device.launch(dims.named("cc.push"), [&, n](WarpCtx& w) {
        for (std::uint64_t r = 0; r * total_groups < n; ++r) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid =
              vw::assign_static_tasks(w, layout, r, total_groups, n, task);
          if (valid == 0) continue;
          sweep_body(w, layout, valid, task);
        }
      }));
    }
    });

    ++result.stats.iterations;
    if (changed.read(0) == 0) break;
  }

  result.label = label.download();
  result.stats.recovery = loop.stats();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace

GpuCcResult connected_components_gpu(const GpuGraph& g,
                                     const KernelOptions& opts) {
  return cc_gpu_on(g, opts);
}

}  // namespace maxwarp::algorithms

#include "algorithms/cc_gpu.hpp"

#include <stdexcept>

#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

namespace {

GpuCcResult cc_gpu_on(gpu::Device& device, const GpuCsr& g,
                      const KernelOptions& opts) {
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric) {
    throw std::invalid_argument(
        "connected_components_gpu: supports thread-mapped and warp-centric");
  }
  const std::uint32_t n = g.num_nodes();
  GpuCcResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> label(device, n);
  {
    std::vector<std::uint32_t> init(n);
    for (std::uint32_t v = 0; v < n; ++v) init[v] = v;
    label.upload(init);
  }
  gpu::DeviceBuffer<std::uint32_t> changed(device, 1);

  const auto row = g.row();
  const auto adj = g.adj();
  auto label_ptr = label.ptr();
  auto changed_ptr = changed.ptr();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);

  for (;;) {
    changed.fill(0);
    const std::uint64_t groups_needed =
        (static_cast<std::uint64_t>(n) +
         static_cast<std::uint64_t>(layout.groups()) - 1) /
        static_cast<std::uint64_t>(layout.groups());
    const auto dims = device.dims_for_threads(groups_needed * simt::kWarpSize);
    const std::uint64_t total_groups =
        dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

    result.stats.kernels.add(device.launch(dims, [&, n](WarpCtx& w) {
      for (std::uint64_t r = 0; r * total_groups < n; ++r) {
        Lanes<std::uint32_t> task{};
        const LaneMask valid =
            vw::assign_static_tasks(w, layout, r, total_groups, n, task);
        if (valid == 0) continue;

        Lanes<std::uint32_t> own_label{};
        w.with_mask(valid, [&] {
          w.load_global(label_ptr, [&](int l) {
            return task[static_cast<std::size_t>(l)];
          }, own_label);
        });

        Lanes<std::uint32_t> begin{}, end{};
        vw::load_task_ranges(w, row, task, valid, begin, end);
        vw::simd_strip_loop(
            w, layout, begin, end, valid,
            [&](const Lanes<std::uint32_t>& cursor) {
              Lanes<std::uint32_t> nbr{};
              w.load_global(adj, [&](int l) {
                return cursor[static_cast<std::size_t>(l)];
              }, nbr);
              const Lanes<std::uint32_t> old = w.atomic_min(
                  label_ptr,
                  [&](int l) { return nbr[static_cast<std::size_t>(l)]; },
                  [&](int l) {
                    return own_label[static_cast<std::size_t>(l)];
                  });
              const LaneMask improved = w.ballot([&](int l) {
                const auto i = static_cast<std::size_t>(l);
                return own_label[i] < old[i];
              });
              w.with_mask(improved, [&] {
                w.store_global(changed_ptr, [](int) { return 0; },
                               [](int) { return 1u; });
              });
            });
      }
    }));

    ++result.stats.iterations;
    if (changed.read(0) == 0) break;
  }

  result.label = label.download();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace

GpuCcResult connected_components_gpu(const GpuGraph& g,
                                     const KernelOptions& opts) {
  return cc_gpu_on(g.device(), g.csr(), opts);
}

GpuCcResult connected_components_gpu(gpu::Device& device,
                                     const graph::Csr& g,
                                     const KernelOptions& opts) {
  return connected_components_gpu(GpuGraph(device, g), opts);
}

}  // namespace maxwarp::algorithms

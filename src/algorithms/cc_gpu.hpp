// GPU connected components by min-label propagation.
//
// Labels start as node ids; each sweep pushes a vertex's label to its
// neighbours with atomicMin until a fixed point. On an undirected
// (symmetric) graph this floods the minimum id through every component.
// The inner loop is the same neighbor expansion as BFS, so the mapping
// options apply identically.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuCcResult {
  std::vector<std::uint32_t> label;  ///< min node id of the component
  GpuRunStats stats;
};

/// The graph must be symmetric (undirected closure); validate with
/// GpuGraph::symmetric() if unsure. Supports kThreadMapped and
/// kWarpCentric.
GpuCcResult connected_components_gpu(const GpuGraph& g,
                                     const KernelOptions& opts = {});

}  // namespace maxwarp::algorithms

#include "algorithms/coloring_gpu.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "gpu/buffer.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

std::uint32_t coloring_priority(NodeId v) {
  std::uint64_t x = v + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>(x ^ (x >> 31));
}

namespace {

/// Priority comparison with id tie-break: does u outrank v?
bool outranks(NodeId u, NodeId v) {
  const std::uint32_t pu = coloring_priority(u);
  const std::uint32_t pv = coloring_priority(v);
  return pu != pv ? pu > pv : u > v;
}

}  // namespace

GpuColoringResult color_graph_gpu(const GpuGraph& g,
                                  const KernelOptions& opts) {
  gpu::Device& device = g.device();
  validate_kernel_options(opts, "color_graph_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "color_graph_gpu: supports thread-mapped, warp-centric, and "
        "adaptive");
  }
  const std::uint32_t n = g.num_nodes();
  GpuColoringResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  const GpuCsr& gpu_graph = g.csr();
  const auto row = gpu_graph.row();
  const auto adj = gpu_graph.adj();
  gpu::DeviceBuffer<std::uint32_t> color(device, n);
  color.fill(kNoColor);
  // Round-start snapshot of the colors: every round reads neighbour state
  // from here and writes decisions into `color`, so a round's winner set
  // and forbidden bitmaps are pure Jones-Plassmann — independent of warp
  // execution order, hence identical across mappings and bin splits (and
  // equal to the CPU reference's simultaneous semantics).
  gpu::DeviceBuffer<std::uint32_t> prev(device, n);
  gpu::DeviceBuffer<std::uint32_t> colored_counter(device, 1);
  colored_counter.fill(0);

  auto color_ptr = color.ptr();
  auto prev_ptr = prev.ptr();
  auto counter_ptr = colored_counter.ptr();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &g.adaptive_state(opts)
                                      : nullptr;

  std::uint32_t colored = 0;
  std::uint32_t window_base = 0;
  while (colored < n) {
    const std::uint32_t colored_before = colored;
    const std::uint32_t base = window_base;

    // Snapshot pass: prev = color (one coalesced copy kernel per round).
    {
      const auto dims = device.dims_for_threads(n);
      result.stats.kernels.add(device.launch(
          dims.named("coloring.snapshot"), [&](WarpCtx& w) {
        Lanes<std::uint32_t> c{};
        w.load_global(color_ptr, [&](int l) { return w.thread_id(l); }, c);
        w.store_global(prev_ptr, [&](int l) { return w.thread_id(l); },
                       [&](int l) { return c[static_cast<std::size_t>(l)]; });
      }));
    }

    const auto round_body = [&](WarpCtx& w, const vw::Layout& bl,
                                LaneMask valid,
                                const Lanes<std::uint32_t>& task) {
      Lanes<std::uint32_t> own_color{};
      w.with_mask(valid, [&] {
        w.load_global(prev_ptr, [&](int l) {
          return task[static_cast<std::size_t>(l)];
        }, own_color);
      });
      const LaneMask uncolored = valid & w.ballot([&](int l) {
        return own_color[static_cast<std::size_t>(l)] == kNoColor;
      });
      if (uncolored == 0) return;

      Lanes<std::uint32_t> begin{}, end{};
      vw::load_task_ranges(w, row, task, uncolored, begin, end);

      Lanes<std::uint64_t> partial_forbidden{};
      Lanes<std::uint32_t> partial_blocked{};  // 1 if a higher-priority
                                               // uncolored neighbor exists
      vw::simd_strip_loop(
          w, bl, begin, end, uncolored,
          [&](const Lanes<std::uint32_t>& cursor) {
            Lanes<std::uint32_t> nbr{};
            w.load_global(adj, [&](int l) {
              return cursor[static_cast<std::size_t>(l)];
            }, nbr);
            Lanes<std::uint32_t> nbr_color{};
            w.load_global(prev_ptr, [&](int l) {
              return nbr[static_cast<std::size_t>(l)];
            }, nbr_color);
            w.alu([&](int l) {
              const auto i = static_cast<std::size_t>(l);
              if (nbr_color[i] == kNoColor) {
                if (outranks(nbr[i], task[i])) partial_blocked[i] = 1;
              } else if (nbr_color[i] >= base &&
                         nbr_color[i] < base + 64) {
                partial_forbidden[i] |= std::uint64_t{1}
                                        << (nbr_color[i] - base);
              }
            });
          });

      const Lanes<std::uint32_t> blocked =
          vw::group_reduce_or(w, bl, partial_blocked, uncolored);
      const Lanes<std::uint64_t> forbidden =
          vw::group_reduce_or(w, bl, partial_forbidden, uncolored);

      const LaneMask winners =
          uncolored & leader_lane_mask(bl.width) & w.ballot([&](int l) {
            const auto i = static_cast<std::size_t>(l);
            return blocked[i] == 0 && forbidden[i] != ~std::uint64_t{0};
          });
      w.with_mask(winners, [&] {
        w.store_global(color_ptr, [&](int l) {
          return task[static_cast<std::size_t>(l)];
        }, [&](int l) {
          const auto i = static_cast<std::size_t>(l);
          return base + static_cast<std::uint32_t>(
                            std::countr_one(forbidden[i]));
        });
        w.atomic_add(counter_ptr, [](int) { return 0; },
                     [](int) { return 1u; });
      });
    };

    if (adaptive != nullptr) {
      // Winner decisions need the whole adjacency reduced inside one
      // group, so outlier bins run as full-warp sweeps (no teams).
      adaptive_sweep(device, *adaptive, "coloring.round", result.stats,
                     round_body);
    } else {
      const std::uint64_t warps_needed =
          (static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(warps_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

      result.stats.kernels.add(device.launch(
          dims.named("coloring.round"), [&, n](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < n; ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid = vw::assign_static_tasks(
              w, layout, round, total_groups, n, task);
          if (valid == 0) continue;
          round_body(w, layout, valid, task);
        }
      }));
    }
    ++result.stats.iterations;

    colored = colored_counter.read(0);
    if (colored == colored_before) {
      // Every eligible vertex has its whole window forbidden: slide it.
      window_base += 64;
      if (window_base > n + 64) {
        throw std::runtime_error("color_graph_gpu: failed to converge");
      }
    } else {
      window_base = 0;
    }
  }

  result.color = color.download();
  for (std::uint32_t c : result.color) {
    result.colors_used = std::max(result.colors_used, c + 1);
  }
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

std::vector<std::uint32_t> color_graph_cpu(const graph::Csr& g) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> color(n, kNoColor);
  std::uint32_t colored = 0;
  std::vector<std::uint8_t> taken;
  while (colored < n) {
    // One Jones-Plassmann round: simultaneous decisions based on the
    // colors at the start of the round (matching the GPU's parallel
    // semantics is unnecessary — local maxima are independent, so
    // sequential evaluation within a round yields the same result).
    std::vector<NodeId> winners;
    for (NodeId v = 0; v < n; ++v) {
      if (color[v] != kNoColor) continue;
      bool is_max = true;
      for (const NodeId u : g.neighbors(v)) {
        if (color[u] == kNoColor && outranks(u, v)) {
          is_max = false;
          break;
        }
      }
      if (is_max) winners.push_back(v);
    }
    for (const NodeId v : winners) {
      taken.assign(g.degree(v) + 2, 0);
      for (const NodeId u : g.neighbors(v)) {
        if (color[u] != kNoColor && color[u] < taken.size()) {
          taken[color[u]] = 1;
        }
      }
      std::uint32_t c = 0;
      while (taken[c]) ++c;
      color[v] = c;
      ++colored;
    }
  }
  return color;
}

bool is_proper_coloring(const graph::Csr& g,
                        const std::vector<std::uint32_t>& color) {
  if (color.size() != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (color[v] == kNoColor) return false;
    for (const NodeId u : g.neighbors(v)) {
      if (u != v && color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace maxwarp::algorithms

// GPU greedy graph coloring (Jones–Plassmann).
//
// Each round, every uncolored vertex that holds the highest hash priority
// among its uncolored neighbours takes the smallest color its colored
// neighbours do not use. Rounds repeat until everything is colored; with
// random priorities the expected round count is O(log n / log log n).
// Forbidden colors are gathered as a 64-bit window bitmask; if a vertex's
// whole window is taken (degree >= 64 hubs) the window base slides — with
// a reset after every productive round, the final coloring is identical
// to the sequential Jones-Plassmann reference.
//
// The per-vertex neighbor scan is the familiar variable-length loop, so
// the virtual-warp mapping applies: lanes accumulate partial has-higher
// flags and forbidden masks, combined with a group OR-reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

inline constexpr std::uint32_t kNoColor = 0xffffffffu;

struct GpuColoringResult {
  std::vector<std::uint32_t> color;  ///< proper coloring, 0-based
  std::uint32_t colors_used = 0;
  GpuRunStats stats;
};

/// The graph must be undirected (symmetric). Supports kThreadMapped and
/// kWarpCentric.
GpuColoringResult color_graph_gpu(const GpuGraph& g,
                                  const KernelOptions& opts = {});

/// Sequential Jones-Plassmann with the same priorities and color rule;
/// the GPU result must match it exactly.
std::vector<std::uint32_t> color_graph_cpu(const graph::Csr& g);

/// The shared priority function (hash of the node id).
std::uint32_t coloring_priority(graph::NodeId v);

/// True iff no edge connects two equal colors and every node is colored.
bool is_proper_coloring(const graph::Csr& g,
                        const std::vector<std::uint32_t>& color);

}  // namespace maxwarp::algorithms

#include "algorithms/cpu_reference.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace maxwarp::algorithms {

using graph::Csr;
using graph::NodeId;

std::vector<std::uint32_t> bfs_cpu(const Csr& g, NodeId source) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> level(n, kUnreached);
  if (source >= n) return level;

  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  level[source] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId u : g.neighbors(v)) {
        if (level[u] == kUnreached) {
          level[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

std::vector<std::uint64_t> sssp_cpu(const Csr& g, NodeId source) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint64_t> dist(n, kUnreachedDist);
  if (source >= n) return dist;

  using Entry = std::pair<std::uint64_t, NodeId>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;  // stale entry
    for (graph::EdgeOff e = g.row[v]; e < g.row[v + 1]; ++e) {
      const NodeId u = g.adj[e];
      const std::uint64_t w = g.weighted() ? g.weights[e] : 1;
      if (d + w < dist[u]) {
        dist[u] = d + w;
        heap.push({dist[u], u});
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> connected_components_cpu(const Csr& g) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : g.neighbors(v)) {
      const std::uint32_t a = find(v);
      const std::uint32_t b = find(u);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<std::uint32_t> label(n);
  for (NodeId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

std::vector<double> pagerank_cpu(const Csr& g, double damping,
                                 int iterations) {
  const std::uint32_t n = g.num_nodes();
  if (n == 0) return {};
  const double base = (1.0 - damping) / static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t out = g.degree(v);
      if (out == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / out;
      for (NodeId u : g.neighbors(v)) next[u] += share;
    }
    const double dangling_share =
        damping * dangling / static_cast<double>(n);
    for (NodeId v = 0; v < n; ++v) {
      next[v] = base + damping * next[v] + dangling_share;
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace maxwarp::algorithms

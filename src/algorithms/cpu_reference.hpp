// Sequential reference implementations.
//
// These serve two purposes: (1) ground truth for validating every GPU
// kernel in the test suite, and (2) the sequential end of the paper's
// CPU-vs-GPU comparison. They are written for clarity first, but avoid
// gratuitous allocation so the parallel-CPU comparison is fair.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace maxwarp::algorithms {

inline constexpr std::uint32_t kUnreached = 0xffffffffu;

/// Level-synchronous BFS; returns level[v] per node (kUnreached if not
/// reachable from source).
std::vector<std::uint32_t> bfs_cpu(const graph::Csr& g, graph::NodeId source);

/// Dijkstra with a binary heap over the graph's integer weights; returns
/// dist[v] (kUnreachedDist if unreachable).
inline constexpr std::uint64_t kUnreachedDist = 0xffffffffffffffffULL;
std::vector<std::uint64_t> sssp_cpu(const graph::Csr& g,
                                    graph::NodeId source);

/// Connected components over the *undirected closure* of the graph
/// (union-find); returns a component label per node, normalized so that
/// each component's label is its smallest member id.
std::vector<std::uint32_t> connected_components_cpu(const graph::Csr& g);

/// Power-iteration PageRank with uniform teleport. Dangling-node mass is
/// redistributed uniformly. Runs `iterations` full sweeps (fixed iteration
/// count keeps GPU/CPU results bit-comparable up to float tolerance).
std::vector<double> pagerank_cpu(const graph::Csr& g, double damping,
                                 int iterations);

}  // namespace maxwarp::algorithms

#include "algorithms/gpu_common.hpp"

#include "simt/mask.hpp"

namespace maxwarp::algorithms {

std::string to_string(Mapping mapping) {
  switch (mapping) {
    case Mapping::kThreadMapped:
      return "thread-mapped";
    case Mapping::kWarpCentric:
      return "warp-centric";
    case Mapping::kWarpCentricDynamic:
      return "warp-centric+dynamic";
    case Mapping::kWarpCentricDefer:
      return "warp-centric+defer";
  }
  return "unknown";
}

std::string to_string(Frontier frontier) {
  switch (frontier) {
    case Frontier::kLevelArray:
      return "level-array";
    case Frontier::kQueue:
      return "queue";
  }
  return "unknown";
}

std::uint32_t leader_lane_mask(int virtual_warp_width) {
  std::uint32_t mask = 0;
  for (int lane = 0; lane < simt::kWarpSize; lane += virtual_warp_width) {
    mask |= simt::lane_bit(lane);
  }
  return mask;
}

}  // namespace maxwarp::algorithms

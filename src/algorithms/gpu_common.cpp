#include "algorithms/gpu_common.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "graph/metrics.hpp"
#include "simt/mask.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

std::string to_string(Mapping mapping) {
  switch (mapping) {
    case Mapping::kThreadMapped:
      return "thread-mapped";
    case Mapping::kWarpCentric:
      return "warp-centric";
    case Mapping::kWarpCentricDynamic:
      return "warp-centric+dynamic";
    case Mapping::kWarpCentricDefer:
      return "warp-centric+defer";
    case Mapping::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::string to_string(Frontier frontier) {
  switch (frontier) {
    case Frontier::kLevelArray:
      return "level-array";
    case Frontier::kQueue:
      return "queue";
  }
  return "unknown";
}

std::string to_string(ResiliencePolicy::Scheduling scheduling) {
  switch (scheduling) {
    case ResiliencePolicy::Scheduling::kActiveOnly:
      return "active-only";
    case ResiliencePolicy::Scheduling::kBalanced:
      return "balanced";
    case ResiliencePolicy::Scheduling::kBalancedStealing:
      return "balanced-stealing";
  }
  return "unknown";
}

CostModelCalibration::CostModelCalibration(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument(
        "CostModelCalibration: alpha must be in (0, 1], got " +
        std::to_string(alpha));
  }
}

void CostModelCalibration::observe(const CostModelKey& key,
                                   double raw_estimate, double observed_ms) {
  if (!(raw_estimate > 0.0) || !(observed_ms > 0.0)) return;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CostModelEntry& e, const CostModelKey& k) { return e.key < k; });
  const double ratio = observed_ms / raw_estimate;
  if (it == entries_.end() || !(it->key == key)) {
    CostModelEntry entry;
    entry.key = key;
    entry.correction = ratio;  // first sample seeds exactly
    entry.samples = 1;
    entry.last_observed_ms = observed_ms;
    entry.last_raw_estimate = raw_estimate;
    entries_.insert(it, entry);
    return;
  }
  it->correction = (1.0 - alpha_) * it->correction + alpha_ * ratio;
  it->samples += 1;
  it->last_observed_ms = observed_ms;
  it->last_raw_estimate = raw_estimate;
}

double CostModelCalibration::correction(const CostModelKey& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CostModelEntry& e, const CostModelKey& k) { return e.key < k; });
  if (it == entries_.end() || !(it->key == key)) return 1.0;
  return it->correction;
}

void CostModelCalibration::replace_entries(
    std::vector<CostModelEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const CostModelEntry& a, const CostModelEntry& b) {
              return a.key < b.key;
            });
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key == entries[i].key) {
      throw std::invalid_argument(
          "CostModelCalibration::replace_entries: duplicate key");
    }
  }
  entries_ = std::move(entries);
}

// -- calibration JSON -------------------------------------------------------
//
// The serialized form must round-trip exactly (warm-started estimates have
// to replay bit-identically), so doubles are printed with max_digits10
// precision and parsed back with strtod. The parser is a strict cursor
// over exactly the schema to_json() emits — not a general JSON library,
// which the container does not have and this file does not need.

namespace {

void json_double(std::ostringstream& out, double v) {
  std::ostringstream num;
  num.precision(17);
  num << v;
  out << num.str();
}

struct JsonCursor {
  const char* p;
  const char* end;
  const std::string* doc;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(
        "CostModelCalibration::from_json: " + what + " at offset " +
        std::to_string(p - doc->data()));
  }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  void expect(char c) {
    skip_ws();
    if (p >= end || *p != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  std::string key() {
    expect('"');
    std::string out;
    while (p < end && *p != '"') {
      if (*p == '\\') fail("escape sequences are not part of the schema");
      out.push_back(*p++);
    }
    expect('"');
    expect(':');
    return out;
  }
  double number() {
    skip_ws();
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) fail("expected a number");
    p = after;
    return v;
  }
  bool boolean() {
    skip_ws();
    const std::string_view rest(p, static_cast<std::size_t>(end - p));
    if (rest.starts_with("true")) {
      p += 4;
      return true;
    }
    if (rest.starts_with("false")) {
      p += 5;
      return false;
    }
    fail("expected true/false");
  }
  std::uint64_t unsigned_int() {
    const double v = number();
    if (v < 0 || v != std::floor(v)) fail("expected a non-negative integer");
    return static_cast<std::uint64_t>(v);
  }
};

}  // namespace

std::string CostModelCalibration::to_json() const {
  std::ostringstream out;
  out << "{\n  \"alpha\": ";
  json_double(out, alpha_);
  out << ",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CostModelEntry& e = entries_[i];
    out << (i ? "," : "") << "\n    {\"bfs\": " << (e.key.bfs ? "true" : "false")
        << ", \"width_bucket\": " << e.key.width_bucket
        << ", \"degree_bucket\": " << e.key.degree_bucket
        << ", \"correction\": ";
    json_double(out, e.correction);
    out << ", \"samples\": " << e.samples << ", \"last_observed_ms\": ";
    json_double(out, e.last_observed_ms);
    out << ", \"last_raw_estimate\": ";
    json_double(out, e.last_raw_estimate);
    out << "}";
  }
  out << (entries_.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

CostModelCalibration CostModelCalibration::from_json(const std::string& json) {
  JsonCursor cur{json.data(), json.data() + json.size(), &json};
  cur.expect('{');
  double alpha = 0.0;
  bool saw_alpha = false;
  std::vector<CostModelEntry> entries;
  do {
    const std::string field = cur.key();
    if (field == "alpha") {
      alpha = cur.number();
      saw_alpha = true;
    } else if (field == "entries") {
      cur.expect('[');
      if (!cur.consume(']')) {
        do {
          cur.expect('{');
          CostModelEntry e;
          do {
            const std::string name = cur.key();
            if (name == "bfs") {
              e.key.bfs = cur.boolean();
            } else if (name == "width_bucket") {
              e.key.width_bucket =
                  static_cast<std::uint32_t>(cur.unsigned_int());
            } else if (name == "degree_bucket") {
              e.key.degree_bucket =
                  static_cast<std::uint32_t>(cur.unsigned_int());
            } else if (name == "correction") {
              e.correction = cur.number();
            } else if (name == "samples") {
              e.samples = cur.unsigned_int();
            } else if (name == "last_observed_ms") {
              e.last_observed_ms = cur.number();
            } else if (name == "last_raw_estimate") {
              e.last_raw_estimate = cur.number();
            } else {
              cur.fail("unknown entry field \"" + name + "\"");
            }
          } while (cur.consume(','));
          cur.expect('}');
          entries.push_back(e);
        } while (cur.consume(','));
        cur.expect(']');
      }
    } else {
      cur.fail("unknown field \"" + field + "\"");
    }
  } while (cur.consume(','));
  cur.expect('}');
  cur.skip_ws();
  if (cur.p != cur.end) cur.fail("trailing garbage");
  if (!saw_alpha) {
    throw std::invalid_argument(
        "CostModelCalibration::from_json: missing alpha");
  }
  CostModelCalibration table(alpha);  // validates alpha's (0, 1] range
  table.replace_entries(std::move(entries));
  return table;
}

void validate_kernel_options(const KernelOptions& opts, const char* where) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument(std::string(where) + ": " + what);
  };
  if (!vw::Layout::valid_width(opts.virtual_warp_width)) {
    fail("virtual_warp_width must be a power-of-two divisor of 32, got " +
         std::to_string(opts.virtual_warp_width));
  }
  if (opts.dynamic_chunk == 0) {
    fail("dynamic_chunk must be at least 1 (tasks claimed per atomic)");
  }
  if (opts.warps_per_deferred_task == 0) {
    fail("warps_per_deferred_task must be at least 1");
  }
  if (opts.resident_warps_per_sm == 0) {
    fail("resident_warps_per_sm must be at least 1");
  }
  if (opts.direction.alpha == 0 || opts.direction.beta == 0) {
    fail("direction.alpha and direction.beta must be positive "
         "(thresholds are n/alpha and n/beta)");
  }
  if (opts.direction.alpha > opts.direction.beta) {
    fail("direction thresholds inverted: alpha (" +
         std::to_string(opts.direction.alpha) +
         ") must not exceed beta (" + std::to_string(opts.direction.beta) +
         "); pull engages above n/alpha and disengages below n/beta");
  }
  if (!vw::Layout::valid_width(opts.adaptive.min_width)) {
    fail("adaptive.min_width must be a power-of-two divisor of 32, got " +
         std::to_string(opts.adaptive.min_width));
  }
  if (opts.adaptive.max_bins == 0) {
    fail("adaptive.max_bins must be at least 1");
  }
  if (!(opts.adaptive.bin_merge_tolerance >= 0.0)) {
    fail("adaptive.bin_merge_tolerance must be non-negative");
  }
  const ResiliencePolicy& policy = opts.resilience.policy;
  if (!(policy.retry_backoff_ms >= 0.0)) {
    fail("resilience.policy.retry_backoff_ms must be non-negative");
  }
  if (!(policy.default_deadline_ms >= 0.0)) {
    fail("resilience.policy.default_deadline_ms must be non-negative");
  }
  if (!(policy.steal_threshold >= 0.0)) {
    fail("resilience.policy.steal_threshold must be non-negative");
  }
  if (!(policy.cost_ewma_alpha > 0.0) || policy.cost_ewma_alpha > 1.0) {
    fail("resilience.policy.cost_ewma_alpha must be in (0, 1]");
  }
  const ResiliencePolicy::Health& health = policy.health;
  if (!(health.suspect_threshold >= 1.0)) {
    fail("resilience.policy.health.suspect_threshold must be at least 1");
  }
  if (!(health.suspect_decay_ms >= 0.0) ||
      !(health.probation_delay_ms >= 0.0) ||
      !(health.probe_interval_ms >= 0.0) ||
      !(health.probe_watchdog_ms >= 0.0)) {
    fail("resilience.policy.health durations must be non-negative");
  }
  if (health.probes_to_restore == 0) {
    fail("resilience.policy.health.probes_to_restore must be at least 1");
  }
  if (health.probes_per_pass == 0) {
    fail("resilience.policy.health.probes_per_pass must be at least 1");
  }
  if (health.max_restore_attempts == 0) {
    fail("resilience.policy.health.max_restore_attempts must be at least 1");
  }
  if (!(health.probation_capacity >= 0.0) || health.probation_capacity > 1.0) {
    fail("resilience.policy.health.probation_capacity must be in [0, 1]");
  }
  if (!(opts.resilience.watchdog_ms >= 0.0)) {
    fail("resilience.watchdog_ms must be non-negative");
  }
}

std::uint32_t leader_lane_mask(int virtual_warp_width) {
  std::uint32_t mask = 0;
  for (int lane = 0; lane < simt::kWarpSize; lane += virtual_warp_width) {
    mask |= simt::lane_bit(lane);
  }
  return mask;
}

// -- adaptive plan ----------------------------------------------------------

std::size_t AdaptivePlan::bin_of(std::uint32_t degree) const {
  for (std::size_t b = 0; b + 1 < bins.size(); ++b) {
    if (degree <= bins[b].max_degree) return b;
  }
  return bins.empty() ? 0 : bins.size() - 1;
}

std::vector<std::uint32_t> AdaptivePlan::bounds() const {
  std::vector<std::uint32_t> out;
  out.reserve(bins.size());
  for (const AdaptiveBin& b : bins) out.push_back(b.max_degree);
  return out;
}

std::string AdaptivePlan::summary() const {
  std::ostringstream out;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (b) out << " | ";
    out << bin_label(*this, b) << " w=" << bins[b].width;
    if (bins[b].max_degree != 0xffffffffu) {
      out << " d<=" << bins[b].max_degree;
    }
    if (bins[b].team_warps > 1) out << " team=" << bins[b].team_warps;
  }
  if (calibrated) out << " (calibrated)";
  return out.str();
}

std::string bin_label(const AdaptivePlan& plan, std::size_t b) {
  if (b >= plan.bins.size()) return "bin" + std::to_string(b);
  if (plan.bins[b].team_warps > 1) return "outlier";
  static const char* kNames[] = {"tiny", "small", "medium", "large", "huge"};
  if (b < std::size(kNames)) return kNames[b];
  return "bin" + std::to_string(b);
}

double adaptive_model_cost(std::uint32_t degree, int width,
                           const simt::SimConfig& cfg) {
  const double w = width;
  const double groups = 32.0 / w;
  const double alu = cfg.alu_cycles_per_instr;
  const double txn = cfg.cycles_per_mem_transaction;
  const double txn_words = cfg.mem_transaction_bytes / 4.0;
  // SISD phase (task assignment, filter load, row-range loads): issued
  // once per warp for 32/W tasks, so one vertex's share is W/32 of roughly
  // eight instructions plus three coalesced transactions.
  const double sisd = (w / 32.0) * (8.0 * alu + 3.0 * txn);
  // SIMD phase: ceil(d/W) strips, each issuing a handful of warp-wide
  // instructions (amortized the same way). Adjacency-gather transactions
  // per warp-strip depend on the memory footprint: the warp's 32/W groups
  // each read W consecutive neighbour ids, and because a bin sweeps
  // consecutive vertices their CSR segments are adjacent — for short
  // lists the strip's combined span ((32/W - 1)·d + W words) coalesces
  // into few transactions, while long lists scatter the groups into one
  // transaction each. Charging a flat transaction per strip (the naive
  // model) overprices W=1/2 on low-degree tails by ~8x and drives the
  // tuner toward needlessly wide bins.
  const double strips = degree == 0 ? 0.0 : std::ceil(degree / w);
  const double span_words = (groups - 1.0) * degree + w;
  const double warp_txns =
      std::min(groups, std::ceil(span_words / txn_words));
  const double per_strip =
      (w / 32.0) * (6.0 * alu + warp_txns * txn);
  return sisd + strips * per_strip;
}

namespace {

constexpr int kWidths[] = {1, 2, 4, 8, 16, 32};

int best_width(double degree, int min_width, const simt::SimConfig& cfg) {
  int best = 0;
  double best_cost = 0;
  for (int w : kWidths) {
    if (w < min_width) continue;
    const double c = adaptive_model_cost(
        static_cast<std::uint32_t>(std::lround(degree)), w, cfg);
    if (best == 0 || c < best_cost) {
      best = w;
      best_cost = c;
    }
  }
  return best == 0 ? 32 : best;
}

/// One power-of-two degree class: class 0 holds degree 0, class k >= 1
/// holds degrees in [2^(k-1), 2^k) — the Log2Histogram bucketing.
struct DegreeClass {
  std::uint64_t count = 0;
  std::uint64_t degree_sum = 0;
  double mean_degree() const {
    return count ? static_cast<double>(degree_sum) /
                       static_cast<double>(count)
                 : 0.0;
  }
  std::uint32_t upper() const {  // inclusive class upper bound
    if (index == 0) return 0u;
    if (index >= 32) return 0xffffffffu;
    return (1u << index) - 1u;
  }
  std::size_t index = 0;
  int width = 1;
};

}  // namespace

AdaptivePlan tune_adaptive_plan(const graph::Csr& graph,
                                const simt::SimConfig& cfg,
                                const KernelOptions& opts) {
  AdaptivePlan plan;
  const std::uint32_t n = graph.num_nodes();
  if (n == 0) {
    plan.bins.push_back({0xffffffffu, std::max(1, opts.adaptive.min_width), 1});
    return plan;
  }

  // Exact per-class count and degree sum (one host pass, like the
  // Log2Histogram in graph::degree_stats but keeping the class means the
  // width model needs).
  std::vector<DegreeClass> classes(34);
  for (std::size_t k = 0; k < classes.size(); ++k) classes[k].index = k;
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = graph.degree(v);
    const std::size_t k =
        d == 0 ? 0 : static_cast<std::size_t>(std::bit_width(d));
    classes[k].count += 1;
    classes[k].degree_sum += d;
  }

  // Per-class model-optimal width at the class's mean degree, forced
  // monotone non-decreasing so bin boundaries stay meaningful.
  int running = std::max(1, opts.adaptive.min_width);
  for (DegreeClass& c : classes) {
    if (c.count == 0) {
      c.width = running;
      continue;
    }
    c.width = std::max(running,
                       best_width(c.mean_degree(), opts.adaptive.min_width,
                                  cfg));
    running = c.width;
  }

  // Outlier boundary: hubs beyond max(outlier_degree, p99) drain with
  // cooperating warp teams when the caller enables them.
  const graph::DegreePercentiles pct = graph::degree_percentiles(graph);
  std::uint32_t outlier_bound = 0xffffffffu;
  if (opts.adaptive.outlier_degree > 0 &&
      opts.warps_per_deferred_task > 1) {
    const std::uint32_t b =
        std::max(opts.adaptive.outlier_degree, pct.p99);
    if (pct.max > b) outlier_bound = b;
  }

  // Merge adjacent classes that agree on W into bins (classes past the
  // outlier boundary are excluded; they form the team bin below).
  std::size_t last_class = 0;
  for (std::size_t k = 0; k < classes.size(); ++k) {
    if (classes[k].count > 0) last_class = k;
  }
  for (std::size_t k = 0; k <= last_class; ++k) {
    const DegreeClass& c = classes[k];
    if (c.count == 0) continue;
    if (outlier_bound != 0xffffffffu && c.upper() > outlier_bound &&
        (k == 0 || (std::uint64_t{1} << (k - 1)) > outlier_bound)) {
      continue;  // entirely above the outlier boundary
    }
    const std::uint32_t upper = std::min(c.upper(), outlier_bound);
    if (!plan.bins.empty() && plan.bins.back().width == c.width) {
      plan.bins.back().max_degree = upper;
    } else {
      plan.bins.push_back({upper, c.width, 1});
    }
  }
  if (plan.bins.empty()) {
    plan.bins.push_back(
        {outlier_bound, std::max(1, opts.adaptive.min_width), 1});
  }

  // Cap the non-outlier bin count: repeatedly merge the adjacent pair
  // whose union holds the fewest vertices (the cheapest compromise).
  const auto pair_population = [&](std::size_t b) {
    // vertices whose degree lands in bins b or b+1
    const std::uint32_t lo =
        b == 0 ? 0u : plan.bins[b - 1].max_degree + 1u;
    const std::uint32_t hi = plan.bins[b + 1].max_degree;
    std::uint64_t total = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint32_t d = graph.degree(v);
      if (d >= lo && d <= hi) total += 1;
    }
    return total;
  };
  while (plan.bins.size() > opts.adaptive.max_bins) {
    std::size_t best_pair = 0;
    std::uint64_t best_pop = ~0ull;
    for (std::size_t b = 0; b + 1 < plan.bins.size(); ++b) {
      const std::uint64_t pop = pair_population(b);
      if (pop < best_pop) {
        best_pop = pop;
        best_pair = b;
      }
    }
    plan.bins[best_pair].max_degree = plan.bins[best_pair + 1].max_degree;
    plan.bins[best_pair].width = plan.bins[best_pair + 1].width;
    plan.bins.erase(plan.bins.begin() +
                    static_cast<std::ptrdiff_t>(best_pair) + 1);
  }

  // Marginal-split merge: a split has real costs the width model does not
  // see (the entry indirection load, de-coalesced vertex ids for the
  // split-off minority, extra warp slots), so adjacent bins merge while
  // the cheapest merge raises the plan's modeled sweep cost by at most
  // bin_merge_tolerance. Near-uniform degree profiles collapse back to a
  // single identity bin; skewed profiles keep their splits because the
  // modeled gap between hub and tail widths is far above the tolerance.
  const auto bin_cost = [&](std::size_t b, int w) {
    const std::uint32_t lo =
        b == 0 ? 0u : plan.bins[b - 1].max_degree + 1u;
    const std::uint32_t hi = plan.bins[b].max_degree;
    double total = 0;
    for (const DegreeClass& c : classes) {
      if (c.count == 0) continue;
      const auto mean =
          static_cast<std::uint32_t>(std::lround(c.mean_degree()));
      if (mean < lo || mean > hi) continue;
      total += static_cast<double>(c.count) *
               adaptive_model_cost(mean, w, cfg);
    }
    return total;
  };
  while (plan.bins.size() > 1 && opts.adaptive.bin_merge_tolerance > 0.0) {
    double plan_cost = 0;
    for (std::size_t b = 0; b < plan.bins.size(); ++b) {
      plan_cost += bin_cost(b, plan.bins[b].width);
    }
    std::size_t best_pair = plan.bins.size();
    int best_w = 0;
    double best_delta = 0;
    for (std::size_t b = 0; b + 1 < plan.bins.size(); ++b) {
      const double split =
          bin_cost(b, plan.bins[b].width) +
          bin_cost(b + 1, plan.bins[b + 1].width);
      for (int w : {plan.bins[b].width, plan.bins[b + 1].width}) {
        const double delta = bin_cost(b, w) + bin_cost(b + 1, w) - split;
        if (best_pair == plan.bins.size() || delta < best_delta) {
          best_pair = b;
          best_w = w;
          best_delta = delta;
        }
      }
    }
    if (best_pair == plan.bins.size() ||
        best_delta > opts.adaptive.bin_merge_tolerance * plan_cost) {
      break;
    }
    plan.bins[best_pair].max_degree = plan.bins[best_pair + 1].max_degree;
    plan.bins[best_pair].width = best_w;
    plan.bins.erase(plan.bins.begin() +
                    static_cast<std::ptrdiff_t>(best_pair) + 1);
  }

  if (outlier_bound != 0xffffffffu) {
    plan.bins.back().max_degree = outlier_bound;
    plan.bins.push_back({0xffffffffu, 32, opts.warps_per_deferred_task});
  } else {
    plan.bins.back().max_degree = 0xffffffffu;
  }
  return plan;
}

}  // namespace maxwarp::algorithms

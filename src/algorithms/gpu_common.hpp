// Shared plumbing for the GPU graph kernels: device-resident CSR, method
// selection, and the per-run statistics every algorithm reports.
#pragma once

#include <cstdint>
#include <string>

#include "gpu/buffer.hpp"
#include "gpu/device.hpp"
#include "graph/csr.hpp"
#include "simt/stats.hpp"

namespace maxwarp::algorithms {

/// How vertices are mapped onto SIMD lanes.
enum class Mapping {
  kThreadMapped,         ///< baseline: one thread per vertex (Harish-Narayanan)
  kWarpCentric,          ///< virtual warps, static grid-stride assignment
  kWarpCentricDynamic,   ///< virtual warps + dynamic (atomic) distribution
  kWarpCentricDefer,     ///< virtual warps + outlier deferral queue
};

std::string to_string(Mapping mapping);

/// How the BFS frontier is represented.
enum class Frontier {
  /// Scan all n vertices each level, selecting level[v] == current (the
  /// Harish-Narayanan structure the paper uses). O(levels * n) scans.
  kLevelArray,
  /// Explicit queue: each level reads exactly the frontier vertices and
  /// claims neighbours with CAS, enqueueing the next frontier. O(n + m)
  /// total work — the structure later GPU BFS papers converged on.
  kQueue,
};

std::string to_string(Frontier frontier);

/// Tuning knobs shared by the level-synchronous algorithms.
struct KernelOptions {
  Mapping mapping = Mapping::kWarpCentric;
  /// BFS frontier structure (BFS only; other kernels ignore it).
  Frontier frontier = Frontier::kLevelArray;
  /// Virtual warp width W; must be a power-of-two divisor of 32.
  int virtual_warp_width = 32;
  /// Tasks claimed per atomic in dynamic mode.
  std::uint32_t dynamic_chunk = 64;
  /// Degree above which a vertex is deferred (defer mode).
  std::uint32_t defer_threshold = 512;
  /// Physical warps cooperating on one deferred vertex.
  std::uint32_t warps_per_deferred_task = 4;
  /// Warps launched per SM by the persistent dynamic kernels.
  std::uint32_t resident_warps_per_sm = 24;

  /// Direction-optimizing thresholds (bfs_gpu_direction_optimized only):
  /// switch to bottom-up (pull) when the frontier exceeds n / alpha, back
  /// to top-down (push) when it shrinks below n / beta.
  struct Direction {
    std::uint32_t alpha = 14;
    std::uint32_t beta = 24;
  };
  Direction direction;
};

/// Per-run result statistics common to every GPU algorithm.
struct GpuRunStats {
  simt::KernelStats kernels;   ///< aggregated over every launch of the run
  double transfer_ms = 0;      ///< modeled H2D/D2H during the run
  std::uint32_t iterations = 0;  ///< levels / relaxation rounds / sweeps

  double kernel_ms(const simt::SimConfig& cfg) const {
    return kernels.elapsed_ms(cfg);
  }
  double total_ms(const simt::SimConfig& cfg) const {
    return kernel_ms(cfg) + transfer_ms;
  }
};

/// Device-resident CSR (row offsets, adjacency, optional weights).
class GpuCsr {
 public:
  GpuCsr(gpu::Device& device, const graph::Csr& host)
      : n_(host.num_nodes()),
        m_(host.num_edges()),
        row_(device, host.row),
        adj_(device, host.adj),
        weights_(device, host.weights) {}

  std::uint32_t num_nodes() const { return n_; }
  std::uint64_t num_edges() const { return m_; }
  bool weighted() const { return weights_.size() == m_ && m_ > 0; }

  simt::DevPtr<const std::uint32_t> row() const { return row_.cptr(); }
  simt::DevPtr<const std::uint32_t> adj() const { return adj_.cptr(); }
  simt::DevPtr<const std::uint32_t> weights() const {
    return weights_.cptr();
  }

 private:
  std::uint32_t n_;
  std::uint64_t m_;
  gpu::DeviceBuffer<std::uint32_t> row_;
  gpu::DeviceBuffer<std::uint32_t> adj_;
  gpu::DeviceBuffer<std::uint32_t> weights_;
};

/// Mask with one bit per virtual-warp leader lane (lane % W == 0).
std::uint32_t leader_lane_mask(int virtual_warp_width);

}  // namespace maxwarp::algorithms

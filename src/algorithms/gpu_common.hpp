// Shared plumbing for the GPU graph kernels: device-resident CSR, method
// selection, and the per-run statistics every algorithm reports.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gpu/buffer.hpp"
#include "gpu/device.hpp"
#include "gpu/device_group.hpp"
#include "graph/csr.hpp"
#include "simt/stats.hpp"

namespace maxwarp::algorithms {

/// How vertices are mapped onto SIMD lanes.
enum class Mapping {
  kThreadMapped,         ///< baseline: one thread per vertex (Harish-Narayanan)
  kWarpCentric,          ///< virtual warps, static grid-stride assignment
  kWarpCentricDynamic,   ///< virtual warps + dynamic (atomic) distribution
  kWarpCentricDefer,     ///< virtual warps + outlier deferral queue
  /// Degree-binned dispatch: the vertex set is partitioned into degree
  /// bins and each bin launches with its own fitted strategy (W=1 for
  /// tiny degrees, bin-matched virtual warps in between, cooperating
  /// warp teams for outlier hubs). Bin boundaries and per-bin W come
  /// from the auto-tuner (tune_adaptive_plan), cached per GpuGraph.
  kAdaptive,
};

std::string to_string(Mapping mapping);

/// How the BFS frontier is represented.
enum class Frontier {
  /// Scan all n vertices each level, selecting level[v] == current (the
  /// Harish-Narayanan structure the paper uses). O(levels * n) scans.
  kLevelArray,
  /// Explicit queue: each level reads exactly the frontier vertices and
  /// claims neighbours with CAS, enqueueing the next frontier. O(n + m)
  /// total work — the structure later GPU BFS papers converged on.
  kQueue,
};

std::string to_string(Frontier frontier);

/// The retry/backoff/deadline/fallback policy shared by the two
/// degradation ladders: the iteration-level checkpoint/retry loop
/// (ResilientLoop, via KernelOptions::Resilience) and the work-unit-level
/// QueryEngine ladder (via QueryEngineOptions). Before this type the two
/// duplicated the same knobs with drifting defaults; now both consume one
/// documented source of truth and callers can hand a single policy to
/// either layer.
struct ResiliencePolicy {
  /// How the QueryEngine places work units across a gpu::DeviceGroup.
  /// ResilientLoop (single-device by construction) ignores it.
  enum class Scheduling {
    /// Legacy serving: every unit runs on the group's active device;
    /// spares only receive work through failover migration.
    kActiveOnly,
    /// Group scheduler: units are cost-estimated and placed LPT-greedy
    /// across every healthy member's timeline, so spares serve traffic
    /// instead of idling. Results are bit-identical to kActiveOnly
    /// (each unit's output is order- and device-independent); only the
    /// modeled makespan changes. On a one-device group the placement
    /// degenerates to kActiveOnly exactly.
    kBalanced,
    /// kBalanced placement plus runtime work stealing: instead of
    /// draining only its static queue and idling, a member whose
    /// modeled timeline runs dry steals the costliest still-unstarted
    /// unit from the most-loaded victim (ties break on device ordinal,
    /// then unit id, so replays are bit-identical), absorbing cost-model
    /// estimate error at runtime. A dead member's queued units are
    /// drained by the same steal loop instead of a one-shot re-plan.
    /// Results stay bit-identical to the other modes; on a one-device
    /// group this degenerates to kActiveOnly exactly, like kBalanced.
    kBalancedStealing,
  };

  /// Re-attempts after a transient failure, on top of the first try.
  /// In ResilientLoop this is per-iteration re-execution from the
  /// checkpoint; in the QueryEngine it is whole-work-unit re-runs.
  std::uint32_t max_retries = 2;
  /// Modeled backoff charged before retry r: retry_backoff_ms * 2^r on
  /// the failing unit's stream (Device::charge_delay_ms) — recovery is
  /// not free.
  double retry_backoff_ms = 0.05;
  /// Modeled-time deadline applied to queries that carry none of their
  /// own; 0 = none. Consumed by the QueryEngine ladder only (the
  /// iteration loop's per-launch bound is Resilience::watchdog_ms).
  double default_deadline_ms = 0.0;
  /// Last rung of the ladder: answer on the host reference when every
  /// device is exhausted. Off = exhausted queries return their error.
  /// QueryEngine-level; ResilientLoop ignores it (its callers decide).
  bool cpu_fallback = true;
  /// Work-unit placement over a device group (see Scheduling above).
  Scheduling scheduling = Scheduling::kBalanced;
  /// kBalancedStealing only: a unit is stolen from a *healthy* victim
  /// only when its (calibrated) estimated cost exceeds this threshold —
  /// the knob that keeps thieves from churning replica leases over
  /// near-free units. Dead members' queues are always drained
  /// regardless (that is failover, not opportunism). 0 steals anything.
  /// Same units as UnitPlacement::estimated_cost.
  double steal_threshold = 0.0;
  /// EWMA smoothing factor in (0, 1] for the feedback-calibrated cost
  /// model (CostModelCalibration): each completed unit folds
  /// observed/estimated back into its shape's correction factor with
  /// weight alpha. 1 keeps only the latest observation.
  double cost_ewma_alpha = 0.3;
  /// Device-health lifecycle knobs (gpu::HealthPolicy): suspect
  /// threshold/decay for transient blips, probation entry delay, canary
  /// probe cadence, clean probes to restore, max restore attempts before
  /// permanent retirement, and the probation capacity cap. Consumed by
  /// the QueryEngine's fleet maintainer and pushed into the
  /// gpu::DeviceGroup; ResilientLoop ignores it.
  using Health = gpu::HealthPolicy;
  Health health;

  bool operator==(const ResiliencePolicy&) const = default;
};

std::string to_string(ResiliencePolicy::Scheduling scheduling);

/// Tuning knobs shared by the level-synchronous algorithms.
struct KernelOptions {
  Mapping mapping = Mapping::kWarpCentric;
  /// BFS frontier structure (BFS only; other kernels ignore it).
  Frontier frontier = Frontier::kLevelArray;
  /// Virtual warp width W; must be a power-of-two divisor of 32.
  int virtual_warp_width = 32;
  /// Tasks claimed per atomic in dynamic mode.
  std::uint32_t dynamic_chunk = 64;
  /// Degree above which a vertex is deferred (defer mode).
  std::uint32_t defer_threshold = 512;
  /// Physical warps cooperating on one deferred vertex.
  std::uint32_t warps_per_deferred_task = 4;
  /// Warps launched per SM by the persistent dynamic kernels.
  std::uint32_t resident_warps_per_sm = 24;

  /// Direction-optimizing thresholds (bfs_gpu_direction_optimized only):
  /// switch to bottom-up (pull) when the frontier exceeds n / alpha, back
  /// to top-down (push) when it shrinks below n / beta.
  struct Direction {
    std::uint32_t alpha = 14;
    std::uint32_t beta = 24;
  };
  Direction direction;

  /// Fault-recovery knobs consumed by the iterative GPU drivers (see
  /// DESIGN.md "Fault model and recovery"). With checkpoint = kAuto and
  /// no FaultPlan armed, the drivers skip checkpointing entirely, so the
  /// fault-free path pays nothing for these.
  struct Resilience {
    /// Shared retry policy (ResiliencePolicy): the loop consumes
    /// policy.max_retries (re-executions of one failed iteration from its
    /// checkpoint) and policy.retry_backoff_ms; the engine-level fields
    /// (default_deadline_ms, cpu_fallback, scheduling) are ignored here.
    ResiliencePolicy policy = {};
    /// Per-launch watchdog (modeled ms) armed for the driver's lifetime;
    /// 0 inherits the device-wide SimConfig::default_watchdog_ms.
    double watchdog_ms = 0;
    enum class Checkpoint {
      kAuto,    ///< checkpoint only while a fault plan is armed
      kAlways,  ///< checkpoint unconditionally (pays modeled transfers)
      kOff,     ///< never: a faulted iteration fails the whole run
    };
    Checkpoint checkpoint = Checkpoint::kAuto;
  };
  Resilience resilience;

  /// kAdaptive knobs (ignored by the other mappings).
  struct Adaptive {
    /// Floor on any bin's virtual warp width (power-of-two divisor of 32).
    int min_width = 1;
    /// Refine the analytic plan with short measured probes per bin
    /// (deterministic in the simulator; charged to the cached
    /// AdaptiveState's setup stats, not to runs). On by default: the
    /// analytic width model is a coarse transaction count and measured
    /// probes pick the true per-bin optimum; disable to exercise the
    /// pure model or to skip the one-time probe cost.
    bool calibrate = true;
    /// Upper bound on non-outlier bins (tiny/small/medium/large/huge).
    std::uint32_t max_bins = 5;
    /// Degree above which hub expansion is drained by cooperating warp
    /// teams (warps_per_deferred_task warps per vertex) where the
    /// algorithm supports it; 0 disables the outlier bin entirely.
    std::uint32_t outlier_degree = 1024;
    /// Adjacent bins merge while the cheapest merge raises the plan's
    /// modeled sweep cost by at most this fraction. Splitting a bin off
    /// has unmodeled costs (the indirection load, de-coalesced ids for
    /// the split-off minority, extra warp slots), so a split must buy a
    /// clear modeled win to survive; near-uniform graphs collapse to one
    /// identity bin. 0 keeps every split the width model asks for.
    double bin_merge_tolerance = 0.10;

    bool operator==(const Adaptive&) const = default;
  };
  Adaptive adaptive;
};

/// Validates every tuning knob once, at the algorithm entry point, so a
/// bad configuration fails with a clear message instead of deep inside a
/// kernel. `where` names the entry point in the thrown message. Throws
/// std::invalid_argument.
void validate_kernel_options(const KernelOptions& opts, const char* where);

// -- adaptive plan ----------------------------------------------------------

/// One degree bin of an adaptive plan. Bins partition [0, 2^32): bin b
/// holds vertices with degree in (bins[b-1].max_degree, bins[b].max_degree].
struct AdaptiveBin {
  std::uint32_t max_degree = 0xffffffffu;  ///< inclusive upper bound
  int width = 32;                          ///< virtual warp width for the bin
  /// Physical warps cooperating per vertex when draining this bin with a
  /// team kernel (outlier bins only); 1 = ordinary virtual-warp sweep.
  std::uint32_t team_warps = 1;
};

/// Auto-tuned degree-bin layout: ascending max_degree, last bin unbounded.
struct AdaptivePlan {
  std::vector<AdaptiveBin> bins;
  bool calibrated = false;  ///< widths refined by measured probes

  std::size_t bin_of(std::uint32_t degree) const;
  /// Inclusive per-bin upper bounds (the partitioner's input).
  std::vector<std::uint32_t> bounds() const;
  /// "w=1 d<=2 | w=8 d<=64 | w=32 team=4" style one-liner.
  std::string summary() const;
};

/// Human label of bin `b` ("tiny", "small", ..., "outlier" for team bins):
/// used to tag per-bin kernel launches in a StatsLedger.
std::string bin_label(const AdaptivePlan& plan, std::size_t b);

/// Modeled per-vertex expansion cost (cycles) of a degree-`degree` vertex
/// under virtual warp width `width` — the analytic objective the
/// auto-tuner minimizes. Mirrors the simulator's cost model: the SISD
/// phase is issued once per warp (a vertex pays W/32 of it) and the SIMD
/// phase pays per strip; W-invariant scattered per-edge traffic is
/// omitted because it does not move the argmin.
double adaptive_model_cost(std::uint32_t degree, int width,
                           const simt::SimConfig& cfg);

/// Selects bin boundaries and per-bin W from the graph's degree
/// histogram/percentiles (graph::metrics): per power-of-two degree class,
/// pick the model-optimal W at the class's mean degree, merge adjacent
/// classes that agree, cap the bin count, and mark degrees above
/// max(adaptive.outlier_degree, p99) as a warp-team outlier bin.
AdaptivePlan tune_adaptive_plan(const graph::Csr& graph,
                                const simt::SimConfig& cfg,
                                const KernelOptions& opts);

// -- feedback-calibrated cost model -----------------------------------------

/// Shape key of one scheduler cost-model observation: the work-unit kind
/// (BFS vs SSSP), the log2 bucket of its fused-group width (1 for
/// singles, up to 6 for a full 32-query group), and the log2 bucket of
/// the graph's mean degree — so corrections learned over one graph shape
/// never contaminate another's when an engine (or a future shard router)
/// sees mixed traffic.
struct CostModelKey {
  bool bfs = true;
  std::uint32_t width_bucket = 1;   ///< std::bit_width(fused query count)
  std::uint32_t degree_bucket = 0;  ///< std::bit_width(round(mean degree))
  auto operator<=>(const CostModelKey&) const = default;
};

/// One correction-table row (QueryEngine::cost_model_report()).
struct CostModelEntry {
  CostModelKey key;
  /// EWMA of observed_ms / raw_estimate for this shape. Multiplying a
  /// raw estimate by it yields a modeled-ms prediction sharpened by
  /// every unit of this shape that has completed.
  double correction = 1.0;
  std::uint64_t samples = 0;
  double last_observed_ms = 0.0;
  double last_raw_estimate = 0.0;
};

/// The cost model's feedback loop: estimate_unit_cost prices a BFS sweep
/// from the degree histogram but cannot see frontier evolution, so a
/// high-diameter unit and a low-diameter one cost the same a priori.
/// This table learns the gap away: after a unit completes, observe()
/// folds its observed modeled time over its raw estimate into a
/// per-shape EWMA correction, and calibrated() applies that correction
/// to later estimates of the same shape. Deterministic by construction —
/// the state is a pure function of the observation sequence, and the
/// simulator's observed times are replay-stable — so calibrated plans
/// replay bit-identically. Entries are kept key-sorted for stable
/// reporting.
class CostModelCalibration {
 public:
  /// `alpha` is the EWMA weight of each new observation, in (0, 1].
  explicit CostModelCalibration(double alpha = 0.3);

  /// Folds one completed unit into its shape's correction. The first
  /// sample seeds the correction at exactly observed/raw; later samples
  /// blend in with weight alpha. Non-positive estimates or observations
  /// are ignored (nothing useful to learn from a free unit).
  void observe(const CostModelKey& key, double raw_estimate,
               double observed_ms);

  /// The shape's current correction factor; 1.0 when unseen.
  double correction(const CostModelKey& key) const;

  /// raw_estimate sharpened by the shape's correction: raw model units
  /// on a cold table, approximately modeled ms once samples exist.
  double calibrated(const CostModelKey& key, double raw_estimate) const {
    return raw_estimate * correction(key);
  }

  /// All rows, key-sorted. Empty on a cold table.
  const std::vector<CostModelEntry>& entries() const { return entries_; }

  double alpha() const { return alpha_; }

  /// Replaces the entry table wholesale (rows are re-sorted by key;
  /// duplicate keys are rejected). The import half of cross-process
  /// warm-start: a fresh engine adopts another engine's learned
  /// corrections while keeping its own alpha.
  void replace_entries(std::vector<CostModelEntry> entries);

  /// Serializes alpha and every entry to a deterministic JSON document
  /// (stable key order, round-trip-exact doubles) suitable for saving to
  /// disk and re-importing with from_json() in another process.
  std::string to_json() const;

  /// Parses a to_json() document back into a calibration table. Strict:
  /// throws std::invalid_argument on anything malformed (unknown fields,
  /// wrong types, duplicate keys, alpha outside (0, 1]).
  static CostModelCalibration from_json(const std::string& json);

 private:
  double alpha_;
  std::vector<CostModelEntry> entries_;  ///< key-sorted
};

/// What the recovery machinery did during one run (zeros on the
/// fault-free path).
struct RecoveryStats {
  std::uint32_t retries = 0;      ///< iteration re-executions after faults
  std::uint32_t checkpoints = 0;  ///< per-iteration snapshots taken
  std::uint32_t restores = 0;     ///< rollbacks to the last good snapshot
  std::uint32_t graph_refreshes = 0;  ///< CSR re-uploads after fatal ECC
  double backoff_ms = 0;          ///< modeled retry backoff charged
};

/// Per-run result statistics common to every GPU algorithm.
struct GpuRunStats {
  simt::KernelStats kernels;   ///< aggregated over every launch of the run
  double transfer_ms = 0;      ///< modeled H2D/D2H during the run
  std::uint32_t iterations = 0;  ///< levels / relaxation rounds / sweeps
  /// Per-label launch breakdown; kAdaptive fills one entry per degree bin
  /// ("bfs.level.expand.tiny", ...). Empty for the static mappings.
  simt::StatsLedger bins;
  /// Checkpoint/retry activity (resilience.hpp); zeros when no fault
  /// plan was armed.
  RecoveryStats recovery;

  double kernel_ms(const simt::SimConfig& cfg) const {
    return kernels.elapsed_ms(cfg);
  }
  double total_ms(const simt::SimConfig& cfg) const {
    return kernel_ms(cfg) + transfer_ms;
  }
};

/// Device-resident CSR (row offsets, adjacency, optional weights).
class GpuCsr {
 public:
  GpuCsr(gpu::Device& device, const graph::Csr& host)
      : n_(host.num_nodes()),
        m_(host.num_edges()),
        row_(device, host.row),
        adj_(device, host.adj),
        weights_(device, host.weights) {}

  std::uint32_t num_nodes() const { return n_; }
  std::uint64_t num_edges() const { return m_; }
  bool weighted() const { return weights_.size() == m_ && m_ > 0; }

  /// Re-uploads the CSR arrays from `host` (which must be the graph this
  /// object was built from): recovery path after an uncorrectable ECC
  /// event corrupted resident graph data. Charges the H2D transfers.
  void reupload(const graph::Csr& host) {
    if (host.row.size() != row_.size() || host.adj.size() != adj_.size() ||
        host.weights.size() != weights_.size()) {
      throw std::invalid_argument("GpuCsr::reupload: shape mismatch");
    }
    row_.upload(host.row);
    adj_.upload(host.adj);
    if (!host.weights.empty()) weights_.upload(host.weights);
  }

  /// Page size of the partial ECC-recovery fast path: an uncorrectable
  /// flip dirties one byte, so re-uploading the containing 64 KiB page
  /// of the victim allocation restores it — a multi-MB adjacency array
  /// no longer pays its full H2D transfer for one flipped bit.
  static constexpr std::uint64_t kEccPageBytes = 64 * 1024;

  /// Partial-recovery fast path: when the resolved ECC victim
  /// (gpu::Device::resolve_ecc_offset) lies inside one of the CSR
  /// arrays, re-uploads only the containing kEccPageBytes page slice of
  /// that array (clamped to the allocation), charging the slice's H2D
  /// transfer instead of the whole array's. Returns false (uploading
  /// nothing) when no CSR array lives at victim.vaddr: the victim was
  /// someone else's buffer.
  bool reupload_page(const gpu::EccVictim& victim, const graph::Csr& host) {
    if (host.row.size() != row_.size() || host.adj.size() != adj_.size() ||
        host.weights.size() != weights_.size()) {
      throw std::invalid_argument("GpuCsr::reupload_page: shape mismatch");
    }
    return page_slice(row_, host.row, victim) ||
           page_slice(adj_, host.adj, victim) ||
           page_slice(weights_, host.weights, victim);
  }

  simt::DevPtr<const std::uint32_t> row() const { return row_.cptr(); }
  simt::DevPtr<const std::uint32_t> adj() const { return adj_.cptr(); }
  simt::DevPtr<const std::uint32_t> weights() const {
    return weights_.cptr();
  }

 private:
  /// Re-uploads the kEccPageBytes page of `buf` containing the victim
  /// byte when the victim's allocation is `buf`; no-op (false) otherwise.
  static bool page_slice(gpu::DeviceBuffer<std::uint32_t>& buf,
                         const std::vector<std::uint32_t>& host,
                         const gpu::EccVictim& victim) {
    if (buf.size() == 0 || victim.vaddr != buf.cptr().vaddr) return false;
    const std::uint64_t begin =
        (victim.offset_in_alloc / kEccPageBytes) * kEccPageBytes;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + kEccPageBytes, buf.size_bytes());
    const auto first = static_cast<std::size_t>(begin / sizeof(std::uint32_t));
    const auto count =
        static_cast<std::size_t>((end - begin) / sizeof(std::uint32_t));
    buf.upload_range(first, std::span<const std::uint32_t>(host)
                                .subspan(first, count));
    return true;
  }

  std::uint32_t n_;
  std::uint64_t m_;
  gpu::DeviceBuffer<std::uint32_t> row_;
  gpu::DeviceBuffer<std::uint32_t> adj_;
  gpu::DeviceBuffer<std::uint32_t> weights_;
};

/// Mask with one bit per virtual-warp leader lane (lane % W == 0).
std::uint32_t leader_lane_mask(int virtual_warp_width);

}  // namespace maxwarp::algorithms

#include "algorithms/gpu_graph.hpp"

#include <utility>

#include "algorithms/adaptive_dispatch.hpp"
#include "graph/builder.hpp"
#include "simt/fault.hpp"

namespace maxwarp::algorithms {

GpuGraph::GpuGraph(gpu::Device& device, graph::Csr host)
    : GpuGraph(device,
               std::make_shared<const graph::Csr>(std::move(host))) {}

GpuGraph::GpuGraph(gpu::Device& device,
                   std::shared_ptr<const graph::Csr> host)
    : device_(&device), host_(std::move(host)), csr_(device, *host_) {}

GpuGraph::~GpuGraph() = default;
GpuGraph::GpuGraph(GpuGraph&&) noexcept = default;
GpuGraph& GpuGraph::operator=(GpuGraph&&) noexcept = default;

const AdaptiveState& GpuGraph::adaptive_state(const KernelOptions& opts,
                                              bool reverse) const {
  if (reverse && symmetric()) reverse = false;  // transpose aliases csr()
  const std::size_t slot = reverse ? 1 : 0;
  const AdaptiveKey key{opts.adaptive, opts.warps_per_deferred_task};
  if (!adaptive_[slot] || !(adaptive_key_[slot] == key)) {
    const GpuCsr& csr = reverse ? reverse_csr() : csr_;
    const graph::Csr& host = reverse ? reverse_host() : *host_;
    adaptive_[slot] = std::make_unique<AdaptiveState>(build_adaptive_state(
        *device_, csr, host, opts, reverse ? "adaptive.rev" : "adaptive"));
    adaptive_key_[slot] = key;
  }
  return *adaptive_[slot];
}

void GpuGraph::rebuild_adaptive_slot(std::size_t slot) const {
  // Rebuild *in place*: drivers hold a raw AdaptiveState pointer across
  // iterations, so the object's address must survive the refresh.
  KernelOptions opts;
  opts.adaptive = adaptive_key_[slot].adaptive;
  opts.warps_per_deferred_task = adaptive_key_[slot].warps_per_deferred_task;
  const bool reverse = slot == 1;
  *adaptive_[slot] = build_adaptive_state(
      *device_, reverse ? *reverse_csr_ : csr_,
      reverse ? *reverse_host_ : *host_, opts,
      reverse ? "adaptive.rev" : "adaptive");
}

void GpuGraph::refresh_device_data() const {
  csr_.reupload(*host_);
  if (reverse_csr_) reverse_csr_->reupload(*reverse_host_);
  // The cached adaptive partitions are device-resident too and could be
  // the ECC victim.
  for (std::size_t slot = 0; slot < 2; ++slot) {
    if (adaptive_[slot]) rebuild_adaptive_slot(slot);
  }
}

void GpuGraph::refresh_device_data(const simt::FaultEvent& event) const {
  // Only an uncorrectable ECC event names a victim byte; anything else
  // (or an offset that no longer resolves — the allocation was freed
  // between fault and recovery) cannot be attributed, so pay the full
  // conservative refresh.
  if (event.kind != simt::FaultKind::kEccUncorrectable) {
    refresh_device_data();
    return;
  }
  const auto victim = device_->resolve_ecc_offset(event.byte_offset);
  if (!victim) {
    refresh_device_data();
    return;
  }
  // A CSR victim re-uploads only the containing 64 KiB page slice of its
  // array (GpuCsr::kEccPageBytes) — one flipped bit in a multi-MB
  // adjacency no longer pays the whole array's modeled transfer.
  if (csr_.reupload_page(*victim, *host_)) return;
  if (reverse_csr_ && reverse_csr_->reupload_page(*victim, *reverse_host_)) {
    return;
  }
  for (std::size_t slot = 0; slot < 2; ++slot) {
    if (!adaptive_[slot]) continue;
    // The sweeps read only the partition's entries buffer at run time;
    // a flip there re-runs the (charged) partition build for that slot.
    if (adaptive_[slot]->entries().vaddr == victim->vaddr) {
      rebuild_adaptive_slot(slot);
      return;
    }
  }
  // The victim is algorithm scratch (or another caller's buffer): graph
  // data is intact, and the checkpoint-restore path that follows every
  // ECC recovery re-seeds scratch state anyway. Re-uploading the CSR
  // here would only charge transfers for nothing.
}

bool GpuGraph::symmetric() const {
  if (!symmetric_) symmetric_ = host_->is_symmetric();
  return *symmetric_;
}

const GpuCsr& GpuGraph::reverse_csr() const {
  if (reverse_csr_) return *reverse_csr_;
  if (symmetric()) return csr_;
  if (!reverse_host_) {
    reverse_host_ = std::make_unique<graph::Csr>(graph::reverse(*host_));
  }
  reverse_csr_ = std::make_unique<GpuCsr>(*device_, *reverse_host_);
  return *reverse_csr_;
}

const graph::Csr& GpuGraph::reverse_host() const {
  if (symmetric()) return *host_;
  if (!reverse_host_) {
    reverse_host_ = std::make_unique<graph::Csr>(graph::reverse(*host_));
  }
  return *reverse_host_;
}

std::uint64_t GpuGraph::traversed_edges(
    const std::vector<std::uint32_t>& reached, std::uint32_t unreached) const {
  std::uint64_t edges = 0;
  const std::uint32_t n = host_->num_nodes();
  for (std::uint32_t v = 0; v < n && v < reached.size(); ++v) {
    if (reached[v] != unreached) edges += host_->degree(v);
  }
  return edges;
}

}  // namespace maxwarp::algorithms

// GpuGraph — a device-resident graph handle, and the canonical first
// argument of every GPU algorithm entry point.
//
// Constructing one uploads the CSR once (charged to the device's transfer
// model on the current stream) and keeps the host copy, so per-query costs
// stop re-paying the upload and host-side accounting (degrees, TEPS
// numerators) needs no second graph argument. Algorithms that walk
// in-edges — PageRank's pull sweep, the bottom-up half of
// direction-optimizing BFS — ask for reverse_csr(), which is built,
// uploaded, and cached on first use; symmetric graphs alias the forward
// CSR and pay nothing.
//
// This replaced the old per-algorithm overload pairs
// (gpu::Device&, GpuCsr) / (gpu::Device&, graph::Csr): the former forced
// callers to juggle a second object with no host data, the latter
// re-uploaded the graph on every call.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "graph/csr.hpp"

namespace maxwarp::simt {
struct FaultEvent;  // simt/fault.hpp
}

namespace maxwarp::algorithms {

struct AdaptiveState;  // adaptive_dispatch.hpp

class GpuGraph {
 public:
  /// Uploads `host` to `device` (H2D charged on the current stream) and
  /// takes ownership of the host copy.
  GpuGraph(gpu::Device& device, graph::Csr host);

  /// Shared-host constructor: uploads *host without copying it. Replica
  /// sets (algorithms::ReplicatedGraph) hand every per-device handle the
  /// same immutable host CSR, so N replicas hold one host copy — and
  /// bit-identity across devices is structural, not a property to test
  /// per upload.
  GpuGraph(gpu::Device& device, std::shared_ptr<const graph::Csr> host);
  ~GpuGraph();

  GpuGraph(GpuGraph&&) noexcept;
  GpuGraph& operator=(GpuGraph&&) noexcept;
  GpuGraph(const GpuGraph&) = delete;
  GpuGraph& operator=(const GpuGraph&) = delete;

  /// The owning device (mutable: launches and lazy uploads go through it).
  gpu::Device& device() const { return *device_; }

  const graph::Csr& host() const { return *host_; }
  /// The shared host copy (see the shared-host constructor).
  const std::shared_ptr<const graph::Csr>& host_ptr() const { return host_; }
  const GpuCsr& csr() const { return csr_; }

  std::uint32_t num_nodes() const { return csr_.num_nodes(); }
  std::uint64_t num_edges() const { return csr_.num_edges(); }
  bool weighted() const { return csr_.weighted(); }

  /// True iff the graph equals its own transpose (cached after the first
  /// check — Csr::is_symmetric is an O(m) host scan).
  bool symmetric() const;

  /// Device-resident transpose, built/uploaded on first use and cached
  /// for the lifetime of the handle; symmetric graphs return csr().
  const GpuCsr& reverse_csr() const;

  /// Host transpose backing reverse_csr(); host() when symmetric.
  const graph::Csr& reverse_host() const;

  /// Re-uploads the device-resident CSR arrays (forward and, if already
  /// built, reverse) from the pristine host copies. Recovery path after
  /// an uncorrectable ECC event: the fault may have corrupted graph data
  /// rather than algorithm state, and the host copy is the ground truth.
  /// Charges the H2D transfers on the current stream.
  void refresh_device_data() const;

  /// Targeted recovery: resolves the uncorrectable ECC event's victim
  /// byte (gpu::Device::resolve_ecc_offset) and re-uploads only the
  /// containing graph allocation — one CSR array, or one rebuilt
  /// adaptive partition — charging proportionally less modeled transfer
  /// time than the full refresh. A victim outside graph-owned memory
  /// (algorithm scratch) needs no re-upload at all: the caller's
  /// checkpoint restore re-seeds scratch state. Falls back to the full
  /// refresh_device_data() when the event cannot be attributed (not an
  /// ECC event, or the allocation was freed since).
  void refresh_device_data(const simt::FaultEvent& event) const;

  /// Sum of out-degrees over nodes whose entry in `reached` differs from
  /// `unreached` — the TEPS numerator every BFS result reports.
  std::uint64_t traversed_edges(const std::vector<std::uint32_t>& reached,
                                std::uint32_t unreached) const;

  /// Cached kAdaptive dispatch state (auto-tuned plan + full-vertex
  /// degree partition; see adaptive_dispatch.hpp), built on first use
  /// like reverse_csr() and shared by every later run on this handle —
  /// a QueryEngine batch tunes and partitions once, not per query.
  /// Rebuilt only when the options' adaptive knobs change. `reverse`
  /// selects a second state keyed to the transpose's degrees (PageRank's
  /// and BC's pull sweeps).
  const AdaptiveState& adaptive_state(const KernelOptions& opts,
                                      bool reverse = false) const;

 private:
  /// The option fields the cached state depends on.
  struct AdaptiveKey {
    KernelOptions::Adaptive adaptive;
    std::uint32_t warps_per_deferred_task = 0;
    bool operator==(const AdaptiveKey&) const = default;
  };

  /// Re-runs build_adaptive_state for one cached slot, in place.
  void rebuild_adaptive_slot(std::size_t slot) const;

  gpu::Device* device_;
  std::shared_ptr<const graph::Csr> host_;
  mutable GpuCsr csr_;  ///< mutable: refresh_device_data re-uploads in place
  mutable std::optional<bool> symmetric_;
  mutable std::unique_ptr<graph::Csr> reverse_host_;
  mutable std::unique_ptr<GpuCsr> reverse_csr_;
  mutable std::unique_ptr<AdaptiveState> adaptive_[2];
  mutable AdaptiveKey adaptive_key_[2];
};

}  // namespace maxwarp::algorithms

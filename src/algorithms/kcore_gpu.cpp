#include "algorithms/kcore_gpu.hpp"

#include <queue>
#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/resilience.hpp"
#include "gpu/buffer.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

GpuKCoreResult k_core_gpu(const GpuGraph& g, std::uint32_t k,
                          const KernelOptions& opts) {
  gpu::Device& device = g.device();
  validate_kernel_options(opts, "k_core_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "k_core_gpu: supports thread-mapped, warp-centric, and adaptive");
  }
  const std::uint32_t n = g.num_nodes();
  GpuKCoreResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  const GpuCsr& gpu_graph = g.csr();
  const auto row = gpu_graph.row();
  const auto adj = gpu_graph.adj();
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &g.adaptive_state(opts)
                                      : nullptr;

  std::vector<std::uint32_t> deg_host(n);
  for (NodeId v = 0; v < n; ++v) deg_host[v] = g.host().degree(v);
  gpu::DeviceBuffer<std::uint32_t> degree(device, deg_host);
  gpu::DeviceBuffer<std::uint32_t> alive(device, n);
  alive.fill(1);
  gpu::DeviceBuffer<std::uint32_t> changed(device, 1);

  auto degree_ptr = degree.ptr();
  auto alive_ptr = alive.ptr();
  auto changed_ptr = changed.ptr();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);

  // Decrement every neighbour's residual degree (the peel edge phase).
  const auto decrement_edges = [&](WarpCtx& w,
                                   const Lanes<std::uint32_t>& cursor) {
    Lanes<std::uint32_t> nbr{};
    w.load_global(adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    // Residual degree of a dead vertex may go stale; only the
    // alive check consumes it, and dead stays dead.
    w.atomic_add(degree_ptr, [&](int l) {
      return nbr[static_cast<std::size_t>(l)];
    }, [](int) { return 0xffffffffu; });  // -1 in two's complement
  };
  const auto peel_body = [&](WarpCtx& w, const vw::Layout& bl,
                             LaneMask valid,
                             const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> is_alive{}, deg{};
    w.with_mask(valid, [&] {
      w.load_global(alive_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, is_alive);
      w.load_global(degree_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, deg);
    });
    const LaneMask peel = valid & w.ballot([&](int l) {
      const auto i = static_cast<std::size_t>(l);
      return is_alive[i] != 0 && deg[i] < k;
    });
    if (peel == 0) return;

    w.with_mask(peel, [&] {
      w.store_global(alive_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, [](int) { return 0u; });
      w.store_global(changed_ptr, [](int) { return 0; },
                     [](int) { return 1u; });
    });

    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, peel, begin, end);
    vw::simd_strip_loop(w, bl, begin, end, peel,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          decrement_edges(w, cursor);
                        });
  };
  // Hub peel via warp teams: the kill store is idempotent and the
  // decrements commute, so the split cannot change the fixpoint.
  const auto peel_team = [&](WarpCtx& w, std::uint32_t v,
                             std::uint32_t part, std::uint32_t tw) {
    if (w.load_global_uniform(alive_ptr, v) == 0) return;
    if (w.load_global_uniform(degree_ptr, v) >= k) return;
    const LaneMask one = simt::lane_bit(0);
    w.with_mask(one, [&] {
      w.store_global(alive_ptr, [&, v](int) { return v; },
                     [](int) { return 0u; });
      w.store_global(changed_ptr, [](int) { return 0; },
                     [](int) { return 1u; });
    });
    adaptive_team_strip(w, row, v, part, tw,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          decrement_edges(w, cursor);
                        });
  };

  // Checkpoint/retry at the peel barrier (inactive unless a fault plan
  // is armed).
  ResilientLoop loop(g, opts, "k_core_gpu");
  loop.track(degree);
  loop.track(alive);
  loop.track(changed);

  for (;;) {
    loop.iteration([&] {
    changed.fill(0);
    if (adaptive != nullptr) {
      adaptive_sweep_with_teams(device, *adaptive,
                                opts.resident_warps_per_sm, "kcore.peel",
                                result.stats, peel_body, peel_team);
    } else {
      const std::uint64_t warps_needed =
          (static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(warps_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

      result.stats.kernels.add(device.launch(
          dims.named("kcore.peel"), [&, n](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < n; ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid = vw::assign_static_tasks(
              w, layout, round, total_groups, n, task);
          if (valid == 0) continue;
          peel_body(w, layout, valid, task);
        }
      }));
    }
    });
    ++result.stats.iterations;
    if (changed.read(0) == 0) break;
  }
  result.stats.recovery = loop.stats();

  const auto alive_host = alive.download();
  result.in_core.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.in_core[v] = static_cast<std::uint8_t>(alive_host[v]);
    result.survivors += alive_host[v];
  }
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

std::vector<std::uint8_t> k_core_cpu(const graph::Csr& g, std::uint32_t k) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> degree(n);
  std::vector<std::uint8_t> in_core(n, 1);
  std::queue<NodeId> to_remove;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    if (degree[v] < k) {
      to_remove.push(v);
      in_core[v] = 0;
    }
  }
  while (!to_remove.empty()) {
    const NodeId v = to_remove.front();
    to_remove.pop();
    for (const NodeId u : g.neighbors(v)) {
      if (in_core[u] && --degree[u] < k) {
        in_core[u] = 0;
        to_remove.push(u);
      }
    }
  }
  return in_core;
}

}  // namespace maxwarp::algorithms

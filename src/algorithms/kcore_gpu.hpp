// GPU k-core extraction by parallel peeling.
//
// A vertex is in the k-core iff it survives repeatedly deleting every
// vertex of (residual) degree < k. Each GPU round scans the alive
// vertices, marks under-degree ones dead, and decrements their neighbours'
// residual degrees with atomics; rounds repeat until a fixed point. The
// neighbor-decrement loop is the usual variable-length scan, so both
// mappings apply. Peeling is confluent: the surviving set is independent
// of removal order, which is what makes the parallel version correct.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuKCoreResult {
  std::vector<std::uint8_t> in_core;  ///< 1 iff the vertex is in the k-core
  std::uint32_t survivors = 0;
  GpuRunStats stats;
};

/// The graph must be undirected (symmetric). Supports kThreadMapped and
/// kWarpCentric.
GpuKCoreResult k_core_gpu(const GpuGraph& g, std::uint32_t k,
                          const KernelOptions& opts = {});

/// CPU reference (queue-based peeling).
std::vector<std::uint8_t> k_core_cpu(const graph::Csr& g, std::uint32_t k);

}  // namespace maxwarp::algorithms

#include "algorithms/microbench.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "gpu/buffer.hpp"
#include "util/rng.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

double MicrobenchSpec::imbalance() const {
  if (work.empty()) return 1.0;
  const std::uint32_t max_work = *std::max_element(work.begin(), work.end());
  const double mean = static_cast<double>(total_items()) /
                      static_cast<double>(work.size());
  return mean > 0 ? static_cast<double>(max_work) / mean : 1.0;
}

MicrobenchSpec MicrobenchSpec::from_work(std::vector<std::uint32_t> work) {
  MicrobenchSpec spec;
  spec.work = std::move(work);
  spec.offsets.assign(spec.work.size() + 1, 0);
  std::partial_sum(spec.work.begin(), spec.work.end(),
                   spec.offsets.begin() + 1);
  return spec;
}

MicrobenchSpec MicrobenchSpec::uniform(std::uint32_t tasks,
                                       std::uint32_t items,
                                       std::uint64_t seed) {
  (void)seed;  // shape is deterministic; kept for signature symmetry
  return from_work(std::vector<std::uint32_t>(tasks, items));
}

MicrobenchSpec MicrobenchSpec::lognormal(std::uint32_t tasks,
                                         double mean_items, double sigma,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve mu for the target
  // mean so the sweep holds expected total work constant.
  const double mu = std::log(mean_items) - sigma * sigma / 2.0;
  std::vector<std::uint32_t> work(tasks);
  for (auto& x : work) {
    x = static_cast<std::uint32_t>(
        std::min(1e7, std::round(rng.next_lognormal(mu, sigma))));
  }
  return from_work(std::move(work));
}

MicrobenchSpec MicrobenchSpec::with_outliers(std::uint32_t tasks,
                                             std::uint32_t base,
                                             std::uint32_t outliers,
                                             std::uint32_t heavy,
                                             std::uint64_t seed) {
  std::vector<std::uint32_t> work(tasks, base);
  util::Rng rng(seed);
  for (std::uint32_t i = 0; i < outliers && tasks > 0; ++i) {
    work[rng.next_below(tasks)] = heavy;
  }
  return from_work(std::move(work));
}

std::vector<std::uint64_t> microbench_reference(const MicrobenchSpec& spec) {
  std::vector<std::uint64_t> out(spec.num_tasks(), 0);
  for (std::uint32_t t = 0; t < spec.num_tasks(); ++t) {
    for (std::uint32_t i = spec.offsets[t]; i < spec.offsets[t + 1]; ++i) {
      out[t] += MicrobenchSpec::item_value(i);
    }
  }
  return out;
}

MicrobenchResult run_microbench(gpu::Device& device,
                                const MicrobenchSpec& spec,
                                const KernelOptions& opts) {
  if (opts.mapping == Mapping::kWarpCentricDefer) {
    throw std::invalid_argument("run_microbench: defer mapping unsupported");
  }
  const std::uint32_t tasks = spec.num_tasks();
  MicrobenchResult result;
  result.stats.kernels.launches = 0;
  if (tasks == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> offsets(device, spec.offsets);
  gpu::DeviceBuffer<std::uint64_t> out(device, tasks);
  out.fill(0);
  gpu::DeviceBuffer<std::uint32_t> counter(device, 1);
  counter.fill(0);

  const auto off_ptr = offsets.cptr();
  auto out_ptr = out.ptr();
  auto counter_ptr = counter.ptr();
  // One "real" update issue is always charged; extra compute issues model
  // the rest of the per-item work.
  const int extra_compute =
      spec.compute_per_item > 1
          ? static_cast<int>(spec.compute_per_item) - 1
          : 0;

  if (opts.mapping == Mapping::kThreadMapped) {
    const auto dims = device.dims_for_threads(tasks);
    result.stats.kernels.add(device.launch(dims, [&, tasks](WarpCtx& w) {
      Lanes<std::uint32_t> t{};
      w.alu([&](int l) {
        t[static_cast<std::size_t>(l)] =
            static_cast<std::uint32_t>(w.thread_id(l));
      });
      Lanes<std::uint32_t> cursor{}, end{};
      w.load_global(off_ptr, [&](int l) {
        return t[static_cast<std::size_t>(l)];
      }, cursor);
      w.load_global(off_ptr, [&](int l) {
        return t[static_cast<std::size_t>(l)] + 1;
      }, end);
      Lanes<std::uint64_t> acc{};
      w.loop_while(
          [&](int l) {
            return cursor[static_cast<std::size_t>(l)] <
                   end[static_cast<std::size_t>(l)];
          },
          [&] {
            w.alu_n(extra_compute, [](int) {});
            w.alu([&](int l) {
              const auto i = static_cast<std::size_t>(l);
              acc[i] += MicrobenchSpec::item_value(cursor[i]);
              ++cursor[i];
            });
          });
      w.store_global(out_ptr, [&](int l) {
        return t[static_cast<std::size_t>(l)];
      }, [&](int l) { return acc[static_cast<std::size_t>(l)]; });
    }));
  } else {
    const vw::Layout layout(opts.virtual_warp_width);
    const std::uint32_t leader_mask = leader_lane_mask(layout.width);
    const bool dynamic = opts.mapping == Mapping::kWarpCentricDynamic;

    // Shared per-group task processing.
    auto process = [&](WarpCtx& w, const Lanes<std::uint32_t>& task,
                       LaneMask valid) {
      if (valid == 0) return;
      Lanes<std::uint32_t> begin{}, end{};
      vw::load_task_ranges(w, off_ptr, task, valid, begin, end);
      Lanes<std::uint64_t> partial{};
      vw::simd_strip_loop(w, layout, begin, end, valid,
                          [&](const Lanes<std::uint32_t>& cursor) {
                            w.alu_n(extra_compute, [](int) {});
                            w.alu([&](int l) {
                              const auto i = static_cast<std::size_t>(l);
                              partial[i] +=
                                  MicrobenchSpec::item_value(cursor[i]);
                            });
                          });
      const Lanes<std::uint64_t> sums =
          vw::group_reduce_add(w, layout, partial, valid);
      w.with_mask(valid & leader_mask, [&] {
        w.store_global(out_ptr, [&](int l) {
          return task[static_cast<std::size_t>(l)];
        }, [&](int l) { return sums[static_cast<std::size_t>(l)]; });
      });
    };

    if (dynamic) {
      // One chunk claim per warp + least-loaded scheduling (the model of
      // dynamic distribution; see SchedulePolicy).
      const std::uint32_t chunk = std::max<std::uint32_t>(
          opts.dynamic_chunk, static_cast<std::uint32_t>(layout.groups()));
      const std::uint64_t warps_needed =
          (static_cast<std::uint64_t>(tasks) + chunk - 1) / chunk;
      auto dims = device.dims_for_warps(warps_needed);
      dims.policy = simt::SchedulePolicy::kLeastLoaded;
      result.stats.kernels.add(
          device.launch(dims, [&, tasks, chunk](WarpCtx& w) {
            const std::uint32_t start =
                vw::claim_chunk(w, counter_ptr, chunk);
            if (start >= tasks) return;
            for (std::uint32_t off = 0; off < chunk;
                 off += static_cast<std::uint32_t>(layout.groups())) {
              Lanes<std::uint32_t> task{};
              const LaneMask valid = vw::assign_chunk_tasks(
                  w, layout, start + off,
                  std::min<std::uint32_t>(
                      chunk - off,
                      static_cast<std::uint32_t>(layout.groups())),
                  tasks, task);
              process(w, task, valid);
              if (start + off + static_cast<std::uint32_t>(
                                    layout.groups()) >= tasks) {
                break;
              }
            }
          }));
    } else {
      const std::uint64_t warps_needed =
          (static_cast<std::uint64_t>(tasks) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(warps_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
      result.stats.kernels.add(device.launch(dims, [&, tasks](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < tasks;
             ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid = vw::assign_static_tasks(
              w, layout, round, total_groups, tasks, task);
          process(w, task, valid);
        }
      }));
    }
  }

  result.stats.iterations = 1;
  result.checksum = out.download();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace maxwarp::algorithms

// Synthetic-imbalance microbenchmark (the paper's controlled experiment).
//
// A task array replaces the graph: task t owns work[t] items (CSR-like
// offsets). Processing an item costs `compute_per_item` ALU issues and
// produces a deterministic value that is accumulated into the task's
// checksum — i.e. the workload is pure computation with a *known* cost per
// item, exactly like the paper's synthetic kernel. This isolates the
// imbalance/underutilization trade-off: under thread-mapping a warp pays
// for the *maximum* item count in its 32-task window, under warp-mapping
// for the group-wise sums — while memory effects (which would wash out the
// signal, since scattered gathers cost the same under either mapping) are
// studied separately on real adjacency layouts in F8.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"

namespace maxwarp::algorithms {

struct MicrobenchSpec {
  std::vector<std::uint32_t> work;     ///< items per task
  std::vector<std::uint32_t> offsets;  ///< prefix sums (size tasks+1)
  /// ALU issues charged per item (the paper's per-item work knob).
  std::uint32_t compute_per_item = 8;

  std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(work.size());
  }
  std::uint64_t total_items() const {
    return offsets.empty() ? 0 : offsets.back();
  }

  /// max(work) / mean(work): 1.0 is perfectly balanced.
  double imbalance() const;

  /// Deterministic per-item payload; the value item i contributes to its
  /// task's checksum (shared by kernels and the host reference).
  static std::uint32_t item_value(std::uint32_t item) {
    return (item * 2654435761u) >> 16 & 0xffffu;
  }

  /// Every task gets exactly `items` items.
  static MicrobenchSpec uniform(std::uint32_t tasks, std::uint32_t items,
                                std::uint64_t seed = 7);

  /// Lognormal(mu, sigma) item counts, rescaled so the total item count
  /// stays ~= tasks * mean_items across sigma values (so sweeps compare
  /// equal work).
  static MicrobenchSpec lognormal(std::uint32_t tasks, double mean_items,
                                  double sigma, std::uint64_t seed = 7);

  /// All tasks get `base` items except `outliers` tasks with `heavy` items.
  static MicrobenchSpec with_outliers(std::uint32_t tasks,
                                      std::uint32_t base,
                                      std::uint32_t outliers,
                                      std::uint32_t heavy,
                                      std::uint64_t seed = 7);

  /// Builds offsets from `work` (used by the named constructors and by
  /// callers assembling custom layouts).
  static MicrobenchSpec from_work(std::vector<std::uint32_t> work);
};

struct MicrobenchResult {
  GpuRunStats stats;
  /// out[t] = sum of item_value over task t's items; validated against the
  /// host reference by the tests (proves the mapping machinery touches
  /// every item exactly once).
  std::vector<std::uint64_t> checksum;
};

/// Supports kThreadMapped, kWarpCentric and kWarpCentricDynamic.
MicrobenchResult run_microbench(gpu::Device& device,
                                const MicrobenchSpec& spec,
                                const KernelOptions& opts);

/// Host-side ground truth for the checksums.
std::vector<std::uint64_t> microbench_reference(const MicrobenchSpec& spec);

}  // namespace maxwarp::algorithms

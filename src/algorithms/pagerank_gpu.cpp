#include "algorithms/pagerank_gpu.hpp"

#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/resilience.hpp"
#include "graph/builder.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

GpuPageRankResult pagerank_gpu(const GpuGraph& g,
                               const PageRankParams& params,
                               const KernelOptions& opts) {
  validate_kernel_options(opts, "pagerank_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "pagerank_gpu: supports thread-mapped, warp-centric, and adaptive");
  }
  gpu::Device& device = g.device();
  const std::uint32_t n = g.num_nodes();
  GpuPageRankResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;

  // Pull sweep runs over the transpose; the handle builds and uploads it
  // once, so only the first run on a directed graph pays for it. The
  // adaptive state is likewise cached — keyed to the transpose's degrees,
  // since those are the lists this kernel strips.
  const double transfer_before = device.transfer_totals().modeled_ms;
  const GpuCsr& gpu_rev = g.reverse_csr();
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &g.adaptive_state(opts, true)
                                      : nullptr;
  std::vector<std::uint32_t> outdeg_host(n);
  for (std::uint32_t v = 0; v < n; ++v) outdeg_host[v] = g.host().degree(v);
  gpu::DeviceBuffer<std::uint32_t> outdeg(device, outdeg_host);

  gpu::DeviceBuffer<float> rank(device, n);
  rank.fill(1.0f / static_cast<float>(n));
  gpu::DeviceBuffer<float> next(device, n);
  gpu::DeviceBuffer<float> dangling_acc(device, 1);

  const auto row = gpu_rev.row();
  const auto adj = gpu_rev.adj();
  const auto outdeg_ptr = outdeg.cptr();
  auto rank_ptr = rank.ptr();
  auto next_ptr = next.ptr();
  auto dangling_ptr = dangling_acc.ptr();

  const auto damping = static_cast<float>(params.damping);
  const float base = (1.0f - damping) / static_cast<float>(n);
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  float dangling_share = 0.0f;

  // The gather body is shared by the static sweep and every adaptive bin;
  // simd_strip_accumulate folds contributions in sequential edge order,
  // so the float result is bit-identical for every W (and every bin
  // split) — see the determinism note in adaptive_dispatch.hpp.
  const auto gather_body = [&](WarpCtx& w, const vw::Layout& body_layout,
                               LaneMask valid,
                               const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, valid, begin, end);
    Lanes<std::uint32_t> src{};
    Lanes<float> src_rank{};
    Lanes<std::uint32_t> src_deg{};
    const Lanes<float> group_sum = vw::simd_strip_accumulate<float>(
        w, body_layout, begin, end, valid,
        [&](const Lanes<std::uint32_t>& cursor) {
          w.load_global(adj, [&](int l) {
            return cursor[static_cast<std::size_t>(l)];
          }, src);
          w.load_global(rank_ptr, [&](int l) {
            return src[static_cast<std::size_t>(l)];
          }, src_rank);
          w.load_global(outdeg_ptr, [&](int l) {
            return src[static_cast<std::size_t>(l)];
          }, src_deg);
        },
        [&](int l) {
          const auto i = static_cast<std::size_t>(l);
          // src_deg > 0: a reverse edge implies an out-edge at src.
          return src_rank[i] / static_cast<float>(src_deg[i]);
        });
    const LaneMask leaders = valid & leader_lane_mask(body_layout.width);
    w.with_mask(leaders, [&] {
      w.store_global(next_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, [&](int l) {
        return base + damping * group_sum[static_cast<std::size_t>(l)] +
               dangling_share;
      });
    });
  };

  // Checkpoint/retry at the iteration barrier: rank/next/dangling_acc
  // evolve, outdeg is a run-constant ECC victim candidate. Inactive (and
  // free) unless a fault plan is armed.
  ResilientLoop loop(g, opts, "pagerank_gpu");
  loop.track_constant(outdeg);
  loop.track(rank);
  loop.track(next);
  loop.track(dangling_acc);

  for (int iter = 0; iter < params.iterations; ++iter) {
    loop.iteration([&] {
    // Pass 1: dangling-mass reduction. Thread-mapped with a per-warp
    // shuffle reduction and one leader atomic, the standard idiom; the
    // same launch under every mapping, so the sum is mapping-invariant.
    dangling_acc.fill(0.0f);
    {
      const auto dims = device.dims_for_threads(n);
      result.stats.kernels.add(
          device.launch(dims.named("pagerank.dangling"), [&, n](WarpCtx& w) {
        Lanes<std::uint32_t> v{};
        w.alu([&](int l) {
          v[static_cast<std::size_t>(l)] =
              static_cast<std::uint32_t>(w.thread_id(l));
        });
        Lanes<std::uint32_t> deg{};
        w.load_global(outdeg_ptr, [&](int l) {
          return v[static_cast<std::size_t>(l)];
        }, deg);
        Lanes<float> r{};
        w.load_global(rank_ptr, [&](int l) {
          return v[static_cast<std::size_t>(l)];
        }, r);
        Lanes<float> contrib{};
        w.alu([&](int l) {
          const auto i = static_cast<std::size_t>(l);
          contrib[i] = deg[i] == 0 ? r[i] : 0.0f;
        });
        const float warp_sum = w.reduce_add(contrib);
        if (warp_sum != 0.0f) {
          const int leader = simt::first_lane(w.active());
          w.with_mask(simt::lane_bit(leader), [&] {
            w.atomic_add(dangling_ptr, [](int) { return 0; },
                         [&](int) { return warp_sum; });
          });
        }
      }));
    }
    const float dangling = dangling_acc.read(0);
    dangling_share = damping * dangling / static_cast<float>(n);

    // Pass 2: gather over in-edges.
    if (adaptive != nullptr) {
      adaptive_sweep(device, *adaptive, "pagerank.gather", result.stats,
                     gather_body);
    } else {
      const std::uint64_t groups_needed =
          (static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(groups_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

      result.stats.kernels.add(
          device.launch(dims.named("pagerank.gather"), [&, n](WarpCtx& w) {
        for (std::uint64_t round = 0; round * total_groups < n; ++round) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid =
              vw::assign_static_tasks(w, layout, round, total_groups, n,
                                      task);
          if (valid == 0) continue;
          gather_body(w, layout, valid, task);
        }
      }));
    }
    });

    std::swap(rank, next);
    rank_ptr = rank.ptr();
    next_ptr = next.ptr();
    ++result.stats.iterations;
  }

  result.rank = rank.download();
  result.stats.recovery = loop.stats();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace maxwarp::algorithms

// GPU PageRank (pull-based power iteration).
//
// Each vertex gathers rank/out_degree over its *in*-edges (the reverse
// graph), so the inner loop is again a neighbor-list scan whose length is
// the in-degree — heavy-tailed on real graphs, which is why the paper's
// virtual-warp mapping helps here too. Dangling mass is accumulated by a
// device-side reduction each sweep. A fixed sweep count keeps runs
// comparable across mappings.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuPageRankResult {
  std::vector<float> rank;
  GpuRunStats stats;
};

struct PageRankParams {
  double damping = 0.85;
  int iterations = 20;
};

/// `g` is the *forward* graph; the pull sweep runs over g.reverse_csr(),
/// built once and cached on the handle. Supports Mapping::kThreadMapped,
/// Mapping::kWarpCentric, and Mapping::kAdaptive.
GpuPageRankResult pagerank_gpu(const GpuGraph& g,
                               const PageRankParams& params = {},
                               const KernelOptions& opts = {});

}  // namespace maxwarp::algorithms

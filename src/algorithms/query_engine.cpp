#include "algorithms/query_engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include <functional>
#include <optional>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/bfs_gpu.hpp"
#include "algorithms/cpu_reference.hpp"
#include "algorithms/resilience.hpp"
#include "algorithms/sssp_gpu.hpp"
#include "gpu/stream.hpp"
#include "simt/sanitizer.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

GpuMsBfsResult bfs_gpu_multi_source(const GpuGraph& g,
                                    std::span<const NodeId> sources,
                                    const KernelOptions& opts,
                                    MsBfsHandoff* handoff,
                                    const MsBfsHandoff* resume) {
  const auto k = static_cast<std::uint32_t>(sources.size());
  if (k > 32) {
    throw std::invalid_argument(
        "bfs_gpu_multi_source: at most 32 sources per fused group");
  }
  validate_kernel_options(opts, "bfs_gpu_multi_source");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "bfs_gpu_multi_source: supports thread-mapped, warp-centric, and "
        "adaptive");
  }
  if (handoff != nullptr) *handoff = MsBfsHandoff{};
  gpu::Device& device = g.device();
  const std::uint32_t n = g.num_nodes();

  GpuMsBfsResult result;
  result.stats.kernels.launches = 0;
  result.level.assign(k, std::vector<std::uint32_t>(n, kUnreached));
  if (k == 0 || n == 0) return result;
  const bool resuming = resume != nullptr && resume->valid();
  if (resuming &&
      (resume->frontier->size() != n || resume->visited->size() != n ||
       resume->levels->size() != static_cast<std::size_t>(k) * n)) {
    throw std::invalid_argument(
        "bfs_gpu_multi_source: resume checkpoint does not match this "
        "graph/query-group shape");
  }
  const double transfer_before = device.transfer_totals().modeled_ms;

  // Per-vertex query bitmasks (bit q = query q) plus the flat level
  // matrix, seeded on the host: one upload replaces k rounds of
  // fill + write traffic. Out-of-range sources are simply never seeded
  // (all-kUnreached result), matching bfs_gpu. A resume seeds the
  // traversal mid-flight from another run's handoff snapshots instead:
  // same sources, any device, bit-identical final levels (BFS levels are
  // distances — the fixpoint does not care where the iterations ran).
  std::vector<std::uint32_t> frontier_host(n, 0);
  std::vector<std::uint32_t> visited_host;
  std::vector<std::uint32_t> levels_host(static_cast<std::size_t>(k) * n,
                                         kUnreached);
  if (resuming) {
    frontier_host = *resume->frontier;
    visited_host = *resume->visited;
    levels_host = *resume->levels;
  } else {
    for (std::uint32_t q = 0; q < k; ++q) {
      const NodeId s = sources[q];
      if (s >= n) continue;
      frontier_host[s] |= 1u << q;
      levels_host[static_cast<std::size_t>(q) * n + s] = 0;
    }
    visited_host = frontier_host;
  }

  gpu::DeviceBuffer<std::uint32_t> frontier(device, frontier_host);
  gpu::DeviceBuffer<std::uint32_t> visited(device, visited_host);
  gpu::DeviceBuffer<std::uint32_t> next(device, n);
  next.fill(0);
  gpu::DeviceBuffer<std::uint32_t> levels(device, levels_host);
  gpu::DeviceBuffer<std::uint32_t> newly_reached(device, 1);

  // Iteration-barrier checkpointing, like every other iterative driver:
  // inactive (zero-cost) unless a fault plan is armed or checkpointing
  // is forced. The caller's handoff aliases the loop's own snapshots, so
  // exporting the last good state costs nothing extra.
  ResilientLoop loop(g, opts, "bfs_gpu_multi_source");
  if (loop.active()) {
    auto frontier_snap = loop.track(frontier);
    auto visited_snap = loop.track(visited);
    auto levels_snap = loop.track(levels);
    // `next` is all-zero at every iteration barrier but may hold a
    // failed attempt's partial pushes; tracked so rollback clears it.
    loop.track(next);
    if (handoff != nullptr) {
      handoff->frontier = std::move(frontier_snap);
      handoff->visited = std::move(visited_snap);
      handoff->levels = std::move(levels_snap);
    }
  }

  const auto row = g.csr().row();
  const auto adj = g.csr().adj();
  auto frontier_ptr = frontier.ptr();
  auto visited_ptr = visited.ptr();
  auto next_ptr = next.ptr();
  auto levels_ptr = levels.ptr();
  auto count_ptr = newly_reached.ptr();

  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &g.adaptive_state(opts)
                                      : nullptr;
  const std::uint64_t groups_needed =
      (static_cast<std::uint64_t>(n) +
       static_cast<std::uint64_t>(layout.groups()) - 1) /
      static_cast<std::uint64_t>(layout.groups());
  const auto expand_dims =
      device.dims_for_threads(groups_needed * simt::kWarpSize);
  const std::uint64_t total_groups =
      expand_dims.warp_count() * static_cast<std::uint64_t>(layout.groups());
  const auto update_dims = device.dims_for_threads(n);

  // Edge phase shared by every variant: OR the pushing vertex's query
  // bits onto each out-neighbour's `next` mask. fmask is replicated to
  // the task's lanes (same slot the strip loop keyed cursor on), so each
  // lane ORs its own group's query bits.
  const auto push_bits = [&](WarpCtx& w, const Lanes<std::uint32_t>& cursor,
                             const Lanes<std::uint32_t>& fmask) {
    Lanes<std::uint32_t> nbr{};
    w.load_global(adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    w.atomic_or(next_ptr, [&](int l) {
      return nbr[static_cast<std::size_t>(l)];
    }, [&](int l) {
      return fmask[static_cast<std::size_t>(l)];
    });
  };
  const auto expand_body = [&](WarpCtx& w, const vw::Layout& bl,
                               LaneMask valid,
                               const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> fmask{};
    w.with_mask(valid, [&] {
      w.load_global(frontier_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, fmask);
    });
    const LaneMask on = valid & w.ballot([&](int l) {
      return fmask[static_cast<std::size_t>(l)] != 0;
    });
    if (on == 0) return;

    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, on, begin, end);
    vw::simd_strip_loop(w, bl, begin, end, on,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          push_bits(w, cursor, fmask);
                        });
  };
  // Hub expansion via warp teams: atomic_or pushes commute, so splitting
  // an outlier's adjacency across cooperating warps cannot change the
  // reachability fixpoint the update pass extracts.
  const auto expand_team = [&](WarpCtx& w, std::uint32_t v,
                               std::uint32_t part, std::uint32_t tw) {
    const std::uint32_t fm = w.load_global_uniform(frontier_ptr, v);
    if (fm == 0) return;
    Lanes<std::uint32_t> fmask{};
    w.alu([&](int l) { fmask[static_cast<std::size_t>(l)] = fm; });
    adaptive_team_strip(w, row, v, part, tw,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          push_bits(w, cursor, fmask);
                        });
  };

  // Declared access sets let the launch-graph recorder
  // (SimConfig::record_launch_graph) know each kernel's read/write sets
  // even when the sanitizer is not armed to observe them.
  const auto expand_launch = expand_dims.named("msbfs.expand")
                                 .reads(row.vaddr)
                                 .reads(adj.vaddr)
                                 .reads(frontier_ptr.vaddr)
                                 .atomics(next_ptr.vaddr);
  const auto update_launch = update_dims.named("msbfs.update")
                                 .reads_writes(next_ptr.vaddr)
                                 .reads_writes(visited_ptr.vaddr)
                                 .writes(frontier_ptr.vaddr)
                                 .writes(levels_ptr.vaddr)
                                 .atomics(count_ptr.vaddr);

  const std::uint32_t start_level = resuming ? resume->level : 0;
  for (std::uint32_t current = start_level;; ++current) {
    // The loop's snapshots describe the state *entering* this iteration;
    // record the matching level before it runs so a handoff taken after
    // a mid-iteration failure resumes exactly here.
    if (handoff != nullptr) handoff->level = current;
    loop.iteration([&] {
    newly_reached.fill(0);

    // Expand: frontier vertices push their query bits onto every
    // out-neighbour's `next` mask. One adjacency read serves all k
    // queries — the fusion win.
    if (adaptive != nullptr) {
      adaptive_sweep_with_teams(device, *adaptive,
                                opts.resident_warps_per_sm, "msbfs.expand",
                                result.stats, expand_body, expand_team);
    } else {
      result.stats.kernels.add(device.launch(
          expand_launch, [&, n](WarpCtx& w) {
            for (std::uint64_t r = 0; r * total_groups < n; ++r) {
              Lanes<std::uint32_t> task{};
              const LaneMask valid = vw::assign_static_tasks(
                  w, layout, r, total_groups, n, task);
              if (valid == 0) continue;
              expand_body(w, layout, valid, task);
            }
          }));
    }

    // Update: vertex-owned, race-free. new = next & ~visited becomes the
    // next frontier; levels are assigned per fresh bit; the per-warp
    // count of freshly reached (vertex, query) pairs lands in one leader
    // atomic.
    result.stats.kernels.add(device.launch(
        update_launch, [&, n, current](WarpCtx& w) {
          Lanes<std::uint32_t> v{};
          w.alu([&](int l) {
            v[static_cast<std::size_t>(l)] = w.thread_id(l);
          });
          const LaneMask valid =
              w.ballot([&](int l) { return w.thread_id(l) < n; });
          if (valid == 0) return;

          Lanes<std::uint32_t> nx{}, vis{};
          w.with_mask(valid, [&] {
            w.load_global(next_ptr, [&](int l) {
              return v[static_cast<std::size_t>(l)];
            }, nx);
            w.load_global(visited_ptr, [&](int l) {
              return v[static_cast<std::size_t>(l)];
            }, vis);
          });
          Lanes<std::uint32_t> fresh{};
          w.alu([&](int l) {
            const auto i = static_cast<std::size_t>(l);
            fresh[i] = nx[i] & ~vis[i];
          });

          w.with_mask(valid, [&] {
            // v-owned stores: clear next, advance frontier/visited.
            w.store_global(next_ptr, [&](int l) {
              return v[static_cast<std::size_t>(l)];
            }, [](int) { return 0u; });
            w.store_global(frontier_ptr, [&](int l) {
              return v[static_cast<std::size_t>(l)];
            }, [&](int l) { return fresh[static_cast<std::size_t>(l)]; });
          });

          const LaneMask has = valid & w.ballot([&](int l) {
            return fresh[static_cast<std::size_t>(l)] != 0;
          });
          if (has == 0) return;

          w.with_mask(has, [&] {
            w.store_global(visited_ptr, [&](int l) {
              return v[static_cast<std::size_t>(l)];
            }, [&](int l) {
              const auto i = static_cast<std::size_t>(l);
              return vis[i] | fresh[i];
            });
            // Peel fresh bits: each set bit q records level current+1 at
            // levels[q * n + v]. Lanes with more bits loop longer — the
            // same divergence profile as a degree-skewed strip loop.
            Lanes<std::uint32_t> bits = fresh;
            w.loop_while(
                [&](int l) {
                  return bits[static_cast<std::size_t>(l)] != 0;
                },
                [&] {
                  w.store_global(levels_ptr, [&](int l) {
                    const auto i = static_cast<std::size_t>(l);
                    const auto q = static_cast<std::uint32_t>(
                        std::countr_zero(bits[i]));
                    return q * n + v[i];
                  }, [&](int) { return current + 1; });
                  w.alu([&](int l) {
                    const auto i = static_cast<std::size_t>(l);
                    bits[i] &= bits[i] - 1;
                  });
                });
            // One aggregated count per warp keeps the flag free of the
            // same-value store race a naive `changed = 1` would be.
            Lanes<std::uint32_t> ones = simt::make_lanes<std::uint32_t>(1);
            std::uint32_t total = 0;
            (void)w.exclusive_scan_add(ones, total);
            const int leader = simt::first_lane(w.active());
            w.with_mask(simt::lane_bit(leader), [&] {
              w.atomic_add(count_ptr, [](int) { return 0; },
                           [&](int) { return total; });
            });
          });
        }));
    });

    ++result.stats.iterations;
    if (newly_reached.read(0) == 0) break;
  }
  result.stats.recovery = loop.stats();

  const auto levels_out = levels.download();
  for (std::uint32_t q = 0; q < k; ++q) {
    const auto base = static_cast<std::size_t>(q) * n;
    std::copy(levels_out.begin() + static_cast<std::ptrdiff_t>(base),
              levels_out.begin() + static_cast<std::ptrdiff_t>(base + n),
              result.level[q].begin());
  }
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

const char* to_string(QueryPath path) {
  switch (path) {
    case QueryPath::kNone: return "none";
    case QueryPath::kFusedGpu: return "fused-gpu";
    case QueryPath::kSingleGpu: return "single-gpu";
    case QueryPath::kCpuHost: return "cpu-host";
  }
  return "unknown";
}

double estimate_unit_cost(const graph::DegreeStats& degrees,
                          std::uint32_t fused_queries, bool bfs,
                          const KernelOptions& opts,
                          const simt::SimConfig& cfg,
                          const AdaptiveState* adaptive) {
  // Sweep cost: fold the power-of-two degree histogram through the
  // analytic width model at each class's representative degree. Bucket 0
  // counts zero-degree vertices; bucket k >= 1 counts degrees in
  // [2^(k-1), 2^k), represented by the class midpoint.
  const int static_width =
      opts.mapping == Mapping::kThreadMapped ? 1 : opts.virtual_warp_width;
  const bool calibrated = adaptive != nullptr && !adaptive->plan.bins.empty();
  double sweep = 0.0;
  const util::Log2Histogram& hist = degrees.histogram;
  for (std::size_t k = 0; k < hist.bucket_count(); ++k) {
    const std::uint64_t count = hist.bucket(k);
    if (count == 0) continue;
    const std::uint64_t mid =
        k == 0 ? 0 : std::max<std::uint64_t>(1, (3ull << k) >> 2);
    const auto rep =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(mid, degrees.max));
    int width = static_width;
    double team = 1.0;
    if (calibrated) {
      const AdaptiveBin& bin = adaptive->plan.bins[adaptive->plan.bin_of(rep)];
      width = bin.width;
      // A warp team drains an outlier's adjacency cooperatively,
      // dividing its span.
      team = static_cast<double>(std::max<std::uint32_t>(1, bin.team_warps));
    }
    sweep += static_cast<double>(count) *
             adaptive_model_cost(rep, width, cfg) / team;
  }
  // Unit weight over the shared sweep: a fused group reads the adjacency
  // once for every member and pays one extra bit-peel in the update
  // kernel per extra query; Bellman-Ford re-relaxes across more rounds
  // than BFS has levels and loads a weight per edge.
  constexpr double kFusePeelShare = 1.0 / 32.0;
  constexpr double kSsspRounds = 4.0;
  const double weight =
      bfs ? 1.0 + kFusePeelShare *
                      static_cast<double>(
                          fused_queries > 0 ? fused_queries - 1 : 0)
          : kSsspRounds;
  return sweep * weight;
}

namespace {

/// Host Dijkstra folded to the GPU drivers' 32-bit distance convention.
std::vector<std::uint32_t> sssp_host_dist(const graph::Csr& g, NodeId s) {
  const auto wide = sssp_cpu(g, s);
  std::vector<std::uint32_t> dist(wide.size());
  for (std::size_t v = 0; v < wide.size(); ++v) {
    dist[v] = wide[v] >= kInfDist ? kInfDist
                                  : static_cast<std::uint32_t>(wide[v]);
  }
  return dist;
}

}  // namespace

QueryEngine::QueryEngine(const GpuGraph& graph,
                         const QueryEngineOptions& opts)
    : owned_graphs_(std::make_unique<ReplicatedGraph>(graph)), opts_(opts) {
  graphs_ = owned_graphs_.get();
  policy_ = opts_.resilience;
  validate_options();
  calibration_ = CostModelCalibration(policy_.cost_ewma_alpha);
  graphs_->group().set_health_policy(policy_.health);
}

QueryEngine::QueryEngine(ReplicatedGraph& graphs,
                         const QueryEngineOptions& opts)
    : graphs_(&graphs), opts_(opts) {
  policy_ = opts_.resilience;
  validate_options();
  calibration_ = CostModelCalibration(policy_.cost_ewma_alpha);
  graphs_->group().set_health_policy(policy_.health);
}

QueryEngine::QueryEngine(gpu::DeviceGroup& group, graph::Csr host,
                         const QueryEngineOptions& opts,
                         ReplicatedGraph::Upload upload)
    : owned_graphs_(std::make_unique<ReplicatedGraph>(group, std::move(host),
                                                      upload)),
      opts_(opts) {
  graphs_ = owned_graphs_.get();
  policy_ = opts_.resilience;
  validate_options();
  calibration_ = CostModelCalibration(policy_.cost_ewma_alpha);
  graphs_->group().set_health_policy(policy_.health);
}

void QueryEngine::import_cost_model(const std::string& json) {
  CostModelCalibration imported = CostModelCalibration::from_json(json);
  // Adopt the entries, keep this engine's configured alpha: the table is
  // portable knowledge, the blending rate is local policy.
  CostModelCalibration table(policy_.cost_ewma_alpha);
  std::vector<CostModelEntry> entries = imported.entries();
  table.replace_entries(std::move(entries));
  calibration_ = std::move(table);
}

void QueryEngine::validate_options() const {
  if (opts_.num_streams == 0) {
    throw std::invalid_argument("QueryEngine: num_streams must be >= 1");
  }
  if (opts_.bfs_group_size == 0 || opts_.bfs_group_size > 32) {
    throw std::invalid_argument(
        "QueryEngine: bfs_group_size must be in [1, 32]");
  }
  if (policy_.retry_backoff_ms < 0 || policy_.default_deadline_ms < 0) {
    throw std::invalid_argument(
        "QueryEngine: retry_backoff_ms/default_deadline_ms must be >= 0");
  }
  if (policy_.steal_threshold < 0) {
    throw std::invalid_argument("QueryEngine: steal_threshold must be >= 0");
  }
  if (!(policy_.cost_ewma_alpha > 0.0) || policy_.cost_ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "QueryEngine: cost_ewma_alpha must be in (0, 1]");
  }
  const ResiliencePolicy::Health& health = policy_.health;
  if (!(health.suspect_threshold >= 1.0)) {
    throw std::invalid_argument(
        "QueryEngine: health.suspect_threshold must be at least 1");
  }
  if (health.suspect_decay_ms < 0 || health.probation_delay_ms < 0 ||
      health.probe_interval_ms < 0 || health.probe_watchdog_ms < 0) {
    throw std::invalid_argument(
        "QueryEngine: health durations must be >= 0");
  }
  if (health.probes_to_restore == 0 || health.probes_per_pass == 0 ||
      health.max_restore_attempts == 0) {
    throw std::invalid_argument(
        "QueryEngine: health probe/restore counts must be >= 1");
  }
  if (health.probation_capacity < 0 || health.probation_capacity > 1.0) {
    throw std::invalid_argument(
        "QueryEngine: health.probation_capacity must be in [0, 1]");
  }
  validate_kernel_options(opts_.kernel, "QueryEngine");
  if (opts_.verify) {
    // Every group member must record: migrated work would otherwise
    // escape analysis on whichever device it landed on.
    const gpu::DeviceGroup& group = graphs_->group();
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (group.device(i).launch_graph() == nullptr) {
        throw std::invalid_argument(
            "QueryEngine: options.verify requires a device constructed "
            "with SimConfig::record_launch_graph");
      }
    }
  }
}

bool QueryEngine::run_canary_probe(std::size_t i) {
  gpu::DeviceGroup& group = graphs_->group();
  gpu::Device& device = group.device(i);
  // The probe cadence is a real cost: quiescing and scheduling a
  // diagnostic on a sidelined card is not free, so charge the interval
  // to the probed member's timeline before the kernel.
  device.charge_delay_ms(policy_.health.probe_interval_ms);
  try {
    // A lazy, never-uploaded replica pays its H2D here — residency is
    // part of what the probe certifies (an allocation fault fails it).
    const GpuGraph& g = graphs_->replica(i);
    const std::uint32_t n = g.num_nodes();
    const auto span = std::min<std::uint32_t>(n, 1024);
    if (span == 0) return true;

    gpu::WatchdogScope watchdog(device, policy_.health.probe_watchdog_ms);
    gpu::DeviceBuffer<std::uint32_t> touched(device, 1);
    touched.fill(0);
    const auto row = g.csr().row();
    const auto adj = g.csr().adj();
    auto count_ptr = touched.ptr();
    // One-level BFS step over the replica's first `span` vertices: read
    // each row extent, peek the first neighbour (exercising the
    // adjacency array the member will serve from), and fold a
    // warp-aggregated count into one atomic so the host can verify the
    // sweep actually covered the slice.
    const auto dims = device.dims_for_threads(span)
                          .named("health.canary")
                          .reads(row.vaddr)
                          .reads(adj.vaddr)
                          .atomics(count_ptr.vaddr);
    device.launch(dims, [&, span](WarpCtx& w) {
      Lanes<std::uint32_t> v{};
      w.alu([&](int l) { v[static_cast<std::size_t>(l)] = w.thread_id(l); });
      const LaneMask valid =
          w.ballot([&](int l) { return w.thread_id(l) < span; });
      if (valid == 0) return;
      Lanes<std::uint32_t> begin{}, end{};
      w.with_mask(valid, [&] {
        w.load_global(row, [&](int l) {
          return v[static_cast<std::size_t>(l)];
        }, begin);
        w.load_global(row, [&](int l) {
          return v[static_cast<std::size_t>(l)] + 1;
        }, end);
      });
      const LaneMask has = valid & w.ballot([&](int l) {
        const auto j = static_cast<std::size_t>(l);
        return end[j] > begin[j];
      });
      if (has != 0) {
        Lanes<std::uint32_t> first{};
        w.with_mask(has, [&] {
          w.load_global(adj, [&](int l) {
            return begin[static_cast<std::size_t>(l)];
          }, first);
        });
      }
      w.with_mask(valid, [&] {
        Lanes<std::uint32_t> ones = simt::make_lanes<std::uint32_t>(1);
        std::uint32_t total = 0;
        (void)w.exclusive_scan_add(ones, total);
        const int leader = simt::first_lane(w.active());
        w.with_mask(simt::lane_bit(leader), [&] {
          w.atomic_add(count_ptr, [](int) { return 0u; },
                       [&](int) { return total; });
        });
      });
    });
    // The kernel must have counted the whole slice — a partially
    // executed sweep is not a clean probe.
    return touched.read(0) == span;
  } catch (const gpu::DeviceError&) {
    return false;
  } catch (const simt::SanitizerFault&) {
    return false;
  }
}

FleetReport QueryEngine::maintain_fleet() {
  gpu::DeviceGroup& group = graphs_->group();
  group.set_health_policy(policy_.health);
  FleetReport report;
  group.decay_suspects();
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group.probation_due(i)) group.begin_probation(i);
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::uint32_t p = 0; p < policy_.health.probes_per_pass; ++p) {
      if (group.health_state(i) != gpu::DeviceHealth::kProbation) break;
      ++report.probes;
      const bool clean = run_canary_probe(i);
      if (!clean) ++report.probe_failures;
      switch (group.record_probe(i, clean,
                                 clean ? "clean canary" : "canary faulted")) {
        case gpu::ProbeOutcome::kReadyToRestore:
          // Whatever corrupted the member while it was dead may live in
          // its resident replica: re-upload (page-granular when the ECC
          // record pinpoints the victim) before serving from it again.
          graphs_->revalidate(i);
          group.restore_device(i);
          ++report.restorations;
          break;
        case gpu::ProbeOutcome::kRetired:
          ++report.retired;
          break;
        case gpu::ProbeOutcome::kProbing:
        case gpu::ProbeOutcome::kRedead:
          break;
      }
    }
  }
  return report;
}

std::vector<QueryResult> QueryEngine::run(std::span<const Query> queries) {
  gpu::DeviceGroup& group = graphs_->group();
  stats_ = BatchStats{};
  stats_.queries = static_cast<std::uint32_t>(queries.size());
  const GpuGraph& primary = graphs_->replica(0);
  const std::uint32_t n = primary.num_nodes();
  const bool weighted = primary.csr().weighted();

  std::vector<QueryResult> results(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    results[i].query = queries[i];
  }
  if (queries.empty()) return results;

  // Fleet maintenance first, before the batch baselines are captured:
  // probe time is repair cost on the probed member's own timeline, not
  // part of this batch's serving makespan. A restored member is back in
  // healthy_members() by the time the planner below runs, so the very
  // next batch places work on it.
  const FleetReport fleet = maintain_fleet();
  stats_.probes = fleet.probes;
  stats_.probe_failures = fleet.probe_failures;
  stats_.restorations = fleet.restorations;
  stats_.retired = fleet.retired;

  // Admission: malformed queries get a structured per-query error up
  // front and never reach a launch — one bad source cannot take down the
  // batch (or poison a fused group's bitmasks).
  std::vector<std::uint32_t> admitted;
  admitted.reserve(queries.size());
  for (std::uint32_t i = 0; i < queries.size(); ++i) {
    if (queries[i].source >= n) {
      results[i].status = gpu::Status(
          gpu::ErrorCode::kInvalidArgument,
          "QueryEngine: source " + std::to_string(queries[i].source) +
              " out of range [0, " + std::to_string(n) + ")");
    } else if (queries[i].kind == Query::Kind::kSssp && !weighted) {
      results[i].status =
          gpu::Status(gpu::ErrorCode::kInvalidArgument,
                      "QueryEngine: sssp query on an unweighted graph");
    } else {
      admitted.push_back(i);
    }
  }

  const auto effective_deadline = [&](const Query& q) {
    return q.deadline_ms > 0 ? q.deadline_ms : policy_.default_deadline_ms;
  };

  // Work units over admitted queries, input order: BFS queries greedily
  // packed into fused groups, SSSP queries as singles (Bellman-Ford
  // state does not pack into bitmasks). Deadlines are per-query, so a
  // fused group only contains queries sharing one deadline — otherwise
  // the tightest member's budget would fail its groupmates.
  struct Unit {
    std::vector<std::uint32_t> idx;
    bool bfs = true;
  };
  std::vector<Unit> units;
  const std::uint32_t group_cap = opts_.fuse_bfs ? opts_.bfs_group_size : 1;
  std::vector<std::uint32_t> pending_bfs;
  double pending_deadline = 0.0;
  auto flush_bfs = [&] {
    if (!pending_bfs.empty()) {
      units.push_back({std::move(pending_bfs), /*bfs=*/true});
      pending_bfs.clear();
    }
  };
  for (const std::uint32_t i : admitted) {
    if (queries[i].kind == Query::Kind::kBfs) {
      const double d = effective_deadline(queries[i]);
      if (!pending_bfs.empty() && d != pending_deadline) flush_bfs();
      pending_deadline = d;
      pending_bfs.push_back(i);
      if (pending_bfs.size() >= group_cap) flush_bfs();
    } else {
      units.push_back({{i}, /*bfs=*/false});
    }
  }
  flush_bfs();

  // Per-device baselines: batch stats are deltas, summed across the
  // group, so a migrated unit's spare-device work is not lost (and a
  // healthy run's spares contribute exactly zero).
  struct DeviceBase {
    double serial_ms = 0.0;
    double makespan_ms = 0.0;
    std::uint64_t launches = 0;
    std::uint32_t units = 0;
  };
  std::vector<DeviceBase> base(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    gpu::Device& d = group.device(i);
    base[i].serial_ms = d.total_modeled_ms();
    base[i].makespan_ms = d.modeled_makespan_ms();
    base[i].launches = d.kernel_totals().launches;
  }

  // Per-device stream pools, built on first use: spares that never
  // receive work never pay for stream creation.
  const auto stream_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(opts_.num_streams, units.size()));
  std::vector<std::vector<gpu::Stream>> pools(group.size());
  const auto ensure_streams =
      [&](std::size_t di) -> std::vector<gpu::Stream>& {
    auto& pool = pools[di];
    if (pool.empty()) {
      pool.reserve(stream_count);
      for (std::uint32_t s = 0; s < stream_count; ++s) {
        pool.emplace_back(group.device(di));
      }
    }
    return pool;
  };
  stats_.streams_used = stream_count;

  // Scheduling mode. kBalanced plans placements across every healthy
  // member; on a one-device group it degenerates to kActiveOnly exactly
  // (input order, identical stream slots, no cost estimation), so the
  // single-device engines — and every pre-group baseline — stay bit-
  // and cost-identical across the modes. kBalancedStealing starts from
  // the identical LPT plan and differs only in how the queues drain.
  const bool stealing =
      policy_.scheduling ==
          ResiliencePolicy::Scheduling::kBalancedStealing &&
      group.size() > 1;
  const bool balanced =
      stealing ||
      (policy_.scheduling == ResiliencePolicy::Scheduling::kBalanced &&
       group.size() > 1);

  // Per-device unit queues and modeled-load tallies (balanced modes
  // only; kActiveOnly walks the units in input order on the active
  // device). `raw_cost` keeps the uncalibrated analytic estimate so the
  // feedback table learns the model's error, not its own corrections;
  // `cost` is what the planner (and the steal loop) actually compares.
  std::vector<double> cost(units.size(), 0.0);
  std::vector<double> raw_cost(units.size(), 0.0);
  std::vector<CostModelKey> shape(units.size());
  std::vector<std::vector<std::uint32_t>> queue(group.size());
  std::vector<double> load(group.size(), 0.0);
  schedule_.clear();

  // A member that may run work at all: full-health or on probation.
  const auto serving = [&](std::size_t d) { return group.serving(d); };

  // Lowest-index least-loaded healthy member: LPT's placement rule and
  // the re-plan target after a device death. The ascending scan makes
  // ties deterministic. Probation members are only a last resort (no
  // healthy member left), capacity cap waived — degraded hardware beats
  // the host reference.
  const auto least_loaded = [&]() -> std::size_t {
    std::size_t best = group.active_index();
    double best_load = 0.0;
    bool found = false;
    for (std::size_t d = 0; d < group.size(); ++d) {
      if (!group.healthy(d)) continue;
      if (!found || load[d] < best_load) {
        found = true;
        best = d;
        best_load = load[d];
      }
    }
    if (!found) {
      for (std::size_t d = 0; d < group.size(); ++d) {
        if (!serving(d)) continue;
        if (!found || load[d] < best_load) {
          found = true;
          best = d;
          best_load = load[d];
        }
      }
    }
    return best;
  };

  // Per-member planned-load cap: infinite for healthy members, a
  // configurable fraction of the fair per-member share for probation
  // members — restoration is gradual, not a cliff. Filled by the
  // balanced block below once unit costs exist.
  std::vector<double> capacity(group.size(),
                               std::numeric_limits<double>::infinity());

  if (balanced) {
    // Cost every unit from the host CSR alone (plus the cached adaptive
    // calibration when the batch dispatches adaptively): estimates never
    // read evolving device state, so replaying the batch reproduces the
    // identical plan. The feedback table then scales each raw estimate
    // by its shape's learned correction — a cold table multiplies by
    // exactly 1.0, so an engine's first batch plans identically to an
    // uncalibrated one, and identical batch sequences replay
    // identically.
    const graph::DegreeStats degrees = graph::degree_stats(graphs_->host());
    const GpuGraph& model_replica = graphs_->replica(group.active_index());
    const AdaptiveState* adaptive =
        opts_.kernel.mapping == Mapping::kAdaptive
            ? &model_replica.adaptive_state(opts_.kernel)
            : nullptr;
    const auto degree_bucket = static_cast<std::uint32_t>(std::bit_width(
        static_cast<std::uint64_t>(std::llround(std::max(0.0,
                                                         degrees.mean)))));
    for (std::size_t u = 0; u < units.size(); ++u) {
      raw_cost[u] = estimate_unit_cost(
          degrees, static_cast<std::uint32_t>(units[u].idx.size()),
          units[u].bfs, opts_.kernel, model_replica.device().config(),
          adaptive);
      shape[u] = CostModelKey{
          units[u].bfs,
          static_cast<std::uint32_t>(
              std::bit_width(static_cast<std::uint32_t>(
                  units[u].idx.size()))),
          degree_bucket};
      cost[u] = calibration_.calibrated(shape[u], raw_cost[u]);
    }
    // Probation members join the plan capacity-capped: each may carry at
    // most probation_capacity of the fair per-serving-member share, so a
    // provisionally repaired card warms back up without betting a full
    // queue on it. With no probation member every cap is infinite and
    // the placement below is bit-identical to the healthy-only plan.
    const std::vector<std::size_t> probation = group.probation_members();
    if (!probation.empty()) {
      double total_cost = 0.0;
      for (const double c : cost) total_cost += c;
      const double serving_count = static_cast<double>(
          group.healthy_count() + probation.size());
      const double fair_share = total_cost / serving_count;
      for (const std::size_t d : probation) {
        capacity[d] = policy_.health.probation_capacity * fair_share;
      }
    }
    // LPT: place cost-descending (stable sort — equal costs keep input
    // order) onto the least-loaded serving member with headroom. Healthy
    // members always have headroom; a probation member is skipped once
    // the unit would push it past its cap.
    std::vector<std::uint32_t> order(units.size());
    for (std::uint32_t u = 0; u < order.size(); ++u) order[u] = u;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return cost[a] > cost[b];
                     });
    for (const std::uint32_t u : order) {
      std::size_t d = group.size();
      double d_load = 0.0;
      for (std::size_t m = 0; m < group.size(); ++m) {
        if (!serving(m)) continue;
        if (!group.healthy(m) && load[m] + cost[u] > capacity[m]) continue;
        if (d == group.size() || load[m] < d_load) {
          d = m;
          d_load = load[m];
        }
      }
      if (d == group.size()) d = least_loaded();
      queue[d].push_back(u);
      load[d] += cost[u];
      schedule_.push_back(UnitPlacement{
          u, d, cost[u], static_cast<std::uint32_t>(units[u].idx.size()),
          /*replanned=*/false});
    }
    // Eager upload to every *scheduled* member: a lazily replicated
    // spare that received work pays its H2D transfer now, before its
    // queue starts, not mid-unit. Members without work stay lazy.
    for (std::size_t d = 0; d < group.size(); ++d) {
      if (!queue[d].empty()) (void)graphs_->lease(d);
    }
  }

  // QueryResult::device / DeviceStats::device report the device ordinal,
  // falling back to the group index when the device is anonymous (the
  // borrowing single-device adapter stamps no ordinal), so per-device
  // accounting reads uniformly across constructors.
  const auto ordinal_of = [&](std::size_t di) {
    const int ord = group.device(di).ordinal();
    return ord >= 0 ? ord : static_cast<int>(di);
  };

  // One unit end to end down the ladder. `dev` is the member the unit
  // currently targets: it starts where the scheduler placed the unit and
  // follows migrations. `stream_slot` picks the unit's stream from its
  // device's pool — the unit ordinal under kActiveOnly (the pre-group
  // behavior), the device's issue position under kBalanced.
  const auto run_unit = [&](std::uint32_t uidx, std::size_t start_dev,
                            std::size_t stream_slot) {
    const Unit& unit = units[uidx];
    std::size_t dev = start_dev;
    // Fault-accounting watermarks: a unit whose run moved any of these
    // counters did not execute under the cost model's assumptions, so
    // its observed time must not feed the calibration below.
    const std::uint32_t retries_before = stats_.retries;
    const std::uint32_t migrations_before = stats_.migrations;
    const std::uint32_t isolated_before = stats_.isolated_groups;

    // The unit budget is the tightest member deadline; it doubles as a
    // per-kernel watchdog so a modeled hang is charged the deadline, not
    // the open-ended default.
    double deadline = 0.0;
    for (const std::uint32_t i : unit.idx) {
      const double d = effective_deadline(queries[i]);
      if (d > 0 && (deadline == 0 || d < deadline)) deadline = d;
    }

    // Modeled time this unit has consumed, accumulated across every
    // device it ran on: migration moves the work, not the budget.
    double spent = 0.0;
    std::vector<bool> ran_on(group.size(), false);
    const auto budget_exhausted = [&] {
      return deadline > 0 && spent > deadline;
    };

    // One rung of the ladder on the unit's device: run `body` against
    // that device's replica with engine-level retries and exponential
    // modeled backoff, all launches/copies on the unit's stream from
    // that device's pool. Sanitizer findings are program bugs, not
    // device faults — no retry can help, so they fail the rung
    // immediately (and descend, where isolation may sidestep the buggy
    // kernel).
    const auto try_gpu = [&](const std::function<void(const GpuGraph&)>& body,
                             std::uint32_t& attempts) -> gpu::Status {
      const std::size_t di = dev;
      const GpuGraph& g = graphs_->replica(di);
      gpu::Device& device = g.device();
      auto& pool = ensure_streams(di);
      gpu::StreamScope scope(device, pool[stream_slot % pool.size()]);
      std::optional<gpu::WatchdogScope> watchdog;
      if (deadline > 0) watchdog.emplace(device, deadline);
      ran_on[di] = true;
      const double start = device.total_modeled_ms();
      const std::size_t faults_before = device.faults().history().size();
      const auto over_deadline = [&] {
        return deadline > 0 &&
               spent + device.total_modeled_ms() - start > deadline;
      };
      gpu::Status status;
      for (std::uint32_t attempt = 0;; ++attempt) {
        if (over_deadline()) {
          status = gpu::Status(gpu::ErrorCode::kDeadlineExceeded,
                               "QueryEngine: deadline exhausted before "
                               "attempt");
          break;
        }
        ++attempts;
        try {
          body(g);
          break;
        } catch (const simt::SanitizerFault& f) {
          status =
              gpu::Status(gpu::ErrorCode::kLaunchFailed,
                          std::string("sanitizer finding: ") + f.what());
          break;
        } catch (const gpu::DeviceError& e) {
          if (e.status().code() == gpu::ErrorCode::kEccUncorrectable) {
            // The flip may have hit the resident CSR itself. The fault
            // record pinpoints the victim byte, so only the containing
            // allocation is re-uploaded; scratch victims cost nothing —
            // the next attempt re-seeds its own buffers anyway.
            const auto& history = device.faults().history();
            if (!history.empty()) {
              g.refresh_device_data(history.back());
            } else {
              g.refresh_device_data();
            }
          }
          if (!e.status().transient() || attempt >= policy_.max_retries) {
            status = e.status();
            break;
          }
          // A transient fault the engine retried away is exactly the
          // blip the suspect counter tracks: the device stays in the
          // rotation but its score accrues (and decays) toward the
          // escalation threshold.
          group.note_transient(di, e.status().to_string());
          ++stats_.retries;
          device.charge_delay_ms(policy_.retry_backoff_ms *
                                 static_cast<double>(1u << attempt));
        }
      }
      spent += device.total_modeled_ms() - start;
      // Correctable-ECC events never fail a launch — they only land in
      // the injector's history — but they are the canonical transient
      // blip: count the ones this rung produced against the member.
      const auto& history = device.faults().history();
      for (std::size_t h = faults_before; h < history.size(); ++h) {
        if (history[h].kind == simt::FaultKind::kEccCorrectable) {
          group.note_transient(di, "correctable ecc (" + history[h].label +
                                       ")");
        }
      }
      return status;
    };

    // The rung plus spare-device migration: when the unit's device
    // exhausts its retries on a transient fault and the group holds
    // another healthy member, declare it dead and run the rung again
    // elsewhere. kActiveOnly moves the group cursor (fail_over), so
    // later units start on the spare directly; kBalanced marks just
    // that member dead (fail_device — the cursor only moves when the
    // active device itself died) and restarts the unit on the
    // least-loaded survivor, leaving the drain loop to re-plan the dead
    // member's queued remainder. Non-transient failures descend the
    // ladder instead (another device cannot fix a program bug), and an
    // exhausted budget never migrates (migration moves work, it does
    // not refund time).
    const auto try_gpu_with_failover =
        [&](const std::function<void(const GpuGraph&)>& body,
            std::uint32_t& attempts, bool& migrated) -> gpu::Status {
      for (;;) {
        const gpu::Status st = try_gpu(body, attempts);
        if (st.ok() || !st.transient()) return st;
        if (budget_exhausted()) return st;
        if (balanced) {
          // kAlreadyDead can happen when a suspect escalation killed the
          // member mid-unit: the death is already on the books, but this
          // unit's work still moves to a survivor.
          const gpu::FailoverOutcome fo =
              group.fail_device(dev, st.to_string());
          if (fo == gpu::FailoverOutcome::kRefused) return st;
          if (fo == gpu::FailoverOutcome::kAlreadyDead &&
              group.healthy_count() == 0) {
            return st;
          }
          if (fo == gpu::FailoverOutcome::kMigrated) ++stats_.migrations;
          dev = least_loaded();
          load[dev] += cost[uidx];
          schedule_.push_back(UnitPlacement{
              uidx, dev, cost[uidx],
              static_cast<std::uint32_t>(unit.idx.size()),
              /*replanned=*/true});
        } else {
          const gpu::FailoverOutcome fo = group.fail_over(st.to_string());
          if (fo == gpu::FailoverOutcome::kRefused) return st;
          if (fo == gpu::FailoverOutcome::kMigrated) ++stats_.migrations;
          dev = group.active_index();
        }
        migrated = true;
      }
    };

    // Final rung for one query: single-query GPU traversal across the
    // group, then the host reference (unless disabled), then a
    // structured error.
    const auto run_single = [&](std::uint32_t i) {
      QueryResult& r = results[i];
      const Query& q = queries[i];
      std::uint32_t attempts = 0;
      bool migrated = false;
      const gpu::Status st = try_gpu_with_failover(
          [&](const GpuGraph& g) {
            r.value = q.kind == Query::Kind::kBfs
                          ? bfs_gpu(g, q.source, opts_.kernel).level
                          : sssp_gpu(g, q.source, opts_.kernel).dist;
          },
          attempts, migrated);
      r.gpu_attempts += attempts;
      if (st.ok()) {
        r.path = QueryPath::kSingleGpu;
        r.device = ordinal_of(dev);
        if (migrated) ++stats_.migrated_units;
        return;
      }
      if (budget_exhausted()) {
        r.status = gpu::Status(gpu::ErrorCode::kDeadlineExceeded,
                               "QueryEngine: deadline exceeded");
        r.value.clear();
        return;
      }
      if (policy_.cpu_fallback) {
        // Host references cannot fault; answer degraded but correct.
        r.value = q.kind == Query::Kind::kBfs
                      ? bfs_cpu(graphs_->host(), q.source)
                      : sssp_host_dist(graphs_->host(), q.source);
        r.path = QueryPath::kCpuHost;
        r.degraded = true;
        return;
      }
      r.status = st;
      r.value.clear();
    };

    if (unit.bfs && unit.idx.size() > 1) {
      std::vector<NodeId> srcs;
      srcs.reserve(unit.idx.size());
      for (const std::uint32_t i : unit.idx) {
        srcs.push_back(queries[i].source);
      }
      GpuMsBfsResult fused;
      MsBfsHandoff handoff;
      std::uint32_t attempts = 0;
      bool migrated = false;
      bool resumed = false;
      const gpu::Status st = try_gpu_with_failover(
          [&](const GpuGraph& g) {
            // Snapshot the previous attempt's handoff before this run
            // overwrites it: with a fault plan armed, the traversal
            // checkpoints at iteration barriers, and a re-run — on this
            // device or a spare — resumes from the last good iteration
            // instead of level 0.
            const MsBfsHandoff checkpoint = handoff;
            if (checkpoint.valid()) resumed = true;
            fused = bfs_gpu_multi_source(
                g, srcs, opts_.kernel, &handoff,
                checkpoint.valid() ? &checkpoint : nullptr);
          },
          attempts, migrated);
      for (const std::uint32_t i : unit.idx) {
        results[i].gpu_attempts += attempts;
      }
      if (st.ok()) {
        ++stats_.fused_groups;
        if (migrated) {
          ++stats_.migrated_units;
          if (resumed) ++stats_.checkpoint_resumes;
        }
        const int answered_on = ordinal_of(dev);
        for (std::size_t j = 0; j < unit.idx.size(); ++j) {
          results[unit.idx[j]].value = std::move(fused.level[j]);
          results[unit.idx[j]].path = QueryPath::kFusedGpu;
          results[unit.idx[j]].device = answered_on;
        }
      } else {
        // Isolate: the faulting query only sinks itself, not its
        // 31 groupmates.
        ++stats_.isolated_groups;
        for (const std::uint32_t i : unit.idx) {
          results[i].degraded = true;
          run_single(i);
        }
      }
    } else {
      run_single(unit.idx[0]);
    }

    for (std::size_t di = 0; di < group.size(); ++di) {
      if (ran_on[di]) ++base[di].units;
    }

    // A unit that answered but blew its budget keeps the best-effort
    // value alongside the deadline error.
    const double unit_ms = spent;
    for (const std::uint32_t i : unit.idx) {
      QueryResult& r = results[i];
      r.modeled_ms = unit_ms;
      const double d = effective_deadline(queries[i]);
      if (d > 0 && unit_ms > d && r.ok()) {
        r.status = gpu::Status(gpu::ErrorCode::kDeadlineExceeded,
                               "QueryEngine: deadline exceeded");
        r.degraded = true;
      }
    }

    // Close the loop: the unit's latest placement row learns where the
    // work actually ran and what it actually cost, so last_schedule()
    // exposes per-unit estimate error directly. A *clean* balanced-mode
    // completion — no retries, no migration, no isolation, answered on
    // the GPU — additionally folds observed/raw-estimate into the unit
    // shape's EWMA correction: the next batch plans with sharpened
    // estimates. Faulted runs are excluded because their time describes
    // the fault plan (backoff, re-execution), not the shape.
    const QueryResult& lead = results[unit.idx[0]];
    for (auto it = schedule_.rbegin(); it != schedule_.rend(); ++it) {
      if (it->unit == uidx) {
        it->executed_on = lead.device;
        it->observed_cost_ms = unit_ms;
        break;
      }
    }
    const bool clean =
        stats_.retries == retries_before &&
        stats_.migrations == migrations_before &&
        stats_.isolated_groups == isolated_before && lead.ok() &&
        (lead.path == QueryPath::kFusedGpu ||
         lead.path == QueryPath::kSingleGpu);
    if (balanced && clean && raw_cost[uidx] > 0.0) {
      calibration_.observe(shape[uidx], raw_cost[uidx], unit_ms);
    }
  };

  if (!balanced) {
    // Legacy order: every unit starts on the active device, in input
    // order, stream slot = unit ordinal. Placements are still logged so
    // last_schedule() reads uniformly across modes.
    for (std::uint32_t u = 0; u < static_cast<std::uint32_t>(units.size());
         ++u) {
      const std::size_t d = group.active_index();
      schedule_.push_back(UnitPlacement{
          u, d, cost[u], static_cast<std::uint32_t>(units[u].idx.size()),
          /*replanned=*/false});
      run_unit(u, d, u);
    }
  } else if (!stealing) {
    // Drain the per-device queues. Host-side issue is serial, but each
    // device's modeled timeline runs only its own queue, round-robined
    // over its own streams — the concurrency group_makespan_ms measures.
    // When a pass notices a dead member, its queued remainder is
    // re-planned across the survivors (still LPT: the queue was placed
    // cost-descending, and each orphan goes to the then-least-loaded
    // healthy member).
    std::vector<std::size_t> cursor(group.size(), 0);
    std::vector<std::size_t> issued(group.size(), 0);
    const auto replan_remainder = [&](std::size_t d) {
      for (std::size_t p = cursor[d]; p < queue[d].size(); ++p) {
        const std::uint32_t uidx = queue[d][p];
        const std::size_t nd = least_loaded();
        queue[nd].push_back(uidx);
        load[nd] += cost[uidx];
        schedule_.push_back(UnitPlacement{
            uidx, nd, cost[uidx],
            static_cast<std::uint32_t>(units[uidx].idx.size()),
            /*replanned=*/true});
      }
      cursor[d] = queue[d].size();
    };
    const auto pending = [&] {
      for (std::size_t d = 0; d < group.size(); ++d) {
        if (cursor[d] < queue[d].size()) return true;
      }
      return false;
    };
    while (pending()) {
      for (std::size_t d = 0; d < group.size(); ++d) {
        while (cursor[d] < queue[d].size()) {
          // Probation members keep draining their (capped) queue; only a
          // member that can run nothing orphans its remainder.
          if (!serving(d)) {
            replan_remainder(d);
            break;
          }
          const std::uint32_t uidx = queue[d][cursor[d]++];
          run_unit(uidx, d, issued[d]++);
        }
      }
    }
  } else {
    // Work-stealing drain (kBalancedStealing): the static LPT queues
    // above become per-device deques. Each pass, the healthy member
    // whose modeled timeline has advanced least acts next: with its own
    // queue non-empty it runs its queue head (so per-device unit order —
    // and therefore per-device cost — is identical to kBalanced until
    // the first steal); dry, it steals the costliest still-unstarted
    // unit from the most-loaded victim. Every choice breaks ties on
    // device ordinal, then unit id, and reads only deterministic modeled
    // state, so replaying a batch reproduces the identical steal trace.
    // A dead member is never a thief but stays a victim: its orphaned
    // queue drains through the same steal loop — threshold waived, that
    // is failover, not opportunism — instead of a one-shot re-plan.
    std::vector<std::size_t> cursor(group.size(), 0);
    std::vector<std::size_t> issued(group.size(), 0);
    std::vector<double> makespan_base(group.size(), 0.0);
    for (std::size_t d = 0; d < group.size(); ++d) {
      makespan_base[d] = base[d].makespan_ms;
    }
    const auto busy = [&](std::size_t d) {
      return group.modeled_makespan_ms(d) - makespan_base[d];
    };
    const auto unstarted = [&](std::size_t d) {
      return cursor[d] < queue[d].size();
    };
    // Position of the costliest stealable unit in queue[d] (lowest unit
    // id on cost ties), or queue[d].size() when nothing qualifies: a
    // healthy victim only yields units whose calibrated estimate clears
    // the steal threshold; a dead one yields everything.
    const auto best_prey = [&](std::size_t d) {
      std::size_t best = queue[d].size();
      // A probation member is never a victim: its queue was deliberately
      // capped small, and robbing it would defeat the warm-up.
      if (group.health_state(d) == gpu::DeviceHealth::kProbation) {
        return best;
      }
      for (std::size_t p = cursor[d]; p < queue[d].size(); ++p) {
        const std::uint32_t u = queue[d][p];
        if (group.healthy(d) && !(cost[u] > policy_.steal_threshold)) {
          continue;
        }
        if (best == queue[d].size() || cost[u] > cost[queue[d][best]] ||
            (cost[u] == cost[queue[d][best]] && u < queue[d][best])) {
          best = p;
        }
      }
      return best;
    };
    // Most-loaded robbable victim by remaining *estimated* load (the
    // thief must commit before the victim's future is known — estimates
    // are all it has); ties resolve to the lowest ordinal.
    const auto pick_victim = [&](std::size_t thief) {
      std::size_t victim = group.size();
      double victim_load = 0.0;
      for (std::size_t d = 0; d < group.size(); ++d) {
        if (d == thief || best_prey(d) == queue[d].size()) continue;
        double rem = 0.0;
        for (std::size_t p = cursor[d]; p < queue[d].size(); ++p) {
          rem += cost[queue[d][p]];
        }
        if (victim == group.size() || rem > victim_load) {
          victim = d;
          victim_load = rem;
        }
      }
      return victim;
    };
    const auto pending = [&] {
      for (std::size_t d = 0; d < group.size(); ++d) {
        if (unstarted(d)) return true;
      }
      return false;
    };
    while (pending()) {
      // fail_device never kills the last healthy member, so a thief
      // always exists; and any pending queue is either a healthy
      // member's own work or a robbable dead member's, so every pass
      // completes exactly one unit — the loop cannot stall.
      // least_busy_member scans healthy members only (a probation member
      // is never a thief — it must not inflate its capped share), so on
      // an all-probation/dead fleet it returns size(); the fallback scan
      // below then picks a serving member still holding its own work.
      std::size_t thief = group.least_busy_member(makespan_base);
      if (thief >= group.size() || !unstarted(thief)) {
        const std::size_t victim =
            thief < group.size() ? pick_victim(thief) : group.size();
        if (victim == group.size()) {
          // Nothing robbable (the threshold shields every healthy
          // victim): the least-busy member still holding its *own* work
          // proceeds instead — probation members included, so a capped
          // queue drains on its owner. Ascending scan, strict <,
          // deterministic.
          for (std::size_t d = 0; d < group.size(); ++d) {
            if (!serving(d) || !unstarted(d)) continue;
            if (thief == group.size() || !unstarted(thief) ||
                busy(d) < busy(thief)) {
              thief = d;
            }
          }
          if (thief >= group.size() || !unstarted(thief)) {
            // No serving member holds runnable work (every pending queue
            // belongs to a dead/retired member and nobody can steal it):
            // re-plan through least_loaded and bail out of the drain.
            for (std::size_t d = 0; d < group.size(); ++d) {
              for (std::size_t p = cursor[d]; p < queue[d].size(); ++p) {
                const std::uint32_t uidx = queue[d][p];
                const std::size_t nd = least_loaded();
                run_unit(uidx, nd, issued[nd]++);
              }
              cursor[d] = queue[d].size();
            }
            break;
          }
        } else {
          const std::size_t p = best_prey(victim);
          const std::uint32_t uidx = queue[victim][p];
          queue[victim].erase(queue[victim].begin() +
                              static_cast<std::ptrdiff_t>(p));
          load[victim] -= cost[uidx];
          load[thief] += cost[uidx];
          ++stats_.steals;
          stats_.stolen_cost_ms += cost[uidx];
          stats_.steal_idle_absorbed_ms +=
              std::max(0.0, busy(victim) - busy(thief));
          schedule_.push_back(UnitPlacement{
              uidx, thief, cost[uidx],
              static_cast<std::uint32_t>(units[uidx].idx.size()),
              /*replanned=*/!group.healthy(victim), /*stolen=*/true});
          queue[thief].push_back(uidx);  // cursor sits exactly on it
        }
      }
      const std::uint32_t uidx = queue[thief][cursor[thief]++];
      run_unit(uidx, thief, issued[thief]++);
    }
  }

  for (const QueryResult& r : results) {
    if (!r.ok()) ++stats_.failed_queries;
    if (r.degraded) ++stats_.degraded_queries;
    if (r.path == QueryPath::kCpuHost) ++stats_.fallback_queries;
  }

  stats_.per_device.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    gpu::Device& d = group.device(i);
    BatchStats::DeviceStats ds;
    ds.device = ordinal_of(i);
    ds.units = base[i].units;
    ds.kernel_launches = d.kernel_totals().launches - base[i].launches;
    ds.serial_ms = d.total_modeled_ms() - base[i].serial_ms;
    ds.modeled_ms = d.modeled_makespan_ms() - base[i].makespan_ms;
    stats_.per_device.push_back(ds);
    stats_.serial_ms += ds.serial_ms;
    stats_.modeled_ms += ds.modeled_ms;
    stats_.kernel_launches += ds.kernel_launches;
    // The members run their queues concurrently: the wall clock over the
    // group is the slowest member, not the sum.
    stats_.group_makespan_ms = std::max(stats_.group_makespan_ms,
                                        ds.modeled_ms);
  }

  // Verify mode: analyze everything recorded on every group device so
  // far (the resident-graph uploads included — a batch racing an upload
  // is exactly the bug class this catches). Reports merge, so migrated
  // work is analyzed on whichever device it landed on.
  if (opts_.verify) {
    hazard_ = analysis::HazardReport{};
    for (std::size_t i = 0; i < group.size(); ++i) {
      hazard_.merge(group.device(i).verify_launch_graph());
    }
  }
  return results;
}

}  // namespace maxwarp::algorithms

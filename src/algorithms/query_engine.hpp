// QueryEngine — batched concurrent graph queries against one resident graph.
//
// Graph servers rarely run one traversal at a time: they answer many
// independent queries (reachability, distance) over the same structure.
// Two GPU-side optimisations fall out of batching, and this engine does
// both:
//
//   1. Fusion. Up to 32 BFS queries share ONE kernel sequence: each vertex
//      carries a 32-bit frontier/visited bitmask (bit q = query q), so one
//      edge expansion serves every query whose frontier touches it. The
//      adjacency data — the dominant traffic — is read once per level for
//      the whole group instead of once per query, and level counts stop
//      multiplying: the fused sweep runs max_q(depth_q) levels, not
//      sum_q(depth_q).
//   2. Overlap. Work units (fused groups, SSSP singles) are issued
//      round-robin across gpu::Streams via StreamScope, so the overlap
//      timeline lets narrow tail levels of one query group fill the SMs
//      another group leaves idle.
//
// Over a gpu::DeviceGroup a third multiplier appears: independent units
// can run on different members at once. The group scheduler
// (ResiliencePolicy::Scheduling::kBalanced, the default) estimates each
// unit's cost from the host CSR degree statistics (and the adaptive
// tuner's calibrated plan when cached), places units LPT-greedy
// (longest-processing-time first, stable tie-break on unit ordinal)
// onto per-device timelines, and round-robins each member's units over
// its own streams. BatchStats::group_makespan_ms reports the resulting
// concurrent makespan (max over members) next to the serial sum. When a
// member dies mid-batch its remaining queue is re-planned across the
// survivors — checkpoint-resume for fused units — preserving the
// failover contract below. kActiveOnly restores legacy one-device
// serving bit- and cost-identically.
//
// kBalancedStealing makes that plan self-correcting at two timescales.
// At batch scale the static queues become per-device deques drained by a
// work-stealing loop: whenever a member's modeled timeline runs dry it
// steals the costliest still-unstarted unit from the most-loaded victim
// (ties broken by device ordinal, then unit id, so replays are
// bit-identical), and a dead member's queue drains through the same loop
// instead of a one-shot re-plan. Across batches a feedback-calibrated
// cost model (cost_model_report()) folds each completed unit's observed
// modeled time back into a per-shape EWMA correction table, so LPT's
// estimates learn the frontier-evolution costs the static model cannot
// see.
//
// Because the simulator executes eagerly in issue order, results are
// bit-identical to running every query alone — levels are BFS distances,
// which no execution order can change. Tests exploit this: fused output ==
// serial bfs_gpu output, always.
//
// The engine also serves as the fault boundary for query serving: a
// device fault (simt/fault.hpp) never takes down the batch. Each work
// unit descends a degradation ladder — fused GPU group, engine-level
// retries with modeled backoff, isolation into single-query GPU runs,
// and finally the sequential host reference — until an answer or a
// structured per-query error (QueryResult::status) comes out. Queries
// can carry modeled-time deadlines; exceeding one yields
// kDeadlineExceeded rather than an open-ended wait.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "algorithms/replicated_graph.hpp"
#include "analysis/hazard_analyzer.hpp"
#include "gpu/device_group.hpp"
#include "gpu/status.hpp"
#include "graph/csr.hpp"
#include "graph/metrics.hpp"

namespace maxwarp::algorithms {

/// Result of the standalone fused multi-source BFS below.
struct GpuMsBfsResult {
  /// level[q][v] — BFS level of v from sources[q]; kUnreached if untouched.
  std::vector<std::vector<std::uint32_t>> level;
  GpuRunStats stats;
};

/// Host-side iteration-barrier checkpoint of a fused MS-BFS in flight:
/// the ResilientLoop snapshots of the three evolving buffers plus the
/// level those snapshots belong to. When the driver exhausts same-device
/// retries and throws, the handoff it was filling still holds the last
/// good iteration's state — the failover path replays it onto a spare's
/// replica (bfs_gpu_multi_source's `resume` parameter) and the traversal
/// continues from `level` instead of from the sources.
struct MsBfsHandoff {
  std::uint32_t level = 0;  ///< iteration the snapshots precede
  std::shared_ptr<const std::vector<std::uint32_t>> frontier;
  std::shared_ptr<const std::vector<std::uint32_t>> visited;
  std::shared_ptr<const std::vector<std::uint32_t>> levels;

  /// True when the snapshots exist (the source loop was checkpointing)
  /// and have been filled at least once.
  bool valid() const {
    return frontier && visited && levels && !frontier->empty();
  }
};

/// Fused multi-source BFS: K <= 32 traversals in one level-synchronous
/// kernel sequence over shared per-vertex bitmasks (bit q = query q).
/// Expansion is warp-centric per opts.mapping/virtual_warp_width; new
/// frontier bits merge with WarpCtx::atomic_or, and a vertex-owned update
/// kernel assigns levels race-free (sanitizer-clean). Each traversal's
/// levels are identical to bfs_gpu(g, sources[q]).
///
/// Iterations run under a ResilientLoop (KernelOptions resilience), so a
/// transient fault retries from the iteration checkpoint like every other
/// driver. `handoff`, if given, is wired to the loop's snapshots so the
/// caller holds the last good state even after an exhausted-retries
/// throw. `resume`, if valid, seeds the traversal from a previous run's
/// handoff instead of from `sources` — same sources, any device — and
/// produces bit-identical final levels.
GpuMsBfsResult bfs_gpu_multi_source(const GpuGraph& g,
                                    std::span<const graph::NodeId> sources,
                                    const KernelOptions& opts = {},
                                    MsBfsHandoff* handoff = nullptr,
                                    const MsBfsHandoff* resume = nullptr);

/// One query against the engine's resident graph.
struct Query {
  enum class Kind { kBfs, kSssp };
  Kind kind = Kind::kBfs;
  graph::NodeId source = 0;
  /// Per-query modeled-time budget in ms; 0 inherits
  /// QueryEngineOptions::default_deadline_ms (0 there = no deadline).
  double deadline_ms = 0.0;

  static Query bfs(graph::NodeId s, double deadline = 0.0) {
    return {Kind::kBfs, s, deadline};
  }
  static Query sssp(graph::NodeId s, double deadline = 0.0) {
    return {Kind::kSssp, s, deadline};
  }
};

/// How a query's answer was ultimately produced.
enum class QueryPath {
  kNone,      ///< no execution (rejected up front, or batch aborted)
  kFusedGpu,  ///< answered by a fused multi-source BFS kernel group
  kSingleGpu, ///< answered by a dedicated single-query GPU traversal
  kCpuHost,   ///< answered by the sequential host reference (degraded)
};
const char* to_string(QueryPath path);

struct QueryResult {
  Query query;
  /// Per-node BFS levels (kUnreached sentinel) or SSSP distances
  /// (kInfDist sentinel), depending on query.kind. Empty when the query
  /// failed before producing an answer (status() tells why); on a
  /// deadline overrun the best-effort value is kept alongside the
  /// kDeadlineExceeded status.
  std::vector<std::uint32_t> value;
  /// kOk, or the structured reason this query failed (kInvalidArgument
  /// for a rejected source, kDeadlineExceeded, or the last GPU error
  /// once retries and fallbacks were exhausted).
  gpu::Status status;
  /// Execution path that produced `value`.
  QueryPath path = QueryPath::kNone;
  /// GPU execution attempts spent on this query (first try + retries,
  /// counting both fused and isolated-single attempts).
  std::uint32_t gpu_attempts = 0;
  /// True when the engine had to leave the fast path (fused group broken
  /// up, CPU fallback, or a kept-but-late deadline answer).
  bool degraded = false;
  /// Modeled serial milliseconds this query's work unit consumed
  /// (shared across members of a fused group, summed across devices when
  /// the unit migrated).
  double modeled_ms = 0.0;
  /// Group ordinal of the device that produced `value`, or -1 when the
  /// answer came from the host (kCpuHost) or the query never ran. The
  /// borrowing single-device constructor reports ordinal 0 (its device
  /// stays anonymous for error text, but accounting is uniform across
  /// both constructors).
  int device = -1;

  bool ok() const { return status.ok(); }
};

struct QueryEngineOptions {
  /// Streams the batch is spread over (>= 1). More streams expose more
  /// overlap to the timeline until Σ parallelism saturates the SMs.
  std::uint32_t num_streams = 4;
  /// BFS queries fused per kernel group, in [1, 32]. 1 disables fusion.
  std::uint32_t bfs_group_size = 32;
  /// Escape hatch: run every BFS serially even when grouping is possible.
  bool fuse_bfs = true;
  /// Kernel tuning forwarded to the underlying traversals.
  KernelOptions kernel = {};
  /// The engine's ladder policy — retries, backoff, deadlines, host
  /// fallback, and the group scheduling mode — shared with the
  /// iteration-level loop as algorithms::ResiliencePolicy (one
  /// documented source of truth). max_retries here means whole-work-unit
  /// re-runs after the drivers' own iteration-level retry gave up;
  /// resilience.scheduling selects kActiveOnly legacy serving or the
  /// kBalanced (default) group scheduler.
  ResiliencePolicy resilience = {};
  /// Verify mode: after each run(), analyze every device's recorded
  /// launch graph for cross-stream hazards over the whole batch and
  /// store the merged result in last_hazard_report(). Requires devices
  /// constructed with SimConfig::record_launch_graph (the constructor
  /// enforces this).
  bool verify = false;
};

/// Modeled-time accounting for one run() batch.
struct BatchStats {
  /// Per-device overlap-aware makespans (streams share SMs, copies ride
  /// the DMA engines), summed across the group — the serial-group view
  /// of the batch.
  double modeled_ms = 0.0;
  /// The same ops under the serial model, back to back — what issuing
  /// every query alone on the default stream would have cost.
  double serial_ms = 0.0;
  /// Group-level makespan: the max over per-device modeled makespan
  /// deltas — the number a wall clock over the whole group would have
  /// shown, since the members run their queues concurrently. Equals
  /// modeled_ms on a single-device engine; under kBalanced scheduling
  /// on an N-device group it approaches modeled_ms / N.
  double group_makespan_ms = 0.0;
  std::uint32_t queries = 0;
  std::uint32_t fused_groups = 0;  ///< fused kernels covering >= 2 queries
  std::uint32_t streams_used = 0;
  std::uint64_t kernel_launches = 0;
  // -- fault-tolerance accounting (all zero on a clean batch) --
  std::uint32_t failed_queries = 0;    ///< results with !ok()
  std::uint32_t degraded_queries = 0;  ///< results answered off the fast path
  std::uint32_t fallback_queries = 0;  ///< answered by the host reference
  std::uint32_t retries = 0;           ///< engine-level unit re-attempts
  std::uint32_t isolated_groups = 0;   ///< fused groups broken into singles
  // -- multi-device accounting (all zero on a single-device engine) --
  /// Device failovers during the batch: the active device exhausted its
  /// retries and the group migrated to a healthy spare.
  std::uint32_t migrations = 0;
  /// Work units that completed on a different device than they started
  /// on.
  std::uint32_t migrated_units = 0;
  /// Migrated fused units that resumed from their iteration-barrier
  /// checkpoint instead of restarting from the sources.
  std::uint32_t checkpoint_resumes = 0;
  /// Units the kBalancedStealing drain loop moved off their planned
  /// device before they started (zero under every other mode).
  std::uint32_t steals = 0;
  /// Sum of the estimated costs of stolen units (scheduler cost units)
  /// — how much planned load the thieves lifted off their victims.
  double stolen_cost_ms = 0.0;
  /// Modeled milliseconds of would-be idle time the steal loop filled:
  /// for each steal, how far the thief's timeline trailed the victim's
  /// at the moment of the steal.
  double steal_idle_absorbed_ms = 0.0;
  // -- fleet-maintenance accounting (all zero while every member is
  // healthy; filled by the maintenance pass run() executes up front) --
  /// Canary probes launched on probation members this batch.
  std::uint32_t probes = 0;
  /// Probes that faulted (each re-kills its member with doubled delay).
  std::uint32_t probe_failures = 0;
  /// Members restored to full health after N consecutive clean probes.
  std::uint32_t restorations = 0;
  /// Members permanently retired (max restore attempts exhausted).
  std::uint32_t retired = 0;
  /// Per-device share of the batch, index-aligned with the group's
  /// devices (one entry even for devices that stayed idle). The
  /// single-device constructors leave one entry with device = 0, so
  /// per-device accounting reads uniformly across both constructors.
  struct DeviceStats {
    int device = -1;               ///< group ordinal (index when anonymous)
    std::uint32_t units = 0;       ///< work units that ran (even partly) here
    std::uint64_t kernel_launches = 0;
    double modeled_ms = 0.0;       ///< makespan delta on this device
    double serial_ms = 0.0;        ///< serial-model delta on this device
  };
  std::vector<DeviceStats> per_device;
};

/// One group-scheduler placement decision: work unit `unit` (ordinal in
/// the batch's unit list, input order) placed onto group device `device`
/// with modeled cost estimate `estimated_cost`. The kBalanced plan is a
/// pure function of the batch and the host CSR, so replaying a batch
/// reproduces the identical placement sequence.
struct UnitPlacement {
  std::uint32_t unit = 0;
  std::size_t device = 0;
  double estimated_cost = 0.0;   ///< scheduler cost units (not ms)
  std::uint32_t queries = 0;     ///< queries the unit carries
  bool replanned = false;        ///< placed again after a device death
  /// True when the steal loop moved this unit off its planned device
  /// before it started (kBalancedStealing only).
  bool stolen = false;
  /// Group ordinal of the device that actually completed the unit, or -1
  /// while it never ran. Differs from `device` after a steal or failover
  /// migration — the gap is the estimate error the placement carried.
  int executed_on = -1;
  /// Modeled milliseconds the completed unit actually consumed, next to
  /// `estimated_cost` so last_schedule() exposes per-unit estimate error
  /// directly. 0 while the unit never ran.
  double observed_cost_ms = 0.0;
};

/// The group scheduler's cost model: a deterministic modeled cost
/// (arbitrary units, comparable within one batch) for one work unit —
/// a fused MS-BFS group of `fused_queries` traversals when `bfs`, an
/// SSSP single otherwise.
///
/// The per-level sweep cost comes from the host CSR's power-of-two
/// degree histogram folded through adaptive_model_cost at the width each
/// degree class would run at. With a cached kAdaptive state, the
/// calibrated plan supplies those widths (and warp-team splits) per bin
/// — the probe ledger's measured optimum — so the estimate tracks what
/// the dispatcher will actually launch; otherwise the static mapping's
/// single W is used. Fused groups add a per-extra-query share for the
/// update kernel's bit-peel; SSSP units are weighted by the extra
/// relaxation rounds and weight traffic of Bellman-Ford over BFS.
double estimate_unit_cost(const graph::DegreeStats& degrees,
                          std::uint32_t fused_queries, bool bfs,
                          const KernelOptions& opts,
                          const simt::SimConfig& cfg,
                          const AdaptiveState* adaptive = nullptr);

/// What one fleet-maintenance pass (QueryEngine::maintain_fleet) did.
struct FleetReport {
  std::uint32_t probes = 0;
  std::uint32_t probe_failures = 0;
  std::uint32_t restorations = 0;
  std::uint32_t retired = 0;
};

class QueryEngine {
 public:
  /// Single-device adapter: borrows `graph` (upload already paid; it
  /// must outlive the engine) and wraps it as a one-device group, so the
  /// single entry point and the failover entry points run the same
  /// ladder code. Throws on invalid options.
  explicit QueryEngine(const GpuGraph& graph,
                       const QueryEngineOptions& opts = {});

  /// Failover serving over an existing replica set (which must outlive
  /// the engine): work units start on the group's active device and
  /// migrate to healthy spares when it exhausts its retries, falling
  /// back to the host only when every device is exhausted.
  explicit QueryEngine(ReplicatedGraph& graphs,
                       const QueryEngineOptions& opts = {});

  /// Failover serving that owns its replicas: uploads `host` across
  /// `group` (eagerly or lazily per `upload`) and serves over it. The
  /// group must outlive the engine.
  QueryEngine(gpu::DeviceGroup& group, graph::Csr host,
              const QueryEngineOptions& opts = {},
              ReplicatedGraph::Upload upload = ReplicatedGraph::Upload::kEager);

  /// Executes the batch and returns results in input order. BFS queries
  /// are greedily grouped (input order) into fused kernels of up to
  /// bfs_group_size; SSSP queries run as singles; units are placed
  /// across the group's healthy members (resilience.scheduling) and
  /// round-robin across num_streams streams per device. Accounting
  /// lands in last_batch_stats(), placements in last_schedule().
  std::vector<QueryResult> run(std::span<const Query> queries);

  /// One fleet-maintenance pass over the device group, run automatically
  /// at the start of every run() (and callable standalone between
  /// batches): decays suspect scores back toward healthy, moves
  /// probation-due dead members into probation, and launches up to
  /// health.probes_per_pass canary probes per probation member — a tiny
  /// labeled one-level BFS over a slice of the member's replica, charged
  /// to modeled time and visible in the launch graph. N consecutive
  /// clean probes revalidate the replica (page-granular ECC path) and
  /// restore the member to the rotation; a faulted probe re-kills it
  /// with exponentially backed-off re-entry, and a member that exhausts
  /// max_restore_attempts is permanently retired. Deterministic: every
  /// decision reads the modeled clock and the seeded fault injector.
  FleetReport maintain_fleet();

  const BatchStats& last_batch_stats() const { return stats_; }
  /// The scheduler's placement log for the last run() batch, in
  /// execution order: initial LPT placements first, re-planned
  /// placements (after a device death) appended as they happen. Under
  /// kActiveOnly every unit is logged on the active device at its start.
  const std::vector<UnitPlacement>& last_schedule() const {
    return schedule_;
  }
  /// The primary device's replica (the only one for the single-device
  /// constructor).
  const GpuGraph& graph() { return graphs_->replica(0); }
  const QueryEngineOptions& options() const { return opts_; }
  /// The ladder policy in force (options().resilience).
  const ResiliencePolicy& policy() const { return policy_; }
  /// The device group work is scheduled over (a one-device group for the
  /// single-device constructor).
  const gpu::DeviceGroup& device_group() const { return graphs_->group(); }

  /// Hazard analysis of the last run() batch, merged across every
  /// recording device; empty unless QueryEngineOptions::verify is on.
  const analysis::HazardReport& last_hazard_report() const {
    return hazard_;
  }

  /// The feedback-calibrated cost model's correction table, key-sorted:
  /// one entry per work-unit shape (algorithm × fused-width bucket ×
  /// degree bucket) the engine has observed, with the EWMA-smoothed
  /// observed/estimated ratio the balanced schedulers multiply into
  /// estimate_unit_cost. Persists across run() batches — estimates
  /// sharpen with traffic — and is empty until the first clean unit
  /// completes under a balanced mode.
  const std::vector<CostModelEntry>& cost_model_report() const {
    return calibration_.entries();
  }

  /// Serializes the calibration table (cost_model_report()) to JSON —
  /// the save half of cross-process warm-start.
  std::string export_cost_model() const { return calibration_.to_json(); }

  /// Adopts a previously exported calibration table: the imported
  /// entries replace this engine's (the imported alpha is discarded —
  /// future observations blend with this engine's configured
  /// cost_ewma_alpha). Throws std::invalid_argument on malformed JSON.
  void import_cost_model(const std::string& json);

 private:
  void validate_options() const;
  /// Launches one canary probe kernel on group member `i`; true when it
  /// ran clean, false when it faulted (DeviceError/SanitizerFault).
  bool run_canary_probe(std::size_t i);

  ReplicatedGraph* graphs_;
  std::unique_ptr<ReplicatedGraph> owned_graphs_;
  QueryEngineOptions opts_;
  ResiliencePolicy policy_;
  BatchStats stats_;
  std::vector<UnitPlacement> schedule_;
  analysis::HazardReport hazard_;
  CostModelCalibration calibration_;
};

}  // namespace maxwarp::algorithms

// QueryEngine — batched concurrent graph queries against one resident graph.
//
// Graph servers rarely run one traversal at a time: they answer many
// independent queries (reachability, distance) over the same structure.
// Two GPU-side optimisations fall out of batching, and this engine does
// both:
//
//   1. Fusion. Up to 32 BFS queries share ONE kernel sequence: each vertex
//      carries a 32-bit frontier/visited bitmask (bit q = query q), so one
//      edge expansion serves every query whose frontier touches it. The
//      adjacency data — the dominant traffic — is read once per level for
//      the whole group instead of once per query, and level counts stop
//      multiplying: the fused sweep runs max_q(depth_q) levels, not
//      sum_q(depth_q).
//   2. Overlap. Work units (fused groups, SSSP singles) are issued
//      round-robin across gpu::Streams via StreamScope, so the overlap
//      timeline lets narrow tail levels of one query group fill the SMs
//      another group leaves idle.
//
// Because the simulator executes eagerly in issue order, results are
// bit-identical to running every query alone — levels are BFS distances,
// which no execution order can change. Tests exploit this: fused output ==
// serial bfs_gpu output, always.
//
// The engine also serves as the fault boundary for query serving: a
// device fault (simt/fault.hpp) never takes down the batch. Each work
// unit descends a degradation ladder — fused GPU group, engine-level
// retries with modeled backoff, isolation into single-query GPU runs,
// and finally the sequential host reference — until an answer or a
// structured per-query error (QueryResult::status) comes out. Queries
// can carry modeled-time deadlines; exceeding one yields
// kDeadlineExceeded rather than an open-ended wait.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "analysis/hazard_analyzer.hpp"
#include "gpu/status.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

/// Result of the standalone fused multi-source BFS below.
struct GpuMsBfsResult {
  /// level[q][v] — BFS level of v from sources[q]; kUnreached if untouched.
  std::vector<std::vector<std::uint32_t>> level;
  GpuRunStats stats;
};

/// Fused multi-source BFS: K <= 32 traversals in one level-synchronous
/// kernel sequence over shared per-vertex bitmasks (bit q = query q).
/// Expansion is warp-centric per opts.mapping/virtual_warp_width; new
/// frontier bits merge with WarpCtx::atomic_or, and a vertex-owned update
/// kernel assigns levels race-free (sanitizer-clean). Each traversal's
/// levels are identical to bfs_gpu(g, sources[q]).
GpuMsBfsResult bfs_gpu_multi_source(const GpuGraph& g,
                                    std::span<const graph::NodeId> sources,
                                    const KernelOptions& opts = {});

/// One query against the engine's resident graph.
struct Query {
  enum class Kind { kBfs, kSssp };
  Kind kind = Kind::kBfs;
  graph::NodeId source = 0;
  /// Per-query modeled-time budget in ms; 0 inherits
  /// QueryEngineOptions::default_deadline_ms (0 there = no deadline).
  double deadline_ms = 0.0;

  static Query bfs(graph::NodeId s, double deadline = 0.0) {
    return {Kind::kBfs, s, deadline};
  }
  static Query sssp(graph::NodeId s, double deadline = 0.0) {
    return {Kind::kSssp, s, deadline};
  }
};

/// How a query's answer was ultimately produced.
enum class QueryPath {
  kNone,      ///< no execution (rejected up front, or batch aborted)
  kFusedGpu,  ///< answered by a fused multi-source BFS kernel group
  kSingleGpu, ///< answered by a dedicated single-query GPU traversal
  kCpuHost,   ///< answered by the sequential host reference (degraded)
};
const char* to_string(QueryPath path);

struct QueryResult {
  Query query;
  /// Per-node BFS levels (kUnreached sentinel) or SSSP distances
  /// (kInfDist sentinel), depending on query.kind. Empty when the query
  /// failed before producing an answer (status() tells why); on a
  /// deadline overrun the best-effort value is kept alongside the
  /// kDeadlineExceeded status.
  std::vector<std::uint32_t> value;
  /// kOk, or the structured reason this query failed (kInvalidArgument
  /// for a rejected source, kDeadlineExceeded, or the last GPU error
  /// once retries and fallbacks were exhausted).
  gpu::Status status;
  /// Execution path that produced `value`.
  QueryPath path = QueryPath::kNone;
  /// GPU execution attempts spent on this query (first try + retries,
  /// counting both fused and isolated-single attempts).
  std::uint32_t gpu_attempts = 0;
  /// True when the engine had to leave the fast path (fused group broken
  /// up, CPU fallback, or a kept-but-late deadline answer).
  bool degraded = false;
  /// Modeled serial milliseconds this query's work unit consumed
  /// (shared across members of a fused group).
  double modeled_ms = 0.0;

  bool ok() const { return status.ok(); }
};

struct QueryEngineOptions {
  /// Streams the batch is spread over (>= 1). More streams expose more
  /// overlap to the timeline until Σ parallelism saturates the SMs.
  std::uint32_t num_streams = 4;
  /// BFS queries fused per kernel group, in [1, 32]. 1 disables fusion.
  std::uint32_t bfs_group_size = 32;
  /// Escape hatch: run every BFS serially even when grouping is possible.
  bool fuse_bfs = true;
  /// Kernel tuning forwarded to the underlying traversals.
  KernelOptions kernel = {};
  /// GPU re-attempts of one work unit after a transient fault (on top of
  /// the first try). Iteration-level retry inside the drivers happens
  /// first; this rung re-runs the whole unit.
  std::uint32_t max_retries = 1;
  /// Modeled backoff charged before engine-level retry r:
  /// retry_backoff_ms * 2^r on the unit's stream.
  double retry_backoff_ms = 0.05;
  /// Deadline applied to queries that carry none of their own; 0 = none.
  double default_deadline_ms = 0.0;
  /// Last rung of the ladder: answer on the host reference when the GPU
  /// keeps faulting. Off = exhausted queries return their error instead.
  bool cpu_fallback = true;
  /// Verify mode: after each run(), analyze the device's recorded launch
  /// graph for cross-stream hazards over the whole batch and store the
  /// result in last_hazard_report(). Requires a device constructed with
  /// SimConfig::record_launch_graph (the constructor enforces this).
  bool verify = false;
};

/// Modeled-time accounting for one run() batch.
struct BatchStats {
  /// Overlap-aware makespan of the batch (streams share SMs, copies ride
  /// the DMA engines) — the number a wall clock would have shown.
  double modeled_ms = 0.0;
  /// The same ops under the serial model, back to back — what issuing
  /// every query alone on the default stream would have cost.
  double serial_ms = 0.0;
  std::uint32_t queries = 0;
  std::uint32_t fused_groups = 0;  ///< fused kernels covering >= 2 queries
  std::uint32_t streams_used = 0;
  std::uint64_t kernel_launches = 0;
  // -- fault-tolerance accounting (all zero on a clean batch) --
  std::uint32_t failed_queries = 0;    ///< results with !ok()
  std::uint32_t degraded_queries = 0;  ///< results answered off the fast path
  std::uint32_t fallback_queries = 0;  ///< answered by the host reference
  std::uint32_t retries = 0;           ///< engine-level unit re-attempts
  std::uint32_t isolated_groups = 0;   ///< fused groups broken into singles
};

class QueryEngine {
 public:
  /// The engine borrows `graph` (upload already paid); it must outlive
  /// the engine. Throws on invalid options.
  explicit QueryEngine(const GpuGraph& graph,
                       const QueryEngineOptions& opts = {});

  /// Executes the batch and returns results in input order. BFS queries
  /// are greedily grouped (input order) into fused kernels of up to
  /// bfs_group_size; SSSP queries run as singles; units round-robin
  /// across num_streams streams. Accounting lands in last_batch_stats().
  std::vector<QueryResult> run(std::span<const Query> queries);

  const BatchStats& last_batch_stats() const { return stats_; }
  const GpuGraph& graph() const { return *graph_; }
  const QueryEngineOptions& options() const { return opts_; }

  /// Hazard analysis of the last run() batch; empty unless
  /// QueryEngineOptions::verify is on.
  const analysis::HazardReport& last_hazard_report() const {
    return hazard_;
  }

 private:
  const GpuGraph* graph_;
  QueryEngineOptions opts_;
  BatchStats stats_;
  analysis::HazardReport hazard_;
};

}  // namespace maxwarp::algorithms

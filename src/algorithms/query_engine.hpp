// QueryEngine — batched concurrent graph queries against one resident graph.
//
// Graph servers rarely run one traversal at a time: they answer many
// independent queries (reachability, distance) over the same structure.
// Two GPU-side optimisations fall out of batching, and this engine does
// both:
//
//   1. Fusion. Up to 32 BFS queries share ONE kernel sequence: each vertex
//      carries a 32-bit frontier/visited bitmask (bit q = query q), so one
//      edge expansion serves every query whose frontier touches it. The
//      adjacency data — the dominant traffic — is read once per level for
//      the whole group instead of once per query, and level counts stop
//      multiplying: the fused sweep runs max_q(depth_q) levels, not
//      sum_q(depth_q).
//   2. Overlap. Work units (fused groups, SSSP singles) are issued
//      round-robin across gpu::Streams via StreamScope, so the overlap
//      timeline lets narrow tail levels of one query group fill the SMs
//      another group leaves idle.
//
// Because the simulator executes eagerly in issue order, results are
// bit-identical to running every query alone — levels are BFS distances,
// which no execution order can change. Tests exploit this: fused output ==
// serial bfs_gpu output, always.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

/// Result of the standalone fused multi-source BFS below.
struct GpuMsBfsResult {
  /// level[q][v] — BFS level of v from sources[q]; kUnreached if untouched.
  std::vector<std::vector<std::uint32_t>> level;
  GpuRunStats stats;
};

/// Fused multi-source BFS: K <= 32 traversals in one level-synchronous
/// kernel sequence over shared per-vertex bitmasks (bit q = query q).
/// Expansion is warp-centric per opts.mapping/virtual_warp_width; new
/// frontier bits merge with WarpCtx::atomic_or, and a vertex-owned update
/// kernel assigns levels race-free (sanitizer-clean). Each traversal's
/// levels are identical to bfs_gpu(g, sources[q]).
GpuMsBfsResult bfs_gpu_multi_source(const GpuGraph& g,
                                    std::span<const graph::NodeId> sources,
                                    const KernelOptions& opts = {});

/// One query against the engine's resident graph.
struct Query {
  enum class Kind { kBfs, kSssp };
  Kind kind = Kind::kBfs;
  graph::NodeId source = 0;

  static Query bfs(graph::NodeId s) { return {Kind::kBfs, s}; }
  static Query sssp(graph::NodeId s) { return {Kind::kSssp, s}; }
};

struct QueryResult {
  Query query;
  /// Per-node BFS levels (kUnreached sentinel) or SSSP distances
  /// (kInfDist sentinel), depending on query.kind.
  std::vector<std::uint32_t> value;
};

struct QueryEngineOptions {
  /// Streams the batch is spread over (>= 1). More streams expose more
  /// overlap to the timeline until Σ parallelism saturates the SMs.
  std::uint32_t num_streams = 4;
  /// BFS queries fused per kernel group, in [1, 32]. 1 disables fusion.
  std::uint32_t bfs_group_size = 32;
  /// Escape hatch: run every BFS serially even when grouping is possible.
  bool fuse_bfs = true;
  /// Kernel tuning forwarded to the underlying traversals.
  KernelOptions kernel = {};
};

/// Modeled-time accounting for one run() batch.
struct BatchStats {
  /// Overlap-aware makespan of the batch (streams share SMs, copies ride
  /// the DMA engines) — the number a wall clock would have shown.
  double modeled_ms = 0.0;
  /// The same ops under the serial model, back to back — what issuing
  /// every query alone on the default stream would have cost.
  double serial_ms = 0.0;
  std::uint32_t queries = 0;
  std::uint32_t fused_groups = 0;  ///< fused kernels covering >= 2 queries
  std::uint32_t streams_used = 0;
  std::uint64_t kernel_launches = 0;
};

class QueryEngine {
 public:
  /// The engine borrows `graph` (upload already paid); it must outlive
  /// the engine. Throws on invalid options.
  explicit QueryEngine(const GpuGraph& graph,
                       const QueryEngineOptions& opts = {});

  /// Executes the batch and returns results in input order. BFS queries
  /// are greedily grouped (input order) into fused kernels of up to
  /// bfs_group_size; SSSP queries run as singles; units round-robin
  /// across num_streams streams. Accounting lands in last_batch_stats().
  std::vector<QueryResult> run(std::span<const Query> queries);

  const BatchStats& last_batch_stats() const { return stats_; }
  const GpuGraph& graph() const { return *graph_; }
  const QueryEngineOptions& options() const { return opts_; }

 private:
  const GpuGraph* graph_;
  QueryEngineOptions opts_;
  BatchStats stats_;
};

}  // namespace maxwarp::algorithms

// QueryEngine — batched concurrent graph queries against one resident graph.
//
// Graph servers rarely run one traversal at a time: they answer many
// independent queries (reachability, distance) over the same structure.
// Two GPU-side optimisations fall out of batching, and this engine does
// both:
//
//   1. Fusion. Up to 32 BFS queries share ONE kernel sequence: each vertex
//      carries a 32-bit frontier/visited bitmask (bit q = query q), so one
//      edge expansion serves every query whose frontier touches it. The
//      adjacency data — the dominant traffic — is read once per level for
//      the whole group instead of once per query, and level counts stop
//      multiplying: the fused sweep runs max_q(depth_q) levels, not
//      sum_q(depth_q).
//   2. Overlap. Work units (fused groups, SSSP singles) are issued
//      round-robin across gpu::Streams via StreamScope, so the overlap
//      timeline lets narrow tail levels of one query group fill the SMs
//      another group leaves idle.
//
// Because the simulator executes eagerly in issue order, results are
// bit-identical to running every query alone — levels are BFS distances,
// which no execution order can change. Tests exploit this: fused output ==
// serial bfs_gpu output, always.
//
// The engine also serves as the fault boundary for query serving: a
// device fault (simt/fault.hpp) never takes down the batch. Each work
// unit descends a degradation ladder — fused GPU group, engine-level
// retries with modeled backoff, isolation into single-query GPU runs,
// and finally the sequential host reference — until an answer or a
// structured per-query error (QueryResult::status) comes out. Queries
// can carry modeled-time deadlines; exceeding one yields
// kDeadlineExceeded rather than an open-ended wait.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "algorithms/replicated_graph.hpp"
#include "analysis/hazard_analyzer.hpp"
#include "gpu/device_group.hpp"
#include "gpu/status.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

/// Result of the standalone fused multi-source BFS below.
struct GpuMsBfsResult {
  /// level[q][v] — BFS level of v from sources[q]; kUnreached if untouched.
  std::vector<std::vector<std::uint32_t>> level;
  GpuRunStats stats;
};

/// Host-side iteration-barrier checkpoint of a fused MS-BFS in flight:
/// the ResilientLoop snapshots of the three evolving buffers plus the
/// level those snapshots belong to. When the driver exhausts same-device
/// retries and throws, the handoff it was filling still holds the last
/// good iteration's state — the failover path replays it onto a spare's
/// replica (bfs_gpu_multi_source's `resume` parameter) and the traversal
/// continues from `level` instead of from the sources.
struct MsBfsHandoff {
  std::uint32_t level = 0;  ///< iteration the snapshots precede
  std::shared_ptr<const std::vector<std::uint32_t>> frontier;
  std::shared_ptr<const std::vector<std::uint32_t>> visited;
  std::shared_ptr<const std::vector<std::uint32_t>> levels;

  /// True when the snapshots exist (the source loop was checkpointing)
  /// and have been filled at least once.
  bool valid() const {
    return frontier && visited && levels && !frontier->empty();
  }
};

/// Fused multi-source BFS: K <= 32 traversals in one level-synchronous
/// kernel sequence over shared per-vertex bitmasks (bit q = query q).
/// Expansion is warp-centric per opts.mapping/virtual_warp_width; new
/// frontier bits merge with WarpCtx::atomic_or, and a vertex-owned update
/// kernel assigns levels race-free (sanitizer-clean). Each traversal's
/// levels are identical to bfs_gpu(g, sources[q]).
///
/// Iterations run under a ResilientLoop (KernelOptions resilience), so a
/// transient fault retries from the iteration checkpoint like every other
/// driver. `handoff`, if given, is wired to the loop's snapshots so the
/// caller holds the last good state even after an exhausted-retries
/// throw. `resume`, if valid, seeds the traversal from a previous run's
/// handoff instead of from `sources` — same sources, any device — and
/// produces bit-identical final levels.
GpuMsBfsResult bfs_gpu_multi_source(const GpuGraph& g,
                                    std::span<const graph::NodeId> sources,
                                    const KernelOptions& opts = {},
                                    MsBfsHandoff* handoff = nullptr,
                                    const MsBfsHandoff* resume = nullptr);

/// One query against the engine's resident graph.
struct Query {
  enum class Kind { kBfs, kSssp };
  Kind kind = Kind::kBfs;
  graph::NodeId source = 0;
  /// Per-query modeled-time budget in ms; 0 inherits
  /// QueryEngineOptions::default_deadline_ms (0 there = no deadline).
  double deadline_ms = 0.0;

  static Query bfs(graph::NodeId s, double deadline = 0.0) {
    return {Kind::kBfs, s, deadline};
  }
  static Query sssp(graph::NodeId s, double deadline = 0.0) {
    return {Kind::kSssp, s, deadline};
  }
};

/// How a query's answer was ultimately produced.
enum class QueryPath {
  kNone,      ///< no execution (rejected up front, or batch aborted)
  kFusedGpu,  ///< answered by a fused multi-source BFS kernel group
  kSingleGpu, ///< answered by a dedicated single-query GPU traversal
  kCpuHost,   ///< answered by the sequential host reference (degraded)
};
const char* to_string(QueryPath path);

struct QueryResult {
  Query query;
  /// Per-node BFS levels (kUnreached sentinel) or SSSP distances
  /// (kInfDist sentinel), depending on query.kind. Empty when the query
  /// failed before producing an answer (status() tells why); on a
  /// deadline overrun the best-effort value is kept alongside the
  /// kDeadlineExceeded status.
  std::vector<std::uint32_t> value;
  /// kOk, or the structured reason this query failed (kInvalidArgument
  /// for a rejected source, kDeadlineExceeded, or the last GPU error
  /// once retries and fallbacks were exhausted).
  gpu::Status status;
  /// Execution path that produced `value`.
  QueryPath path = QueryPath::kNone;
  /// GPU execution attempts spent on this query (first try + retries,
  /// counting both fused and isolated-single attempts).
  std::uint32_t gpu_attempts = 0;
  /// True when the engine had to leave the fast path (fused group broken
  /// up, CPU fallback, or a kept-but-late deadline answer).
  bool degraded = false;
  /// Modeled serial milliseconds this query's work unit consumed
  /// (shared across members of a fused group, summed across devices when
  /// the unit migrated).
  double modeled_ms = 0.0;
  /// Group ordinal of the device that produced `value`, or -1 when the
  /// answer came from the host (kCpuHost), the query never ran, or the
  /// engine serves a standalone single device (which stays anonymous).
  int device = -1;

  bool ok() const { return status.ok(); }
};

/// The diagnostic region spans the whole struct so that synthesizing its
/// special members (which touch the deprecated aliases' default
/// initializers) stays silent; alias *writes* in caller code still warn
/// at the caller's own location.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct QueryEngineOptions {
  /// Streams the batch is spread over (>= 1). More streams expose more
  /// overlap to the timeline until Σ parallelism saturates the SMs.
  std::uint32_t num_streams = 4;
  /// BFS queries fused per kernel group, in [1, 32]. 1 disables fusion.
  std::uint32_t bfs_group_size = 32;
  /// Escape hatch: run every BFS serially even when grouping is possible.
  bool fuse_bfs = true;
  /// Kernel tuning forwarded to the underlying traversals.
  KernelOptions kernel = {};
  /// The engine's ladder policy — retries, backoff, deadlines, host
  /// fallback — shared with the iteration-level loop as
  /// algorithms::ResiliencePolicy (one documented source of truth).
  /// max_retries here means whole-work-unit re-runs after the drivers'
  /// own iteration-level retry gave up.
  ResiliencePolicy resilience = {};
  /// Verify mode: after each run(), analyze every device's recorded
  /// launch graph for cross-stream hazards over the whole batch and
  /// store the merged result in last_hazard_report(). Requires devices
  /// constructed with SimConfig::record_launch_graph (the constructor
  /// enforces this).
  bool verify = false;

  /// Deprecated aliases of the policy fields, kept for one release so
  /// pre-policy call sites still compile. Sentinel (negative / unset) =
  /// inherit the nested policy; a set alias overrides it in
  /// effective_policy(). NOTE the unified default: max_retries now
  /// defaults to ResiliencePolicy's 2 (this engine's old default was 1).
  [[deprecated("set resilience.max_retries instead")]]
  std::int64_t max_retries = -1;
  [[deprecated("set resilience.retry_backoff_ms instead")]]
  double retry_backoff_ms = -1.0;
  [[deprecated("set resilience.default_deadline_ms instead")]]
  double default_deadline_ms = -1.0;
  /// Tri-state: -1 unset, 0 false, 1 true (bool assignment still works).
  [[deprecated("set resilience.cpu_fallback instead")]]
  int cpu_fallback = -1;

  /// The policy the engine actually runs: `resilience` with any set
  /// deprecated aliases folded in.
  ResiliencePolicy effective_policy() const {
    ResiliencePolicy p = resilience;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    if (max_retries >= 0) {
      p.max_retries = static_cast<std::uint32_t>(max_retries);
    }
    if (retry_backoff_ms >= 0) p.retry_backoff_ms = retry_backoff_ms;
    if (default_deadline_ms >= 0) p.default_deadline_ms = default_deadline_ms;
    if (cpu_fallback >= 0) p.cpu_fallback = cpu_fallback != 0;
#pragma GCC diagnostic pop
    return p;
  }
};
#pragma GCC diagnostic pop

/// Modeled-time accounting for one run() batch.
struct BatchStats {
  /// Overlap-aware makespan of the batch (streams share SMs, copies ride
  /// the DMA engines) — the number a wall clock would have shown.
  double modeled_ms = 0.0;
  /// The same ops under the serial model, back to back — what issuing
  /// every query alone on the default stream would have cost.
  double serial_ms = 0.0;
  std::uint32_t queries = 0;
  std::uint32_t fused_groups = 0;  ///< fused kernels covering >= 2 queries
  std::uint32_t streams_used = 0;
  std::uint64_t kernel_launches = 0;
  // -- fault-tolerance accounting (all zero on a clean batch) --
  std::uint32_t failed_queries = 0;    ///< results with !ok()
  std::uint32_t degraded_queries = 0;  ///< results answered off the fast path
  std::uint32_t fallback_queries = 0;  ///< answered by the host reference
  std::uint32_t retries = 0;           ///< engine-level unit re-attempts
  std::uint32_t isolated_groups = 0;   ///< fused groups broken into singles
  // -- multi-device accounting (all zero on a single-device engine) --
  /// Device failovers during the batch: the active device exhausted its
  /// retries and the group migrated to a healthy spare.
  std::uint32_t migrations = 0;
  /// Work units that completed on a different device than they started
  /// on.
  std::uint32_t migrated_units = 0;
  /// Migrated fused units that resumed from their iteration-barrier
  /// checkpoint instead of restarting from the sources.
  std::uint32_t checkpoint_resumes = 0;
  /// Per-device share of the batch, index-aligned with the group's
  /// devices (one entry even for devices that stayed idle). The
  /// single-device constructors leave one entry with device = -1.
  struct DeviceStats {
    int device = -1;               ///< group ordinal
    std::uint32_t units = 0;       ///< work units that ran (even partly) here
    std::uint64_t kernel_launches = 0;
    double modeled_ms = 0.0;       ///< makespan delta on this device
    double serial_ms = 0.0;        ///< serial-model delta on this device
  };
  std::vector<DeviceStats> per_device;
};

class QueryEngine {
 public:
  /// Single-device adapter: borrows `graph` (upload already paid; it
  /// must outlive the engine) and wraps it as a one-device group, so the
  /// single entry point and the failover entry points run the same
  /// ladder code. Throws on invalid options.
  explicit QueryEngine(const GpuGraph& graph,
                       const QueryEngineOptions& opts = {});

  /// Failover serving over an existing replica set (which must outlive
  /// the engine): work units start on the group's active device and
  /// migrate to healthy spares when it exhausts its retries, falling
  /// back to the host only when every device is exhausted.
  explicit QueryEngine(ReplicatedGraph& graphs,
                       const QueryEngineOptions& opts = {});

  /// Failover serving that owns its replicas: uploads `host` across
  /// `group` (eagerly or lazily per `upload`) and serves over it. The
  /// group must outlive the engine.
  QueryEngine(gpu::DeviceGroup& group, graph::Csr host,
              const QueryEngineOptions& opts = {},
              ReplicatedGraph::Upload upload = ReplicatedGraph::Upload::kEager);

  /// Executes the batch and returns results in input order. BFS queries
  /// are greedily grouped (input order) into fused kernels of up to
  /// bfs_group_size; SSSP queries run as singles; units round-robin
  /// across num_streams streams (per device). Accounting lands in
  /// last_batch_stats().
  std::vector<QueryResult> run(std::span<const Query> queries);

  const BatchStats& last_batch_stats() const { return stats_; }
  /// The primary device's replica (the only one for the single-device
  /// constructor).
  const GpuGraph& graph() { return graphs_->replica(0); }
  const QueryEngineOptions& options() const { return opts_; }
  /// The ladder policy in force: options().resilience with deprecated
  /// aliases folded in (QueryEngineOptions::effective_policy).
  const ResiliencePolicy& policy() const { return policy_; }
  /// The device group work is scheduled over (a one-device group for the
  /// single-device constructor).
  const gpu::DeviceGroup& device_group() const { return graphs_->group(); }

  /// Hazard analysis of the last run() batch, merged across every
  /// recording device; empty unless QueryEngineOptions::verify is on.
  const analysis::HazardReport& last_hazard_report() const {
    return hazard_;
  }

 private:
  void validate_options() const;

  ReplicatedGraph* graphs_;
  std::unique_ptr<ReplicatedGraph> owned_graphs_;
  QueryEngineOptions opts_;
  ResiliencePolicy policy_;
  BatchStats stats_;
  analysis::HazardReport hazard_;
};

}  // namespace maxwarp::algorithms

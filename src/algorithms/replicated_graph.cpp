#include "algorithms/replicated_graph.hpp"

#include <utility>

namespace maxwarp::algorithms {

ReplicatedGraph::ReplicatedGraph(gpu::DeviceGroup& group, graph::Csr host,
                                 Upload upload)
    : ReplicatedGraph(group,
                      std::make_shared<const graph::Csr>(std::move(host)),
                      upload) {}

ReplicatedGraph::ReplicatedGraph(gpu::DeviceGroup& group,
                                 std::shared_ptr<const graph::Csr> host,
                                 Upload upload)
    : group_(&group), host_(std::move(host)), upload_(upload) {
  replicas_.assign(group_->size(), nullptr);
  owned_replicas_.resize(group_->size());
  const std::size_t first = upload_ == Upload::kEager ? group_->size() : 1;
  for (std::size_t i = 0; i < first; ++i) {
    owned_replicas_[i] =
        std::make_unique<GpuGraph>(group_->device(i), host_);
    replicas_[i] = owned_replicas_[i].get();
  }
}

ReplicatedGraph::ReplicatedGraph(const GpuGraph& graph)
    : owned_group_(std::make_unique<gpu::DeviceGroup>(
          std::vector<gpu::Device*>{&graph.device()})),
      host_(graph.host_ptr()) {
  group_ = owned_group_.get();
  replicas_.assign(1, &graph);
  owned_replicas_.resize(1);
}

void ReplicatedGraph::revalidate(std::size_t i) {
  if (replicas_.at(i) == nullptr) return;
  const auto& history = group_->device(i).faults().history();
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (it->kind == simt::FaultKind::kEccUncorrectable) {
      replicas_[i]->refresh_device_data(*it);
      return;
    }
  }
  replicas_[i]->refresh_device_data();
}

const GpuGraph& ReplicatedGraph::replica(std::size_t i) {
  if (replicas_.at(i) != nullptr) return *replicas_[i];
  // Lazy spare upload, paid now: the GpuGraph constructor charges the
  // H2D transfer to device i's modeled time — exactly the cost a real
  // first failover would observe.
  owned_replicas_[i] = std::make_unique<GpuGraph>(group_->device(i), host_);
  replicas_[i] = owned_replicas_[i].get();
  return *replicas_[i];
}

}  // namespace maxwarp::algorithms

// ReplicatedGraph — per-device GpuGraph replicas over a gpu::DeviceGroup.
//
// gpu::DeviceGroup deliberately knows nothing about graphs (it sits below
// the algorithm layer); this class is the other half of the failover
// story: one immutable host CSR, shared by every replica
// (GpuGraph::host_ptr), with a device-resident copy per group member.
// Because all replicas upload from the same host bytes, bit-identity
// across devices is structural — a migrated work unit reads exactly the
// data the failed device held.
//
// Spare uploads are eager (at construction, every device pays its H2D
// transfer up front) or lazy (a spare's replica is built on first use —
// i.e. on first failover — charging the upload to modeled time at the
// moment a real deployment would pay it). Either way the primary's
// replica always exists: callers need somewhere to run immediately.
#pragma once

#include <memory>
#include <vector>

#include "algorithms/gpu_graph.hpp"
#include "gpu/device_group.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

class ReplicatedGraph {
 public:
  /// When spare devices receive their replica upload.
  enum class Upload {
    kEager,  ///< every device at construction
    kLazy,   ///< primary at construction, spares on first replica(i)
  };

  /// Replicates `host` across `group` (which must outlive this object).
  ReplicatedGraph(gpu::DeviceGroup& group, graph::Csr host,
                  Upload upload = Upload::kEager);
  ReplicatedGraph(gpu::DeviceGroup& group,
                  std::shared_ptr<const graph::Csr> host,
                  Upload upload = Upload::kEager);

  /// Adapter: wraps one existing GpuGraph (borrowed; must outlive this
  /// object) as a single-replica set over an internally owned one-device
  /// group. This is how the single-device QueryEngine constructor folds
  /// into the group code path with zero re-upload and unchanged
  /// single-device error text.
  explicit ReplicatedGraph(const GpuGraph& graph);

  ReplicatedGraph(const ReplicatedGraph&) = delete;
  ReplicatedGraph& operator=(const ReplicatedGraph&) = delete;

  gpu::DeviceGroup& group() { return *group_; }
  const gpu::DeviceGroup& group() const { return *group_; }

  std::size_t size() const { return replicas_.size(); }

  /// True when device i's replica is device-resident (its upload has
  /// been paid). Always true for the primary and under eager upload.
  bool resident(std::size_t i) const { return replicas_.at(i) != nullptr; }

  /// Device i's replica, building (and charging) it first under lazy
  /// upload.
  const GpuGraph& replica(std::size_t i);

  /// A group scheduler's handle for "this unit runs here": the replica
  /// plus the group index it is resident on, so placement decisions and
  /// accounting always name the same member. Taking a lease ensures the
  /// replica is device-resident (under lazy upload, a scheduled spare
  /// pays its H2D transfer at lease time — eager upload to every
  /// *scheduled* member, not to members that never receive work).
  struct Lease {
    const GpuGraph* graph = nullptr;
    std::size_t device = 0;  ///< group index the replica lives on

    const GpuGraph& operator*() const { return *graph; }
    const GpuGraph* operator->() const { return graph; }
  };
  Lease lease(std::size_t i) { return Lease{&replica(i), i}; }

  /// Failback revalidation: before a probed member returns to the
  /// rotation, re-upload whatever an uncorrectable ECC event may have
  /// corrupted in its resident replica. When the device's fault history
  /// records such an event, the page-granular recovery path
  /// (GpuGraph::refresh_device_data(event) → GpuCsr::reupload_page)
  /// restores just the victim page; with no attributable event the whole
  /// CSR is re-uploaded — the member was dead for unknown reasons, so
  /// its resident bytes cannot be trusted. A non-resident replica is a
  /// no-op: its next lease uploads pristine host bytes anyway.
  void revalidate(std::size_t i);

  /// The active device's replica — where the next work unit runs.
  const GpuGraph& active() { return replica(group_->active_index()); }

  const std::shared_ptr<const graph::Csr>& host_ptr() const { return host_; }
  const graph::Csr& host() const { return *host_; }

 private:
  gpu::DeviceGroup* group_;
  std::unique_ptr<gpu::DeviceGroup> owned_group_;  ///< adapter ctor only
  std::shared_ptr<const graph::Csr> host_;
  Upload upload_ = Upload::kEager;
  /// Index-aligned with the group's devices; null = not yet uploaded.
  /// The adapter ctor borrows slot 0 instead (owned_replicas_ empty).
  std::vector<const GpuGraph*> replicas_;
  std::vector<std::unique_ptr<GpuGraph>> owned_replicas_;
};

}  // namespace maxwarp::algorithms

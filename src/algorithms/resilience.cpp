#include "algorithms/resilience.hpp"

#include "gpu/status.hpp"

namespace maxwarp::algorithms {

ResilientLoop::ResilientLoop(const GpuGraph& graph, const KernelOptions& opts,
                             const char* /*where*/)
    : graph_(&graph),
      device_(&graph.device()),
      resilience_(opts.resilience) {
  using Checkpoint = KernelOptions::Resilience::Checkpoint;
  active_ = resilience_.checkpoint != Checkpoint::kOff &&
            (resilience_.checkpoint == Checkpoint::kAlways ||
             device_->faults().armed());
  if (resilience_.watchdog_ms > 0) {
    watchdog_.emplace(*device_, resilience_.watchdog_ms);
  }
}

void ResilientLoop::save_checkpoint() {
  for (Tracked& t : tracked_) {
    if (t.constant && t.saved) continue;
    t.save();
    t.saved = true;
  }
  ++stats_.checkpoints;
}

void ResilientLoop::restore_checkpoint() {
  for (Tracked& t : tracked_) {
    if (t.saved) t.restore();
  }
  ++stats_.restores;
}

void ResilientLoop::iteration(const std::function<void()>& body) {
  if (!active_) {
    body();
    return;
  }
  save_checkpoint();
  std::uint32_t attempt = 0;
  for (;;) {
    try {
      body();
      return;
    } catch (const gpu::DeviceError& e) {
      if (!e.status().transient() || attempt >= resilience_.max_retries) {
        throw;
      }
      // Exponential backoff, honestly charged to the device clock.
      const double backoff =
          resilience_.backoff_ms * static_cast<double>(1u << attempt);
      device_->charge_delay_ms(backoff);
      stats_.backoff_ms += backoff;
      ++stats_.retries;
      ++attempt;
      if (e.status().code() == gpu::ErrorCode::kEccUncorrectable) {
        // The victim byte may be graph data, not iteration state; the
        // host copy is ground truth.
        graph_->refresh_device_data();
        ++stats_.graph_refreshes;
      }
      restore_checkpoint();
    }
  }
}

}  // namespace maxwarp::algorithms

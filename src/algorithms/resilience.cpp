#include "algorithms/resilience.hpp"

#include "gpu/status.hpp"

namespace maxwarp::algorithms {

ResilientLoop::ResilientLoop(const GpuGraph& graph, const KernelOptions& opts,
                             const char* where)
    : ResilientLoop(graph, opts.resilience.policy, where,
                    opts.resilience.watchdog_ms, opts.resilience.checkpoint) {}

ResilientLoop::ResilientLoop(const GpuGraph& graph,
                             const ResiliencePolicy& policy,
                             const char* /*where*/, double watchdog_ms,
                             KernelOptions::Resilience::Checkpoint checkpoint)
    : graph_(&graph),
      device_(&graph.device()),
      policy_(policy),
      checkpoint_(checkpoint) {
  using Checkpoint = KernelOptions::Resilience::Checkpoint;
  active_ = checkpoint_ != Checkpoint::kOff &&
            (checkpoint_ == Checkpoint::kAlways || device_->faults().armed());
  if (watchdog_ms > 0) {
    watchdog_.emplace(*device_, watchdog_ms);
  }
}

void ResilientLoop::save_checkpoint() {
  for (Tracked& t : tracked_) {
    if (t.constant && t.saved) continue;
    t.save();
    t.saved = true;
  }
  ++stats_.checkpoints;
}

void ResilientLoop::restore_checkpoint() {
  for (Tracked& t : tracked_) {
    if (t.saved) t.restore();
  }
  ++stats_.restores;
}

void ResilientLoop::iteration(const std::function<void()>& body) {
  if (!active_) {
    body();
    return;
  }
  save_checkpoint();
  std::uint32_t attempt = 0;
  for (;;) {
    try {
      body();
      return;
    } catch (const gpu::DeviceError& e) {
      if (!e.status().transient() || attempt >= policy_.max_retries) {
        throw;
      }
      // Exponential backoff, honestly charged to the device clock.
      const double backoff =
          policy_.retry_backoff_ms * static_cast<double>(1u << attempt);
      device_->charge_delay_ms(backoff);
      stats_.backoff_ms += backoff;
      ++stats_.retries;
      ++attempt;
      if (e.status().code() == gpu::ErrorCode::kEccUncorrectable) {
        // The victim byte may be graph data, not iteration state; the
        // host copy is ground truth. The injector's history names the
        // victim, so recovery re-uploads only the containing allocation
        // (falling back to the full refresh when it cannot attribute).
        const auto& history = device_->faults().history();
        if (!history.empty()) {
          graph_->refresh_device_data(history.back());
        } else {
          graph_->refresh_device_data();
        }
        ++stats_.graph_refreshes;
      }
      restore_checkpoint();
    }
  }
}

}  // namespace maxwarp::algorithms

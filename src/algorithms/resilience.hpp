// Checkpoint/retry harness for the iterative GPU drivers.
//
// Every level-synchronous algorithm here has the same shape: a handful of
// device buffers evolve across iterations separated by device-wide
// barriers. That makes the iteration boundary a natural checkpoint: snap
// the evolving buffers before the iteration, and if any launch inside it
// fails (injected fault, watchdog overrun, allocation failure), roll the
// buffers back and re-execute just that iteration — not the whole run.
//
// ResilientLoop packages that: a driver declares its evolving buffers
// with track() (and run-constant inputs with track_constant()), then
// wraps each iteration body in iteration(). When inactive — no fault
// plan armed and checkpointing not forced — iteration(body) is exactly
// body(): no snapshots, no try/catch in the hot path's modeled time, so
// the fault-free path is bit- and cost-identical to the pre-resilience
// drivers. When active, checkpoints are charged as the real D2H/H2D
// transfers they are, and retry backoff is charged to modeled time via
// Device::charge_delay_ms.
//
// Failure routing inside iteration():
//   * transient DeviceError (launch fail / deadline / OOM / ECC): back
//     off, restore the checkpoint — after an uncorrectable ECC also
//     re-upload the graph (page-granular when the fault record resolves
//     to a CSR victim), since the victim byte may be CSR data — and
//     retry, up to resilience.max_retries times; then rethrow.
//   * non-transient DeviceError and every other exception (including
//     simt::SanitizerFault, which is deterministic and would just repeat):
//     rethrow immediately.
//
// The loop consumes only the per-device slice of ResiliencePolicy
// (max_retries, retry_backoff_ms). The group-serving knobs — scheduling
// mode, steal_threshold, cost_ewma_alpha, cpu_fallback,
// default_deadline_ms — are QueryEngine-level and ignored here: a
// single-device iteration loop has nobody to steal from and no ladder
// to descend.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "gpu/buffer.hpp"

namespace maxwarp::algorithms {

class ResilientLoop {
 public:
  /// Reads opts.resilience.policy; arms a WatchdogScope for the loop's
  /// lifetime when resilience.watchdog_ms > 0. `where` names the driver
  /// in nothing today (kept for diagnostics symmetry with
  /// validate_kernel_options).
  ResilientLoop(const GpuGraph& graph, const KernelOptions& opts,
                const char* where);

  /// Explicit-policy constructor: callers that already hold the shared
  /// ResiliencePolicy (the QueryEngine ladder) hand it over directly
  /// instead of faking a KernelOptions. `watchdog_ms` and `checkpoint`
  /// keep their KernelOptions::Resilience meanings.
  ResilientLoop(
      const GpuGraph& graph, const ResiliencePolicy& policy, const char* where,
      double watchdog_ms = 0,
      KernelOptions::Resilience::Checkpoint checkpoint =
          KernelOptions::Resilience::Checkpoint::kAuto);

  ResilientLoop(const ResilientLoop&) = delete;
  ResilientLoop& operator=(const ResilientLoop&) = delete;

  /// True when iterations actually checkpoint: a fault plan is armed (or
  /// checkpoint == kAlways) and checkpointing is not switched off.
  bool active() const { return active_; }

  /// Declares a buffer that evolves across iterations: snapped before
  /// every iteration, rolled back on retry. Returns the host-side
  /// snapshot the loop rolls back to (refreshed at every checkpoint) so
  /// a failover path can carry the last good iteration's state to
  /// another device; nullptr when the loop is inactive (nothing is ever
  /// snapped).
  template <typename T>
  std::shared_ptr<const std::vector<T>> track(gpu::DeviceBuffer<T>& buf) {
    return add_tracked(buf, /*constant=*/false);
  }

  /// Declares a run-constant device input (e.g. PageRank's out-degree
  /// array): snapped once, restored on retry only because an ECC flip
  /// could have landed in it.
  template <typename T>
  void track_constant(gpu::DeviceBuffer<T>& buf) {
    add_tracked(buf, /*constant=*/true);
  }

  /// Runs one iteration with checkpoint/retry as described above.
  void iteration(const std::function<void()>& body);

  const RecoveryStats& stats() const { return stats_; }

 private:
  struct Tracked {
    std::function<void()> save;
    std::function<void()> restore;
    bool constant = false;
    bool saved = false;
  };

  template <typename T>
  std::shared_ptr<const std::vector<T>> add_tracked(gpu::DeviceBuffer<T>& buf,
                                                    bool constant) {
    if (!active_) return nullptr;
    auto snap = std::make_shared<std::vector<T>>();
    Tracked t;
    t.save = [&buf, snap] { *snap = buf.download(); };
    t.restore = [&buf, snap] { buf.upload(*snap); };
    t.constant = constant;
    tracked_.push_back(std::move(t));
    return snap;
  }

  void save_checkpoint();
  void restore_checkpoint();

  const GpuGraph* graph_;
  gpu::Device* device_;
  ResiliencePolicy policy_;
  KernelOptions::Resilience::Checkpoint checkpoint_;
  bool active_ = false;
  std::optional<gpu::WatchdogScope> watchdog_;
  std::vector<Tracked> tracked_;
  RecoveryStats stats_;
};

}  // namespace maxwarp::algorithms

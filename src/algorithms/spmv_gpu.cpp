#include "algorithms/spmv_gpu.hpp"

#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "gpu/buffer.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

GpuSpmvResult spmv_gpu(const GpuGraph& g, std::span<const float> x,
                       const KernelOptions& opts) {
  gpu::Device& device = g.device();
  validate_kernel_options(opts, "spmv_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "spmv_gpu: supports thread-mapped, warp-centric, and adaptive");
  }
  if (!g.weighted()) {
    throw std::invalid_argument("spmv_gpu: graph must carry edge weights");
  }
  const std::uint32_t n = g.num_nodes();
  if (x.size() != n) {
    throw std::invalid_argument("spmv_gpu: x size mismatch");
  }
  GpuSpmvResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  const GpuCsr& gpu_graph = g.csr();
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &g.adaptive_state(opts)
                                      : nullptr;
  const auto row = gpu_graph.row();
  const auto col = gpu_graph.adj();
  const auto val = gpu_graph.weights();
  gpu::DeviceBuffer<float> x_dev(device, std::vector<float>(x.begin(),
                                                            x.end()));
  gpu::DeviceBuffer<float> y_dev(device, n);
  y_dev.fill(0.0f);
  const auto x_ptr = x_dev.cptr();
  auto y_ptr = y_dev.ptr();

  // Shared row body: the ordered fold keeps y[v] the strict sequential
  // sum over the row for every W and every bin split (bit-identical
  // across mappings).
  const auto row_body = [&](WarpCtx& w, const vw::Layout& layout,
                            LaneMask valid,
                            const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, valid, begin, end);
    Lanes<std::uint32_t> c{}, a{};
    Lanes<float> xv{};
    const Lanes<float> sums = vw::simd_strip_accumulate<float>(
        w, layout, begin, end, valid,
        [&](const Lanes<std::uint32_t>& cursor) {
          w.load_global(col, [&](int l) {
            return cursor[static_cast<std::size_t>(l)];
          }, c);
          w.load_global(val, [&](int l) {
            return cursor[static_cast<std::size_t>(l)];
          }, a);
          w.load_global(x_ptr, [&](int l) {
            return c[static_cast<std::size_t>(l)];
          }, xv);
        },
        [&](int l) {
          const auto i = static_cast<std::size_t>(l);
          return static_cast<float>(a[i]) * xv[i];
        });
    w.with_mask(valid & leader_lane_mask(layout.width), [&] {
      w.store_global(y_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, [&](int l) { return sums[static_cast<std::size_t>(l)]; });
    });
  };

  if (adaptive != nullptr) {
    adaptive_sweep(device, *adaptive, "spmv.row", result.stats, row_body);
  } else {
    const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                                ? 1
                                : opts.virtual_warp_width);
    const std::uint64_t warps_needed =
        (static_cast<std::uint64_t>(n) +
         static_cast<std::uint64_t>(layout.groups()) - 1) /
        static_cast<std::uint64_t>(layout.groups());
    const auto dims = device.dims_for_threads(warps_needed * simt::kWarpSize);
    const std::uint64_t total_groups =
        dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

    result.stats.kernels.add(
        device.launch(dims.named("spmv.row"), [&, n](WarpCtx& w) {
      for (std::uint64_t round = 0; round * total_groups < n; ++round) {
        Lanes<std::uint32_t> task{};
        const LaneMask valid =
            vw::assign_static_tasks(w, layout, round, total_groups, n, task);
        if (valid == 0) continue;
        row_body(w, layout, valid, task);
      }
    }));
  }

  result.stats.iterations = 1;
  result.y = y_dev.download();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

std::vector<double> spmv_cpu(const graph::Csr& g, std::span<const float> x) {
  const std::uint32_t n = g.num_nodes();
  if (!g.weighted()) {
    throw std::invalid_argument("spmv_cpu: graph must carry edge weights");
  }
  if (x.size() != n) throw std::invalid_argument("spmv_cpu: x size");
  std::vector<double> y(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (graph::EdgeOff e = g.row[v]; e < g.row[v + 1]; ++e) {
      y[v] += static_cast<double>(g.weights[e]) * x[g.adj[e]];
    }
  }
  return y;
}

}  // namespace maxwarp::algorithms

// GPU sparse matrix-vector product over the CSR graph (y = A x).
//
// The graph doubles as a sparse matrix: adjacency = column indices,
// integer edge weights = values. CSR SpMV is the canonical irregular
// gather kernel — one variable-length dot product per row — and was an
// early adopter of exactly the paper's row-per-virtual-warp mapping
// (a.k.a. "CSR-vector" vs "CSR-scalar" in the SpMV literature, which maps
// 1:1 onto warp-centric vs thread-mapped here).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuSpmvResult {
  std::vector<float> y;
  GpuRunStats stats;
};

/// Requires a weighted graph; x.size() must equal num_nodes(). Supports
/// Mapping::kThreadMapped (CSR-scalar) and kWarpCentric (CSR-vector).
GpuSpmvResult spmv_gpu(const GpuGraph& g, std::span<const float> x,
                       const KernelOptions& opts = {});

/// Double-precision host reference.
std::vector<double> spmv_cpu(const graph::Csr& g,
                             std::span<const float> x);

}  // namespace maxwarp::algorithms

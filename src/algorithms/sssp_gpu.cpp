#include "algorithms/sssp_gpu.hpp"

#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "algorithms/resilience.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

namespace {

/// SIMD-phase body: relaxes the edges at `cursor`. dist_of_task carries the
/// source distance replicated to each lane (per its group).
struct RelaxBody {
  simt::DevPtr<const std::uint32_t> adj;
  simt::DevPtr<const std::uint32_t> weights;
  simt::DevPtr<std::uint32_t> dist;
  simt::DevPtr<std::uint32_t> active_next;
  simt::DevPtr<std::uint32_t> changed;

  void operator()(WarpCtx& w, const Lanes<std::uint32_t>& cursor,
                  const Lanes<std::uint32_t>& dist_of_task) const {
    Lanes<std::uint32_t> nbr{};
    w.load_global(adj, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, nbr);
    Lanes<std::uint32_t> weight{};
    w.load_global(weights, [&](int l) {
      return cursor[static_cast<std::size_t>(l)];
    }, weight);

    Lanes<std::uint32_t> candidate{};
    w.alu([&](int l) {
      const auto i = static_cast<std::size_t>(l);
      // Saturating add keeps kInfDist from wrapping.
      const std::uint64_t sum =
          static_cast<std::uint64_t>(dist_of_task[i]) + weight[i];
      candidate[i] = sum >= kInfDist ? kInfDist : static_cast<std::uint32_t>(sum);
    });

    const Lanes<std::uint32_t> old = w.atomic_min(
        dist, [&](int l) { return nbr[static_cast<std::size_t>(l)]; },
        [&](int l) { return candidate[static_cast<std::size_t>(l)]; });

    const LaneMask improved = w.ballot([&](int l) {
      const auto i = static_cast<std::size_t>(l);
      return candidate[i] < old[i];
    });
    w.with_mask(improved, [&] {
      w.store_global(active_next, [&](int l) {
        return nbr[static_cast<std::size_t>(l)];
      }, [](int) { return 1u; });
      w.store_global(changed, [](int) { return 0; }, [](int) { return 1u; });
    });
  }
};

GpuSsspResult sssp_gpu_on(const GpuGraph& gg, NodeId source,
                          const KernelOptions& opts) {
  gpu::Device& device = gg.device();
  const GpuCsr& g = gg.csr();
  validate_kernel_options(opts, "sssp_gpu");
  if (!g.weighted()) {
    throw std::invalid_argument("sssp_gpu: graph must be weighted");
  }
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "sssp_gpu: supports thread-mapped, warp-centric, and adaptive "
        "mappings");
  }
  const std::uint32_t n = g.num_nodes();
  GpuSsspResult result;
  result.stats.kernels.launches = 0;
  if (n == 0 || source >= n) {
    result.dist.assign(n, kInfDist);
    return result;
  }
  const double transfer_before = device.transfer_totals().modeled_ms;

  gpu::DeviceBuffer<std::uint32_t> dist(device, n);
  dist.fill(kInfDist);
  dist.write(source, 0);
  gpu::DeviceBuffer<std::uint32_t> active_now(device, n);
  gpu::DeviceBuffer<std::uint32_t> active_next(device, n);
  active_now.fill(0);
  active_now.write(source, 1);
  active_next.fill(0);
  gpu::DeviceBuffer<std::uint32_t> changed(device, 1);

  const auto row = g.row();
  const vw::Layout layout(opts.mapping == Mapping::kThreadMapped
                              ? 1
                              : opts.virtual_warp_width);
  const AdaptiveState* adaptive = opts.mapping == Mapping::kAdaptive
                                      ? &gg.adaptive_state(opts)
                                      : nullptr;

  auto active_now_ptr = active_now.ptr();
  RelaxBody body{g.adj(), g.weights(), dist.ptr(), active_next.ptr(),
                 changed.ptr()};

  // Shared by the static sweep and every adaptive bin: SISD active
  // filter, distance fetch, SIMD relaxation.
  const auto relax_vertices = [&](WarpCtx& w, const vw::Layout& bl,
                                  LaneMask valid,
                                  const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> is_active{};
    w.with_mask(valid, [&] {
      w.load_global(active_now_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, is_active);
    });
    const LaneMask on = valid & w.ballot([&](int l) {
      return is_active[static_cast<std::size_t>(l)] != 0;
    });
    if (on == 0) return;

    Lanes<std::uint32_t> dist_of_task{};
    w.with_mask(on, [&] {
      w.load_global(body.dist, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, dist_of_task);
    });

    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, on, begin, end);
    vw::simd_strip_loop(w, bl, begin, end, on,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          body(w, cursor, dist_of_task);
                        });
  };
  // Team drain for outlier hubs: atomic_min relaxations commute, so the
  // split across cooperating warps cannot change the fixpoint.
  const auto relax_team = [&](WarpCtx& w, std::uint32_t v,
                              std::uint32_t part, std::uint32_t tw) {
    if (w.load_global_uniform(active_now_ptr, v) == 0) return;
    const std::uint32_t dv = w.load_global_uniform(body.dist, v);
    Lanes<std::uint32_t> dist_of_task{};
    w.alu([&](int l) {
      dist_of_task[static_cast<std::size_t>(l)] = dv;
    });
    adaptive_team_strip(w, row, v, part, tw,
                        [&](const Lanes<std::uint32_t>& cursor) {
                          body(w, cursor, dist_of_task);
                        });
  };

  // Checkpoint/retry at the round barrier (inactive unless a fault plan
  // is armed).
  ResilientLoop loop(gg, opts, "sssp_gpu");
  loop.track(dist);
  loop.track(active_now);
  loop.track(active_next);
  loop.track(changed);

  // n rounds upper-bounds Bellman-Ford with non-negative weights.
  for (std::uint32_t round = 0; round < n; ++round) {
    loop.iteration([&] {
    changed.fill(0);
    active_next.fill(0);

    if (adaptive != nullptr) {
      adaptive_sweep_with_teams(device, *adaptive,
                                opts.resident_warps_per_sm, "sssp.relax",
                                result.stats, relax_vertices, relax_team);
    } else {
      const std::uint64_t groups_needed =
          (static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(layout.groups()) - 1) /
          static_cast<std::uint64_t>(layout.groups());
      const auto dims =
          device.dims_for_threads(groups_needed * simt::kWarpSize);
      const std::uint64_t total_groups =
          dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

      result.stats.kernels.add(
          device.launch(dims.named("sssp.relax"), [&, n](WarpCtx& w) {
        for (std::uint64_t r = 0; r * total_groups < n; ++r) {
          Lanes<std::uint32_t> task{};
          const LaneMask valid =
              vw::assign_static_tasks(w, layout, r, total_groups, n, task);
          if (valid == 0) continue;
          relax_vertices(w, layout, valid, task);
        }
      }));
    }
    });

    ++result.stats.iterations;
    const std::uint32_t any = changed.read(0);
    if (any == 0) break;
    std::swap(active_now, active_next);
    active_now_ptr = active_now.ptr();
    body.active_next = active_next.ptr();
  }

  result.dist = dist.download();
  result.stats.recovery = loop.stats();
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

}  // namespace

GpuSsspResult sssp_gpu(const GpuGraph& g, NodeId source,
                       const KernelOptions& opts) {
  return sssp_gpu_on(g, source, opts);
}

}  // namespace maxwarp::algorithms

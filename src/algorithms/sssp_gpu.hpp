// GPU single-source shortest paths (Bellman-Ford with active-vertex flags).
//
// One relaxation kernel per round; a vertex relaxes its out-edges only if
// its distance changed in the previous round, and successful relaxations
// (atomicMin) mark the target active for the next round. Thread-mapped and
// virtual-warp-centric kernels share the driver — SSSP has the same
// neighbor-expansion inner loop as BFS, so the paper's technique applies
// unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

inline constexpr std::uint32_t kInfDist = 0xffffffffu;

struct GpuSsspResult {
  std::vector<std::uint32_t> dist;  ///< kInfDist if unreachable
  GpuRunStats stats;
};

/// Requires a weighted graph (GpuGraph::weighted()); weights are uint32
/// >= 0. Supports Mapping::kThreadMapped and Mapping::kWarpCentric.
GpuSsspResult sssp_gpu(const GpuGraph& g, graph::NodeId source,
                       const KernelOptions& opts = {});

}  // namespace maxwarp::algorithms

#include "algorithms/tc_gpu.hpp"

#include <stdexcept>

#include "algorithms/adaptive_dispatch.hpp"
#include "gpu/buffer.hpp"
#include "warp/virtual_warp.hpp"

namespace maxwarp::algorithms {

using graph::NodeId;
using simt::LaneMask;
using simt::Lanes;
using simt::WarpCtx;

namespace {

/// Per-lane sorted-merge intersection state. Lane l intersects
/// adj[i..end_i) with adj[j..end_j), counting matches > u[l]. Runs as one
/// divergent loop; every iteration issues the same predicated instruction
/// sequence (two gathers + pointer updates), like the compiled CUDA loop.
struct MergeState {
  Lanes<std::uint32_t> i{}, end_i{};
  Lanes<std::uint32_t> j{}, end_j{};
  Lanes<std::uint32_t> u{};
  Lanes<std::uint64_t>* count = nullptr;
};

void run_merge(WarpCtx& w, simt::DevPtr<const std::uint32_t> adj,
               MergeState& s) {
  w.loop_while(
      [&](int l) {
        const auto k = static_cast<std::size_t>(l);
        return s.i[k] < s.end_i[k] && s.j[k] < s.end_j[k];
      },
      [&] {
        Lanes<std::uint32_t> a{}, b{};
        w.load_global(adj, [&](int l) {
          return s.i[static_cast<std::size_t>(l)];
        }, a);
        w.load_global(adj, [&](int l) {
          return s.j[static_cast<std::size_t>(l)];
        }, b);
        // Predicated pointer advance (one issue; lanes take their own
        // branches via select, as the hardware would).
        w.alu([&](int l) {
          const auto k = static_cast<std::size_t>(l);
          if (b[k] <= s.u[k]) {
            ++s.j[k];
          } else if (a[k] < b[k]) {
            ++s.i[k];
          } else if (b[k] < a[k]) {
            ++s.j[k];
          } else {
            ++(*s.count)[k];
            ++s.i[k];
            ++s.j[k];
          }
        });
      });
}

}  // namespace

GpuTriangleResult triangle_count_gpu(const GpuGraph& g,
                                     const KernelOptions& opts) {
  gpu::Device& device = g.device();
  validate_kernel_options(opts, "triangle_count_gpu");
  if (opts.mapping != Mapping::kThreadMapped &&
      opts.mapping != Mapping::kWarpCentric &&
      opts.mapping != Mapping::kAdaptive) {
    throw std::invalid_argument(
        "triangle_count_gpu: supports thread-mapped, warp-centric, and "
        "adaptive");
  }
  const std::uint32_t n = g.num_nodes();
  GpuTriangleResult result;
  result.stats.kernels.launches = 0;
  if (n == 0) return result;
  const double transfer_before = device.transfer_totals().modeled_ms;

  const GpuCsr& gpu_graph = g.csr();
  const auto row = gpu_graph.row();
  const auto adj = gpu_graph.adj();
  gpu::DeviceBuffer<std::uint64_t> counts(device, n);
  counts.fill(0);
  auto counts_ptr = counts.ptr();

  // Group body shared by the warp-centric launch and every adaptive bin:
  // strip the vertex's edge list, merge-intersect each forward edge, and
  // reduce the per-lane triangle counts (integer sums — order-invariant,
  // so any W or bin split yields identical per-vertex counts).
  const auto count_body = [&](WarpCtx& w, const vw::Layout& bl,
                              LaneMask valid,
                              const Lanes<std::uint32_t>& task) {
    Lanes<std::uint32_t> begin{}, end{};
    vw::load_task_ranges(w, row, task, valid, begin, end);
    Lanes<std::uint64_t> tri{};
    vw::simd_strip_loop(
        w, bl, begin, end, valid,
        [&](const Lanes<std::uint32_t>& cursor) {
          Lanes<std::uint32_t> u{};
          w.load_global(adj, [&](int l) {
            return cursor[static_cast<std::size_t>(l)];
          }, u);
          const LaneMask forward = w.ballot([&](int l) {
            const auto k = static_cast<std::size_t>(l);
            return u[k] > task[k];
          });
          w.with_mask(forward, [&] {
            MergeState s;
            s.count = &tri;
            w.load_global(row, [&](int l) {
              return u[static_cast<std::size_t>(l)];
            }, s.j);
            w.load_global(row, [&](int l) {
              return u[static_cast<std::size_t>(l)] + 1;
            }, s.end_j);
            w.alu([&](int l) {
              const auto k = static_cast<std::size_t>(l);
              s.i[k] = cursor[k] + 1;
              s.end_i[k] = end[k];
              s.u[k] = u[k];
            });
            run_merge(w, adj, s);
          });
        });
    const Lanes<std::uint64_t> sums =
        vw::group_reduce_add(w, bl, tri, valid);
    w.with_mask(valid & leader_lane_mask(bl.width), [&] {
      w.store_global(counts_ptr, [&](int l) {
        return task[static_cast<std::size_t>(l)];
      }, [&](int l) { return sums[static_cast<std::size_t>(l)]; });
    });
  };

  if (opts.mapping == Mapping::kAdaptive) {
    adaptive_sweep(device, g.adaptive_state(opts), "tc.count",
                   result.stats, count_body);
  } else if (opts.mapping == Mapping::kThreadMapped) {
    const auto dims = device.dims_for_threads(n);
    result.stats.kernels.add(device.launch(
        dims.named("tc.count.thread"), [&](WarpCtx& w) {
      Lanes<std::uint32_t> v{};
      w.alu([&](int l) {
        v[static_cast<std::size_t>(l)] =
            static_cast<std::uint32_t>(w.thread_id(l));
      });
      Lanes<std::uint32_t> e{}, end_e{};
      w.load_global(row, [&](int l) {
        return v[static_cast<std::size_t>(l)];
      }, e);
      w.load_global(row, [&](int l) {
        return v[static_cast<std::size_t>(l)] + 1;
      }, end_e);
      Lanes<std::uint64_t> tri{};
      // Outer loop: this lane's edges.
      w.loop_while(
          [&](int l) {
            const auto k = static_cast<std::size_t>(l);
            return e[k] < end_e[k];
          },
          [&] {
            Lanes<std::uint32_t> u{};
            w.load_global(adj, [&](int l) {
              return e[static_cast<std::size_t>(l)];
            }, u);
            const LaneMask forward = w.ballot([&](int l) {
              const auto k = static_cast<std::size_t>(l);
              return u[k] > v[k];
            });
            w.with_mask(forward, [&] {
              MergeState s;
              s.count = &tri;
              w.load_global(row, [&](int l) {
                return u[static_cast<std::size_t>(l)];
              }, s.j);
              w.load_global(row, [&](int l) {
                return u[static_cast<std::size_t>(l)] + 1;
              }, s.end_j);
              w.alu([&](int l) {
                const auto k = static_cast<std::size_t>(l);
                s.i[k] = e[k] + 1;  // elements of N(v) greater than u
                s.end_i[k] = end_e[k];
                s.u[k] = u[k];
              });
              run_merge(w, adj, s);
            });
            w.alu([&](int l) { ++e[static_cast<std::size_t>(l)]; });
          });
      w.store_global(counts_ptr, [&](int l) {
        return v[static_cast<std::size_t>(l)];
      }, [&](int l) { return tri[static_cast<std::size_t>(l)]; });
    }));
  } else {
    const vw::Layout layout(opts.virtual_warp_width);
    const std::uint64_t warps_needed =
        (static_cast<std::uint64_t>(n) +
         static_cast<std::uint64_t>(layout.groups()) - 1) /
        static_cast<std::uint64_t>(layout.groups());
    const auto dims =
        device.dims_for_threads(warps_needed * simt::kWarpSize);
    const std::uint64_t total_groups =
        dims.warp_count() * static_cast<std::uint64_t>(layout.groups());

    result.stats.kernels.add(device.launch(
        dims.named("tc.count"), [&, n](WarpCtx& w) {
      for (std::uint64_t round = 0; round * total_groups < n; ++round) {
        Lanes<std::uint32_t> task{};
        const LaneMask valid =
            vw::assign_static_tasks(w, layout, round, total_groups, n, task);
        if (valid == 0) continue;
        count_body(w, layout, valid, task);
      }
    }));
  }

  result.stats.iterations = 1;
  result.per_vertex = counts.download();
  for (std::uint64_t c : result.per_vertex) result.triangles += c;
  result.stats.transfer_ms =
      device.transfer_totals().modeled_ms - transfer_before;
  return result;
}

std::uint64_t triangle_count_cpu(const graph::Csr& g) {
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nv = g.neighbors(v);
    for (std::size_t e = 0; e < nv.size(); ++e) {
      const NodeId u = nv[e];
      if (u <= v) continue;
      // Merge nv[e+1..) with N(u), counting matches > u.
      const auto nu = g.neighbors(u);
      std::size_t i = e + 1;
      std::size_t j = 0;
      while (i < nv.size() && j < nu.size()) {
        if (nu[j] <= u) {
          ++j;
        } else if (nv[i] < nu[j]) {
          ++i;
        } else if (nu[j] < nv[i]) {
          ++j;
        } else {
          ++total;
          ++i;
          ++j;
        }
      }
    }
  }
  return total;
}

}  // namespace maxwarp::algorithms

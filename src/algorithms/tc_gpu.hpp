// GPU triangle counting (sorted-adjacency merge intersection).
//
// For every edge (v, u) with u > v, count common neighbours w > u by
// merging the two sorted adjacency lists — each triangle {v < u < w} is
// counted exactly once. The per-edge merge length is d(v) + d(u), so the
// work per vertex is wildly imbalanced on skewed graphs: thread-mapping
// gives each lane a whole vertex (all its merges), warp-centric mapping
// strips a vertex's edges across the group's W lanes, each lane running
// one merge — the same imbalance story as BFS, one level deeper.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/gpu_common.hpp"
#include "algorithms/gpu_graph.hpp"
#include "graph/csr.hpp"

namespace maxwarp::algorithms {

struct GpuTriangleResult {
  std::uint64_t triangles = 0;
  std::vector<std::uint64_t> per_vertex;  ///< triangles whose smallest
                                          ///< member is v
  GpuRunStats stats;
};

/// The graph must be undirected (symmetric) with sorted adjacency — the
/// builder's default output. Supports kThreadMapped and kWarpCentric.
GpuTriangleResult triangle_count_gpu(const GpuGraph& g,
                                     const KernelOptions& opts = {});

/// CPU reference with identical counting semantics.
std::uint64_t triangle_count_cpu(const graph::Csr& g);

}  // namespace maxwarp::algorithms

#include "analysis/hazard_analyzer.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "simt/access.hpp"

namespace maxwarp::analysis {

using simt::kAccessAtomic;
using simt::kAccessRead;
using simt::kAccessWrite;
using simt::Severity;

const char* to_string(HazardClass cls) {
  switch (cls) {
    case HazardClass::kRaw: return "raw";
    case HazardClass::kWar: return "war";
    case HazardClass::kWaw: return "waw";
    case HazardClass::kUseAfterFree: return "use-after-free";
    case HazardClass::kDeadUpload: return "dead-upload";
    case HazardClass::kDeadStore: return "dead-store";
    case HazardClass::kLeak: return "leak";
    case HazardClass::kUnknownAccess: return "unknown-access";
  }
  return "?";
}

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

constexpr std::uint8_t kWritesMask = kAccessWrite | kAccessAtomic;
constexpr std::uint8_t kReadsMask = kAccessRead | kAccessAtomic;

}  // namespace

HazardReport HazardAnalyzer::analyze(const LaunchGraph& graph) const {
  const std::vector<Node>& nodes = graph.nodes();
  const std::size_t n = nodes.size();
  if (n > opts_.max_nodes) {
    throw std::runtime_error(
        "HazardAnalyzer: launch graph has " + std::to_string(n) +
        " nodes (limit " + std::to_string(opts_.max_nodes) +
        "); verify in windows and call LaunchGraph::clear() between phases");
  }

  HazardReport rep;
  rep.nodes = n;

  // Issue order is a topological order of the DAG (every dep precedes its
  // node), so one forward pass builds the full ancestor closure as one
  // bitset row per node.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> reach(words * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* row = &reach[i * words];
    for (std::uint32_t d : nodes[i].deps) {
      const std::uint64_t* drow = &reach[static_cast<std::size_t>(d) * words];
      for (std::size_t w = 0; w < words; ++w) row[w] |= drow[w];
      row[d / 64] |= std::uint64_t{1} << (d % 64);
    }
  }
  // True when node a happens-before node b; requires a < b in issue order.
  auto hb = [&](std::uint32_t a, std::uint32_t b) {
    return (reach[static_cast<std::size_t>(b) * words + a / 64] >>
            (a % 64)) & 1;
  };

  struct Access {
    std::uint32_t node;
    std::uint8_t modes;
    std::uint64_t bytes;
    bool full;
  };
  struct BufferInfo {
    std::uint32_t alloc = kNoNode;
    std::uint32_t freed = kNoNode;
    std::uint64_t bytes = 0;
    std::vector<Access> acc;  ///< in issue order
  };
  std::map<std::uint64_t, BufferInfo> buffers;
  std::uint64_t unknown_nodes = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const Node& nd = nodes[i];
    const auto id = static_cast<std::uint32_t>(i);
    if (nd.kind == NodeKind::kAlloc) {
      BufferInfo& b = buffers[nd.uses[0].vaddr];
      b.alloc = id;
      b.bytes = nd.uses[0].bytes;
      continue;
    }
    if (nd.kind == NodeKind::kFree) {
      buffers[nd.uses[0].vaddr].freed = id;
      continue;
    }
    if (!nd.uses_known) {
      ++unknown_nodes;
      continue;
    }
    for (const BufferUse& u : nd.uses) {
      buffers[u.vaddr].acc.push_back({id, u.modes, u.bytes, u.full});
    }
  }

  std::array<std::uint64_t, kHazardClassCount> recorded{};
  auto record = [&](HazardClass cls, Severity sev, std::uint64_t vaddr,
                    std::uint32_t a, std::uint32_t b, std::string detail) {
    const auto ci = static_cast<std::size_t>(cls);
    ++rep.class_counts[ci];
    ++rep.severity_counts[static_cast<std::size_t>(sev)];
    if (recorded[ci] < opts_.max_records_per_class) {
      ++recorded[ci];
      rep.records.push_back({cls, sev, vaddr, a, b, std::move(detail)});
    }
  };

  auto describe = [&](std::uint32_t id) {
    const Node& nd = nodes[id];
    std::ostringstream os;
    os << to_string(nd.kind);
    if (!nd.label.empty()) os << " '" << nd.label << "'";
    os << " [node " << id << ", stream " << nd.stream << "]";
    return os.str();
  };

  for (const auto& [vaddr, b] : buffers) {
    const std::string buf =
        "buffer " + hex(vaddr) + " (" + std::to_string(b.bytes) + "B)";

    // Lifetime: every access must be ordered before the buffer's free.
    if (b.freed != kNoNode) {
      for (const Access& a : b.acc) {
        if (a.node < b.freed && hb(a.node, b.freed)) continue;
        const bool after = a.node > b.freed && hb(b.freed, a.node);
        record(HazardClass::kUseAfterFree, Severity::kError, vaddr,
               std::min(a.node, b.freed), std::max(a.node, b.freed),
               describe(a.node) +
                   (after ? " runs after " : " is not ordered before ") +
                   describe(b.freed) + " of " + buf);
      }
    }

    // Cross-stream data races: conflicting accesses with no HB path.
    for (std::size_t i = 0; i < b.acc.size(); ++i) {
      for (std::size_t j = i + 1; j < b.acc.size(); ++j) {
        const Access& x = b.acc[i];
        const Access& y = b.acc[j];
        if (x.node == y.node) continue;
        const bool x_writes = x.modes & kWritesMask;
        const bool y_writes = y.modes & kWritesMask;
        if (!x_writes && !y_writes) continue;  // read-read never conflicts
        if (x.modes == kAccessAtomic && y.modes == kAccessAtomic) {
          continue;  // pure atomic updates commute
        }
        ++rep.pairs_checked;
        if (hb(x.node, y.node)) continue;

        HazardClass cls;
        const char* what;
        if (x_writes && y_writes) {
          cls = HazardClass::kWaw;
          what = " overwrites data written by ";
        } else if (x_writes) {
          cls = HazardClass::kRaw;
          what = " reads data written by ";
        } else {
          cls = HazardClass::kWar;
          what = " overwrites data still being read by ";
        }
        const Severity sev = ((x.modes | y.modes) & kAccessAtomic)
                                 ? Severity::kWarning
                                 : Severity::kError;
        record(cls, sev, vaddr, x.node, y.node,
               describe(y.node) + what + describe(x.node) + " on " + buf +
                   " with no happens-before path (missing Event::record / "
                   "Stream::wait?)");
      }
    }
  }

  // Dead-dataflow checks need the *complete* read set, so any
  // unknown-access node suppresses them.
  if (unknown_nodes == 0) {
    for (const auto& [vaddr, b] : buffers) {
      const std::string buf =
          "buffer " + hex(vaddr) + " (" + std::to_string(b.bytes) + "B)";
      auto read_in = [&](std::uint32_t lo, std::uint32_t hi) {
        for (const Access& a : b.acc) {
          if (a.node > lo && a.node < hi && (a.modes & kReadsMask)) {
            return true;
          }
        }
        return false;
      };
      for (std::size_t i = 0; i < b.acc.size(); ++i) {
        const Access& a = b.acc[i];
        const NodeKind kind = nodes[a.node].kind;
        const bool host_write = (kind == NodeKind::kUpload ||
                                 kind == NodeKind::kFill) &&
                                !(a.modes & kReadsMask);
        if (!host_write) continue;
        if (opts_.report_dead_uploads && kind == NodeKind::kUpload &&
            !read_in(a.node, kNoNode)) {
          record(HazardClass::kDeadUpload, Severity::kWarning, vaddr, a.node,
                 kNoNode,
                 describe(a.node) + " writes " + buf +
                     " but nothing ever reads it");
          continue;  // also trivially overwritten-without-read; report once
        }
        if (!opts_.report_dead_stores || !a.full) continue;
        for (std::size_t j = i + 1; j < b.acc.size(); ++j) {
          const Access& o = b.acc[j];
          const NodeKind okind = nodes[o.node].kind;
          const bool over = (okind == NodeKind::kUpload ||
                             okind == NodeKind::kFill) &&
                            o.full && !(o.modes & kReadsMask);
          if (!over || !hb(a.node, o.node)) continue;
          if (!read_in(a.node, o.node)) {
            record(HazardClass::kDeadStore, Severity::kLint, vaddr, a.node,
                   o.node,
                   describe(a.node) + " fully overwritten by " +
                       describe(o.node) + " with no intervening read of " +
                       buf);
          }
          break;  // only the nearest overwriter matters
        }
      }
    }
  }

  if (opts_.report_leaks) {
    for (const auto& [vaddr, b] : buffers) {
      if (b.alloc == kNoNode || b.freed != kNoNode) continue;
      record(HazardClass::kLeak, Severity::kWarning, vaddr, b.alloc, kNoNode,
             describe(b.alloc) + " of buffer " + hex(vaddr) + " (" +
                 std::to_string(b.bytes) + "B) has no matching free");
    }
  }

  if (unknown_nodes > 0) {
    record(HazardClass::kUnknownAccess, Severity::kLint, 0, kNoNode, kNoNode,
           std::to_string(unknown_nodes) +
               " launch(es) recorded without access information (sanitizer "
               "off and no LaunchDims declarations); they are excluded from "
               "hazard checks and dead-dataflow checks are suppressed");
  }

  return rep;
}

util::Table HazardReport::records_table() const {
  util::Table t({"class", "severity", "buffer", "node_a", "node_b",
                 "detail"});
  for (const HazardRecord& r : records) {
    t.row()
        .cell(to_string(r.cls))
        .cell(simt::to_string(r.severity))
        .cell(hex(r.vaddr))
        .cell(r.node_a == kNoNode ? std::string("-")
                                  : std::to_string(r.node_a))
        .cell(r.node_b == kNoNode ? std::string("-")
                                  : std::to_string(r.node_b))
        .cell(r.detail);
  }
  return t;
}

std::string HazardReport::text() const {
  std::ostringstream os;
  os << "launch-graph verify: " << nodes << " nodes, " << pairs_checked
     << " conflicting pairs checked — " << errors() << " errors, "
     << warnings() << " warnings, " << lints() << " lints\n";
  for (const HazardRecord& r : records) {
    os << "  [" << simt::to_string(r.severity) << "] " << to_string(r.cls)
       << ": " << r.detail << "\n";
  }
  std::uint64_t stored = records.size();
  std::uint64_t total = 0;
  for (std::uint64_t c : class_counts) total += c;
  if (total > stored) {
    os << "  ... " << (total - stored) << " further finding(s) counted but "
       << "not recorded (max_records_per_class)\n";
  }
  if (total == 0) os << "  no hazards found\n";
  return os.str();
}

}  // namespace maxwarp::analysis

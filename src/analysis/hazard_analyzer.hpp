// Happens-before hazard analysis over a recorded launch graph.
//
// The analyzer treats the recorded nodes (launch_graph.hpp) as a DAG whose
// edges are the ordering guarantees the program actually established, and
// reports every pair of *unordered* nodes whose access sets conflict —
// the operations real CUDA hardware would have been free to overlap:
//
//   RAW / WAR / WAW  cross-stream data races on a device buffer. Plain
//                    read/write conflicts are errors; conflicts where one
//                    side is atomic are warnings (monotonic-update hazards
//                    the level-synchronous kernels rely on by design —
//                    the same policy simtsan applies within a launch).
//                    Atomic-vs-atomic overlap is not diagnosed.
//   use-after-free   an access not ordered *before* the buffer's
//                    stream-ordered free — either HB-after it or racing
//                    it. Always an error.
//   dead upload      H2D copy whose buffer is never read afterwards
//                    (warning: wasted PCIe traffic, or a missing launch).
//   dead store       full-buffer copy/fill overwritten by another
//                    full-buffer copy/fill with no intervening read
//                    (lint). Kernel writes never count as overwriters —
//                    partial coverage cannot be proven dead.
//   leak             allocation never freed before verification (warning;
//                    off by default since verify may run mid-lifetime —
//                    enable at teardown via AnalyzerOptions).
//   unknown access   kernels recorded without access information
//                    (sanitizer off, no declarations) are excluded from
//                    pairwise checks and surfaced as one aggregate lint;
//                    dead-dataflow checks are suppressed entirely, since
//                    an unobserved kernel may read anything.
//
// Severity tiers (error / warning / lint) and the report shape mirror
// simt::SanitizerReport, so callers can gate on clean() the same way.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/launch_graph.hpp"
#include "simt/sanitizer.hpp"  // simt::Severity
#include "util/table.hpp"

namespace maxwarp::analysis {

enum class HazardClass : std::uint8_t {
  kRaw,
  kWar,
  kWaw,
  kUseAfterFree,
  kDeadUpload,
  kDeadStore,
  kLeak,
  kUnknownAccess,
};

inline constexpr std::size_t kHazardClassCount = 8;

const char* to_string(HazardClass cls);

struct AnalyzerOptions {
  /// Report allocations with no recorded free. Off by default: verifying
  /// mid-run would flag every live buffer. Enable for teardown checks.
  bool report_leaks = false;

  /// Dead-dataflow checks (suppressed automatically when the graph
  /// contains unknown-access nodes).
  bool report_dead_uploads = true;
  bool report_dead_stores = true;

  /// Detailed records kept per hazard class; further findings are still
  /// counted but not stored.
  std::size_t max_records_per_class = 16;

  /// Hard cap on analyzable graph size: the happens-before closure uses
  /// O(nodes^2 / 8) bytes. Larger graphs throw std::runtime_error —
  /// scope the window with LaunchGraph::clear() between phases instead.
  std::size_t max_nodes = 32768;
};

/// One finding. `node_a` issued before `node_b` (kNoNode when the record
/// concerns a single node, e.g. dead upload or leak). `detail` carries the
/// kernel-label / stream provenance.
struct HazardRecord {
  HazardClass cls;
  simt::Severity severity;
  std::uint64_t vaddr = 0;       ///< buffer base
  std::uint32_t node_a = kNoNode;
  std::uint32_t node_b = kNoNode;
  std::string detail;
};

struct HazardReport {
  std::vector<HazardRecord> records;
  std::array<std::uint64_t, kHazardClassCount> class_counts{};
  std::array<std::uint64_t, 3> severity_counts{};  ///< index = Severity

  std::uint64_t nodes = 0;
  std::uint64_t pairs_checked = 0;

  std::uint64_t count(HazardClass cls) const {
    return class_counts[static_cast<std::size_t>(cls)];
  }
  std::uint64_t errors() const { return severity_counts[0]; }
  std::uint64_t warnings() const { return severity_counts[1]; }
  std::uint64_t lints() const { return severity_counts[2]; }

  /// True when no error-severity hazard was found (same contract as
  /// SanitizerReport::clean()).
  bool clean() const { return errors() == 0; }

  /// Folds another report into this one: detailed records concatenate,
  /// counters and totals sum. Multi-device verification analyzes each
  /// device's recorded graph separately (devices share no buffers, so
  /// cross-device pairs cannot race) and merges the reports into one
  /// batch verdict.
  void merge(const HazardReport& other) {
    records.insert(records.end(), other.records.begin(),
                   other.records.end());
    for (std::size_t i = 0; i < kHazardClassCount; ++i) {
      class_counts[i] += other.class_counts[i];
    }
    for (std::size_t i = 0; i < severity_counts.size(); ++i) {
      severity_counts[i] += other.severity_counts[i];
    }
    nodes += other.nodes;
    pairs_checked += other.pairs_checked;
  }

  /// Machine-readable dump of the detailed records.
  util::Table records_table() const;

  /// Multi-line human-readable report.
  std::string text() const;
};

class HazardAnalyzer {
 public:
  explicit HazardAnalyzer(AnalyzerOptions opts = {}) : opts_(opts) {}

  /// Analyzes a finished (or windowed) launch graph. Pure function of the
  /// graph: may be called repeatedly as recording continues.
  HazardReport analyze(const LaunchGraph& graph) const;

 private:
  AnalyzerOptions opts_;
};

}  // namespace maxwarp::analysis

#include "analysis/launch_graph.hpp"

#include <algorithm>
#include <sstream>

namespace maxwarp::analysis {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kKernel: return "kernel";
    case NodeKind::kUpload: return "H2D";
    case NodeKind::kDownload: return "D2H";
    case NodeKind::kFill: return "fill";
    case NodeKind::kAlloc: return "alloc";
    case NodeKind::kFree: return "free";
  }
  return "?";
}

std::uint32_t LaunchGraph::tail(std::uint32_t stream) const {
  return stream < stream_tail_.size() ? stream_tail_[stream] : kNoNode;
}

std::uint32_t LaunchGraph::add_node(Node node) {
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  const std::uint32_t stream = node.stream;
  if (stream >= stream_tail_.size()) {
    stream_tail_.resize(stream + 1, kNoNode);
    pending_waits_.resize(stream + 1);
  }

  std::vector<std::uint32_t>& deps = node.deps;
  if (stream_tail_[stream] != kNoNode) deps.push_back(stream_tail_[stream]);
  for (std::uint32_t d : pending_waits_[stream]) deps.push_back(d);
  pending_waits_[stream].clear();
  for (std::uint32_t d : host_frontier_) deps.push_back(d);

  // Legacy default-stream semantics: stream 0 is a device-wide ordering
  // point. A stream-0 node waits on every stream's tail; every node waits
  // on the last stream-0 node.
  if (stream == 0) {
    for (std::uint32_t t : stream_tail_) {
      if (t != kNoNode) deps.push_back(t);
    }
  } else if (last_default_ != kNoNode) {
    deps.push_back(last_default_);
  }

  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

  nodes_.push_back(std::move(node));
  stream_tail_[stream] = id;
  if (stream == 0) last_default_ = id;
  return id;
}

std::uint32_t LaunchGraph::add_kernel(std::uint32_t stream, std::string label,
                                      std::vector<BufferUse> uses,
                                      bool uses_known) {
  Node n;
  n.kind = NodeKind::kKernel;
  n.stream = stream;
  n.label = std::move(label);
  n.uses = std::move(uses);
  n.uses_known = uses_known;
  return add_node(std::move(n));
}

std::uint32_t LaunchGraph::add_copy(std::uint32_t stream, bool to_device,
                                    BufferUse use, std::string label) {
  Node n;
  n.kind = to_device ? NodeKind::kUpload : NodeKind::kDownload;
  n.stream = stream;
  n.label = std::move(label);
  n.uses.push_back(use);
  return add_node(std::move(n));
}

std::uint32_t LaunchGraph::add_fill(std::uint32_t stream, BufferUse use,
                                    std::string label) {
  Node n;
  n.kind = NodeKind::kFill;
  n.stream = stream;
  n.label = std::move(label);
  n.uses.push_back(use);
  return add_node(std::move(n));
}

std::uint32_t LaunchGraph::add_alloc(std::uint32_t stream,
                                     std::uint64_t vaddr, std::uint64_t bytes,
                                     std::string label) {
  Node n;
  n.kind = NodeKind::kAlloc;
  n.stream = stream;
  n.label = std::move(label);
  n.uses.push_back({vaddr, bytes, 0, true});
  return add_node(std::move(n));
}

std::uint32_t LaunchGraph::add_free(std::uint32_t stream,
                                    std::uint64_t vaddr) {
  Node n;
  n.kind = NodeKind::kFree;
  n.stream = stream;
  n.uses.push_back({vaddr, 0, 0, true});
  return add_node(std::move(n));
}

void LaunchGraph::on_event_record(std::uint64_t event, std::uint32_t stream) {
  event_capture_[event] = tail(stream);
}

void LaunchGraph::on_stream_wait(std::uint32_t stream, std::uint64_t event) {
  auto it = event_capture_.find(event);
  if (it == event_capture_.end() || it->second == kNoNode) return;
  if (stream >= pending_waits_.size()) {
    stream_tail_.resize(stream + 1, kNoNode);
    pending_waits_.resize(stream + 1);
  }
  pending_waits_[stream].push_back(it->second);
}

void LaunchGraph::on_host_sync_stream(std::uint32_t stream) {
  const std::uint32_t t = tail(stream);
  if (t != kNoNode) host_frontier_.push_back(t);
}

void LaunchGraph::on_host_sync_event(std::uint64_t event) {
  auto it = event_capture_.find(event);
  if (it == event_capture_.end() || it->second == kNoNode) return;
  host_frontier_.push_back(it->second);
}

void LaunchGraph::clear() {
  nodes_.clear();
  stream_tail_.assign(stream_tail_.size(), kNoNode);
  for (auto& w : pending_waits_) w.clear();
  event_capture_.clear();
  host_frontier_.clear();
  last_default_ = kNoNode;
}

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::string modes_str(std::uint8_t modes) {
  std::string s;
  if (modes & 1) s += 'r';
  if (modes & 2) s += 'w';
  if (modes & 4) s += 'a';
  return s.empty() ? "-" : s;
}

const char* dot_color(NodeKind kind) {
  switch (kind) {
    case NodeKind::kKernel: return "lightblue";
    case NodeKind::kUpload: return "palegreen";
    case NodeKind::kDownload: return "khaki";
    case NodeKind::kFill: return "palegreen";
    case NodeKind::kAlloc: return "gray90";
    case NodeKind::kFree: return "lightpink";
  }
  return "white";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string LaunchGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph launch_graph {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, style=filled, fontname=\"monospace\"];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << "  n" << i << " [fillcolor=" << dot_color(n.kind) << ", label=\"#"
       << i << " " << to_string(n.kind);
    if (!n.label.empty()) os << " " << json_escape(n.label);
    os << "\\nstream " << n.stream;
    for (const BufferUse& u : n.uses) {
      os << "\\n" << hex(u.vaddr) << " " << modes_str(u.modes) << " "
         << u.bytes << "B";
    }
    if (!n.uses_known) os << "\\n(accesses unknown)";
    os << "\"];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::uint32_t d : nodes_[i].deps) {
      os << "  n" << d << " -> n" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string LaunchGraph::to_json() const {
  std::ostringstream os;
  os << "{\"nodes\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (i) os << ",";
    os << "{\"id\":" << i << ",\"kind\":\"" << to_string(n.kind)
       << "\",\"stream\":" << n.stream << ",\"label\":\""
       << json_escape(n.label) << "\",\"uses_known\":"
       << (n.uses_known ? "true" : "false") << ",\"deps\":[";
    for (std::size_t d = 0; d < n.deps.size(); ++d) {
      if (d) os << ",";
      os << n.deps[d];
    }
    os << "],\"uses\":[";
    for (std::size_t u = 0; u < n.uses.size(); ++u) {
      if (u) os << ",";
      os << "{\"vaddr\":" << n.uses[u].vaddr << ",\"bytes\":"
         << n.uses[u].bytes << ",\"modes\":\"" << modes_str(n.uses[u].modes)
         << "\",\"full\":" << (n.uses[u].full ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace maxwarp::analysis

// Launch-graph recorder: the raw material for post-hoc stream verification.
//
// The simulator executes every operation *eagerly* in host issue order, so
// streams and events reorder modeled time only — a missing Stream::wait
// never corrupts results here the way it would on real hardware, which
// makes exactly that bug class invisible to functional tests. The recorder
// closes the gap: when SimConfig::record_launch_graph is on, gpu::Device
// appends one node per kernel launch, host<->device copy, fill, allocation
// and free, together with the happens-before edges the stream/event API
// actually established:
//
//   * program order within one stream (per-stream FIFO);
//   * Event::record on stream A / Stream::wait on stream B edges;
//   * host synchronization (Stream::synchronize, Event::ms) — every node
//     issued afterwards, on any stream, is ordered after the synced work;
//   * legacy default-stream semantics: like CUDA's legacy default stream,
//     an operation on stream 0 is a device-wide ordering point — it waits
//     for all prior work and all later work waits for it. Code that keeps
//     everything on stream 0 is therefore trivially race-free, matching
//     both real CUDA and this simulator's sequential execution.
//
// DeviceBuffer allocation and free are modeled as *stream-ordered* on the
// issuing (current) stream, the cudaMallocAsync/cudaFreeAsync contract:
// freeing a buffer while an unordered stream may still be using it is
// exactly the lifetime bug the analyzer exists to flag.
//
// Each node carries its buffer-level access set: exact when the sanitizer
// is armed (it observes every access), declared via LaunchDims::reads /
// writes / atomics otherwise, or unknown (such nodes are excluded from
// pairwise hazard checks and surfaced as a coverage lint).
//
// The recorder itself never diagnoses anything — HazardAnalyzer
// (analysis/hazard_analyzer.hpp) consumes the finished graph.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace maxwarp::analysis {

enum class NodeKind : std::uint8_t {
  kKernel,
  kUpload,    ///< H2D copy (upload / write / fill source side is host)
  kDownload,  ///< D2H copy (download / read)
  kFill,      ///< host-initiated constant fill
  kAlloc,
  kFree,
};

const char* to_string(NodeKind kind);

/// One buffer access of a node. `vaddr` is the *base* address of the
/// allocation (buffer identity), `bytes` the bytes this node touches of
/// it, `modes` a simt::kAccess* bitmask. `full` is set when the access
/// provably covers the whole allocation (known only for copies/fills),
/// which the dead-store check requires.
struct BufferUse {
  std::uint64_t vaddr = 0;
  std::uint64_t bytes = 0;
  std::uint8_t modes = 0;
  bool full = false;
};

inline constexpr std::uint32_t kNoNode = 0xffffffffu;

struct Node {
  NodeKind kind = NodeKind::kKernel;
  std::uint32_t stream = 0;
  std::string label;            ///< kernel label / copy description
  std::vector<BufferUse> uses;
  bool uses_known = true;       ///< false: kernel with no capture, no decls
  std::vector<std::uint32_t> deps;  ///< happens-before predecessors
};

class LaunchGraph {
 public:
  // --- node recording (driven by gpu::Device / gpu::DeviceBuffer) ---------

  std::uint32_t add_kernel(std::uint32_t stream, std::string label,
                           std::vector<BufferUse> uses, bool uses_known);
  std::uint32_t add_copy(std::uint32_t stream, bool to_device, BufferUse use,
                         std::string label);
  std::uint32_t add_fill(std::uint32_t stream, BufferUse use,
                         std::string label);
  std::uint32_t add_alloc(std::uint32_t stream, std::uint64_t vaddr,
                          std::uint64_t bytes, std::string label);
  std::uint32_t add_free(std::uint32_t stream, std::uint64_t vaddr);

  // --- ordering edges (driven by gpu::Stream / gpu::Event) ----------------

  /// Event::record: captures the recording stream's current tail under the
  /// event id. Re-recording overwrites, like CUDA.
  void on_event_record(std::uint64_t event, std::uint32_t stream);

  /// Stream::wait: the waiting stream's next node depends on the node the
  /// event captured. Waiting on a never-recorded event is a no-op (the
  /// caller already filters that case, mirroring Timeline::wait_event).
  void on_stream_wait(std::uint32_t stream, std::uint64_t event);

  /// Host blocked until `stream`'s work completed (Stream::synchronize):
  /// everything issued afterwards on any stream is ordered after it.
  void on_host_sync_stream(std::uint32_t stream);

  /// Host blocked until an event's captured work completed (Event::ms).
  void on_host_sync_event(std::uint64_t event);

  // --- inspection ---------------------------------------------------------

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Forgets all nodes and edges but keeps the event/stream bookkeeping
  /// consistent (subsequent nodes start a fresh window). Use to scope
  /// verification to a phase; cross-window hazards are not reported.
  void clear();

  /// Graphviz dump: one box per node, colored by kind, HB edges.
  std::string to_dot() const;

  /// Machine-readable dump of nodes, deps and access sets.
  std::string to_json() const;

 private:
  std::uint32_t add_node(Node node);
  std::uint32_t tail(std::uint32_t stream) const;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> stream_tail_;       ///< last node per stream
  std::vector<std::vector<std::uint32_t>> pending_waits_;  ///< per stream
  std::unordered_map<std::uint64_t, std::uint32_t> event_capture_;
  std::vector<std::uint32_t> host_frontier_;  ///< host-synced tails
  std::uint32_t last_default_ = kNoNode;      ///< last stream-0 node
};

}  // namespace maxwarp::analysis

// Typed device-memory buffers (the cudaMalloc / cudaMemcpy analogue).
//
// The backing store lives on the host (the simulator executes functionally),
// but every buffer also owns a simulated global virtual-address range so the
// memory model can coalesce accesses, and every upload/download charges the
// PCIe-like transfer model on the owning Device.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "gpu/device.hpp"
#include "simt/devptr.hpp"

namespace maxwarp::gpu {

template <typename T>
class DeviceBuffer {
 public:
  /// Uninitialized (value-constructed) device allocation of `count` items.
  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device),
        storage_(count),
        vaddr_(device.allocate_vaddr(count * sizeof(T))) {}

  /// Allocates and uploads the host data (cudaMemcpy H2D included).
  DeviceBuffer(Device& device, std::span<const T> host)
      : DeviceBuffer(device, host.size()) {
    upload(host);
  }

  DeviceBuffer(Device& device, const std::vector<T>& host)
      : DeviceBuffer(device, std::span<const T>(host)) {}

  DeviceBuffer(DeviceBuffer&&) noexcept = default;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return storage_.size(); }
  std::uint64_t size_bytes() const { return storage_.size() * sizeof(T); }

  simt::DevPtr<T> ptr() { return {storage_.data(), vaddr_}; }
  simt::DevPtr<const T> cptr() const { return {storage_.data(), vaddr_}; }

  /// Host -> device copy of the full buffer prefix.
  void upload(std::span<const T> host) {
    if (host.size() > storage_.size()) {
      throw std::out_of_range("upload larger than buffer");
    }
    std::copy(host.begin(), host.end(), storage_.begin());
    device_->note_copy(host.size() * sizeof(T), /*to_device=*/true);
  }

  /// Device -> host copy of the whole buffer.
  std::vector<T> download() const {
    device_->note_copy(size_bytes(), /*to_device=*/false);
    return storage_;
  }

  /// Device -> host copy of a single element (tiny pinned read; still pays
  /// a transfer call, which is why real BFS codes avoid per-level reads).
  T read(std::size_t index) const {
    assert(index < storage_.size());
    device_->note_copy(sizeof(T), /*to_device=*/false);
    return storage_[index];
  }

  /// Host -> device write of a single element.
  void write(std::size_t index, const T& value) {
    assert(index < storage_.size());
    storage_[index] = value;
    device_->note_copy(sizeof(T), /*to_device=*/true);
  }

  /// Device-side fill (cudaMemset analogue): charged as one kernel-free
  /// bandwidth operation, not as a PCIe transfer.
  void fill(const T& value) {
    std::fill(storage_.begin(), storage_.end(), value);
  }

 private:
  Device* device_;
  std::vector<T> storage_;
  std::uint64_t vaddr_;
};

}  // namespace maxwarp::gpu

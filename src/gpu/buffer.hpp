// Typed device-memory buffers (the cudaMalloc / cudaMemcpy analogue).
//
// The backing store lives on the host (the simulator executes functionally),
// but every buffer also owns a simulated global virtual-address range so the
// memory model can coalesce accesses, and every upload/download charges the
// PCIe-like transfer model on the owning Device.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <new>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "gpu/device.hpp"
#include "gpu/status.hpp"
#include "gpu/stream.hpp"
#include "simt/devptr.hpp"

namespace maxwarp::gpu {

template <typename T>
class DeviceBuffer {
 public:
  /// Uninitialized (value-constructed) device allocation of `count` items.
  /// Under the sanitizer the allocation is registered as *uninitialized*
  /// device memory — kernels reading it before an upload/fill/store are
  /// reported — even though the host backing store is value-constructed.
  ///
  /// Throws DeviceError: INVALID_ARGUMENT when count * sizeof(T)
  /// overflows (near-SIZE_MAX requests used to wrap silently),
  /// OUT_OF_MEMORY when the fault injector or its byte budget refuses
  /// the allocation. Zero-byte buffers are valid (and free). try_create
  /// is the non-throwing form.
  DeviceBuffer(Device& device, std::size_t count) : device_(&device) {
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    if (count > kMax / sizeof(T)) {
      device_ = nullptr;
      throw DeviceError({ErrorCode::kInvalidArgument,
                         "DeviceBuffer: count " + std::to_string(count) +
                             " overflows the byte size"});
    }
    const std::uint64_t bytes = static_cast<std::uint64_t>(count) * sizeof(T);
    Status st = device.try_allocate(bytes, &vaddr_);
    if (!st.ok()) {
      device_ = nullptr;
      throw DeviceError(std::move(st));
    }
    storage_.resize(count);
    device.register_alloc(vaddr_,
                          reinterpret_cast<std::uint8_t*>(storage_.data()),
                          bytes);
    if (auto* san = device.sanitizer()) {
      san->on_alloc(vaddr_, bytes);
    }
  }

  /// Non-throwing allocation: nullopt on failure, with the reason in
  /// *status when given. Also converts host backing-store exhaustion
  /// (std::bad_alloc on a huge but non-overflowing request) into
  /// OUT_OF_MEMORY instead of propagating.
  static std::optional<DeviceBuffer> try_create(Device& device,
                                                std::size_t count,
                                                Status* status = nullptr) {
    try {
      DeviceBuffer buf(device, count);
      if (status != nullptr) *status = Status::Ok();
      return buf;
    } catch (const DeviceError& e) {
      if (status != nullptr) *status = e.status();
    } catch (const std::bad_alloc&) {
      if (status != nullptr) {
        *status = {ErrorCode::kOutOfMemory,
                   "host backing store allocation failed"};
      }
    }
    return std::nullopt;
  }

  /// Allocates and uploads the host data (cudaMemcpy H2D included).
  DeviceBuffer(Device& device, std::span<const T> host)
      : DeviceBuffer(device, host.size()) {
    upload(host);
  }

  DeviceBuffer(Device& device, const std::vector<T>& host)
      : DeviceBuffer(device, std::span<const T>(host)) {}

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : device_(other.device_),
        storage_(std::move(other.storage_)),
        vaddr_(other.vaddr_) {
    other.device_ = nullptr;  // moved-from shell owns nothing (no double free)
  }

  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      device_ = other.device_;
      storage_ = std::move(other.storage_);
      vaddr_ = other.vaddr_;
      other.device_ = nullptr;
    }
    return *this;
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  /// cudaFree analogue: marks the simulated allocation dead, so kernel
  /// accesses through stale DevPtrs report use-after-free.
  ~DeviceBuffer() { release(); }

  std::size_t size() const { return storage_.size(); }
  std::uint64_t size_bytes() const { return storage_.size() * sizeof(T); }

  simt::DevPtr<T> ptr() { return {storage_.data(), vaddr_}; }
  simt::DevPtr<const T> cptr() const { return {storage_.data(), vaddr_}; }

  /// Host -> device copy of the full buffer prefix (current stream).
  void upload(std::span<const T> host) {
    upload_on(host, device_->current_stream_id());
  }

  /// cudaMemcpyAsync H2D: same copy, accounted on `stream`.
  void upload_async(std::span<const T> host, const Stream& stream) {
    upload_on(host, stream.id());
  }

  /// Host -> device copy of a slice: host.size() elements land at element
  /// offset `first` (current stream), charging only the slice's bytes to
  /// the transfer model. The page-granular ECC-recovery path uses this to
  /// re-upload one dirtied 64 KiB page instead of a whole CSR array.
  void upload_range(std::size_t first, std::span<const T> host) {
    if (first > storage_.size() ||
        host.size() > storage_.size() - first) {
      throw std::out_of_range("upload_range outside buffer");
    }
    std::copy(host.begin(), host.end(),
              storage_.begin() + static_cast<std::ptrdiff_t>(first));
    device_->note_copy(host.size() * sizeof(T), /*to_device=*/true);
    if (auto* san = device_->sanitizer()) {
      san->on_host_write(vaddr_, first * sizeof(T), host.size() * sizeof(T));
    }
    record_copy(device_->current_stream_id(), /*to_device=*/true,
                first * sizeof(T), host.size() * sizeof(T), "upload");
  }

  /// Device -> host copy of the whole buffer (current stream).
  std::vector<T> download() const {
    device_->note_copy(size_bytes(), /*to_device=*/false);
    record_copy(device_->current_stream_id(), /*to_device=*/false, 0,
                size_bytes(), "download");
    return storage_;
  }

  /// cudaMemcpyAsync D2H: same copy, accounted on `stream`.
  std::vector<T> download_async(const Stream& stream) const {
    device_->note_copy_on(stream.id(), size_bytes(), /*to_device=*/false);
    record_copy(stream.id(), /*to_device=*/false, 0, size_bytes(),
                "download");
    return storage_;
  }

  /// Device -> host copy of a single element (tiny pinned read; still pays
  /// a transfer call, which is why real BFS codes avoid per-level reads).
  T read(std::size_t index) const {
    assert(index < storage_.size());
    device_->note_copy(sizeof(T), /*to_device=*/false);
    record_copy(device_->current_stream_id(), /*to_device=*/false, index,
                sizeof(T), "read");
    return storage_[index];
  }

  /// Single-element read accounted on `stream` (a per-level flag read in
  /// a multi-stream driver must not serialize the other streams).
  T read_async(std::size_t index, const Stream& stream) const {
    assert(index < storage_.size());
    device_->note_copy_on(stream.id(), sizeof(T), /*to_device=*/false);
    record_copy(stream.id(), /*to_device=*/false, index, sizeof(T), "read");
    return storage_[index];
  }

  /// Host -> device write of a single element.
  void write(std::size_t index, const T& value) {
    assert(index < storage_.size());
    storage_[index] = value;
    device_->note_copy(sizeof(T), /*to_device=*/true);
    if (auto* san = device_->sanitizer()) {
      san->on_host_write(vaddr_, index * sizeof(T), sizeof(T));
    }
    record_copy(device_->current_stream_id(), /*to_device=*/true, index,
                sizeof(T), "write");
  }

  /// Device-side fill (cudaMemset analogue): charged as one kernel-free
  /// bandwidth operation, not as a PCIe transfer.
  void fill(const T& value) {
    std::fill(storage_.begin(), storage_.end(), value);
    if (auto* san = device_->sanitizer()) {
      san->on_host_write(vaddr_, 0, size_bytes());
    }
    if (size_bytes() > 0) {
      if (auto* lg = device_->launch_graph()) {
        lg->add_fill(device_->current_stream_id(),
                     {vaddr_, size_bytes(), simt::kAccessWrite, true},
                     "fill");
      }
    }
  }

 private:
  void upload_on(std::span<const T> host, std::uint32_t stream_id) {
    if (host.size() > storage_.size()) {
      throw std::out_of_range("upload larger than buffer");
    }
    std::copy(host.begin(), host.end(), storage_.begin());
    device_->note_copy_on(stream_id, host.size() * sizeof(T),
                          /*to_device=*/true);
    if (auto* san = device_->sanitizer()) {
      san->on_host_write(vaddr_, 0, host.size() * sizeof(T));
    }
    record_copy(stream_id, /*to_device=*/true, 0, host.size() * sizeof(T),
                "upload");
  }

  /// Launch-graph recording of one copy touching [offset, offset+bytes).
  /// `offset` only decides full-buffer coverage (the recorder tracks
  /// whole allocations); zero-byte traffic is not recorded.
  void record_copy(std::uint32_t stream_id, bool to_device,
                   std::uint64_t offset, std::uint64_t bytes,
                   const char* what) const {
    if (bytes == 0) return;
    auto* lg = device_->launch_graph();
    if (lg == nullptr) return;
    const std::uint8_t modes =
        to_device ? simt::kAccessWrite : simt::kAccessRead;
    lg->add_copy(stream_id, to_device,
                 {vaddr_, bytes, modes, offset == 0 && bytes == size_bytes()},
                 what);
  }

  void release() {
    if (device_ == nullptr) return;
    device_->unregister_alloc(vaddr_);
    if (auto* san = device_->sanitizer()) san->on_free(vaddr_);
    device_ = nullptr;
  }

  Device* device_;
  std::vector<T> storage_;
  std::uint64_t vaddr_ = 0;
};

}  // namespace maxwarp::gpu

#include "gpu/device.hpp"

namespace maxwarp::gpu {

Device::Device(simt::SimConfig cfg) : sim_(cfg) {
  kernel_totals_.launches = 0;
}

simt::KernelStats Device::launch(const simt::LaunchDims& dims,
                                 const simt::WarpFn& kernel) {
  return launch_on(current_stream_, dims, kernel);
}

simt::KernelStats Device::launch_on(std::uint32_t stream_id,
                                    const simt::LaunchDims& dims,
                                    const simt::WarpFn& kernel) {
  const simt::KernelStats stats = sim_.launch(dims, kernel);
  kernel_totals_.add(stats);
  const auto& cfg = config();
  sim_.timeline().push_kernel(stream_id,
                              cfg.cycles_to_ms(stats.elapsed_cycles),
                              cfg.cycles_to_ms(stats.busy_cycles));
  return stats;
}

void Device::reset_totals() {
  kernel_totals_ = simt::KernelStats{};
  kernel_totals_.launches = 0;
  transfer_totals_ = TransferStats{};
}

double Device::total_modeled_ms() const {
  return kernel_totals_.elapsed_ms(config()) + transfer_totals_.modeled_ms;
}

std::uint64_t Device::allocate_vaddr(std::uint64_t bytes) {
  const std::uint64_t base = next_vaddr_;
  const std::uint64_t aligned = (bytes + 255) / 256 * 256;
  next_vaddr_ += aligned == 0 ? 256 : aligned;
  return base;
}

void Device::note_copy(std::uint64_t bytes, bool to_device) {
  note_copy_on(current_stream_, bytes, to_device);
}

void Device::note_copy_on(std::uint32_t stream_id, std::uint64_t bytes,
                          bool to_device) {
  const auto& cfg = config();
  if (to_device) {
    transfer_totals_.bytes_to_device += bytes;
  } else {
    transfer_totals_.bytes_to_host += bytes;
  }
  ++transfer_totals_.calls;
  const double duration_ms =
      cfg.copy_latency_us / 1e3 +
      static_cast<double>(bytes) / (cfg.copy_gbytes_per_sec * 1e9) * 1e3;
  transfer_totals_.modeled_ms += duration_ms;
  sim_.timeline().push_copy(stream_id, duration_ms, to_device);
}

}  // namespace maxwarp::gpu

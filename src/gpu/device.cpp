#include "gpu/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace maxwarp::gpu {

namespace {

std::uint64_t ms_to_cycles(const simt::SimConfig& cfg, double ms) {
  return static_cast<std::uint64_t>(std::llround(ms * cfg.clock_ghz * 1e6));
}

std::string label_of(const simt::LaunchDims& dims) {
  return dims.label.empty() ? std::string("<unnamed>") : dims.label;
}

}  // namespace

Device::Device(simt::SimConfig cfg) : sim_(cfg) {
  kernel_totals_.launches = 0;
  if (config().record_launch_graph) {
    graph_ = std::make_unique<analysis::LaunchGraph>();
  }
}

analysis::HazardReport Device::verify_launch_graph(
    const analysis::AnalyzerOptions& opts) const {
  if (!graph_) {
    throw std::logic_error(
        "Device::verify_launch_graph requires a device constructed with "
        "SimConfig::record_launch_graph");
  }
  return analysis::HazardAnalyzer(opts).analyze(*graph_);
}

void Device::record_kernel_node(std::uint32_t stream_id,
                                const simt::LaunchDims& dims) {
  std::vector<analysis::BufferUse> uses;
  bool known = false;
  if (const auto* san = sim_.sanitizer()) {
    for (const auto& t : san->launch_touched()) {
      uses.push_back({t.base, t.bytes, t.modes, false});
    }
    known = true;
  } else if (!dims.accesses.empty()) {
    for (const simt::KernelAccessDecl& d : dims.accesses) {
      // Resolve the declared address to its containing live allocation so
      // interior pointers (DevPtr arithmetic) still name the right buffer.
      std::uint64_t base = d.vaddr;
      std::uint64_t bytes = 0;
      auto it = allocs_.upper_bound(d.vaddr);
      if (it != allocs_.begin()) {
        --it;
        if (d.vaddr < it->first + it->second.bytes) {
          base = it->first;
          bytes = it->second.bytes;
        }
      }
      uses.push_back({base, bytes, d.modes, false});
    }
    known = true;
  }
  graph_->add_kernel(stream_id, label_of(dims), std::move(uses), known);
}

simt::KernelStats Device::launch(const simt::LaunchDims& dims,
                                 const simt::WarpFn& kernel) {
  return launch_on(current_stream_, dims, kernel);
}

simt::KernelStats Device::launch_on(std::uint32_t stream_id,
                                    const simt::LaunchDims& dims,
                                    const simt::WarpFn& kernel) {
  LaunchReport report = try_launch_on(stream_id, dims, kernel);
  if (!report.ok()) throw DeviceError(std::move(report.status));
  return report.stats;
}

LaunchReport Device::try_launch(const simt::LaunchDims& dims,
                                const simt::WarpFn& kernel) {
  return try_launch_on(current_stream_, dims, kernel);
}

LaunchReport Device::try_launch_on(std::uint32_t stream_id,
                                   const simt::LaunchDims& dims,
                                   const simt::WarpFn& kernel) {
  const auto& cfg = config();
  LaunchReport report;

  std::optional<simt::FaultEvent> fault;
  if (sim_.faults().armed()) {
    fault = sim_.faults().on_launch(dims.label, memory_.live_bytes);
  }

  if (fault && fault->kind == simt::FaultKind::kLaunchFail) {
    // Rejected before any warp ran: only the driver-side launch overhead
    // is consumed, and the kernel's side effects never happen.
    report.stats = simt::KernelStats{};
    report.stats.elapsed_cycles = cfg.kernel_launch_overhead_cycles;
    report.stats.busy_cycles = cfg.kernel_launch_overhead_cycles;
    report.fault = fault;
    report.status = {ErrorCode::kLaunchFailed,
                     "kernel '" + label_of(dims) +
                         "' rejected by injected launch failure"};
  } else if (fault && fault->kind == simt::FaultKind::kEccUncorrectable) {
    // Uncorrectable ECC aborts the kernel, mirroring real hardware: the
    // victim bit flips, the kernel's side effects never land, and the
    // context is poisoned until recovery re-uploads device state. The
    // kernel must not execute against the corrupted image — a flipped
    // row offset would send it (and the functional simulator) out of
    // bounds.
    apply_ecc(*fault, /*corrupt=*/true);
    report.stats = simt::KernelStats{};
    report.stats.elapsed_cycles = cfg.kernel_launch_overhead_cycles;
    report.stats.busy_cycles = cfg.kernel_launch_overhead_cycles;
    report.fault = fault;
    report.status = {ErrorCode::kEccUncorrectable,
                     "uncorrectable ECC event aborted kernel '" +
                         label_of(dims) + "'"};
  } else {
    report.stats = sim_.launch(dims, kernel);
    report.fault = fault;

    const double watchdog = effective_watchdog_ms();
    if (fault && fault->kind == simt::FaultKind::kKernelHang) {
      // The kernel "hangs": the host gives up at the watchdog deadline
      // (or the documented default when none is armed), so that much
      // modeled time is consumed; side effects may have landed.
      const double deadline = watchdog > 0 ? watchdog : kDefaultHangMs;
      report.stats.elapsed_cycles = std::max(
          report.stats.elapsed_cycles, ms_to_cycles(cfg, deadline));
      report.status = {ErrorCode::kDeadlineExceeded,
                       "kernel '" + label_of(dims) +
                           "' hung (injected) and hit the " +
                           std::to_string(deadline) + " ms watchdog"};
    } else if (watchdog > 0 &&
               cfg.cycles_to_ms(report.stats.elapsed_cycles) > watchdog) {
      report.status = {ErrorCode::kDeadlineExceeded,
                       "kernel '" + label_of(dims) + "' ran " +
                           std::to_string(cfg.cycles_to_ms(
                               report.stats.elapsed_cycles)) +
                           " ms, over the " + std::to_string(watchdog) +
                           " ms watchdog"};
    }
    // kEccCorrectable: corrected in flight — the launch succeeds and the
    // event is only recorded (report.fault / injector history).

    // Record only launches that actually executed: a rejected/aborted
    // launch has no side effects, so it cannot participate in a hazard.
    if (graph_) record_kernel_node(stream_id, dims);
  }

  kernel_totals_.add(report.stats);
  sim_.timeline().push_kernel(stream_id,
                              cfg.cycles_to_ms(report.stats.elapsed_cycles),
                              cfg.cycles_to_ms(report.stats.busy_cycles));
  if (!report.status.ok() && ordinal_ >= 0) {
    report.status.set_device(ordinal_);
  }
  return report;
}

std::optional<EccVictim> Device::resolve_ecc_offset(
    std::uint64_t flat_offset) const {
  std::uint64_t off = flat_offset;
  for (const auto& [vaddr, alloc] : allocs_) {
    if (off < alloc.bytes) {
      return EccVictim{vaddr, alloc.bytes, off};
    }
    off -= alloc.bytes;
  }
  return std::nullopt;
}

void Device::apply_ecc(const simt::FaultEvent& ev, bool corrupt) {
  const auto victim = resolve_ecc_offset(ev.byte_offset);
  if (!victim) return;
  auto it = allocs_.find(victim->vaddr);
  if (it == allocs_.end()) return;
  Alloc& alloc = it->second;
  if (corrupt && alloc.data != nullptr) {
    alloc.data[victim->offset_in_alloc] ^=
        static_cast<std::uint8_t>(1u << ev.bit);
    // Keep the sanitizer's shadow consistent: the byte now holds a
    // (corrupt but) defined value.
    if (auto* san = sanitizer()) {
      san->on_host_write(victim->vaddr, victim->offset_in_alloc, 1);
    }
  }
}

void Device::reset_totals() {
  kernel_totals_ = simt::KernelStats{};
  kernel_totals_.launches = 0;
  transfer_totals_ = TransferStats{};
  delay_total_ms_ = 0;
}

double Device::total_modeled_ms() const {
  return kernel_totals_.elapsed_ms(config()) + transfer_totals_.modeled_ms +
         delay_total_ms_;
}

void Device::charge_delay_ms(double ms) {
  if (ms <= 0) return;
  delay_total_ms_ += ms;
  sim_.timeline().push_delay(current_stream_, ms);
}

std::uint64_t Device::allocate_vaddr(std::uint64_t bytes) {
  const std::uint64_t base = next_vaddr_;
  const std::uint64_t aligned = (bytes + 255) / 256 * 256;
  next_vaddr_ += aligned == 0 ? 256 : aligned;
  return base;
}

Status Device::try_allocate(std::uint64_t bytes, std::uint64_t* vaddr) {
  if (sim_.faults().on_alloc(bytes, memory_.live_bytes)) {
    ++memory_.failed_allocs;
    Status status{ErrorCode::kOutOfMemory,
                  "allocation of " + std::to_string(bytes) +
                      " bytes refused (" + std::to_string(memory_.live_bytes) +
                      " bytes live)"};
    if (ordinal_ >= 0) status.set_device(ordinal_);
    return status;
  }
  *vaddr = allocate_vaddr(bytes);
  return Status::Ok();
}

void Device::register_alloc(std::uint64_t vaddr, std::uint8_t* data,
                            std::uint64_t bytes) {
  allocs_[vaddr] = Alloc{data, bytes};
  memory_.live_bytes += bytes;
  memory_.peak_bytes = std::max(memory_.peak_bytes, memory_.live_bytes);
  ++memory_.allocs;
  // Stream-ordered allocation (the cudaMallocAsync contract): the alloc is
  // a node on the issuing stream. Zero-byte buffers are skipped — they
  // have no addressable contents to race on.
  if (graph_ && bytes > 0) {
    graph_->add_alloc(current_stream_, vaddr, bytes, "");
  }
}

void Device::unregister_alloc(std::uint64_t vaddr) {
  auto it = allocs_.find(vaddr);
  if (it == allocs_.end()) return;
  if (graph_ && it->second.bytes > 0) {
    graph_->add_free(current_stream_, vaddr);
  }
  memory_.live_bytes -= it->second.bytes;
  ++memory_.frees;
  allocs_.erase(it);
}

void Device::note_copy(std::uint64_t bytes, bool to_device) {
  note_copy_on(current_stream_, bytes, to_device);
}

void Device::note_copy_on(std::uint32_t stream_id, std::uint64_t bytes,
                          bool to_device) {
  const auto& cfg = config();
  if (to_device) {
    transfer_totals_.bytes_to_device += bytes;
  } else {
    transfer_totals_.bytes_to_host += bytes;
  }
  ++transfer_totals_.calls;
  const double duration_ms =
      cfg.copy_latency_us / 1e3 +
      static_cast<double>(bytes) / (cfg.copy_gbytes_per_sec * 1e9) * 1e3;
  transfer_totals_.modeled_ms += duration_ms;
  sim_.timeline().push_copy(stream_id, duration_ms, to_device);
}

}  // namespace maxwarp::gpu

// Host-side runtime, shaped like CUDA host code.
//
// gpu::Device owns the simulated device (simt::DeviceSim), a virtual-address
// allocator for global memory, and accumulated host<->device transfer
// accounting. gpu::DeviceBuffer<T> (buffer.hpp) is the cudaMalloc/cudaMemcpy
// analogue. Kernel launches go through Device::launch, which forwards to the
// simulator and tallies per-device totals, so an application can report
// "kernel time" and "transfer time" separately — as GPU papers do.
#pragma once

#include <cstdint>

#include "simt/device_sim.hpp"

namespace maxwarp::gpu {

/// Accumulated host<->device copy accounting (PCIe model).
struct TransferStats {
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::uint64_t calls = 0;
  double modeled_ms = 0.0;
};

class Device {
 public:
  explicit Device(simt::SimConfig cfg = {});

  const simt::SimConfig& config() const { return sim_.config(); }
  simt::DeviceSim& sim() { return sim_; }

  /// The sanitizer, or nullptr unless the device was constructed with
  /// SimConfig::sanitize. DeviceBuffer uses this to register allocations;
  /// applications use it to read the accumulated SanitizerReport.
  simt::Sanitizer* sanitizer() { return sim_.sanitizer(); }
  const simt::Sanitizer* sanitizer() const { return sim_.sanitizer(); }

  /// Launches a kernel and adds its stats to the device totals.
  simt::KernelStats launch(const simt::LaunchDims& dims,
                           const simt::WarpFn& kernel);

  simt::LaunchDims dims_for_threads(std::uint64_t n) const {
    return sim_.dims_for_threads(n);
  }
  simt::LaunchDims dims_for_warps(std::uint64_t n) const {
    return sim_.dims_for_warps(n);
  }

  /// Running totals since construction or the last reset_totals().
  const simt::KernelStats& kernel_totals() const { return kernel_totals_; }
  const TransferStats& transfer_totals() const { return transfer_totals_; }
  void reset_totals();

  /// Total modeled time (kernels + transfers) in milliseconds.
  double total_modeled_ms() const;

  // -- internal hooks used by DeviceBuffer ---------------------------------

  /// Reserves a 256-byte-aligned simulated global address range.
  std::uint64_t allocate_vaddr(std::uint64_t bytes);

  /// Charges a host<->device copy of the given size.
  void note_copy(std::uint64_t bytes, bool to_device);

 private:
  simt::DeviceSim sim_;
  std::uint64_t next_vaddr_ = 256;  // keep 0 an invalid address
  simt::KernelStats kernel_totals_;
  TransferStats transfer_totals_;
};

}  // namespace maxwarp::gpu

// Host-side runtime, shaped like CUDA host code.
//
// gpu::Device owns the simulated device (simt::DeviceSim), a virtual-address
// allocator for global memory, and accumulated host<->device transfer
// accounting. gpu::DeviceBuffer<T> (buffer.hpp) is the cudaMalloc/cudaMemcpy
// analogue. Kernel launches go through Device::launch, which forwards to the
// simulator and tallies per-device totals, so an application can report
// "kernel time" and "transfer time" separately — as GPU papers do.
//
// Streams: every launch and copy is also queued on the device's overlap
// timeline (simt::Timeline) under a *current stream* — stream 0 unless a
// gpu::StreamScope (stream.hpp) redirects it. total_modeled_ms() remains
// the serial model (every op back to back); modeled_makespan_ms() is the
// overlap-aware completion time of the same ops, where concurrent streams
// share SMs and copies ride the DMA engines.
//
// Execution engine: the SimConfig passed at construction flows through to
// the simulator unchanged, so SimConfig::host_threads selects the serial
// (default, bit-deterministic) or pooled-parallel engine for every launch
// made through this Device — see DESIGN.md "Execution engine".
#pragma once

#include <cstdint>

#include "simt/device_sim.hpp"

namespace maxwarp::gpu {

/// Accumulated host<->device copy accounting (PCIe model).
struct TransferStats {
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::uint64_t calls = 0;
  double modeled_ms = 0.0;
};

class Device {
 public:
  explicit Device(simt::SimConfig cfg = {});

  const simt::SimConfig& config() const { return sim_.config(); }
  simt::DeviceSim& sim() { return sim_; }

  /// The sanitizer, or nullptr unless the device was constructed with
  /// SimConfig::sanitize. DeviceBuffer uses this to register allocations;
  /// applications use it to read the accumulated SanitizerReport.
  simt::Sanitizer* sanitizer() { return sim_.sanitizer(); }
  const simt::Sanitizer* sanitizer() const { return sim_.sanitizer(); }

  /// Launches a kernel on the current stream and adds its stats to the
  /// device totals.
  simt::KernelStats launch(const simt::LaunchDims& dims,
                           const simt::WarpFn& kernel);

  /// Launches on an explicit stream (gpu::Stream::launch is the
  /// ergonomic wrapper). Execution is immediate and deterministic in
  /// issue order — streams reorder modeled *time*, never results.
  simt::KernelStats launch_on(std::uint32_t stream_id,
                              const simt::LaunchDims& dims,
                              const simt::WarpFn& kernel);

  simt::LaunchDims dims_for_threads(std::uint64_t n) const {
    return sim_.dims_for_threads(n);
  }
  simt::LaunchDims dims_for_warps(std::uint64_t n) const {
    return sim_.dims_for_warps(n);
  }

  // -- streams --------------------------------------------------------------

  /// Registers a new stream on the timeline and returns its id. Stream
  /// objects (stream.hpp) wrap these ids; id 0 is the default stream.
  std::uint32_t create_stream_id() { return sim_.timeline().create_stream(); }

  /// The stream that plain launch()/copy calls are accounted against.
  /// Prefer gpu::StreamScope over calling the setter directly.
  std::uint32_t current_stream_id() const { return current_stream_; }
  void set_current_stream_id(std::uint32_t id) { current_stream_ = id; }

  simt::Timeline& timeline() { return sim_.timeline(); }

  /// Overlap-aware completion time of everything issued so far; equals
  /// total_modeled_ms() for a single-stream (serial) program.
  double modeled_makespan_ms() { return sim_.timeline().makespan_ms(); }

  // -- totals ---------------------------------------------------------------

  /// Running totals since construction or the last reset_totals().
  /// (reset_totals does not clear the overlap timeline; use
  /// timeline().reset() for that.)
  const simt::KernelStats& kernel_totals() const { return kernel_totals_; }
  const TransferStats& transfer_totals() const { return transfer_totals_; }
  void reset_totals();

  /// Total modeled time (kernels + transfers) in milliseconds under the
  /// serial model: every kernel and copy back to back, no overlap.
  double total_modeled_ms() const;

  // -- internal hooks used by DeviceBuffer ---------------------------------

  /// Reserves a 256-byte-aligned simulated global address range.
  std::uint64_t allocate_vaddr(std::uint64_t bytes);

  /// Charges a host<->device copy of the given size to the current stream.
  void note_copy(std::uint64_t bytes, bool to_device);

  /// Charges a copy to an explicit stream.
  void note_copy_on(std::uint32_t stream_id, std::uint64_t bytes,
                    bool to_device);

 private:
  simt::DeviceSim sim_;
  std::uint64_t next_vaddr_ = 256;  // keep 0 an invalid address
  std::uint32_t current_stream_ = 0;
  simt::KernelStats kernel_totals_;
  TransferStats transfer_totals_;
};

}  // namespace maxwarp::gpu

// Host-side runtime, shaped like CUDA host code.
//
// gpu::Device owns the simulated device (simt::DeviceSim), a virtual-address
// allocator for global memory, and accumulated host<->device transfer
// accounting. gpu::DeviceBuffer<T> (buffer.hpp) is the cudaMalloc/cudaMemcpy
// analogue. Kernel launches go through Device::launch, which forwards to the
// simulator and tallies per-device totals, so an application can report
// "kernel time" and "transfer time" separately — as GPU papers do.
//
// Streams: every launch and copy is also queued on the device's overlap
// timeline (simt::Timeline) under a *current stream* — stream 0 unless a
// gpu::StreamScope (stream.hpp) redirects it. total_modeled_ms() remains
// the serial model (every op back to back); modeled_makespan_ms() is the
// overlap-aware completion time of the same ops, where concurrent streams
// share SMs and copies ride the DMA engines.
//
// Failure: launches and allocations can fail — injected by the fault
// engine (simt/fault.hpp) or genuinely (watchdog overrun, byte budget).
// try_launch / try_launch_on return a LaunchReport carrying a gpu::Status
// instead of throwing; the classic launch / launch_on wrappers stay and
// throw DeviceError on a non-ok report, so fault-oblivious code keeps its
// exact old behaviour (with no plan armed and no watchdog, every launch
// reports OK). See DESIGN.md "Fault model and recovery".
//
// Execution engine: the SimConfig passed at construction flows through to
// the simulator unchanged, so SimConfig::host_threads selects the serial
// (default, bit-deterministic) or pooled-parallel engine for every launch
// made through this Device — see DESIGN.md "Execution engine".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "analysis/hazard_analyzer.hpp"
#include "analysis/launch_graph.hpp"
#include "gpu/status.hpp"
#include "simt/device_sim.hpp"

namespace maxwarp::gpu {

/// Accumulated host<->device copy accounting (PCIe model).
struct TransferStats {
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::uint64_t calls = 0;
  double modeled_ms = 0.0;
};

/// Accumulated device-memory accounting (the allocation registry).
struct MemoryStats {
  std::uint64_t live_bytes = 0;    ///< currently resident
  std::uint64_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed_allocs = 0; ///< refused (injected OOM / byte budget)
};

/// What one try_launch produced: a Status, the kernel's stats (also
/// already added to the device totals — a failed launch still consumed
/// modeled time), and the injected fault, if one fired.
struct LaunchReport {
  Status status;
  simt::KernelStats stats;
  std::optional<simt::FaultEvent> fault;

  bool ok() const { return status.ok(); }
};

/// Modeled duration charged to a kernel that hangs when no watchdog is
/// armed anywhere: the simulator needs *some* finite deadline to charge,
/// and 1000 ms is recognisably pathological next to sub-millisecond
/// kernels without overflowing downstream arithmetic.
inline constexpr double kDefaultHangMs = 1000.0;

/// A flat ECC byte offset resolved to its containing live allocation
/// (Device::resolve_ecc_offset). The recovery fast path uses the vaddr to
/// decide whether the victim landed in graph data or scratch state.
struct EccVictim {
  std::uint64_t vaddr = 0;            ///< base of the containing allocation
  std::uint64_t bytes = 0;            ///< size of the containing allocation
  std::uint64_t offset_in_alloc = 0;  ///< victim byte within it
};

class Device {
 public:
  explicit Device(simt::SimConfig cfg = {});

  const simt::SimConfig& config() const { return sim_.config(); }
  simt::DeviceSim& sim() { return sim_; }

  /// Ordinal within a gpu::DeviceGroup, or -1 for a standalone device.
  /// DeviceGroup stamps this at registration; every failure Status the
  /// device produces then carries it (Status::device), so the failover
  /// ladder can attribute faults to hardware without threading a device
  /// pointer through every error path.
  int ordinal() const { return ordinal_; }
  void set_ordinal(int ordinal) { ordinal_ = ordinal; }

  /// The sanitizer, or nullptr unless the device was constructed with
  /// SimConfig::sanitize. DeviceBuffer uses this to register allocations;
  /// applications use it to read the accumulated SanitizerReport.
  simt::Sanitizer* sanitizer() { return sim_.sanitizer(); }
  const simt::Sanitizer* sanitizer() const { return sim_.sanitizer(); }

  /// The fault-injection engine. Arm a FaultPlan here; every launch and
  /// allocation on this device then consults it.
  simt::FaultInjector& faults() { return sim_.faults(); }
  const simt::FaultInjector& faults() const { return sim_.faults(); }

  /// The launch-graph recorder, or nullptr unless the device was
  /// constructed with SimConfig::record_launch_graph. Every launch, copy,
  /// fill, alloc and free (and the stream/event ordering among them) is
  /// appended here for verify_launch_graph().
  analysis::LaunchGraph* launch_graph() { return graph_.get(); }
  const analysis::LaunchGraph* launch_graph() const { return graph_.get(); }

  /// Runs the happens-before hazard analysis over everything recorded so
  /// far (analysis/hazard_analyzer.hpp): cross-stream RAW/WAR/WAW races,
  /// lifetime bugs, dead dataflow. Throws std::logic_error when the
  /// device is not recording. Non-destructive — recording continues; use
  /// launch_graph()->clear() to start a fresh verification window.
  analysis::HazardReport verify_launch_graph(
      const analysis::AnalyzerOptions& opts = {}) const;

  /// Launches a kernel on the current stream and adds its stats to the
  /// device totals. Throws DeviceError when the launch fails (injected
  /// fault or watchdog overrun); fault-free devices never throw.
  simt::KernelStats launch(const simt::LaunchDims& dims,
                           const simt::WarpFn& kernel);

  /// Launches on an explicit stream (gpu::Stream::launch is the
  /// ergonomic wrapper). Execution is immediate and deterministic in
  /// issue order — streams reorder modeled *time*, never results.
  simt::KernelStats launch_on(std::uint32_t stream_id,
                              const simt::LaunchDims& dims,
                              const simt::WarpFn& kernel);

  /// Non-throwing launch: failure comes back as LaunchReport::status.
  /// The report's stats are already in the device totals either way.
  LaunchReport try_launch(const simt::LaunchDims& dims,
                          const simt::WarpFn& kernel);
  LaunchReport try_launch_on(std::uint32_t stream_id,
                             const simt::LaunchDims& dims,
                             const simt::WarpFn& kernel);

  simt::LaunchDims dims_for_threads(std::uint64_t n) const {
    return sim_.dims_for_threads(n);
  }
  simt::LaunchDims dims_for_warps(std::uint64_t n) const {
    return sim_.dims_for_warps(n);
  }

  // -- watchdog -------------------------------------------------------------

  /// Per-scope kernel deadline in modeled ms; overrides the device-wide
  /// SimConfig::default_watchdog_ms while > 0. Prefer WatchdogScope over
  /// calling the setter directly.
  double launch_watchdog_ms() const { return watchdog_ms_; }
  void set_launch_watchdog_ms(double ms) { watchdog_ms_ = ms; }

  /// The deadline try_launch enforces right now: the scope override if
  /// one is armed, else the device-wide default; 0 = no watchdog.
  double effective_watchdog_ms() const {
    return watchdog_ms_ > 0 ? watchdog_ms_ : config().default_watchdog_ms;
  }

  // -- streams --------------------------------------------------------------

  /// Registers a new stream on the timeline and returns its id. Stream
  /// objects (stream.hpp) wrap these ids; id 0 is the default stream.
  std::uint32_t create_stream_id() { return sim_.timeline().create_stream(); }

  /// The stream that plain launch()/copy calls are accounted against.
  /// Prefer gpu::StreamScope over calling the setter directly.
  std::uint32_t current_stream_id() const { return current_stream_; }
  void set_current_stream_id(std::uint32_t id) { current_stream_ = id; }

  simt::Timeline& timeline() { return sim_.timeline(); }

  /// Overlap-aware completion time of everything issued so far; equals
  /// total_modeled_ms() for a single-stream (serial) program.
  double modeled_makespan_ms() { return sim_.timeline().makespan_ms(); }

  // -- totals ---------------------------------------------------------------

  /// Running totals since construction or the last reset_totals().
  /// (reset_totals does not clear the overlap timeline; use
  /// timeline().reset() for that.)
  const simt::KernelStats& kernel_totals() const { return kernel_totals_; }
  const TransferStats& transfer_totals() const { return transfer_totals_; }
  const MemoryStats& memory_totals() const { return memory_; }
  void reset_totals();

  /// Total modeled time (kernels + transfers + charged delays) in
  /// milliseconds under the serial model: every op back to back.
  double total_modeled_ms() const;

  /// Modeled host-side delays charged via charge_delay_ms (retry
  /// backoff) since construction / reset_totals().
  double delay_total_ms() const { return delay_total_ms_; }

  /// Charges a host-side wait of `ms` modeled milliseconds to the current
  /// stream (and to total_modeled_ms). The recovery paths use this so
  /// retry backoff shows up honestly in modeled time instead of being
  /// free.
  void charge_delay_ms(double ms);

  // -- internal hooks used by DeviceBuffer ---------------------------------

  /// Reserves a 256-byte-aligned simulated global address range.
  /// Infallible by itself; fallible allocation goes through try_allocate.
  std::uint64_t allocate_vaddr(std::uint64_t bytes);

  /// Fallible allocation: consults the fault injector (alloc faults and
  /// the plan's byte budget against current live bytes) and on success
  /// reserves an address range into *vaddr. Zero-byte requests succeed.
  Status try_allocate(std::uint64_t bytes, std::uint64_t* vaddr);

  /// Registers/unregisters a live allocation's host backing store so ECC
  /// faults can pick a victim byte and memory_totals() can account it.
  void register_alloc(std::uint64_t vaddr, std::uint8_t* data,
                      std::uint64_t bytes);
  void unregister_alloc(std::uint64_t vaddr);

  /// Charges a host<->device copy of the given size to the current stream.
  void note_copy(std::uint64_t bytes, bool to_device);

  /// Charges a copy to an explicit stream.
  void note_copy_on(std::uint32_t stream_id, std::uint64_t bytes,
                    bool to_device);

  /// Resolves a FaultEvent's flat byte offset (drawn uniformly over the
  /// live footprint) to the containing allocation, or nullopt when the
  /// offset falls past the live bytes (allocation freed since the event).
  /// The partial re-upload fast path uses this to find which buffer an
  /// uncorrectable ECC event actually poisoned.
  std::optional<EccVictim> resolve_ecc_offset(std::uint64_t flat_offset) const;

 private:
  struct Alloc {
    std::uint8_t* data = nullptr;
    std::uint64_t bytes = 0;
  };

  /// Resolves an injected ECC event's flat byte offset (drawn over the
  /// live footprint) to an allocation; corrupts the byte for
  /// uncorrectable events.
  void apply_ecc(const simt::FaultEvent& ev, bool corrupt);

  /// Appends the launch's node to the recorder: exact access set from the
  /// sanitizer when armed, declared set (resolved to containing
  /// allocations) otherwise, unknown when neither exists.
  void record_kernel_node(std::uint32_t stream_id,
                          const simt::LaunchDims& dims);

  simt::DeviceSim sim_;
  int ordinal_ = -1;                ///< DeviceGroup ordinal; -1 = standalone
  std::uint64_t next_vaddr_ = 256;  // keep 0 an invalid address
  std::uint32_t current_stream_ = 0;
  double watchdog_ms_ = 0;
  simt::KernelStats kernel_totals_;
  TransferStats transfer_totals_;
  MemoryStats memory_;
  double delay_total_ms_ = 0;
  std::map<std::uint64_t, Alloc> allocs_;  ///< vaddr-ordered live registry
  std::unique_ptr<analysis::LaunchGraph> graph_;  ///< null unless recording
};

/// RAII per-scope watchdog: every launch inside the scope must finish
/// within `watchdog_ms` modeled milliseconds or report DEADLINE_EXCEEDED.
/// The algorithm drivers arm one when KernelOptions resilience carries a
/// watchdog, so callers never touch the setter.
class WatchdogScope {
 public:
  WatchdogScope(Device& device, double watchdog_ms)
      : device_(&device), previous_(device.launch_watchdog_ms()) {
    device.set_launch_watchdog_ms(watchdog_ms);
  }
  ~WatchdogScope() { device_->set_launch_watchdog_ms(previous_); }

  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

 private:
  Device* device_;
  double previous_;
};

}  // namespace maxwarp::gpu

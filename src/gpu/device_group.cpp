#include "gpu/device_group.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace maxwarp::gpu {

const char* to_string(DeviceHealth h) {
  switch (h) {
    case DeviceHealth::kHealthy: return "healthy";
    case DeviceHealth::kSuspect: return "suspect";
    case DeviceHealth::kDead: return "dead";
    case DeviceHealth::kProbation: return "probation";
    case DeviceHealth::kRetired: return "retired";
  }
  return "?";
}

DeviceGroup::DeviceGroup(std::size_t count, const simt::SimConfig& cfg) {
  if (count == 0) {
    throw std::invalid_argument("DeviceGroup needs at least one device");
  }
  owned_.reserve(count);
  devices_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    owned_.push_back(std::make_unique<Device>(cfg));
    owned_.back()->set_ordinal(static_cast<int>(i));
    devices_.push_back(owned_.back().get());
  }
  health_.assign(count, MemberHealth{});
}

DeviceGroup::DeviceGroup(std::vector<Device*> devices)
    : devices_(std::move(devices)) {
  if (devices_.empty()) {
    throw std::invalid_argument("DeviceGroup needs at least one device");
  }
  for (Device* d : devices_) {
    if (d == nullptr) {
      throw std::invalid_argument("DeviceGroup given a null device");
    }
  }
  // A borrowed singleton stays anonymous (ordinal -1): the group is then a
  // pure adapter and error messages must read exactly as they did without
  // it. With spares present, attribution matters more than stability.
  if (devices_.size() > 1) {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      devices_[i]->set_ordinal(static_cast<int>(i));
    }
  }
  health_.assign(devices_.size(), MemberHealth{});
}

bool DeviceGroup::healthy(std::size_t i) const {
  const DeviceHealth s = health_.at(i).state;
  return s == DeviceHealth::kHealthy || s == DeviceHealth::kSuspect;
}

bool DeviceGroup::serving(std::size_t i) const {
  return healthy(i) || health_.at(i).state == DeviceHealth::kProbation;
}

std::size_t DeviceGroup::healthy_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < health_.size(); ++i) n += healthy(i) ? 1 : 0;
  return n;
}

std::vector<std::size_t> DeviceGroup::healthy_members() const {
  std::vector<std::size_t> members;
  members.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (healthy(i)) members.push_back(i);
  }
  return members;
}

std::vector<std::size_t> DeviceGroup::probation_members() const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (health_[i].state == DeviceHealth::kProbation) members.push_back(i);
  }
  return members;
}

std::size_t DeviceGroup::least_busy_member(std::span<const double> base) {
  std::size_t best = devices_.size();
  double best_busy = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (!healthy(i)) continue;
    const double since = i < base.size() ? base[i] : 0.0;
    const double busy = devices_[i]->modeled_makespan_ms() - since;
    if (best == devices_.size() || busy < best_busy) {
      best = i;
      best_busy = busy;
    }
  }
  return best;
}

DeviceHealth DeviceGroup::health_state(std::size_t i) const {
  return health_.at(i).state;
}

double DeviceGroup::suspect_score(std::size_t i) const {
  return health_.at(i).suspect_score;
}

std::uint32_t DeviceGroup::restore_attempts(std::size_t i) const {
  return health_.at(i).restore_attempts;
}

double DeviceGroup::group_clock_ms() const {
  double clock = 0.0;
  for (const Device* d : devices_) {
    clock = std::max(clock, d->total_modeled_ms());
  }
  return clock;
}

void DeviceGroup::transition(std::size_t i, DeviceHealth to,
                             const std::string& reason) {
  MemberHealth& m = health_[i];
  health_log_.push_back(HealthRecord{i, m.state, to, group_clock_ms(), reason});
  m.state = to;
}

void DeviceGroup::decay_score(std::size_t i) {
  MemberHealth& m = health_[i];
  const double now = group_clock_ms();
  if (m.suspect_score > 0.0 && health_policy_.suspect_decay_ms > 0.0) {
    const double elapsed = now - m.suspect_at_ms;
    if (elapsed > 0.0) {
      m.suspect_score *= std::exp2(-elapsed / health_policy_.suspect_decay_ms);
    }
  }
  m.suspect_at_ms = now;
}

void DeviceGroup::mark_dead(std::size_t i, const std::string& reason) {
  MemberHealth& m = health_[i];
  transition(i, DeviceHealth::kDead, reason);
  m.died_at_ms = group_clock_ms();
  m.suspect_score = 0.0;
  m.clean_probes = 0;
}

DeviceHealth DeviceGroup::note_transient(std::size_t i,
                                         const std::string& reason) {
  if (i >= devices_.size()) {
    throw std::out_of_range("DeviceGroup::note_transient: no such device");
  }
  MemberHealth& m = health_[i];
  if (m.state != DeviceHealth::kHealthy && m.state != DeviceHealth::kSuspect) {
    return m.state;  // blips on dead/probation/retired members carry no news
  }
  decay_score(i);
  m.suspect_score += 1.0;
  if (m.state == DeviceHealth::kHealthy) {
    transition(i, DeviceHealth::kSuspect, reason);
  }
  // Escalate only spares, and never the last healthy member: the serving
  // ladder above the group owns the active member's fate, and killing the
  // whole fleet on blips would force a host fallback nothing asked for.
  if (m.suspect_score >= health_policy_.suspect_threshold && i != active_ &&
      healthy_count() > 1) {
    mark_dead(i, "suspect score " + std::to_string(m.suspect_score) +
                     " crossed threshold: " + reason);
  }
  return m.state;
}

void DeviceGroup::decay_suspects() {
  for (std::size_t i = 0; i < health_.size(); ++i) {
    if (health_[i].state != DeviceHealth::kSuspect) continue;
    decay_score(i);
    if (health_[i].suspect_score < 1.0) {
      health_[i].suspect_score = 0.0;
      transition(i, DeviceHealth::kHealthy, "suspect score decayed");
    }
  }
}

bool DeviceGroup::probation_due(std::size_t i) const {
  const MemberHealth& m = health_.at(i);
  if (m.state != DeviceHealth::kDead) return false;
  const double delay = health_policy_.probation_delay_ms *
                       std::exp2(static_cast<double>(m.restore_attempts));
  return group_clock_ms() >= m.died_at_ms + delay;
}

void DeviceGroup::begin_probation(std::size_t i) {
  MemberHealth& m = health_.at(i);
  if (m.state != DeviceHealth::kDead) {
    throw std::logic_error("DeviceGroup::begin_probation: member is not dead");
  }
  m.clean_probes = 0;
  transition(i, DeviceHealth::kProbation,
             "probation delay elapsed (attempt " +
                 std::to_string(m.restore_attempts + 1) + ")");
}

ProbeOutcome DeviceGroup::record_probe(std::size_t i, bool clean,
                                       const std::string& reason) {
  MemberHealth& m = health_.at(i);
  if (m.state != DeviceHealth::kProbation) {
    throw std::logic_error("DeviceGroup::record_probe: member not on probation");
  }
  if (clean) {
    ++m.clean_probes;
    return m.clean_probes >= health_policy_.probes_to_restore
               ? ProbeOutcome::kReadyToRestore
               : ProbeOutcome::kProbing;
  }
  ++m.restore_attempts;
  if (m.restore_attempts >= health_policy_.max_restore_attempts) {
    transition(i, DeviceHealth::kRetired,
               "probe failed, restore attempts exhausted: " + reason);
    return ProbeOutcome::kRetired;
  }
  mark_dead(i, "probe failed: " + reason);
  return ProbeOutcome::kRedead;
}

void DeviceGroup::restore_device(std::size_t i) {
  MemberHealth& m = health_.at(i);
  if (m.state != DeviceHealth::kProbation) {
    throw std::logic_error(
        "DeviceGroup::restore_device: member not on probation");
  }
  transition(i, DeviceHealth::kHealthy,
             std::to_string(m.clean_probes) + " clean probes");
  m.suspect_score = 0.0;
  m.suspect_at_ms = group_clock_ms();
  m.restore_attempts = 0;
  m.clean_probes = 0;
}

void DeviceGroup::retire(std::size_t i, const std::string& reason) {
  MemberHealth& m = health_.at(i);
  if (m.state == DeviceHealth::kRetired) return;
  transition(i, DeviceHealth::kRetired, reason);
  m.suspect_score = 0.0;
  m.clean_probes = 0;
}

FailoverOutcome DeviceGroup::fail_device(std::size_t i,
                                         const std::string& reason) {
  if (i >= devices_.size()) {
    throw std::out_of_range("DeviceGroup::fail_device: no such device");
  }
  if (i == active_) return fail_over(reason);
  MemberHealth& m = health_[i];
  if (m.state == DeviceHealth::kDead || m.state == DeviceHealth::kRetired) {
    return FailoverOutcome::kAlreadyDead;
  }
  if (m.state == DeviceHealth::kProbation) {
    // A death during probation is a failed restore attempt: the canary was
    // wrong, back off harder (or give up).
    ++m.restore_attempts;
    failover_log_.push_back(FailoverRecord{static_cast<int>(i),
                                           static_cast<int>(active_), reason});
    if (m.restore_attempts >= health_policy_.max_restore_attempts) {
      transition(i, DeviceHealth::kRetired,
                 "died on probation, restore attempts exhausted: " + reason);
    } else {
      mark_dead(i, "died on probation: " + reason);
    }
    return FailoverOutcome::kMigrated;
  }
  // Healthy or suspect: refuse (like fail_over) when i is the last one.
  if (healthy_count() <= 1) return FailoverOutcome::kRefused;
  failover_log_.push_back(
      FailoverRecord{static_cast<int>(i), static_cast<int>(active_), reason});
  mark_dead(i, reason);
  return FailoverOutcome::kMigrated;
}

FailoverOutcome DeviceGroup::fail_over(const std::string& reason) {
  // Find the next healthy device after the active one, wrapping; the
  // active device itself is the one being declared dead, so it cannot be
  // the answer.
  for (std::size_t step = 1; step < devices_.size(); ++step) {
    const std::size_t candidate = (active_ + step) % devices_.size();
    if (!healthy(candidate)) continue;
    if (!healthy(active_) &&
        health_[active_].state != DeviceHealth::kProbation) {
      // The active member was already dead/retired (e.g. via retire());
      // just move the cursor — the death is already on the books.
      active_ = candidate;
      return FailoverOutcome::kAlreadyDead;
    }
    failover_log_.push_back(FailoverRecord{static_cast<int>(active_),
                                           static_cast<int>(candidate),
                                           reason});
    if (health_[active_].state == DeviceHealth::kProbation) {
      ++health_[active_].restore_attempts;
      if (health_[active_].restore_attempts >=
          health_policy_.max_restore_attempts) {
        transition(active_, DeviceHealth::kRetired,
                   "died on probation, restore attempts exhausted: " + reason);
      } else {
        mark_dead(active_, "died on probation: " + reason);
      }
    } else {
      mark_dead(active_, reason);
    }
    active_ = candidate;
    return FailoverOutcome::kMigrated;
  }
  return FailoverOutcome::kRefused;
}

void DeviceGroup::reset_health() {
  health_.assign(devices_.size(), MemberHealth{});
  active_ = 0;
  failover_log_.clear();
  health_log_.clear();
}

void DeviceGroup::arm(std::size_t i, const simt::FaultPlan& plan) {
  device(i).faults().arm(plan);
}

void DeviceGroup::disarm_all() {
  for (Device* d : devices_) d->faults().disarm();
}

double DeviceGroup::total_modeled_ms() const {
  double total = 0;
  for (const Device* d : devices_) total += d->total_modeled_ms();
  return total;
}

}  // namespace maxwarp::gpu

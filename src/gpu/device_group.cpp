#include "gpu/device_group.hpp"

#include <stdexcept>

namespace maxwarp::gpu {

DeviceGroup::DeviceGroup(std::size_t count, const simt::SimConfig& cfg) {
  if (count == 0) {
    throw std::invalid_argument("DeviceGroup needs at least one device");
  }
  owned_.reserve(count);
  devices_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    owned_.push_back(std::make_unique<Device>(cfg));
    owned_.back()->set_ordinal(static_cast<int>(i));
    devices_.push_back(owned_.back().get());
  }
  healthy_.assign(count, true);
}

DeviceGroup::DeviceGroup(std::vector<Device*> devices)
    : devices_(std::move(devices)) {
  if (devices_.empty()) {
    throw std::invalid_argument("DeviceGroup needs at least one device");
  }
  for (Device* d : devices_) {
    if (d == nullptr) {
      throw std::invalid_argument("DeviceGroup given a null device");
    }
  }
  // A borrowed singleton stays anonymous (ordinal -1): the group is then a
  // pure adapter and error messages must read exactly as they did without
  // it. With spares present, attribution matters more than stability.
  if (devices_.size() > 1) {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      devices_[i]->set_ordinal(static_cast<int>(i));
    }
  }
  healthy_.assign(devices_.size(), true);
}

std::size_t DeviceGroup::healthy_count() const {
  std::size_t n = 0;
  for (bool h : healthy_) n += h ? 1 : 0;
  return n;
}

std::vector<std::size_t> DeviceGroup::healthy_members() const {
  std::vector<std::size_t> members;
  members.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (healthy_[i]) members.push_back(i);
  }
  return members;
}

std::size_t DeviceGroup::least_busy_member(std::span<const double> base) {
  std::size_t best = devices_.size();
  double best_busy = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (!healthy_[i]) continue;
    const double since = i < base.size() ? base[i] : 0.0;
    const double busy = devices_[i]->modeled_makespan_ms() - since;
    if (best == devices_.size() || busy < best_busy) {
      best = i;
      best_busy = busy;
    }
  }
  return best;
}

bool DeviceGroup::fail_device(std::size_t i, const std::string& reason) {
  if (i >= devices_.size()) {
    throw std::out_of_range("DeviceGroup::fail_device: no such device");
  }
  if (i == active_) return fail_over(reason);
  // Survivors after marking i dead; refuse (like fail_over) when none.
  const std::size_t survivors = healthy_count() - (healthy_[i] ? 1 : 0);
  if (survivors == 0) return false;
  if (healthy_[i]) {
    healthy_[i] = false;
    failover_log_.push_back(FailoverRecord{static_cast<int>(i),
                                           static_cast<int>(active_),
                                           reason});
  }
  return true;
}

bool DeviceGroup::fail_over(const std::string& reason) {
  // Find the next healthy device after the active one, wrapping; the
  // active device itself is the one being declared dead, so it cannot be
  // the answer.
  for (std::size_t step = 1; step < devices_.size(); ++step) {
    const std::size_t candidate = (active_ + step) % devices_.size();
    if (!healthy_[candidate]) continue;
    failover_log_.push_back(FailoverRecord{static_cast<int>(active_),
                                           static_cast<int>(candidate),
                                           reason});
    healthy_[active_] = false;
    active_ = candidate;
    return true;
  }
  return false;
}

void DeviceGroup::reset_health() {
  healthy_.assign(devices_.size(), true);
  active_ = 0;
  failover_log_.clear();
}

void DeviceGroup::arm(std::size_t i, const simt::FaultPlan& plan) {
  device(i).faults().arm(plan);
}

void DeviceGroup::disarm_all() {
  for (Device* d : devices_) d->faults().disarm();
}

double DeviceGroup::total_modeled_ms() const {
  double total = 0;
  for (const Device* d : devices_) total += d->total_modeled_ms();
  return total;
}

}  // namespace maxwarp::gpu

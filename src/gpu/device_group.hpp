// gpu::DeviceGroup — an ordered set of devices behind one failover contract.
//
// The fault framework (simt/fault.hpp, DESIGN.md "Fault model and recovery")
// recovers *within* one device: checkpoint, rollback, retry, and finally the
// host reference. A serving deployment has a better option before the host —
// healthy spare hardware. DeviceGroup models that: device 0 is the primary,
// devices 1..n-1 are spares, each with its *own* simulated device and
// therefore its own simt::FaultInjector plan, so a drill can kill the
// primary while the spares stay clean.
//
// Health is a per-member state machine, not a bool:
//
//     kHealthy ──transient blips──▶ kSuspect ──decay──▶ kHealthy
//        │                            │
//        │ persistent fault           │ score ≥ threshold (spares only)
//        ▼                            ▼
//      kDead ◀────failed probe──── kProbation
//        │    (exponential backoff)   │
//        │ probation delay elapsed    │ N clean probes
//        └──────────▶─────────────────┘──▶ kHealthy
//        │
//        └── max restore attempts ──▶ kRetired (permanent)
//
// Transient faults (DeviceError::transient() at the caller) bump a decayed
// suspect counter via note_transient(); crossing the threshold kills a
// spare, while the active member and the last healthy member are never
// escalated (the ladder above the group decides their fate). Persistent
// faults arrive as fail_device()/fail_over(). A dead member becomes
// eligible for probation after a modeled-time delay that doubles with each
// failed restore attempt; the *caller* (QueryEngine) runs canary probes and
// reports outcomes through record_probe(), because only the caller can
// launch kernels. N consecutive clean probes make the member restorable;
// repeated failures retire it permanently. Every transition is appended to
// a HealthRecord audit log stamped with the group's modeled clock.
//
// healthy(i) keeps its historical meaning — "may carry a full share of
// work" — and is true for kHealthy and kSuspect only. Probation members
// are *serving* but capacity-capped; schedulers query health_state() for
// that distinction.
//
// What lives here is deliberately narrow: devices, ordinals, health, the
// failover and health logs. Graph replicas are an algorithms-layer concern
// (algorithms::ReplicatedGraph) — this library sits below the algorithm
// stack and must not know what a CSR is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpu/device.hpp"

namespace maxwarp::gpu {

/// One recorded migration: the group moved its active cursor from device
/// `from` to device `to` because of `reason` (typically the Status text of
/// the final failed attempt).
struct FailoverRecord {
  int from = -1;
  int to = -1;
  std::string reason;
};

/// Per-member health lifecycle state. See the diagram atop this header.
enum class DeviceHealth : std::uint8_t {
  kHealthy,    ///< full member of the rotation
  kSuspect,    ///< serving, but transient blips are accruing
  kDead,       ///< out of rotation; may re-enter via probation
  kProbation,  ///< serving capacity-capped while canary probes run
  kRetired,    ///< permanently out; no probation, only reset_health()
};

const char* to_string(DeviceHealth h);

/// Knobs for the health lifecycle. All durations are modeled milliseconds;
/// the group clock is the max of its members' total_modeled_ms(), so every
/// decision replays bit-identically.
struct HealthPolicy {
  /// Decayed transient-blip score at which a *spare* is escalated from
  /// suspect to dead. The active member and the last healthy member are
  /// never escalated by blips.
  double suspect_threshold = 4.0;
  /// Half-life of the suspect score: after this much modeled time the
  /// score halves. A suspect whose decayed score drops below 1 recovers
  /// to healthy at the next decay_suspects() sweep.
  double suspect_decay_ms = 1.0;
  /// Modeled delay between death and probation eligibility. Doubles with
  /// every failed restore attempt (exponential backoff).
  double probation_delay_ms = 5.0;
  /// Modeled gap charged to the probed device before each canary probe —
  /// the cost of scheduling/quiescing the card for a diagnostic.
  double probe_interval_ms = 0.25;
  /// Consecutive clean probes required before the member is restorable.
  std::uint32_t probes_to_restore = 3;
  /// Canary probes the maintainer may run per member per maintenance
  /// pass (one pass per batch).
  std::uint32_t probes_per_pass = 1;
  /// Failed restore attempts (probation rounds ending in a failed probe)
  /// after which the member is permanently retired.
  std::uint32_t max_restore_attempts = 3;
  /// Fraction of a fair LPT share a probation member may be assigned
  /// while its restoration is still provisional.
  double probation_capacity = 0.25;
  /// Watchdog deadline for one canary probe kernel: a hung card must
  /// fail its probe, not wedge the maintainer.
  double probe_watchdog_ms = 1.0;

  bool operator==(const HealthPolicy&) const = default;
};

/// One audit-log entry: member `device` moved `from` → `to` at modeled
/// group time `at_ms` because of `reason`.
struct HealthRecord {
  std::size_t device = 0;
  DeviceHealth from = DeviceHealth::kHealthy;
  DeviceHealth to = DeviceHealth::kHealthy;
  double at_ms = 0.0;
  std::string reason;
};

/// What a fail_over()/fail_device() call actually did. kAlreadyDead makes
/// the calls idempotent: re-reporting a death appends no duplicate
/// FailoverRecord and never churns the cursor.
enum class FailoverOutcome : std::uint8_t {
  kMigrated,     ///< member newly marked dead; work moved; record appended
  kAlreadyDead,  ///< member was already dead/retired; nothing recorded
  kRefused,      ///< would leave no healthy member; health untouched
};

/// Verdict of record_probe() for one canary probe.
enum class ProbeOutcome : std::uint8_t {
  kProbing,         ///< clean probe, more still required
  kReadyToRestore,  ///< N consecutive clean probes; call restore_device()
  kRedead,          ///< failed probe; back to kDead with doubled delay
  kRetired,         ///< failed probe exhausted max_restore_attempts
};

class DeviceGroup {
 public:
  /// Owning constructor: builds `count` devices, each from its own copy of
  /// `cfg` (so each has an independent simulator, fault injector, timeline
  /// and accounting), and stamps ordinals 0..count-1 onto them — every
  /// failure Status produced inside the group names its device.
  explicit DeviceGroup(std::size_t count, const simt::SimConfig& cfg = {});

  /// Borrowing constructor: wraps externally owned devices (which must
  /// outlive the group). Ordinals are stamped only when the group has
  /// spares; a one-device borrowed group leaves its device anonymous so
  /// the single-device error text (and every existing test expecting it)
  /// is unchanged.
  explicit DeviceGroup(std::vector<Device*> devices);

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;
  DeviceGroup(DeviceGroup&&) = delete;
  DeviceGroup& operator=(DeviceGroup&&) = delete;

  std::size_t size() const { return devices_.size(); }

  Device& device(std::size_t i) { return *devices_.at(i); }
  const Device& device(std::size_t i) const { return *devices_.at(i); }

  /// The device work currently targets. Starts at 0 (the primary) and only
  /// moves through fail_over() / reset_health().
  std::size_t active_index() const { return active_; }
  Device& active() { return *devices_[active_]; }
  const Device& active() const { return *devices_[active_]; }

  /// True when member i may carry a full share of work: state kHealthy or
  /// kSuspect. Probation members serve capacity-capped and are *not*
  /// healthy until restored.
  bool healthy(std::size_t i) const;
  std::size_t healthy_count() const;

  /// True when member i may run work at all: healthy or on probation.
  bool serving(std::size_t i) const;

  /// Indices of every healthy member, ascending — the set a group
  /// scheduler may place a full share of work onto. The active device is
  /// included; probation members are not (see probation_members()).
  std::vector<std::size_t> healthy_members() const;

  /// Indices of every probation member, ascending.
  std::vector<std::size_t> probation_members() const;

  /// Device i's overlap-aware timeline makespan (sugar over
  /// device(i).modeled_makespan_ms()): what a wall clock on that member
  /// would have shown. A group scheduler's makespan is the max of these
  /// deltas across the members it used.
  double modeled_makespan_ms(std::size_t i) { return device(i).modeled_makespan_ms(); }

  /// The healthy member whose timeline has advanced least since `base`
  /// (base[i] = the makespan recorded at some earlier instant; indices
  /// past base.size() are treated as 0) — the natural thief in a
  /// work-stealing drain and the member a latency-sensitive caller
  /// should target next. Ties resolve to the lowest index (the scan is
  /// ascending with a strict <), so callers replaying a batch see the
  /// identical choice. Returns size() when no member is healthy.
  std::size_t least_busy_member(std::span<const double> base);

  /// True when every device has been marked failed — the caller's cue to
  /// fall back to the host reference.
  bool exhausted() const { return healthy_count() == 0; }

  // ---- health lifecycle -------------------------------------------------

  const HealthPolicy& health_policy() const { return health_policy_; }
  void set_health_policy(const HealthPolicy& policy) { health_policy_ = policy; }

  DeviceHealth health_state(std::size_t i) const;

  /// Decayed transient-blip score of member i (diagnostic).
  double suspect_score(std::size_t i) const;

  /// Failed restore attempts member i has accumulated since it last died.
  std::uint32_t restore_attempts(std::size_t i) const;

  /// The group's modeled clock: the max of its members' serial modeled
  /// time. Monotone, deterministic, and the timestamp source for every
  /// HealthRecord.
  double group_clock_ms() const;

  /// Reports one transient fault on member i: decays the suspect score by
  /// elapsed modeled time, bumps it by one, and escalates kHealthy →
  /// kSuspect (and, for a spare that is not the last healthy member,
  /// kSuspect → kDead once the score crosses the threshold). Blips on
  /// dead/probation/retired members are ignored. Returns the member's
  /// state after the report.
  DeviceHealth note_transient(std::size_t i, const std::string& reason);

  /// Sweeps every suspect member: decays its score and recovers it to
  /// kHealthy when the decayed score has dropped below 1.
  void decay_suspects();

  /// True when dead member i has served its probation entry delay
  /// (probation_delay_ms × 2^restore_attempts of modeled time since it
  /// died) and may begin probation. False for any non-dead state.
  bool probation_due(std::size_t i) const;

  /// Moves dead member i into probation (clean-probe counter reset).
  /// Throws std::logic_error unless the member is kDead.
  void begin_probation(std::size_t i);

  /// Reports the outcome of one canary probe on probation member i. A
  /// clean probe counts toward probes_to_restore and yields
  /// kReadyToRestore once N consecutive cleans have accrued (the caller
  /// then revalidates the replica and calls restore_device()). A failed
  /// probe re-kills the member with a doubled probation delay — or
  /// retires it permanently when max_restore_attempts is exhausted.
  /// Throws std::logic_error unless the member is kProbation.
  ProbeOutcome record_probe(std::size_t i, bool clean, const std::string& reason);

  /// Returns probation member i to full health: suspect score, clean-probe
  /// and restore-attempt counters reset, member rejoins healthy_members().
  /// Throws std::logic_error unless the member is kProbation.
  void restore_device(std::size_t i);

  /// Permanently retires member i (operator judgment — allowed even on
  /// the last healthy member, unlike fail_device). Retired members never
  /// enter probation; only reset_health() revives them. No FailoverRecord
  /// is appended: retirement is an admin action, not a migration.
  void retire(std::size_t i, const std::string& reason);

  /// Every health transition since construction / reset_health(), in
  /// order, stamped with the modeled group clock.
  const std::vector<HealthRecord>& health_log() const { return health_log_; }

  // ---- failure reporting ------------------------------------------------

  /// Declares the active device dead and migrates to the next healthy one
  /// (ascending ordinal, wrapping). Returns kMigrated and appends a
  /// FailoverRecord on success. Returns kRefused — leaving health and the
  /// cursor untouched — when no *other* healthy device exists: the caller
  /// keeps the current device for any label-scoped work that still runs
  /// there, and routes the rest to the host. When the active member is
  /// already dead/retired (possible after retire(active)), the cursor
  /// advances to the next healthy member *without* a new record and the
  /// call returns kAlreadyDead.
  FailoverOutcome fail_over(const std::string& reason);

  /// Declares device `i` dead — the group-scheduler variant of
  /// fail_over(), for deaths on a *scheduled* member that need not be
  /// the active cursor. When `i` is the active device this is exactly
  /// fail_over(reason). An already-dead/retired member yields
  /// kAlreadyDead with no duplicate record and no cursor churn. A
  /// probation member is re-killed (counts as a failed restore attempt,
  /// and may retire it). Returns kRefused — leaving health untouched —
  /// when `i` is the last healthy device: the caller's cue to fall back
  /// to the host, same as fail_over().
  FailoverOutcome fail_device(std::size_t i, const std::string& reason);

  /// Everything fail_over() / fail_device() recorded since construction
  /// / reset_health().
  const std::vector<FailoverRecord>& failover_log() const {
    return failover_log_;
  }

  /// Marks every device healthy again (including retired ones), moves the
  /// cursor back to the primary and clears both logs. Drill harnesses use
  /// this between passes; fault plans are per-device and not touched (see
  /// disarm_all). The health policy is kept.
  void reset_health();

  /// Arms a fault plan on one device; every other device keeps its own
  /// plan (or none). Thin sugar over device(i).faults().arm(plan).
  void arm(std::size_t i, const simt::FaultPlan& plan);

  /// Disarms every device's injector — the "unarmed fleet" baseline.
  void disarm_all();

  /// Sum of serial modeled time across all devices; per-device numbers
  /// come from device(i).total_modeled_ms().
  double total_modeled_ms() const;

 private:
  struct MemberHealth {
    DeviceHealth state = DeviceHealth::kHealthy;
    double suspect_score = 0.0;
    double suspect_at_ms = 0.0;  ///< group clock of the last score update
    double died_at_ms = 0.0;
    std::uint32_t restore_attempts = 0;
    std::uint32_t clean_probes = 0;
  };

  /// Appends a HealthRecord and flips the member's state.
  void transition(std::size_t i, DeviceHealth to, const std::string& reason);
  /// Decays member i's suspect score to the current group clock.
  void decay_score(std::size_t i);
  /// Shared dead-marking for fail_over/fail_device/escalation.
  void mark_dead(std::size_t i, const std::string& reason);

  std::vector<std::unique_ptr<Device>> owned_;  ///< empty when borrowing
  std::vector<Device*> devices_;
  std::vector<MemberHealth> health_;
  HealthPolicy health_policy_;
  std::size_t active_ = 0;
  std::vector<FailoverRecord> failover_log_;
  std::vector<HealthRecord> health_log_;
};

}  // namespace maxwarp::gpu

// gpu::DeviceGroup — an ordered set of devices behind one failover contract.
//
// The fault framework (simt/fault.hpp, DESIGN.md "Fault model and recovery")
// recovers *within* one device: checkpoint, rollback, retry, and finally the
// host reference. A serving deployment has a better option before the host —
// healthy spare hardware. DeviceGroup models that: device 0 is the primary,
// devices 1..n-1 are spares, each with its *own* simulated device and
// therefore its own simt::FaultInjector plan, so a drill can kill the
// primary while the spares stay clean.
//
// The group tracks per-device health and an active cursor. When a caller
// (the QueryEngine ladder, or a ResilientLoop that exhausted same-device
// retries) reports the active device dead, fail_over() advances the cursor
// to the next healthy device and records the migration; it refuses — and
// keeps the active device — when no healthy spare remains, which is the
// signal to fall back to the host reference. Health is an operator-level
// judgment ("this card is done"), not something the group infers: callers
// decide when a device's failure budget is spent, because only they know
// their retry policy.
//
// What lives here is deliberately narrow: devices, ordinals, health, the
// failover log. Graph replicas are an algorithms-layer concern
// (algorithms::ReplicatedGraph) — this library sits below the algorithm
// stack and must not know what a CSR is.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpu/device.hpp"

namespace maxwarp::gpu {

/// One recorded migration: the group moved its active cursor from device
/// `from` to device `to` because of `reason` (typically the Status text of
/// the final failed attempt).
struct FailoverRecord {
  int from = -1;
  int to = -1;
  std::string reason;
};

class DeviceGroup {
 public:
  /// Owning constructor: builds `count` devices, each from its own copy of
  /// `cfg` (so each has an independent simulator, fault injector, timeline
  /// and accounting), and stamps ordinals 0..count-1 onto them — every
  /// failure Status produced inside the group names its device.
  explicit DeviceGroup(std::size_t count, const simt::SimConfig& cfg = {});

  /// Borrowing constructor: wraps externally owned devices (which must
  /// outlive the group). Ordinals are stamped only when the group has
  /// spares; a one-device borrowed group leaves its device anonymous so
  /// the single-device error text (and every existing test expecting it)
  /// is unchanged.
  explicit DeviceGroup(std::vector<Device*> devices);

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;
  DeviceGroup(DeviceGroup&&) = delete;
  DeviceGroup& operator=(DeviceGroup&&) = delete;

  std::size_t size() const { return devices_.size(); }

  Device& device(std::size_t i) { return *devices_.at(i); }
  const Device& device(std::size_t i) const { return *devices_.at(i); }

  /// The device work currently targets. Starts at 0 (the primary) and only
  /// moves through fail_over() / reset_health().
  std::size_t active_index() const { return active_; }
  Device& active() { return *devices_[active_]; }
  const Device& active() const { return *devices_[active_]; }

  bool healthy(std::size_t i) const { return healthy_.at(i); }
  std::size_t healthy_count() const;

  /// Indices of every healthy member, ascending — the set a group
  /// scheduler may place work onto. The active device is included.
  std::vector<std::size_t> healthy_members() const;

  /// Device i's overlap-aware timeline makespan (sugar over
  /// device(i).modeled_makespan_ms()): what a wall clock on that member
  /// would have shown. A group scheduler's makespan is the max of these
  /// deltas across the members it used.
  double modeled_makespan_ms(std::size_t i) { return device(i).modeled_makespan_ms(); }

  /// The healthy member whose timeline has advanced least since `base`
  /// (base[i] = the makespan recorded at some earlier instant; indices
  /// past base.size() are treated as 0) — the natural thief in a
  /// work-stealing drain and the member a latency-sensitive caller
  /// should target next. Ties resolve to the lowest index (the scan is
  /// ascending with a strict <), so callers replaying a batch see the
  /// identical choice. Returns size() when no member is healthy.
  std::size_t least_busy_member(std::span<const double> base);

  /// True when every device has been marked failed — the caller's cue to
  /// fall back to the host reference.
  bool exhausted() const { return healthy_count() == 0; }

  /// Declares the active device dead and migrates to the next healthy one
  /// (ascending ordinal, wrapping). Returns true and appends a
  /// FailoverRecord on success. Returns false — leaving health and the
  /// cursor untouched — when no *other* healthy device exists: the caller
  /// keeps the current device for any label-scoped work that still runs
  /// there, and routes the rest to the host.
  bool fail_over(const std::string& reason);

  /// Declares device `i` dead — the group-scheduler variant of
  /// fail_over(), for deaths on a *scheduled* member that need not be
  /// the active cursor. When `i` is the active device this is exactly
  /// fail_over(reason). Otherwise the member is marked unhealthy and a
  /// FailoverRecord from `i` to the (unchanged) active device is
  /// appended. Returns false — leaving health untouched — when `i` is
  /// the last healthy device: the caller's cue to fall back to the
  /// host, same as fail_over().
  bool fail_device(std::size_t i, const std::string& reason);

  /// Everything fail_over() / fail_device() recorded since construction
  /// / reset_health().
  const std::vector<FailoverRecord>& failover_log() const {
    return failover_log_;
  }

  /// Marks every device healthy again, moves the cursor back to the
  /// primary and clears the log. Drill harnesses use this between passes;
  /// fault plans are per-device and not touched (see disarm_all).
  void reset_health();

  /// Arms a fault plan on one device; every other device keeps its own
  /// plan (or none). Thin sugar over device(i).faults().arm(plan).
  void arm(std::size_t i, const simt::FaultPlan& plan);

  /// Disarms every device's injector — the "unarmed fleet" baseline.
  void disarm_all();

  /// Sum of serial modeled time across all devices; per-device numbers
  /// come from device(i).total_modeled_ms().
  double total_modeled_ms() const;

 private:
  std::vector<std::unique_ptr<Device>> owned_;  ///< empty when borrowing
  std::vector<Device*> devices_;
  std::vector<bool> healthy_;
  std::size_t active_ = 0;
  std::vector<FailoverRecord> failover_log_;
};

}  // namespace maxwarp::gpu

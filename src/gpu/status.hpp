// Structured error channel for the GPU host runtime.
//
// The execution stack historically had exactly one failure mode: throw and
// unwind the whole program. Serving workloads need failure as a *value* —
// a query that hits a device fault must report what happened without
// killing its batchmates. gpu::Status is that value (cudaError_t with a
// message), DeviceError is the exception that carries one across layers
// that still unwind (the throwing Device::launch wrapper keeps ~all legacy
// call sites working), and Device::try_launch / DeviceBuffer::try_create
// are the non-throwing entry points built on it.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace maxwarp::gpu {

enum class ErrorCode {
  kOk = 0,
  /// Caller error (bad size, bad option); retrying cannot help.
  kInvalidArgument,
  /// Allocation refused: byte budget exhausted or injected OOM.
  kOutOfMemory,
  /// The launch was rejected before any warp ran (driver/stream failure).
  kLaunchFailed,
  /// The kernel exceeded its watchdog deadline (hang, or a genuine
  /// overrun of an armed deadline).
  kDeadlineExceeded,
  /// An uncorrectable ECC event poisoned device memory during the launch;
  /// resident data can no longer be trusted and must be restored.
  kEccUncorrectable,
};

const char* to_string(ErrorCode code);

class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Group ordinal of the device that produced this status, or -1 when
  /// the device is not part of a gpu::DeviceGroup (standalone devices
  /// stay anonymous, so single-device error text is unchanged). The
  /// failover ladder uses this to attribute failures to hardware.
  int device() const { return device_; }
  Status& set_device(int ordinal) {
    device_ = ordinal;
    return *this;
  }

  /// True for failures worth retrying on the same device: the fault was
  /// transient (injected or environmental), not a caller error.
  bool transient() const {
    return code_ == ErrorCode::kLaunchFailed ||
           code_ == ErrorCode::kDeadlineExceeded ||
           code_ == ErrorCode::kEccUncorrectable ||
           code_ == ErrorCode::kOutOfMemory;
  }

  /// "DEADLINE_EXCEEDED: kernel 'bfs.level.expand' ..." style one-liner.
  std::string to_string() const;

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  int device_ = -1;
};

/// Exception form of a non-ok Status, thrown by the legacy throwing entry
/// points (Device::launch, the DeviceBuffer constructors). Catching it and
/// reading status() is the bridge from unwind-style code to the error
/// channel.
class DeviceError : public std::runtime_error {
 public:
  explicit DeviceError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case ErrorCode::kLaunchFailed: return "LAUNCH_FAILED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kEccUncorrectable: return "ECC_UNCORRECTABLE";
  }
  return "UNKNOWN";
}

inline std::string Status::to_string() const {
  std::string s;
  if (device_ >= 0) {
    s += "[dev";
    s += std::to_string(device_);
    s += "] ";
  }
  s += maxwarp::gpu::to_string(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace maxwarp::gpu

// CUDA-style streams and events over the overlap timeline.
//
// A Stream is a FIFO queue of kernels and copies: work on one stream runs
// in issue order, work on different streams may overlap (kernels share
// SMs, copies ride the DMA engines — see simt/timeline.hpp for the cost
// model). An Event captures the completion of everything queued on a
// stream at record time; other streams can wait on it, and two recorded
// events give the CUDA elapsed-time idiom.
//
// Because the simulator executes kernels eagerly and deterministically in
// host issue order, streams reorder *modeled time only* — functional
// results are identical with any stream assignment. That makes stream
// bugs (a missing wait_event) observable as timing anomalies in tests
// without ever producing corrupt data, which is the reverse of the real
// hardware's failure mode; the simtsan race checks cover the data side.
//
// StreamScope is the per-thread-default-stream analogue: it redirects the
// plain Device::launch / DeviceBuffer copy calls — and therefore whole
// algorithm drivers that know nothing about streams — onto a chosen
// stream for its lifetime.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "gpu/device.hpp"

namespace maxwarp::gpu {

class Event;

class Stream {
 public:
  /// Creates a new stream on `device` (cudaStreamCreate).
  explicit Stream(Device& device)
      : device_(&device), id_(device.create_stream_id()) {}

  /// The device's default stream (id 0), shared by all plain launches.
  static Stream default_stream(Device& device) { return Stream(&device, 0); }

  Device& device() const { return *device_; }
  std::uint32_t id() const { return id_; }

  /// Queues a kernel on this stream (cudaLaunchKernel with a stream arg).
  simt::KernelStats launch(const simt::LaunchDims& dims,
                           const simt::WarpFn& kernel) const {
    return device_->launch_on(id_, dims, kernel);
  }

  /// Non-throwing launch on this stream: failure (injected fault,
  /// watchdog overrun) comes back as LaunchReport::status instead of a
  /// DeviceError.
  LaunchReport try_launch(const simt::LaunchDims& dims,
                          const simt::WarpFn& kernel) const {
    return device_->try_launch_on(id_, dims, kernel);
  }

  /// Modeled completion time of everything queued so far (0 if idle).
  double ready_ms() const { return device_->timeline().stream_ready_ms(id_); }

  /// Host-side cudaStreamSynchronize analogue. Execution is eager, so
  /// there is nothing to wait for; returns the modeled completion time
  /// the real call would have blocked until. The launch-graph recorder
  /// treats it as a real sync: everything issued afterwards (any stream)
  /// is ordered after this stream's work.
  double synchronize() const {
    if (auto* lg = device_->launch_graph()) lg->on_host_sync_stream(id_);
    return ready_ms();
  }

  /// All work queued after this call waits for `e` (cudaStreamWaitEvent).
  void wait(const Event& e) const;

 private:
  Stream(Device* device, std::uint32_t id) : device_(device), id_(id) {}

  Device* device_;
  std::uint32_t id_;
};

class Event {
 public:
  /// An unrecorded event (cudaEventCreate).
  explicit Event(Device& device) : device_(&device) {}

  /// Captures the completion of work queued on `s` so far; re-recording
  /// overwrites (cudaEventRecord).
  void record(const Stream& s) {
    if (&s.device() != device_) {
      throw std::invalid_argument("Event::record: stream on another device");
    }
    id_ = device_->timeline().record(s.id());
    recorded_ = true;
    if (auto* lg = device_->launch_graph()) lg->on_event_record(id_, s.id());
  }

  bool recorded() const { return recorded_; }

  /// Modeled timestamp of the recorded completion (cudaEventQuery /
  /// cudaEventSynchronize rolled into one — execution is eager).
  double ms() const {
    if (!recorded_) {
      throw std::logic_error("Event::ms: event was never recorded");
    }
    // cudaEventSynchronize semantics: the host now knows the captured
    // work finished, so later issues are ordered after it.
    if (auto* lg = device_->launch_graph()) lg->on_host_sync_event(id_);
    return device_->timeline().event_ms(id_);
  }

  /// cudaEventElapsedTime: modeled milliseconds from `start` to `stop`.
  static double elapsed_ms(const Event& start, const Event& stop) {
    return stop.ms() - start.ms();
  }

 private:
  friend class Stream;

  Device* device_;
  simt::Timeline::EventId id_ = 0;
  bool recorded_ = false;
};

inline void Stream::wait(const Event& e) const {
  if (&e.device_->timeline() != &device_->timeline()) {
    throw std::invalid_argument("Stream::wait: event on another device");
  }
  // CUDA treats waiting on a never-recorded event as a no-op.
  if (e.recorded()) {
    device_->timeline().wait_event(id_, e.id_);
    if (auto* lg = device_->launch_graph()) lg->on_stream_wait(id_, e.id_);
  }
}

/// Redirects the device's plain (stream-oblivious) launches and copies
/// onto `stream` for the scope's lifetime, restoring the previous stream
/// on exit. This is how stock algorithm drivers — bfs_gpu and friends —
/// run concurrently: wrap each call in a scope bound to its own stream.
class StreamScope {
 public:
  StreamScope(Device& device, const Stream& stream)
      : device_(&device), previous_(device.current_stream_id()) {
    device.set_current_stream_id(stream.id());
  }
  ~StreamScope() { device_->set_current_stream_id(previous_); }

  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

 private:
  Device* device_;
  std::uint32_t previous_;
};

}  // namespace maxwarp::gpu

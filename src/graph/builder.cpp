#include "graph/builder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace maxwarp::graph {

Csr build_csr(std::uint32_t num_nodes, EdgeList edges,
              const BuildOptions& opts) {
  for (const Edge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      throw std::out_of_range("build_csr: edge endpoint out of range");
    }
  }

  if (opts.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }
  if (opts.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }

  std::sort(edges.begin(), edges.end());
  if (opts.remove_duplicates) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  if (edges.size() > 0xffffffffULL) {
    throw std::length_error("build_csr: more than 2^32-1 edges");
  }

  Csr g;
  g.row.assign(num_nodes + 1, 0);
  g.adj.resize(edges.size());
  for (const Edge& e : edges) ++g.row[e.src + 1];
  std::partial_sum(g.row.begin(), g.row.end(), g.row.begin());
  // Edges are sorted by (src, dst), so a single pass fills adjacency in
  // sorted order already; sort_neighbors is then a no-op but kept for
  // callers that disable dedup.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    g.adj[i] = edges[i].dst;
  }
  if (opts.sort_neighbors) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      std::sort(g.adj.begin() + g.row[v], g.adj.begin() + g.row[v + 1]);
    }
  }
  return g;
}

namespace {
std::uint32_t hash_edge(NodeId u, NodeId v) {
  std::uint64_t x = (static_cast<std::uint64_t>(u) << 32) | v;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>(x ^ (x >> 31));
}
}  // namespace

void assign_hash_weights(Csr& graph, std::uint32_t max_weight) {
  if (max_weight == 0) {
    throw std::invalid_argument("assign_hash_weights: max_weight must be >0");
  }
  graph.weights.resize(graph.adj.size());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (EdgeOff e = graph.row[v]; e < graph.row[v + 1]; ++e) {
      // Symmetric hash so undirected graphs get matching weights both ways.
      const NodeId a = std::min(v, graph.adj[e]);
      const NodeId b = std::max(v, graph.adj[e]);
      graph.weights[e] = 1 + hash_edge(a, b) % max_weight;
    }
  }
}

Csr reverse(const Csr& graph) {
  const std::uint32_t n = graph.num_nodes();
  Csr out;
  out.row.assign(n + 1, 0);
  out.adj.resize(graph.num_edges());
  if (graph.weighted()) out.weights.resize(graph.num_edges());

  for (NodeId target : graph.adj) ++out.row[target + 1];
  std::partial_sum(out.row.begin(), out.row.end(), out.row.begin());

  std::vector<EdgeOff> cursor(out.row.begin(), out.row.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    for (EdgeOff e = graph.row[v]; e < graph.row[v + 1]; ++e) {
      const NodeId u = graph.adj[e];
      const EdgeOff slot = cursor[u]++;
      out.adj[slot] = v;
      if (graph.weighted()) out.weights[slot] = graph.weights[e];
    }
  }
  return out;
}

Csr permute(const Csr& graph, const std::vector<NodeId>& perm) {
  const std::uint32_t n = graph.num_nodes();
  if (perm.size() != n) {
    throw std::invalid_argument("permute: perm size mismatch");
  }
  std::vector<NodeId> inverse(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (perm[v] >= n || inverse[perm[v]] != kInvalidNode) {
      throw std::invalid_argument("permute: not a permutation");
    }
    inverse[perm[v]] = v;
  }

  Csr out;
  out.row.assign(n + 1, 0);
  out.adj.resize(graph.num_edges());
  if (graph.weighted()) out.weights.resize(graph.num_edges());

  for (NodeId new_v = 0; new_v < n; ++new_v) {
    out.row[new_v + 1] = out.row[new_v] + graph.degree(inverse[new_v]);
  }
  std::vector<std::pair<NodeId, std::uint32_t>> scratch;
  for (NodeId new_v = 0; new_v < n; ++new_v) {
    const NodeId old_v = inverse[new_v];
    scratch.clear();
    for (EdgeOff e = graph.row[old_v]; e < graph.row[old_v + 1]; ++e) {
      scratch.emplace_back(perm[graph.adj[e]],
                           graph.weighted() ? graph.weights[e] : 0u);
    }
    std::sort(scratch.begin(), scratch.end());
    EdgeOff slot = out.row[new_v];
    for (const auto& [target, weight] : scratch) {
      out.adj[slot] = target;
      if (graph.weighted()) out.weights[slot] = weight;
      ++slot;
    }
  }
  return out;
}

std::vector<NodeId> degree_descending_order(const Csr& graph) {
  const std::uint32_t n = graph.num_nodes();
  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return graph.degree(a) > graph.degree(b);
                   });
  // by_degree[rank] = old node; we need perm[old] = new label = rank.
  std::vector<NodeId> perm(n);
  for (NodeId rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
  return perm;
}

Csr induced_subgraph(const Csr& graph, const std::vector<NodeId>& nodes) {
  const std::uint32_t n = graph.num_nodes();
  std::vector<NodeId> new_id(n, kInvalidNode);
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    if (nodes[k] >= n) {
      throw std::out_of_range("induced_subgraph: node id out of range");
    }
    if (new_id[nodes[k]] != kInvalidNode) {
      throw std::invalid_argument("induced_subgraph: duplicate node id");
    }
    new_id[nodes[k]] = static_cast<NodeId>(k);
  }

  Csr out;
  out.row.assign(nodes.size() + 1, 0);
  const bool weighted = graph.weighted();
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    const NodeId old_v = nodes[k];
    for (EdgeOff e = graph.row[old_v]; e < graph.row[old_v + 1]; ++e) {
      if (new_id[graph.adj[e]] != kInvalidNode) {
        out.adj.push_back(new_id[graph.adj[e]]);
        if (weighted) out.weights.push_back(graph.weights[e]);
      }
    }
    out.row[k + 1] = static_cast<EdgeOff>(out.adj.size());
  }
  return out;
}

Csr largest_component(const Csr& graph, std::vector<NodeId>* old_ids) {
  const std::uint32_t n = graph.num_nodes();
  if (n == 0) {
    if (old_ids) old_ids->clear();
    return Csr{};
  }
  // Union-find over the undirected closure (same as metrics'
  // weak_components, inlined to avoid a circular library dependency).
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : graph.neighbors(v)) {
      const std::uint32_t a = find(v);
      const std::uint32_t b = find(u);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<std::uint32_t> size(n, 0);
  for (NodeId v = 0; v < n; ++v) ++size[find(v)];
  std::uint32_t best_root = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    if (size[r] > size[best_root]) best_root = r;
  }
  std::vector<NodeId> members;
  members.reserve(size[best_root]);
  for (NodeId v = 0; v < n; ++v) {
    if (find(v) == best_root) members.push_back(v);
  }
  Csr out = induced_subgraph(graph, members);
  if (old_ids) *old_ids = std::move(members);
  return out;
}

EdgeList to_edge_list(const Csr& graph) {
  EdgeList edges;
  edges.reserve(graph.num_edges());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId u : graph.neighbors(v)) edges.push_back({v, u});
  }
  return edges;
}

}  // namespace maxwarp::graph

// Edge-list to CSR construction and structural transforms.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.hpp"

namespace maxwarp::graph {

struct Edge {
  NodeId src;
  NodeId dst;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

struct BuildOptions {
  bool remove_self_loops = true;
  bool remove_duplicates = true;
  /// Adds the reverse of every edge before dedup (undirected graphs).
  bool symmetrize = false;
  /// Sorts each adjacency list ascending (required by is_symmetric and by
  /// the warp-centric kernels' coalescing-friendly layout).
  bool sort_neighbors = true;
};

/// Builds a CSR over nodes [0, num_nodes) from an edge list.
/// Throws if an endpoint is out of range.
Csr build_csr(std::uint32_t num_nodes, EdgeList edges,
              const BuildOptions& opts = {});

/// Assigns each edge a weight in [1, max_weight] from a deterministic hash
/// of its endpoints (so the same edge always gets the same weight, no
/// matter how the graph was built).
void assign_hash_weights(Csr& graph, std::uint32_t max_weight);

/// Transpose (reverse every edge); weights follow their edges.
Csr reverse(const Csr& graph);

/// Relabels node v as perm[v]; perm must be a permutation of [0, n).
Csr permute(const Csr& graph, const std::vector<NodeId>& perm);

/// Permutation that sorts nodes by descending degree — the layout the paper
/// notes improves inter-warp balance for static scheduling.
std::vector<NodeId> degree_descending_order(const Csr& graph);

/// Recovers the edge list (in row order) from a CSR.
EdgeList to_edge_list(const Csr& graph);

/// Induced subgraph on `nodes` (each listed at most once); node k of the
/// result is nodes[k]. Edges whose endpoints are both selected survive,
/// weights follow. Throws on out-of-range or duplicate ids.
Csr induced_subgraph(const Csr& graph, const std::vector<NodeId>& nodes);

/// Extracts the largest weakly connected component (ties broken by the
/// smallest member id). If `old_ids` is non-null it receives, for each new
/// node, its id in the original graph.
Csr largest_component(const Csr& graph,
                      std::vector<NodeId>* old_ids = nullptr);

}  // namespace maxwarp::graph

#include "graph/csr.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace maxwarp::graph {

std::uint32_t Csr::max_degree() const {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

void Csr::validate() const {
  if (row.empty()) throw std::runtime_error("csr: empty row array");
  if (row.front() != 0) throw std::runtime_error("csr: row[0] != 0");
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] < row[i - 1]) {
      throw std::runtime_error("csr: row offsets not monotone at " +
                               std::to_string(i));
    }
  }
  if (row.back() != adj.size()) {
    throw std::runtime_error("csr: row[n] != m");
  }
  const std::uint32_t n = num_nodes();
  for (std::size_t e = 0; e < adj.size(); ++e) {
    if (adj[e] >= n) {
      throw std::runtime_error("csr: edge target out of range at " +
                               std::to_string(e));
    }
  }
  if (!weights.empty() && weights.size() != adj.size()) {
    throw std::runtime_error("csr: weight array size mismatch");
  }
}

bool Csr::is_symmetric() const {
  // For each edge (u,v) binary-search v's list for u; requires sorted
  // adjacency (builder output is sorted).
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      const auto nb = neighbors(v);
      if (!std::binary_search(nb.begin(), nb.end(), u)) return false;
    }
  }
  return true;
}

std::string Csr::describe() const {
  std::ostringstream out;
  out << "n=" << num_nodes() << ", m=" << num_edges()
      << ", avg_deg=" << average_degree() << ", max_deg=" << max_degree()
      << (weighted() ? ", weighted" : "");
  return out.str();
}

}  // namespace maxwarp::graph

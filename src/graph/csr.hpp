// Compressed Sparse Row graph representation.
//
// This is the layout every GPU kernel in the library consumes: a row-offset
// array of n+1 entries and a flat adjacency array. Node ids and edge
// offsets are 32-bit, matching what the paper's CUDA kernels used (and what
// the coalescing model sees as 4-byte elements). An optional parallel
// weight array makes the same structure serve weighted algorithms (SSSP).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace maxwarp::graph {

using NodeId = std::uint32_t;
using EdgeOff = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

struct Csr {
  std::vector<EdgeOff> row;   ///< size n+1; row[v]..row[v+1] index adj
  std::vector<NodeId> adj;    ///< size m
  std::vector<std::uint32_t> weights;  ///< size m if weighted, else empty

  Csr() : row(1, 0) {}

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(row.size() - 1);
  }
  std::uint64_t num_edges() const { return adj.size(); }
  bool weighted() const { return !weights.empty(); }

  std::uint32_t degree(NodeId v) const { return row[v + 1] - row[v]; }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj.data() + row[v], adj.data() + row[v + 1]};
  }
  std::span<const std::uint32_t> edge_weights(NodeId v) const {
    return {weights.data() + row[v], weights.data() + row[v + 1]};
  }

  double average_degree() const {
    const std::uint32_t n = num_nodes();
    return n == 0 ? 0.0
                  : static_cast<double>(num_edges()) / static_cast<double>(n);
  }

  std::uint32_t max_degree() const;

  /// Structural invariants: monotone rows, targets in range, weight array
  /// size. Throws std::runtime_error naming the first violation.
  void validate() const;

  /// True if every edge (u,v) has a matching (v,u).
  bool is_symmetric() const;

  /// "n=..., m=..., avg_deg=..." one-liner for logs.
  std::string describe() const;
};

}  // namespace maxwarp::graph

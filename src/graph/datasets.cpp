#include "graph/datasets.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace maxwarp::graph {

namespace {

/// RMAT assigns the heavy quadrant to low node ids, so hubs come out
/// clustered at the front of the id space — an artifact real crawled
/// graphs do not have (and one that would skew any experiment sensitive to
/// task placement). Shuffle the labels so hub positions are uniform.
Csr shuffle_ids(Csr g, std::uint64_t seed) {
  const std::uint32_t n = g.num_nodes();
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return permute(g, perm);
}

std::uint32_t scaled_n(double scale, std::uint32_t base) {
  const double n = static_cast<double>(base) * scale;
  if (n < 2.0) return 2;
  return static_cast<std::uint32_t>(n);
}

/// Default bench size. 32K nodes keeps a full W-sweep of simulated BFS
/// under a minute of host time; use --scale in the bench binaries for
/// larger instances.
constexpr std::uint32_t kBaseNodes = 32768;

std::vector<DatasetSpec> build_registry() {
  std::vector<DatasetSpec> d;

  d.push_back({"RMAT",
               "synthetic RMAT (a=.57,b=.19,c=.19,d=.05), directed, avg deg 8",
               0, 0, /*skewed=*/true,
               [](double scale, std::uint64_t seed) {
                 const std::uint32_t n = scaled_n(scale, kBaseNodes);
                 GenOptions o{seed, false};
                 return shuffle_ids(rmat(n, static_cast<std::uint64_t>(n) * 8, {}, o), seed);
               }});

  d.push_back({"Random",
               "Erdos-Renyi G(n, m=8n), directed: same density as RMAT but "
               "binomial (tight) degree distribution",
               0, 0, /*skewed=*/false,
               [](double scale, std::uint64_t seed) {
                 const std::uint32_t n = scaled_n(scale, kBaseNodes);
                 GenOptions o{seed, false};
                 return erdos_renyi(n, static_cast<std::uint64_t>(n) * 8, o);
               }});

  d.push_back({"LiveJournal*",
               "paper: SNAP soc-LiveJournal1 (4.85M/69M, heavy tail); "
               "stand-in: RMAT at avg deg 14 with matched skew",
               4847571, 68993773, /*skewed=*/true,
               [](double scale, std::uint64_t seed) {
                 const std::uint32_t n = scaled_n(scale, kBaseNodes);
                 GenOptions o{seed, false};
                 return shuffle_ids(rmat(n, static_cast<std::uint64_t>(n) * 14, {}, o), seed);
               }});

  d.push_back({"Patents*",
               "paper: cit-Patents (3.77M/16.5M, milder tail); stand-in: "
               "RMAT (a=.45,b=.22,c=.22,d=.11) at avg deg 4",
               3774768, 16518948, /*skewed=*/true,
               [](double scale, std::uint64_t seed) {
                 const std::uint32_t n = scaled_n(scale, kBaseNodes);
                 GenOptions o{seed, false};
                 RmatParams mild{0.45, 0.22, 0.22, 0.11};
                 return shuffle_ids(rmat(n, static_cast<std::uint64_t>(n) * 4, mild, o), seed);
               }});

  d.push_back({"WikiTalk*",
               "paper: wiki-Talk (2.39M/5.02M, extreme hubs); stand-in: RMAT "
               "(a=.65,b=.15,c=.15,d=.05) at avg deg 2",
               2394385, 5021410, /*skewed=*/true,
               [](double scale, std::uint64_t seed) {
                 const std::uint32_t n = scaled_n(scale, kBaseNodes);
                 GenOptions o{seed, false};
                 RmatParams extreme{0.65, 0.15, 0.15, 0.05};
                 return shuffle_ids(rmat(n, static_cast<std::uint64_t>(n) * 2, extreme, o), seed);
               }});

  d.push_back({"Uniform",
               "every node has exactly 8 out-neighbours: the zero-imbalance "
               "control where thread-mapping should win",
               0, 0, /*skewed=*/false,
               [](double scale, std::uint64_t seed) {
                 const std::uint32_t n = scaled_n(scale, kBaseNodes);
                 GenOptions o{seed, false};
                 return uniform_degree(n, 8, o);
               }});

  d.push_back({"Grid",
               "2-D grid (road-network proxy: degree <= 4, large diameter; "
               "stresses per-level launch overhead)",
               0, 0, /*skewed=*/false,
               [](double scale, std::uint64_t seed) {
                 (void)seed;  // deterministic shape
                 const auto side = static_cast<std::uint32_t>(
                     std::sqrt(static_cast<double>(scaled_n(scale,
                                                            kBaseNodes))));
                 return grid2d(side, side);
               }});

  return d;
}

}  // namespace

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> registry = build_registry();
  return registry;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const DatasetSpec& spec : paper_datasets()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown dataset: " + name);
}

Csr make_dataset(const std::string& name, double scale, std::uint64_t seed) {
  return dataset_by_name(name).make(scale, seed);
}

}  // namespace maxwarp::graph

// The benchmark dataset registry: one entry per graph instance of the
// paper's evaluation (its Table 1), plus synthetic sweep families.
//
// Real SNAP datasets are not downloadable in this environment, so each
// real-graph row is a *calibrated stand-in*: an RMAT instance whose average
// degree and degree skew match the published numbers, scaled down by the
// `scale` factor (scale = 1 is the default benchmark size; larger scales
// approach paper sizes at proportionally larger simulation cost). The
// substitution preserves the property the paper's results hinge on — the
// shape of the degree distribution — which is what drives intra-warp
// imbalance.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace maxwarp::graph {

struct DatasetSpec {
  std::string name;         ///< e.g. "LiveJournal*" (the * marks stand-ins)
  std::string provenance;   ///< what the paper used / how ours is generated
  std::uint64_t paper_nodes = 0;  ///< size reported in the paper (0: synthetic)
  std::uint64_t paper_edges = 0;
  bool skewed = false;  ///< heavy-tailed degree distribution expected
  /// Builds the instance; scale 1.0 = default bench size.
  std::function<Csr(double scale, std::uint64_t seed)> make;
};

/// All datasets of the reproduction's Table 1, in display order.
const std::vector<DatasetSpec>& paper_datasets();

/// Looks a dataset up by name (throws std::out_of_range if unknown).
const DatasetSpec& dataset_by_name(const std::string& name);

/// Convenience: build by name at the given scale/seed.
Csr make_dataset(const std::string& name, double scale = 1.0,
                 std::uint64_t seed = 42);

}  // namespace maxwarp::graph

#include "graph/generators.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace maxwarp::graph {

using util::Rng;

namespace {
BuildOptions gen_build_options(const GenOptions& opts) {
  BuildOptions b;
  b.symmetrize = opts.undirected;
  return b;
}
}  // namespace

Csr erdos_renyi(std::uint32_t n, std::uint64_t m, const GenOptions& opts) {
  if (n == 0) return empty_graph(0);
  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    edges.push_back({u, v});
  }
  return build_csr(n, std::move(edges), gen_build_options(opts));
}

Csr rmat(std::uint32_t n, std::uint64_t m, const RmatParams& p,
         const GenOptions& opts) {
  if (n == 0) return empty_graph(0);
  const double sum = p.a + p.b + p.c + p.d;
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("rmat: a+b+c+d must sum to 1");
  }
  const std::uint32_t size = std::bit_ceil(n);
  const int levels = std::countr_zero(size);

  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint32_t u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      // Standard noise: jitter quadrant probabilities +-10% per level so the
      // generated graph is not exactly self-similar.
      const double noise = 0.9 + 0.2 * rng.next_double();
      double a = p.a * noise;
      const double norm = a + p.b + p.c + p.d;
      a /= norm;
      const double b = p.b / norm;
      const double c = p.c / norm;
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u < n && v < n) edges.push_back({u, v});
  }
  return build_csr(n, std::move(edges), gen_build_options(opts));
}

Csr uniform_degree(std::uint32_t n, std::uint32_t degree,
                   const GenOptions& opts) {
  if (n == 0) return empty_graph(0);
  if (degree >= n) {
    throw std::invalid_argument("uniform_degree: degree must be < n");
  }
  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * degree);
  std::unordered_set<NodeId> picked;
  for (NodeId v = 0; v < n; ++v) {
    picked.clear();
    while (picked.size() < degree) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u == v) continue;
      if (picked.insert(u).second) edges.push_back({v, u});
    }
  }
  // Self loops/duplicates are already excluded, but undirected symmetrize
  // may still merge mirrored pairs; that only perturbs degrees by O(d/n).
  return build_csr(n, std::move(edges), gen_build_options(opts));
}

Csr barabasi_albert(std::uint32_t n, std::uint32_t m_per_node,
                    const GenOptions& opts) {
  if (n == 0) return empty_graph(0);
  if (m_per_node == 0 || m_per_node >= n) {
    throw std::invalid_argument(
        "barabasi_albert: need 0 < m_per_node < n");
  }
  Rng rng(opts.seed);
  EdgeList edges;
  // Seed clique over the first m_per_node + 1 nodes.
  const NodeId seed_nodes = m_per_node + 1;
  // Every edge endpoint appears in this list, so a uniform draw from it
  // is a degree-proportional draw over nodes.
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < seed_nodes; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = seed_nodes; v < n; ++v) {
    // Draw m distinct degree-proportional targets.
    std::vector<NodeId> targets;
    while (targets.size() < m_per_node) {
      const NodeId candidate =
          endpoints[rng.next_below(endpoints.size())];
      bool duplicate = false;
      for (const NodeId t : targets) duplicate |= (t == candidate);
      if (!duplicate) targets.push_back(candidate);
    }
    for (const NodeId t : targets) {
      edges.push_back({v, t});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  GenOptions undirected = opts;
  undirected.undirected = true;
  return build_csr(n, std::move(edges), gen_build_options(undirected));
}

Csr watts_strogatz(std::uint32_t n, std::uint32_t k, double beta,
                   const GenOptions& opts) {
  if (n == 0) return empty_graph(0);
  if (k % 2 != 0 || k >= n) {
    throw std::invalid_argument("watts_strogatz: k must be even and < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("watts_strogatz: beta in [0,1]");
  }
  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      NodeId target = static_cast<NodeId>((v + j) % n);
      if (rng.next_bool(beta)) {
        // Rewire to a uniform non-self target.
        do {
          target = static_cast<NodeId>(rng.next_below(n));
        } while (target == v);
      }
      edges.push_back({v, target});
    }
  }
  GenOptions undirected = opts;
  undirected.undirected = true;
  return build_csr(n, std::move(edges), gen_build_options(undirected));
}

Csr grid2d(std::uint32_t rows, std::uint32_t cols) {
  const std::uint64_t n64 = static_cast<std::uint64_t>(rows) * cols;
  if (n64 > 0xffffffffULL) throw std::length_error("grid2d: too many nodes");
  const auto n = static_cast<std::uint32_t>(n64);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  const auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  BuildOptions b;
  b.symmetrize = true;
  return build_csr(n, std::move(edges), b);
}

Csr chain(std::uint32_t n) {
  EdgeList edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  BuildOptions b;
  b.symmetrize = true;
  return build_csr(n, std::move(edges), b);
}

Csr star(std::uint32_t n) {
  EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v});
  BuildOptions b;
  b.symmetrize = true;
  return build_csr(n, std::move(edges), b);
}

Csr complete(std::uint32_t n) {
  EdgeList edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  return build_csr(n, std::move(edges));
}

Csr complete_binary_tree(std::uint32_t n) {
  EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({(v - 1) / 2, v});
  BuildOptions b;
  b.symmetrize = true;
  return build_csr(n, std::move(edges), b);
}

Csr empty_graph(std::uint32_t n) {
  Csr g;
  g.row.assign(static_cast<std::size_t>(n) + 1, 0);
  return g;
}

}  // namespace maxwarp::graph

// Synthetic graph generators.
//
// The paper evaluates on (a) real scale-free graphs, (b) RMAT graphs,
// (c) uniformly random graphs, and (d) regular graphs. With no dataset
// downloads available here, RMAT with calibrated parameters stands in for
// the real graphs (see datasets.hpp); the others are generated exactly as
// in the paper. All generators are deterministic in the seed.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/csr.hpp"

namespace maxwarp::graph {

struct GenOptions {
  std::uint64_t seed = 1;
  /// Make the graph undirected (symmetrize before building).
  bool undirected = false;
};

/// G(n, m): m distinct uniform random edges.
Csr erdos_renyi(std::uint32_t n, std::uint64_t m, const GenOptions& opts = {});

/// Recursive-matrix (Chakrabarti et al.) scale-free generator. n is rounded
/// up to a power of two. a+b+c+d must sum to 1; a > d yields the heavy-tail
/// degree skew that breaks thread-mapped GPU kernels.
struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
};
Csr rmat(std::uint32_t n, std::uint64_t m, const RmatParams& params = {},
         const GenOptions& opts = {});

/// Every node gets exactly `degree` out-edges to distinct uniform targets.
/// The paper's "uniform" workload: zero intra-warp imbalance by design.
Csr uniform_degree(std::uint32_t n, std::uint32_t degree,
                   const GenOptions& opts = {});

/// Barabási–Albert preferential attachment: starts from a small clique,
/// then every new node attaches `m_per_node` edges to existing nodes with
/// probability proportional to their degree (sampled via the
/// endpoint-list trick). Produces the power-law tail organically, unlike
/// RMAT's recursive construction. Always undirected.
Csr barabasi_albert(std::uint32_t n, std::uint32_t m_per_node,
                    const GenOptions& opts = {});

/// Watts–Strogatz small world: ring of degree k, each edge rewired with
/// probability beta. Always undirected.
Csr watts_strogatz(std::uint32_t n, std::uint32_t k, double beta,
                   const GenOptions& opts = {});

/// rows x cols 4-neighbour grid (road-network stand-in: bounded degree,
/// large diameter). Undirected.
Csr grid2d(std::uint32_t rows, std::uint32_t cols);

/// Corner-case shapes for tests.
Csr chain(std::uint32_t n);                 ///< 0-1-2-...-(n-1), undirected
Csr star(std::uint32_t n);                  ///< node 0 connected to all, undirected
Csr complete(std::uint32_t n);              ///< K_n, undirected
Csr complete_binary_tree(std::uint32_t n);  ///< heap-indexed, undirected
Csr empty_graph(std::uint32_t n);           ///< n isolated nodes

}  // namespace maxwarp::graph

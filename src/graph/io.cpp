#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace maxwarp::graph {

void write_edge_list(std::ostream& out, const Csr& graph) {
  out << "# Nodes: " << graph.num_nodes() << " Edges: " << graph.num_edges()
      << '\n';
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId u : graph.neighbors(v)) {
      out << v << ' ' << u << '\n';
    }
  }
}

void write_edge_list_file(const std::string& path, const Csr& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_edge_list(out, graph);
}

Csr read_edge_list(std::istream& in, const BuildOptions& opts) {
  EdgeList edges;
  std::uint32_t declared_nodes = 0;
  NodeId max_id = 0;
  bool any = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto pos = line.find("Nodes:");
      if (pos != std::string::npos) {
        declared_nodes = static_cast<std::uint32_t>(
            std::strtoul(line.c_str() + pos + 6, nullptr, 10));
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    if (!(row >> u >> v)) {
      throw std::runtime_error("edge list: malformed line: " + line);
    }
    if (u > 0xfffffffeULL || v > 0xfffffffeULL) {
      throw std::runtime_error("edge list: node id too large");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
    max_id = std::max({max_id, static_cast<NodeId>(u),
                       static_cast<NodeId>(v)});
    any = true;
  }
  const std::uint32_t n =
      std::max(declared_nodes, any ? max_id + 1 : declared_nodes);
  return build_csr(n, std::move(edges), opts);
}

Csr read_edge_list_file(const std::string& path, const BuildOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_edge_list(in, opts);
}

void write_dimacs(std::ostream& out, const Csr& graph) {
  if (!graph.weighted()) {
    throw std::invalid_argument("write_dimacs: graph must be weighted");
  }
  out << "p sp " << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (EdgeOff e = graph.row[v]; e < graph.row[v + 1]; ++e) {
      out << "a " << v + 1 << ' ' << graph.adj[e] + 1 << ' '
          << graph.weights[e] << '\n';
    }
  }
}

Csr read_dimacs(std::istream& in) {
  std::uint32_t n = 0;
  struct WEdge {
    NodeId src, dst;
    std::uint32_t w;
  };
  std::vector<WEdge> wedges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream row(line);
    char kind = 0;
    row >> kind;
    if (kind == 'p') {
      std::string sp;
      std::uint64_t m = 0;
      row >> sp >> n >> m;
      wedges.reserve(m);
    } else if (kind == 'a') {
      std::uint64_t u = 0, v = 0, w = 0;
      if (!(row >> u >> v >> w) || u == 0 || v == 0) {
        throw std::runtime_error("dimacs: malformed arc line: " + line);
      }
      wedges.push_back({static_cast<NodeId>(u - 1),
                        static_cast<NodeId>(v - 1),
                        static_cast<std::uint32_t>(w)});
    }
  }
  // Sort by (src, dst) and build directly so weights stay attached.
  std::sort(wedges.begin(), wedges.end(), [](const WEdge& a, const WEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  Csr g;
  g.row.assign(static_cast<std::size_t>(n) + 1, 0);
  g.adj.reserve(wedges.size());
  g.weights.reserve(wedges.size());
  for (const WEdge& e : wedges) {
    if (e.src >= n || e.dst >= n) {
      throw std::runtime_error("dimacs: endpoint exceeds declared n");
    }
    ++g.row[e.src + 1];
    g.adj.push_back(e.dst);
    g.weights.push_back(e.w);
  }
  for (std::size_t i = 1; i < g.row.size(); ++i) g.row[i] += g.row[i - 1];
  return g;
}

namespace {
constexpr std::uint64_t kBinaryMagic = 0x4d41585743535231ULL;  // "MAXWCSR1"

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t count = v.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary csr: truncated file");
  return v;
}
}  // namespace

void write_binary_csr(const std::string& path, const Csr& graph) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(&kBinaryMagic),
            sizeof(kBinaryMagic));
  write_vec(out, graph.row);
  write_vec(out, graph.adj);
  write_vec(out, graph.weights);
}

Csr read_binary_csr(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kBinaryMagic) {
    throw std::runtime_error("binary csr: bad magic in " + path);
  }
  Csr g;
  g.row = read_vec<EdgeOff>(in);
  g.adj = read_vec<NodeId>(in);
  g.weights = read_vec<std::uint32_t>(in);
  g.validate();
  return g;
}

}  // namespace maxwarp::graph

// Graph serialization: whitespace edge lists (SNAP style), DIMACS .gr
// shortest-path format, and a fast binary CSR container.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/builder.hpp"
#include "graph/csr.hpp"

namespace maxwarp::graph {

/// Writes "src dst" per line, '#' comment header.
void write_edge_list(std::ostream& out, const Csr& graph);
void write_edge_list_file(const std::string& path, const Csr& graph);

/// Reads a SNAP-style edge list ('#' comments, whitespace-separated pairs);
/// num_nodes is max id + 1 unless a "# Nodes: N" header says otherwise.
Csr read_edge_list(std::istream& in, const BuildOptions& opts = {});
Csr read_edge_list_file(const std::string& path,
                        const BuildOptions& opts = {});

/// DIMACS 9th-challenge format: "p sp n m", "a u v w" (1-based). Reading
/// produces a weighted graph; writing requires one.
void write_dimacs(std::ostream& out, const Csr& graph);
Csr read_dimacs(std::istream& in);

/// Binary container: magic, counts, then the raw row/adj/weight arrays.
void write_binary_csr(const std::string& path, const Csr& graph);
Csr read_binary_csr(const std::string& path);

}  // namespace maxwarp::graph

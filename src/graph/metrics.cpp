#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace maxwarp::graph {

DegreeStats degree_stats(const Csr& graph) {
  DegreeStats stats;
  const std::uint32_t n = graph.num_nodes();
  if (n == 0) return stats;

  util::RunningStats running;
  std::vector<double> degrees(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = graph.degree(v);
    degrees[v] = d;
    running.add(d);
    stats.histogram.add(d);
  }
  stats.min = static_cast<std::uint32_t>(running.min());
  stats.max = static_cast<std::uint32_t>(running.max());
  stats.mean = running.mean();
  stats.stddev = running.stddev();
  stats.gini = util::gini_coefficient(degrees);

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, n / 100);
  const double top_edges =
      std::accumulate(degrees.begin(),
                      degrees.begin() + static_cast<std::ptrdiff_t>(top),
                      0.0);
  const auto m = static_cast<double>(graph.num_edges());
  stats.top1pct_edge_share = m > 0 ? top_edges / m : 0.0;
  return stats;
}

namespace {

/// Counting-sort histogram of degrees; index d holds #vertices of degree d.
std::vector<std::uint64_t> degree_counts(const Csr& graph) {
  std::uint32_t max_degree = 0;
  const std::uint32_t n = graph.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, graph.degree(v));
  }
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(max_degree) + 1,
                                    0);
  for (NodeId v = 0; v < n; ++v) ++counts[graph.degree(v)];
  return counts;
}

std::uint32_t percentile_from_counts(const std::vector<std::uint64_t>& counts,
                                     std::uint64_t n, double q) {
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the degree of the ceil(q*n)-th smallest vertex (1-based).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t d = 0; d < counts.size(); ++d) {
    seen += counts[d];
    if (seen >= rank) return static_cast<std::uint32_t>(d);
  }
  return static_cast<std::uint32_t>(counts.size() - 1);
}

}  // namespace

std::uint32_t degree_percentile(const Csr& graph, double q) {
  return percentile_from_counts(degree_counts(graph), graph.num_nodes(), q);
}

DegreePercentiles degree_percentiles(const Csr& graph) {
  DegreePercentiles p;
  const std::uint32_t n = graph.num_nodes();
  if (n == 0) return p;
  const auto counts = degree_counts(graph);
  p.p50 = percentile_from_counts(counts, n, 0.50);
  p.p90 = percentile_from_counts(counts, n, 0.90);
  p.p99 = percentile_from_counts(counts, n, 0.99);
  p.max = static_cast<std::uint32_t>(counts.size() - 1);
  return p;
}

std::uint32_t reachable_count(const Csr& graph, NodeId source) {
  const std::uint32_t n = graph.num_nodes();
  if (source >= n) return 0;
  std::vector<bool> seen(n, false);
  std::queue<NodeId> queue;
  seen[source] = true;
  queue.push(source);
  std::uint32_t count = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    ++count;
    for (NodeId u : graph.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        queue.push(u);
      }
    }
  }
  return count;
}

std::uint32_t weak_components(const Csr& graph,
                              std::vector<std::uint32_t>& component_out) {
  const std::uint32_t n = graph.num_nodes();
  component_out.assign(n, 0xffffffffu);
  if (n == 0) return 0;

  // Union-find over undirected connectivity (edges in either direction).
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : graph.neighbors(v)) {
      const std::uint32_t a = find(v);
      const std::uint32_t b = find(u);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  // Densify component ids as 0..k-1 in root order.
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> root_id(n, 0xffffffffu);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t root = find(v);
    if (root_id[root] == 0xffffffffu) root_id[root] = next_id++;
    component_out[v] = root_id[root];
  }
  return next_id;
}

std::uint32_t bfs_eccentricity(const Csr& graph, NodeId source) {
  const std::uint32_t n = graph.num_nodes();
  if (source >= n) return 0;
  std::vector<std::uint32_t> level(n, 0xffffffffu);
  std::queue<NodeId> queue;
  level[source] = 0;
  queue.push(source);
  std::uint32_t max_level = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (NodeId u : graph.neighbors(v)) {
      if (level[u] == 0xffffffffu) {
        level[u] = level[v] + 1;
        max_level = std::max(max_level, level[u]);
        queue.push(u);
      }
    }
  }
  return max_level;
}

}  // namespace maxwarp::graph

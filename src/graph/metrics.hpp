// Graph characterization: the quantities reported in the paper's dataset
// table (Table 1) plus connectivity utilities used by tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "util/stats.hpp"

namespace maxwarp::graph {

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0;
  double stddev = 0;
  /// Gini coefficient of the degree distribution: the skew proxy. Regular
  /// graphs ~0; scale-free graphs > 0.5.
  double gini = 0;
  /// Fraction of edges owned by the top 1% highest-degree nodes.
  double top1pct_edge_share = 0;
  util::Log2Histogram histogram;
};

DegreeStats degree_stats(const Csr& graph);

/// The degree quantiles the adaptive auto-tuner keys its bin boundaries
/// off (and the columns of the dataset-summary line in bench_t1).
struct DegreePercentiles {
  std::uint32_t p50 = 0;
  std::uint32_t p90 = 0;
  std::uint32_t p99 = 0;
  std::uint32_t max = 0;
};

/// Exact degree percentile: the smallest degree d such that at least
/// `q * n` of the n vertices have degree <= d (nearest-rank definition,
/// q in [0, 1]). Runs in O(max_degree) space via a counting sort, so it
/// is cheap enough to call at GpuGraph-construction time.
std::uint32_t degree_percentile(const Csr& graph, double q);

/// p50/p90/p99/max in one pass over the degree array.
DegreePercentiles degree_percentiles(const Csr& graph);

/// Nodes reachable from `source` following out-edges (sequential BFS).
std::uint32_t reachable_count(const Csr& graph, NodeId source);

/// Weakly connected components; returns component id per node and the
/// number of components.
std::uint32_t weak_components(const Csr& graph,
                              std::vector<std::uint32_t>& component_out);

/// BFS eccentricity of `source` (max finite level); useful for estimating
/// how many level-synchronous iterations an algorithm will run.
std::uint32_t bfs_eccentricity(const Csr& graph, NodeId source);

}  // namespace maxwarp::graph

// Buffer-level access descriptions shared by the launch recorder.
//
// The launch-graph verifier (analysis/launch_graph.hpp) needs to know, for
// every kernel launch, which device allocations the kernel read, wrote or
// atomically updated. Two capture paths produce that information:
//
//   * exact  — when the sanitizer is armed, every access a launch issues
//     is observed and summarized per allocation (Sanitizer::launch_touched);
//   * declared — when it is not, a launch may carry KernelAccessDecl
//     entries on its LaunchDims (LaunchDims::reads / writes / atomics),
//     the simulator analogue of the read/write sets Gunrock-style runtimes
//     attach to their operators.
//
// Mode bits combine: a kernel that both reads and overwrites a buffer
// declares kAccessRead | kAccessWrite.
#pragma once

#include <cstdint>

namespace maxwarp::simt {

inline constexpr std::uint8_t kAccessRead = 1;    ///< plain loads
inline constexpr std::uint8_t kAccessWrite = 2;   ///< plain stores
inline constexpr std::uint8_t kAccessAtomic = 4;  ///< atomic RMW updates

/// One declared buffer access of a kernel launch. `vaddr` is any simulated
/// address inside the target allocation — typically DevPtr::vaddr of the
/// buffer's base pointer; the device resolves it to the containing
/// allocation. A declaration must cover *all* of the launch's traffic to
/// be useful: a partially declared launch mis-scopes the hazard analysis.
struct KernelAccessDecl {
  std::uint64_t vaddr = 0;
  std::uint8_t modes = 0;  ///< kAccess* bits
};

}  // namespace maxwarp::simt

// Simulated-device configuration: machine shape and first-order cycle costs.
//
// The defaults are loosely calibrated to the GT200/Fermi class of hardware
// the paper used (many SMs, 32-wide warps, 128-byte memory transactions,
// memory-bound cost balance). Absolute cycle numbers are a *model*, not a
// silicon measurement; what matters for the reproduction is that the
// relative costs (divergent iteration vs coalesced access vs atomic
// serialization) follow the same first-order rules as the hardware.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace maxwarp::simt {

/// Physical SIMD width. CUDA warps have been 32 lanes on every NVIDIA
/// architecture; the virtual-warp method assumes divisors of this.
inline constexpr int kWarpSize = 32;

/// Shared memory has this many banks, each serving 4-byte words.
inline constexpr int kSharedBanks = 32;

/// Tuning for the opt-in sanitizer (simt/sanitizer.hpp). Only consulted
/// when SimConfig::sanitize is true; has no effect on the cost model.
struct SanitizerOptions {
  /// Perf-lint: flag a global access whose transactions-per-active-lane
  /// ratio exceeds this (1/32 is perfectly coalesced, 1.0 fully scattered).
  double uncoalesced_txn_per_lane = 0.5;

  /// Perf-lint: ignore accesses with fewer active lanes than this (narrow
  /// accesses are never meaningfully coalesced).
  int lint_min_active_lanes = 8;

  /// Perf-lint: flag a shared-memory access with at least this many
  /// bank-conflict replays (31 is a full 32-way conflict).
  int bank_conflict_replays = 8;

  /// Detailed diagnostic records kept per check class; further findings
  /// are still counted but not stored.
  std::size_t max_records_per_class = 16;
};

struct SimConfig {
  /// Number of streaming multiprocessors; blocks are assigned round-robin.
  std::uint32_t num_sms = 16;

  /// Simulated core clock, used only to convert cycles to milliseconds.
  double clock_ghz = 1.4;

  /// Cycles charged per issued warp instruction (ALU/control).
  std::uint32_t alu_cycles_per_instr = 1;

  /// Size of a global-memory transaction segment in bytes. Lane accesses
  /// falling into the same aligned segment coalesce into one transaction.
  std::uint32_t mem_transaction_bytes = 128;

  /// Throughput cost per global-memory transaction (per warp). With warps
  /// assumed to hide latency, memory time scales with transaction count.
  std::uint32_t cycles_per_mem_transaction = 16;

  /// Base cost of an atomic transaction plus extra serialization cycles for
  /// each additional lane hitting an address already updated this issue.
  std::uint32_t cycles_per_atomic = 16;
  std::uint32_t cycles_per_atomic_conflict = 16;

  /// Shared-memory access: base cost, plus one replay per extra conflicting
  /// access to the same bank.
  std::uint32_t cycles_per_shared_access = 2;

  /// Fixed cost charged once per kernel launch (driver + dispatch). Matters
  /// for level-synchronous algorithms with many near-empty levels (e.g. BFS
  /// on high-diameter road networks).
  std::uint64_t kernel_launch_overhead_cycles = 3000;

  /// Host<->device copy model: bytes per second and fixed per-call latency
  /// in microseconds (PCIe-like).
  double copy_gbytes_per_sec = 6.0;
  double copy_latency_us = 8.0;

  /// DMA copy engines available to *asynchronous* copies (the Timeline's
  /// overlap model). 1 models an old single-DMA part where H2D and D2H
  /// serialize against each other; 2 (the common configuration since
  /// Fermi) gives each direction its own engine, so an upload on one
  /// stream overlaps a download on another. Copies in the *same*
  /// direction always share one engine and serialize. Copies never
  /// contend with kernels for SMs.
  std::uint32_t copy_engines = 2;

  /// Warps per block used by convenience launch helpers.
  std::uint32_t default_warps_per_block = 8;

  /// Host threads the execution engine may use to simulate the blocks of
  /// one kernel launch (this is *wall-clock* parallelism of the simulator
  /// itself; it never changes what is modeled). 1 (the default) keeps the
  /// fully serial engine and its bit-for-bit determinism contract. Values
  /// > 1 run blocks on a persistent worker pool: modeled cycle statistics
  /// are still reduced in block order, global stores/atomics go through
  /// relaxed word-sized std::atomic_ref (so the level-synchronous kernels'
  /// benign same-value races are not host UB), and atomic *return values*
  /// (e.g. queue slots) become scheduling-dependent — see
  /// DESIGN.md "Execution engine" for exactly what stays deterministic.
  /// Ignored (forced serial) while `sanitize` is on.
  std::uint32_t host_threads = 1;

  /// Enables the warp-level sanitizer (simt/sanitizer.hpp): shadow-memory
  /// tracking of every device access with out-of-bounds / use-after-free /
  /// uninitialized-read / race / coalescing-lint checks. Functional results
  /// and all modeled cycle counts are unchanged; wall-clock cost is heavy.
  /// Must be set before the Device/DeviceSim is constructed.
  /// Forces the execution engine serial regardless of `host_threads`.
  bool sanitize = false;

  /// Sanitizer thresholds; ignored unless `sanitize` is on.
  SanitizerOptions sanitizer;

  /// Records one launch-graph node per kernel launch / copy / fill /
  /// alloc / free, for post-hoc happens-before hazard analysis
  /// (analysis/launch_graph.hpp, Device::verify_launch_graph()).
  /// Functional results and modeled times are unchanged; recording is a
  /// small constant cost per *API call*, not per simulated access, so it
  /// is cheap even on large graphs. Access sets are exact when `sanitize`
  /// is also on, otherwise taken from LaunchDims access declarations.
  bool record_launch_graph = false;

  /// Device-wide kernel watchdog in modeled milliseconds: a launch whose
  /// modeled elapsed time exceeds this reports DEADLINE_EXCEEDED through
  /// the gpu::Status error channel instead of succeeding. 0 (the
  /// default) disables the watchdog, preserving the historical
  /// "kernels always complete" behaviour. A KernelOptions resilience
  /// watchdog or a gpu::WatchdogScope overrides this per scope.
  double default_watchdog_ms = 0.0;

  void validate() const {
    if (num_sms == 0) throw std::invalid_argument("num_sms must be > 0");
    if (clock_ghz <= 0) throw std::invalid_argument("clock_ghz must be > 0");
    if (mem_transaction_bytes == 0 ||
        (mem_transaction_bytes & (mem_transaction_bytes - 1)) != 0) {
      throw std::invalid_argument(
          "mem_transaction_bytes must be a power of two");
    }
    if (default_warps_per_block == 0) {
      throw std::invalid_argument("default_warps_per_block must be > 0");
    }
    if (copy_engines == 0) {
      throw std::invalid_argument("copy_engines must be > 0");
    }
    if (host_threads == 0) {
      throw std::invalid_argument("host_threads must be > 0");
    }
    if (default_watchdog_ms < 0) {
      throw std::invalid_argument("default_watchdog_ms must be >= 0");
    }
  }

  /// Converts a cycle count to modeled milliseconds.
  double cycles_to_ms(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e9) * 1e3;
  }
};

}  // namespace maxwarp::simt

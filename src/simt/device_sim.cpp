#include "simt/device_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace maxwarp::simt {

namespace {

/// Active lanes of the warp starting at `warp_first_thread`, or 0 when the
/// warp lies entirely past the launch's logical thread count (tail warps
/// are skipped, partial tail warps run with fewer lanes).
int lanes_for_warp(std::uint64_t warp_first_thread,
                   std::uint64_t launch_threads) {
  if (warp_first_thread >= launch_threads) return 0;
  const std::uint64_t remaining = launch_threads - warp_first_thread;
  return static_cast<int>(std::min<std::uint64_t>(remaining, kWarpSize));
}

}  // namespace

DeviceSim::DeviceSim(SimConfig cfg)
    : cfg_((cfg.validate(), cfg)), timeline_(cfg_) {
  if (cfg_.sanitize) sanitizer_ = std::make_unique<Sanitizer>(cfg_);
}

LaunchDims DeviceSim::dims_for_threads(std::uint64_t n) const {
  LaunchDims dims;
  dims.warps_per_block = cfg_.default_warps_per_block;
  const std::uint64_t threads_per_block =
      static_cast<std::uint64_t>(dims.warps_per_block) * kWarpSize;
  const std::uint64_t blocks =
      n / threads_per_block + (n % threads_per_block != 0 ? 1 : 0);
  if (blocks > std::numeric_limits<std::uint32_t>::max()) {
    throw std::overflow_error(
        "dims_for_threads: block count exceeds uint32 range");
  }
  dims.blocks = static_cast<std::uint32_t>(blocks);
  dims.total_threads = n;
  return dims;
}

LaunchDims DeviceSim::dims_for_warps(std::uint64_t n_warps) const {
  if (n_warps > std::numeric_limits<std::uint32_t>::max()) {
    throw std::overflow_error(
        "dims_for_warps: block count exceeds uint32 range");
  }
  LaunchDims dims;
  dims.warps_per_block = 1;
  dims.blocks = static_cast<std::uint32_t>(n_warps);
  dims.total_threads = n_warps * kWarpSize;
  return dims;
}

void DeviceSim::run_serial(const LaunchDims& dims, const WarpFn& kernel,
                           Sanitizer* san, std::uint64_t launch_threads,
                           KernelStats& stats,
                           std::vector<std::uint64_t>& sm_cycles) {
  // One pooled context for the whole launch: reset_warp() re-arms it per
  // warp, so the >=96 KiB shared arena is allocated once per launch
  // instead of once per simulated warp.
  CycleCounters warp_counters;
  WarpCtx ctx(0, 0, dims.warps_per_block, kWarpSize, cfg_, warp_counters,
              san);

  for (std::uint32_t block = 0; block < dims.blocks; ++block) {
    std::uint64_t block_cycles = 0;
    for (std::uint32_t w = 0; w < dims.warps_per_block; ++w) {
      const std::uint64_t warp_first_thread =
          (static_cast<std::uint64_t>(block) * dims.warps_per_block + w) *
          kWarpSize;
      const int lanes = lanes_for_warp(warp_first_thread, launch_threads);
      if (lanes == 0) continue;  // fully past tail

      warp_counters = CycleCounters{};
      ctx.reset_warp(block, w, lanes);
      kernel(ctx);

      block_cycles += warp_counters.total_cycles();
      stats.counters.add(warp_counters);
      ++stats.warps;
    }

    if (dims.policy == SchedulePolicy::kRoundRobin) {
      sm_cycles[block % cfg_.num_sms] += block_cycles;
    } else {
      // List scheduling: the block lands on whichever SM frees up first.
      auto least = std::min_element(sm_cycles.begin(), sm_cycles.end());
      *least += block_cycles;
    }
  }
}

void DeviceSim::run_parallel(const LaunchDims& dims, const WarpFn& kernel,
                             std::uint64_t launch_threads,
                             KernelStats& stats,
                             std::vector<std::uint64_t>& block_cycles) {
  if (!pool_ || pool_->slot_count() != cfg_.host_threads) {
    pool_ = std::make_unique<HostPool>(cfg_.host_threads - 1);
  }
  const std::uint32_t slots = pool_->slot_count();

  // Contiguous block chunks, several per thread so stragglers rebalance;
  // chunk boundaries depend only on (blocks, host_threads), never on
  // execution order.
  const std::uint32_t chunk_blocks =
      std::max<std::uint32_t>(1, dims.blocks / (slots * 8));
  const std::uint32_t num_chunks =
      (dims.blocks + chunk_blocks - 1) / chunk_blocks;

  std::vector<CycleCounters> chunk_counters(num_chunks);
  std::vector<std::uint64_t> chunk_warps(num_chunks, 0);

  // Per-slot pooled state, created lazily on the executing thread. Each
  // slot index is only ever touched by one thread per run().
  struct SlotCtx {
    CycleCounters counters;
    WarpCtx ctx;
    SlotCtx(const SimConfig& cfg, std::uint32_t warps_per_block)
        : ctx(0, 0, warps_per_block, kWarpSize, cfg, counters, nullptr) {
      ctx.set_concurrent(true);
    }
  };
  std::vector<std::unique_ptr<SlotCtx>> slot_ctx(slots);

  pool_->run(num_chunks, [&](std::uint32_t chunk, unsigned slot) {
    auto& sc = slot_ctx[slot];
    if (!sc) sc = std::make_unique<SlotCtx>(cfg_, dims.warps_per_block);

    const std::uint32_t begin = chunk * chunk_blocks;
    const std::uint32_t end =
        std::min<std::uint32_t>(begin + chunk_blocks, dims.blocks);
    for (std::uint32_t block = begin; block < end; ++block) {
      std::uint64_t cycles = 0;
      for (std::uint32_t w = 0; w < dims.warps_per_block; ++w) {
        const std::uint64_t warp_first_thread =
            (static_cast<std::uint64_t>(block) * dims.warps_per_block + w) *
            kWarpSize;
        const int lanes = lanes_for_warp(warp_first_thread, launch_threads);
        if (lanes == 0) continue;

        sc->counters = CycleCounters{};
        sc->ctx.reset_warp(block, w, lanes);
        kernel(sc->ctx);

        cycles += sc->counters.total_cycles();
        chunk_counters[chunk].add(sc->counters);
        ++chunk_warps[chunk];
      }
      block_cycles[block] = cycles;
    }
  });

  // Deterministic reduction: chunks are contiguous ascending block ranges,
  // so accumulating them in chunk order is accumulation in block order.
  for (std::uint32_t c = 0; c < num_chunks; ++c) {
    stats.counters.add(chunk_counters[c]);
    stats.warps += chunk_warps[c];
  }
}

KernelStats DeviceSim::launch(const LaunchDims& dims, const WarpFn& kernel) {
  Sanitizer* san = nullptr;
  if (cfg_.sanitize) {
    // Lazily created so toggling sanitize via mutable_config() also works.
    if (!sanitizer_) sanitizer_ = std::make_unique<Sanitizer>(cfg_);
    san = sanitizer_.get();
    san->begin_launch(dims.label.empty()
                          ? "kernel#" + std::to_string(launch_seq_)
                          : dims.label);
  }
  ++launch_seq_;

  KernelStats stats;
  stats.blocks = dims.blocks;
  stats.warps = 0;  // counted as warps actually execute (tail warps skip)

  std::vector<std::uint64_t> sm_cycles(cfg_.num_sms, 0);
  const std::uint64_t launch_threads =
      dims.total_threads ? dims.total_threads
                         : dims.warp_count() * kWarpSize;

  // The sanitizer's shadow state is single-threaded by design, so
  // sanitized launches always run on the serial engine.
  const bool parallel =
      cfg_.host_threads > 1 && san == nullptr && dims.blocks > 1;

  if (!parallel) {
    run_serial(dims, kernel, san, launch_threads, stats, sm_cycles);
  } else {
    std::vector<std::uint64_t> block_cycles(dims.blocks, 0);
    run_parallel(dims, kernel, launch_threads, stats, block_cycles);
    // Replay the block->SM schedule serially in block order: identical to
    // what the serial loop would compute from the same per-block cycles.
    for (std::uint32_t block = 0; block < dims.blocks; ++block) {
      if (dims.policy == SchedulePolicy::kRoundRobin) {
        sm_cycles[block % cfg_.num_sms] += block_cycles[block];
      } else {
        auto least = std::min_element(sm_cycles.begin(), sm_cycles.end());
        *least += block_cycles[block];
      }
    }
  }

  const std::uint64_t busiest =
      sm_cycles.empty() ? 0 : *std::max_element(sm_cycles.begin(),
                                                sm_cycles.end());
  stats.elapsed_cycles = cfg_.kernel_launch_overhead_cycles + busiest;
  stats.busy_cycles =
      cfg_.kernel_launch_overhead_cycles + stats.counters.total_cycles();
  return stats;
}

}  // namespace maxwarp::simt

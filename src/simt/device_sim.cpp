#include "simt/device_sim.hpp"

#include <algorithm>
#include <vector>

namespace maxwarp::simt {

DeviceSim::DeviceSim(SimConfig cfg)
    : cfg_((cfg.validate(), cfg)), timeline_(cfg_) {
  if (cfg_.sanitize) sanitizer_ = std::make_unique<Sanitizer>(cfg_);
}

LaunchDims DeviceSim::dims_for_threads(std::uint64_t n) const {
  LaunchDims dims;
  dims.warps_per_block = cfg_.default_warps_per_block;
  const std::uint64_t threads_per_block =
      static_cast<std::uint64_t>(dims.warps_per_block) * kWarpSize;
  dims.blocks = static_cast<std::uint32_t>(
      (n + threads_per_block - 1) / threads_per_block);
  dims.total_threads = n;
  return dims;
}

LaunchDims DeviceSim::dims_for_warps(std::uint64_t n_warps) const {
  LaunchDims dims;
  dims.warps_per_block = 1;
  dims.blocks = static_cast<std::uint32_t>(n_warps);
  dims.total_threads = n_warps * kWarpSize;
  return dims;
}

KernelStats DeviceSim::launch(const LaunchDims& dims, const WarpFn& kernel) {
  Sanitizer* san = nullptr;
  if (cfg_.sanitize) {
    // Lazily created so toggling sanitize via mutable_config() also works.
    if (!sanitizer_) sanitizer_ = std::make_unique<Sanitizer>(cfg_);
    san = sanitizer_.get();
    san->begin_launch(dims.label.empty()
                          ? "kernel#" + std::to_string(launch_seq_)
                          : dims.label);
  }
  ++launch_seq_;

  KernelStats stats;
  stats.blocks = dims.blocks;
  stats.warps = 0;  // counted as warps actually execute (tail warps skip)

  std::vector<std::uint64_t> sm_cycles(cfg_.num_sms, 0);
  const std::uint64_t launch_threads =
      dims.total_threads ? dims.total_threads
                         : dims.warp_count() * kWarpSize;

  for (std::uint32_t block = 0; block < dims.blocks; ++block) {
    std::uint64_t block_cycles = 0;
    for (std::uint32_t w = 0; w < dims.warps_per_block; ++w) {
      const std::uint64_t warp_first_thread =
          (static_cast<std::uint64_t>(block) * dims.warps_per_block + w) *
          kWarpSize;
      if (warp_first_thread >= launch_threads) continue;  // fully past tail
      const std::uint64_t remaining = launch_threads - warp_first_thread;
      const int lanes =
          static_cast<int>(std::min<std::uint64_t>(remaining, kWarpSize));

      CycleCounters warp_counters;
      WarpCtx ctx(block, w, dims.warps_per_block, lanes, cfg_,
                  warp_counters, san);
      kernel(ctx);

      block_cycles += warp_counters.total_cycles();
      stats.counters.add(warp_counters);
      ++stats.warps;
    }

    if (dims.policy == SchedulePolicy::kRoundRobin) {
      sm_cycles[block % cfg_.num_sms] += block_cycles;
    } else {
      // List scheduling: the block lands on whichever SM frees up first.
      auto least = std::min_element(sm_cycles.begin(), sm_cycles.end());
      *least += block_cycles;
    }
  }

  const std::uint64_t busiest =
      sm_cycles.empty() ? 0 : *std::max_element(sm_cycles.begin(),
                                                sm_cycles.end());
  stats.elapsed_cycles = cfg_.kernel_launch_overhead_cycles + busiest;
  stats.busy_cycles =
      cfg_.kernel_launch_overhead_cycles + stats.counters.total_cycles();
  return stats;
}

}  // namespace maxwarp::simt

// Device-level execution engine: runs the warps of a kernel launch (on
// one host thread, or a persistent worker pool when
// SimConfig::host_threads > 1), schedules the blocks across simulated SMs
// and aggregates timing.
//
// Throughput model: every warp's charged cycles are summed per SM (blocks
// are assigned round-robin), and the launch's modeled elapsed time is the
// busiest SM plus a fixed launch overhead. This assumes occupancy hides
// latency — the standard first-order model for bandwidth-bound kernels —
// while still exposing cross-SM load imbalance.
//
// The parallel engine partitions a launch's blocks into contiguous chunks
// that host threads claim dynamically. Per-chunk cycle counters are
// reduced in block order afterwards and the block->SM schedule is replayed
// serially from the per-block cycle totals, so the *timing* model is
// evaluated exactly as the serial engine evaluates it. What can differ
// from serial execution is cross-block memory visibility inside one
// launch (see warp_ctx.hpp's contract comment and DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simt/access.hpp"
#include "simt/config.hpp"
#include "simt/fault.hpp"
#include "simt/host_pool.hpp"
#include "simt/sanitizer.hpp"
#include "simt/stats.hpp"
#include "simt/timeline.hpp"
#include "simt/warp_ctx.hpp"

namespace maxwarp::simt {

/// How block work is placed onto SMs for timing purposes.
///
/// kRoundRobin pins block b to SM (b % num_sms) — the *static* workload
/// distribution the paper's baseline uses (task ownership fixed up front,
/// no rebalancing). kLeastLoaded assigns each block, in launch order, to
/// the SM that frees up first — the behaviour of *dynamic* work
/// distribution, where warps claim chunks from a global pool as they
/// finish. Dynamic kernels in this library pay for that freedom with the
/// atomic chunk-claim they execute (charged by the memory model).
enum class SchedulePolicy { kRoundRobin, kLeastLoaded };

struct LaunchDims {
  std::uint32_t blocks = 0;
  std::uint32_t warps_per_block = 0;

  /// Total logical threads; the tail warp runs with fewer active lanes.
  /// 0 means "every warp is full".
  std::uint64_t total_threads = 0;

  SchedulePolicy policy = SchedulePolicy::kRoundRobin;

  /// Optional kernel name used in sanitizer diagnostics and reports.
  /// Unlabeled launches report as "kernel#<launch ordinal>".
  std::string label;

  /// Optional declared access set consumed by the launch-graph recorder
  /// (SimConfig::record_launch_graph) when the sanitizer is not armed to
  /// capture accesses exactly. Empty means "accesses unknown"; a
  /// non-empty list must cover every buffer the kernel touches.
  std::vector<KernelAccessDecl> accesses;

  std::uint64_t warp_count() const {
    return static_cast<std::uint64_t>(blocks) * warps_per_block;
  }

  /// Fluent label setter: device.launch(dims.named("bfs.expand"), ...).
  LaunchDims named(std::string name) const {
    LaunchDims d = *this;
    d.label = std::move(name);
    return d;
  }

  /// Fluent access-declaration helpers, chained like named():
  ///   dims.named("bfs.expand").reads(row.vaddr).atomics(next.vaddr)
  LaunchDims declares(std::uint64_t vaddr, std::uint8_t modes) const {
    LaunchDims d = *this;
    d.accesses.push_back({vaddr, modes});
    return d;
  }
  LaunchDims reads(std::uint64_t vaddr) const {
    return declares(vaddr, kAccessRead);
  }
  LaunchDims writes(std::uint64_t vaddr) const {
    return declares(vaddr, kAccessWrite);
  }
  LaunchDims reads_writes(std::uint64_t vaddr) const {
    return declares(vaddr, kAccessRead | kAccessWrite);
  }
  LaunchDims atomics(std::uint64_t vaddr) const {
    return declares(vaddr, kAccessAtomic);
  }
};

/// A kernel body, invoked once per warp.
using WarpFn = std::function<void(WarpCtx&)>;

class DeviceSim {
 public:
  explicit DeviceSim(SimConfig cfg = {});

  const SimConfig& config() const { return cfg_; }
  SimConfig& mutable_config() { return cfg_; }

  /// Runs one kernel launch to completion (device-wide barrier semantics).
  KernelStats launch(const LaunchDims& dims, const WarpFn& kernel);

  /// Computes dims covering n logical threads with the configured
  /// default block size. Throws std::overflow_error when the required
  /// block count does not fit LaunchDims::blocks (uint32).
  LaunchDims dims_for_threads(std::uint64_t n) const;

  /// Dims with exactly one warp per block, n_warps blocks: maximum
  /// scheduling freedom, used by work-queue kernels that size themselves.
  /// Throws std::overflow_error when n_warps does not fit uint32.
  LaunchDims dims_for_warps(std::uint64_t n_warps) const;

  /// The sanitizer instance, or nullptr when SimConfig::sanitize is off.
  /// Created at construction so allocations made before the first launch
  /// are registered in the shadow map.
  Sanitizer* sanitizer() { return sanitizer_.get(); }
  const Sanitizer* sanitizer() const { return sanitizer_.get(); }

  /// The overlap-aware schedule of everything launched/copied on this
  /// device (see simt/timeline.hpp). launch() itself only *executes* and
  /// prices a kernel; the host runtime (gpu::Device / gpu::Stream) queues
  /// the resulting spans here to account concurrency across streams.
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// The fault-injection engine (simt/fault.hpp), disarmed by default.
  /// Like the timeline, the injector only lives here; the host runtime
  /// (gpu::Device) consults it per launch/allocation and applies the
  /// outcomes, because outcomes need the allocation registry and the
  /// Status error channel that live up there.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

 private:
  /// Serial engine: one pooled WarpCtx, warps in launch order, SM
  /// scheduling folded into the loop (no per-block storage needed).
  void run_serial(const LaunchDims& dims, const WarpFn& kernel,
                  Sanitizer* san, std::uint64_t launch_threads,
                  KernelStats& stats, std::vector<std::uint64_t>& sm_cycles);

  /// Parallel engine: blocks on the worker pool, per-chunk counters
  /// reduced in block order, block cycles recorded for the schedule
  /// replay in launch().
  void run_parallel(const LaunchDims& dims, const WarpFn& kernel,
                    std::uint64_t launch_threads, KernelStats& stats,
                    std::vector<std::uint64_t>& block_cycles);

  SimConfig cfg_;
  std::unique_ptr<Sanitizer> sanitizer_;
  std::unique_ptr<HostPool> pool_;  ///< lazily created, persists launches
  Timeline timeline_;
  FaultInjector faults_;
  std::uint64_t launch_seq_ = 0;
};

}  // namespace maxwarp::simt

// Typed device-memory handles.
//
// A DevPtr couples the host backing store (the simulator executes
// functionally on host memory) with a simulated global *virtual address*,
// which is what the memory model coalesces on. Buffers are allocated by
// gpu::Device with 256-byte-aligned virtual bases, so address arithmetic
// reproduces the alignment behaviour of real global memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace maxwarp::simt {

template <typename T>
struct DevPtr {
  static_assert(std::is_trivially_copyable_v<std::remove_const_t<T>>,
                "device data must be trivially copyable");

  T* host = nullptr;
  std::uint64_t vaddr = 0;

  DevPtr() = default;
  DevPtr(T* host_ptr, std::uint64_t virtual_addr)
      : host(host_ptr), vaddr(virtual_addr) {}

  /// Implicit const-qualification, mirroring T* -> const T*.
  operator DevPtr<const T>() const { return {host, vaddr}; }

  DevPtr operator+(std::uint64_t elems) const {
    return {host + elems, vaddr + elems * sizeof(std::remove_const_t<T>)};
  }

  std::uint64_t element_vaddr(std::uint64_t idx) const {
    return vaddr + idx * sizeof(std::remove_const_t<T>);
  }

  bool null() const { return host == nullptr; }
};

}  // namespace maxwarp::simt

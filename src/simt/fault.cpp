#include "simt/fault.hpp"

#include <charconv>
#include <stdexcept>

namespace maxwarp::simt {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEccCorrectable: return "ecc";
    case FaultKind::kEccUncorrectable: return "ecc-fatal";
    case FaultKind::kKernelHang: return "hang";
    case FaultKind::kAllocFail: return "alloc";
    case FaultKind::kLaunchFail: return "launch";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_plan(std::string_view text, const std::string& why) {
  throw std::invalid_argument("FaultPlan::parse: " + why + " in \"" +
                              std::string(text) + "\"");
}

std::uint64_t parse_u64(std::string_view text, std::string_view tok) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || p != tok.data() + tok.size())
    bad_plan(text, "bad integer '" + std::string(tok) + "'");
  return v;
}

double parse_prob(std::string_view text, std::string_view tok) {
  try {
    std::size_t used = 0;
    double v = std::stod(std::string(tok), &used);
    if (used != tok.size() || v < 0.0 || v > 1.0) throw std::exception();
    return v;
  } catch (...) {
    bad_plan(text, "bad probability '" + std::string(tok) + "'");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::string_view rest = text;
  while (!rest.empty()) {
    auto semi = rest.find(';');
    std::string_view item = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    // Trim surrounding spaces.
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item.empty()) continue;

    if (item.substr(0, 5) == "seed=") {
      plan.seed = parse_u64(text, item.substr(5));
      continue;
    }
    if (item.substr(0, 4) == "oom=") {
      plan.oom_byte_budget = parse_u64(text, item.substr(4));
      continue;
    }

    FaultSpec spec;
    auto colon = item.find(':');
    std::string_view kind = item.substr(0, colon);
    if (kind == "ecc") spec.kind = FaultKind::kEccCorrectable;
    else if (kind == "ecc-fatal") spec.kind = FaultKind::kEccUncorrectable;
    else if (kind == "hang") spec.kind = FaultKind::kKernelHang;
    else if (kind == "alloc") spec.kind = FaultKind::kAllocFail;
    else if (kind == "launch") spec.kind = FaultKind::kLaunchFail;
    else bad_plan(text, "unknown fault kind '" + std::string(kind) + "'");

    item = colon == std::string_view::npos ? std::string_view{}
                                           : item.substr(colon + 1);
    while (!item.empty()) {
      colon = item.find(':');
      std::string_view opt = item.substr(0, colon);
      item = colon == std::string_view::npos ? std::string_view{}
                                             : item.substr(colon + 1);
      if (opt.substr(0, 2) == "p=") {
        spec.trigger.probability = parse_prob(text, opt.substr(2));
      } else if (opt.substr(0, 4) == "nth=") {
        std::string_view v = opt.substr(4);
        if (!v.empty() && v.back() == '+') {
          spec.trigger.sticky = true;
          v.remove_suffix(1);
        }
        spec.trigger.nth = parse_u64(text, v);
        if (spec.trigger.nth == 0) bad_plan(text, "nth must be >= 1");
      } else if (opt.substr(0, 6) == "label=") {
        spec.label = std::string(opt.substr(6));
      } else if (opt.substr(0, 4) == "max=") {
        spec.max_fires = parse_u64(text, opt.substr(4));
      } else {
        bad_plan(text, "unknown option '" + std::string(opt) + "'");
      }
    }
    if (spec.trigger.probability == 0.0 && spec.trigger.nth == 0)
      bad_plan(text, "fault needs a trigger (p= or nth=)");
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  auto append = [&out](const std::string& item) {
    if (!out.empty()) out += ';';
    out += item;
  };
  for (const FaultSpec& spec : faults) {
    std::string item = simt::to_string(spec.kind);
    if (spec.trigger.nth > 0) {
      item += ":nth=" + std::to_string(spec.trigger.nth);
      if (spec.trigger.sticky) item += '+';
    } else {
      item += ":p=" + std::to_string(spec.trigger.probability);
    }
    if (!spec.label.empty()) item += ":label=" + spec.label;
    if (spec.max_fires != 1) item += ":max=" + std::to_string(spec.max_fires);
    append(item);
  }
  if (oom_byte_budget > 0) append("oom=" + std::to_string(oom_byte_budget));
  append("seed=" + std::to_string(seed));
  return out;
}

void FaultInjector::arm(FaultPlan plan) {
  plan_ = std::move(plan);
  armed_ = true;
  rng_ = util::Rng(plan_.seed);
  state_.assign(plan_.faults.size(), SpecState{});
  history_.clear();
  launches_seen_ = 0;
  allocs_seen_ = 0;
}

void FaultInjector::disarm() { armed_ = false; }

bool FaultInjector::should_fire(std::size_t i) {
  const FaultSpec& spec = plan_.faults[i];
  SpecState& st = state_[i];
  ++st.occurrences;
  if (spec.max_fires > 0 && st.fires >= spec.max_fires) return false;
  bool fire;
  if (spec.trigger.nth > 0) {
    fire = spec.trigger.sticky ? st.occurrences >= spec.trigger.nth
                               : st.occurrences == spec.trigger.nth;
  } else {
    // One draw per eligible occurrence, fired or not, so the stream
    // position depends only on the operation sequence.
    fire = rng_.next_bool(spec.trigger.probability);
  }
  if (fire) ++st.fires;
  return fire;
}

std::optional<FaultEvent> FaultInjector::on_launch(
    std::string_view label, std::uint64_t resident_bytes) {
  if (!armed_) return std::nullopt;
  ++launches_seen_;
  // Every spec observes every eligible launch (counters and probability
  // draws advance unconditionally) so one spec firing cannot shift
  // another spec's occurrence stream. The first firing spec claims the
  // launch; a later spec's fire on the same launch is swallowed.
  std::optional<FaultEvent> result;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind == FaultKind::kAllocFail) continue;
    if (!spec.label.empty() && label.find(spec.label) == std::string_view::npos)
      continue;
    bool is_ecc = spec.kind == FaultKind::kEccCorrectable ||
                  spec.kind == FaultKind::kEccUncorrectable;
    if (is_ecc && resident_bytes == 0) continue;  // nothing to corrupt
    if (!should_fire(i) || result) continue;

    FaultEvent ev;
    ev.kind = spec.kind;
    ev.occurrence = state_[i].occurrences;
    ev.label = std::string(label);
    if (is_ecc) {
      ev.byte_offset = rng_.next_below(resident_bytes);
      ev.bit = static_cast<std::uint32_t>(rng_.next_below(8));
    }
    result = std::move(ev);
  }
  if (result) history_.push_back(*result);
  return result;
}

bool FaultInjector::on_alloc(std::uint64_t bytes, std::uint64_t live_bytes) {
  if (!armed_) return false;
  ++allocs_seen_;
  // Spec counters advance on every allocation even when the byte budget
  // already refuses it — see the counter-stability note in on_launch.
  bool fail = false;
  std::uint64_t occurrence = allocs_seen_;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (plan_.faults[i].kind != FaultKind::kAllocFail) continue;
    if (should_fire(i) && !fail) {
      fail = true;
      occurrence = state_[i].occurrences;
    }
  }
  if (plan_.oom_byte_budget > 0 &&
      (bytes > plan_.oom_byte_budget ||
       live_bytes > plan_.oom_byte_budget - bytes)) {
    fail = true;
    occurrence = allocs_seen_;
  }
  if (fail) {
    FaultEvent ev;
    ev.kind = FaultKind::kAllocFail;
    ev.occurrence = occurrence;
    history_.push_back(ev);
  }
  return fail;
}

}  // namespace maxwarp::simt

// Deterministic, seedable fault injection for the SIMT simulator.
//
// Real GPU serving fleets see transient ECC events, hung kernels,
// allocation failures and launch rejections. None of those can be
// provoked on demand against real hardware, which is exactly why the
// recovery paths above them rot. The simulator can do better: a
// FaultInjector owned by DeviceSim decides — from a fixed-seed RNG and a
// declarative FaultPlan — which kernel launches and allocations fail and
// how, so every failure scenario is a reproducible test input.
//
// Determinism contract: given the same FaultPlan (same seed) and the same
// sequence of operations (launch labels in order, allocation sizes in
// order), the injector makes bit-identical decisions. Probability
// triggers draw from one xoshiro256** stream advanced once per *eligible*
// operation, so unrelated code paths cannot perturb each other's draws.
//
// The injector only *decides*; applying an outcome (flipping a bit in a
// buffer, timing out a launch, failing an allocation) is the host
// runtime's job (gpu::Device), which owns the allocation registry and the
// Status error channel. See DESIGN.md "Fault model and recovery".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace maxwarp::simt {

enum class FaultKind {
  /// Single-bit memory flip, corrected by ECC: the data is unharmed but
  /// the event is logged (and, on real hardware, the error counter
  /// ticks). Launch succeeds.
  kEccCorrectable,
  /// Multi-bit / uncorrectable flip: a bit in some live allocation is
  /// actually corrupted and the launch is aborted (its side effects
  /// never land, as on real hardware) reporting ECC_UNCORRECTABLE.
  /// Recovery must assume any resident data — results or topology —
  /// may be the victim.
  kEccUncorrectable,
  /// Kernel hang: the launch runs to the watchdog deadline and is
  /// reported DEADLINE_EXCEEDED; its side effects are indeterminate
  /// (the simulator lets them land, which is the adversarial case for
  /// recovery code).
  kKernelHang,
  /// Allocation failure: the next matching allocation reports
  /// OUT_OF_MEMORY.
  kAllocFail,
  /// Launch rejection: the kernel never runs; only launch overhead is
  /// charged. Reported LAUNCH_FAILED.
  kLaunchFail,
};

const char* to_string(FaultKind kind);

/// When a FaultSpec fires. Exactly one of `probability` / `nth` is used:
/// nth > 0 counts *eligible* occurrences (label-matched launches, or
/// allocations) and fires on the nth one; otherwise each eligible
/// occurrence fires independently with `probability`.
struct FaultTrigger {
  double probability = 0.0;
  std::uint64_t nth = 0;
  /// With nth: keep firing on every occurrence >= nth ("sticky"), not
  /// just the nth itself. Used to model a persistently bad path (a
  /// kernel that will never succeed), which is what drives code down the
  /// degradation ladder rather than round a retry loop.
  bool sticky = false;
};

/// One injectable fault: what to inject, when, and where.
struct FaultSpec {
  FaultKind kind = FaultKind::kLaunchFail;
  FaultTrigger trigger;
  /// Substring filter on the kernel label; empty matches every launch.
  /// Ignored by kAllocFail (allocations have no label).
  std::string label;
  /// Cap on total fires; 0 = unlimited. Default 1: most tests want one
  /// well-placed failure, not a storm.
  std::uint64_t max_fires = 1;
};

/// A complete armed scenario: an ordered list of fault specs (first
/// matching spec fires; at most one fault per operation) plus the RNG
/// seed and an optional device byte budget.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 1;
  /// When > 0, Device::try_allocate fails with OUT_OF_MEMORY once live
  /// bytes would exceed this budget — deterministic OOM without a spec.
  std::uint64_t oom_byte_budget = 0;

  bool empty() const { return faults.empty() && oom_byte_budget == 0; }

  /// Parses the compact plan syntax used by tests, examples and the
  /// fault_drill CLI:
  ///
  ///   plan   := item (';' item)*
  ///   item   := fault | "seed=" N | "oom=" BYTES
  ///   fault  := kind (':' opt)*
  ///   kind   := "ecc" | "ecc-fatal" | "hang" | "alloc" | "launch"
  ///   opt    := "p=" FLOAT | "nth=" N ['+'] | "label=" SUBSTR | "max=" N
  ///
  /// Examples:
  ///   "launch:nth=3:label=bfs.level"        fail the 3rd bfs.level launch
  ///   "ecc-fatal:p=0.01;seed=42"            1% uncorrectable ECC, seed 42
  ///   "hang:nth=1+:label=msbfs:max=0"       every msbfs launch hangs
  ///
  /// Throws std::invalid_argument on malformed input.
  static FaultPlan parse(std::string_view text);

  /// Round-trips back to the parse() syntax (diagnostics, fault_drill).
  std::string to_string() const;
};

/// One injected fault, as recorded in the injector's history.
struct FaultEvent {
  FaultKind kind = FaultKind::kLaunchFail;
  std::uint64_t occurrence = 0;  ///< eligible-op ordinal that fired (1-based)
  std::string label;             ///< kernel label ("" for allocations)
  /// ECC only: flat byte offset into the victim allocation and bit index,
  /// chosen by the injector; the device resolves them to an allocation.
  std::uint64_t byte_offset = 0;
  std::uint32_t bit = 0;
};

/// The per-operation decision engine. Owned by DeviceSim (one per
/// simulated device); consulted by gpu::Device on every kernel launch and
/// allocation. All methods are deterministic functions of (plan, history
/// of calls).
class FaultInjector {
 public:
  /// Arms `plan`. Resets all counters and reseeds the RNG, so arming the
  /// same plan twice replays the same decision sequence.
  void arm(FaultPlan plan);

  /// Disarms; subsequent operations are fault-free. History is kept.
  void disarm();

  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Decision for a kernel launch with the given label. Returns the fault
  /// to apply, or nullopt for a clean launch. kAllocFail specs never
  /// match here. For ECC kinds the event carries a (byte_offset, bit)
  /// drawn over `resident_bytes` (the device's current live footprint);
  /// resident_bytes == 0 suppresses ECC faults (nothing to corrupt).
  std::optional<FaultEvent> on_launch(std::string_view label,
                                      std::uint64_t resident_bytes);

  /// Decision for an allocation of `bytes` with `live_bytes` already
  /// resident. True = fail the allocation. Covers both kAllocFail specs
  /// and the plan's oom_byte_budget.
  bool on_alloc(std::uint64_t bytes, std::uint64_t live_bytes);

  /// Every fault injected since the last arm(), in order.
  const std::vector<FaultEvent>& history() const { return history_; }

  std::uint64_t launches_seen() const { return launches_seen_; }
  std::uint64_t allocs_seen() const { return allocs_seen_; }

 private:
  struct SpecState {
    std::uint64_t occurrences = 0;  ///< eligible ops seen by this spec
    std::uint64_t fires = 0;
  };

  /// Whether spec `i` fires for its current eligible occurrence.
  bool should_fire(std::size_t i);

  FaultPlan plan_;
  bool armed_ = false;
  util::Rng rng_{1};
  std::vector<SpecState> state_;
  std::vector<FaultEvent> history_;
  std::uint64_t launches_seen_ = 0;
  std::uint64_t allocs_seen_ = 0;
};

}  // namespace maxwarp::simt

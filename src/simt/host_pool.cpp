#include "simt/host_pool.hpp"

namespace maxwarp::simt {

HostPool::HostPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i + 1); });
  }
}

HostPool::~HostPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void HostPool::drain_tasks(const TaskFn& fn, std::uint32_t num_tasks,
                           unsigned slot) {
  while (!failed_.load(std::memory_order_relaxed)) {
    const std::uint32_t t =
        next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= num_tasks) break;
    try {
      fn(t, slot);
    } catch (...) {
      failed_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void HostPool::run(std::uint32_t num_tasks, const TaskFn& fn) {
  if (num_tasks == 0) return;
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  if (workers_.empty()) {
    drain_tasks(fn, num_tasks, 0);
    if (first_error_) std::rethrow_exception(first_error_);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    busy_workers_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is slot 0: claim tasks alongside the workers.
  drain_tasks(fn, num_tasks, 0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void HostPool::worker_main(unsigned slot) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const TaskFn* job = nullptr;
    std::uint32_t num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      num_tasks = num_tasks_;
    }
    drain_tasks(*job, num_tasks, slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_workers_;
      if (busy_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace maxwarp::simt

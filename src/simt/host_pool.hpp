// Persistent host worker pool for the parallel execution engine.
//
// DeviceSim keeps one HostPool alive across kernel launches (thread
// creation per launch would dwarf the simulation of small kernels) and
// dispatches the blocks of each launch to it as an indexed task range.
// Tasks are claimed from a shared atomic cursor, so chunks of blocks
// balance dynamically across workers; the calling thread participates as
// slot 0 instead of idling. run() returns only after every task finished,
// and its mutex handshake publishes all worker writes to the caller — the
// device-wide barrier a kernel launch already promises.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace maxwarp::simt {

class HostPool {
 public:
  /// Task body: fn(task_index, slot). `slot` identifies the executing
  /// thread (0 = caller, 1..worker_count() = pool workers) so callers can
  /// keep per-thread scratch without locking.
  using TaskFn = std::function<void(std::uint32_t, unsigned)>;

  /// Spawns `workers` persistent worker threads (0 is allowed: run() then
  /// executes everything on the calling thread).
  explicit HostPool(unsigned workers);

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  ~HostPool();

  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Number of distinct `slot` values tasks may observe.
  unsigned slot_count() const { return worker_count() + 1; }

  /// Runs fn(t, slot) for every t in [0, num_tasks), returning when all
  /// tasks completed. Not reentrant: one run() at a time per pool. If any
  /// task throws, remaining tasks are abandoned (already-claimed ones still
  /// finish) and the first exception is rethrown on the calling thread.
  void run(std::uint32_t num_tasks, const TaskFn& fn);

 private:
  void worker_main(unsigned slot);

  /// Claims and runs tasks until the cursor is exhausted or a task threw.
  /// Returns normally even on failure; the first exception is stashed.
  void drain_tasks(const TaskFn& fn, std::uint32_t num_tasks, unsigned slot);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< caller waits for workers to drain
  const TaskFn* job_ = nullptr;       ///< valid while a generation is live
  std::uint32_t num_tasks_ = 0;
  std::atomic<std::uint32_t> next_task_{0};
  std::atomic<bool> failed_{false};   ///< a task threw; stop claiming
  std::exception_ptr first_error_;    ///< guarded by mutex_
  unsigned busy_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace maxwarp::simt

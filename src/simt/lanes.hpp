// Per-lane register storage.
//
// A kernel's "registers" are Lanes<T> values: one slot per SIMD lane. The
// WarpCtx primitives read and write only the slots of active lanes, which
// is exactly the semantics of predicated SIMT execution.
#pragma once

#include <array>

#include "simt/config.hpp"

namespace maxwarp::simt {

template <typename T>
using Lanes = std::array<T, kWarpSize>;

template <typename T>
Lanes<T> make_lanes(const T& init) {
  Lanes<T> l;
  l.fill(init);
  return l;
}

}  // namespace maxwarp::simt

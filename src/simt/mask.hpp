// Lane-mask algebra for SIMT divergence tracking.
//
// A LaneMask is a 32-bit word with bit i set iff lane i is active, exactly
// like the hardware's active mask / CUDA's __ballot result.
#pragma once

#include <bit>
#include <cstdint>

#include "simt/config.hpp"

namespace maxwarp::simt {

using LaneMask = std::uint32_t;

inline constexpr LaneMask kFullMask = 0xffffffffu;

constexpr LaneMask lane_bit(int lane) {
  return LaneMask{1} << static_cast<unsigned>(lane);
}

constexpr bool lane_active(LaneMask m, int lane) {
  return (m & lane_bit(lane)) != 0;
}

constexpr int popcount(LaneMask m) { return std::popcount(m); }

/// Index of the lowest set lane, or -1 for the empty mask. Mirrors the
/// "leader election" idiom (__ffs(mask) - 1) from CUDA warp programming.
constexpr int first_lane(LaneMask m) {
  return m == 0 ? -1 : std::countr_zero(m);
}

/// Mask with the lanes [0, n) set; n in [0, 32].
constexpr LaneMask prefix_mask(int n) {
  return n >= kWarpSize ? kFullMask : (lane_bit(n) - 1);
}

/// Mask for a contiguous lane group: lanes [group*width, (group+1)*width).
/// This is the lane footprint of a *virtual warp* of the given width.
constexpr LaneMask group_mask(int group, int width) {
  const LaneMask base = prefix_mask(width);
  return base << static_cast<unsigned>(group * width);
}

/// Calls fn(lane) for each set lane, in increasing lane order. Lane order is
/// part of the simulator's determinism contract (atomics resolve in lane
/// order).
template <typename Fn>
void for_each_lane(LaneMask m, Fn&& fn) {
  while (m != 0) {
    const int lane = std::countr_zero(m);
    fn(lane);
    m &= m - 1;
  }
}

}  // namespace maxwarp::simt

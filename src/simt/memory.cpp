#include "simt/memory.hpp"

#include <algorithm>
#include <array>

namespace maxwarp::simt {

int MemoryModel::global_transactions(const std::uint64_t* addrs,
                                     LaneMask active,
                                     std::size_t access_bytes,
                                     std::uint32_t segment_bytes) {
  if (active == 0) return 0;
  // Collect the segment ids touched by every active lane. An element that
  // straddles a segment boundary touches two segments.
  std::array<std::uint64_t, 2 * kWarpSize> segments{};
  int count = 0;
  const std::uint64_t seg_bytes = segment_bytes;
  for_each_lane(active, [&](int lane) {
    const std::uint64_t first = addrs[lane] / seg_bytes;
    const std::uint64_t last = (addrs[lane] + access_bytes - 1) / seg_bytes;
    segments[static_cast<std::size_t>(count++)] = first;
    if (last != first) segments[static_cast<std::size_t>(count++)] = last;
  });
  std::sort(segments.begin(), segments.begin() + count);
  const auto unique_end = std::unique(segments.begin(),
                                      segments.begin() + count);
  return static_cast<int>(unique_end - segments.begin());
}

int MemoryModel::access_global(const std::uint64_t* addrs, LaneMask active,
                               std::size_t access_bytes) {
  if (active == 0) return 0;
  const int txns = global_transactions(addrs, active, access_bytes,
                                       cfg_.mem_transaction_bytes);

  counters_.global_transactions += static_cast<std::uint64_t>(txns);
  counters_.global_requests += static_cast<std::uint64_t>(popcount(active));
  counters_.global_bytes +=
      static_cast<std::uint64_t>(txns) * cfg_.mem_transaction_bytes;
  counters_.mem_cycles +=
      static_cast<std::uint64_t>(txns) * cfg_.cycles_per_mem_transaction;
  return txns;
}

int MemoryModel::access_atomic(const std::uint64_t* addrs, LaneMask active) {
  if (active == 0) return 0;
  std::array<std::uint64_t, kWarpSize> seen{};
  int distinct = 0;
  int conflicts = 0;
  for_each_lane(active, [&](int lane) {
    const std::uint64_t a = addrs[lane];
    bool dup = false;
    for (int i = 0; i < distinct; ++i) {
      if (seen[static_cast<std::size_t>(i)] == a) {
        dup = true;
        break;
      }
    }
    if (dup) {
      ++conflicts;
    } else {
      seen[static_cast<std::size_t>(distinct++)] = a;
    }
  });

  counters_.atomic_ops += static_cast<std::uint64_t>(popcount(active));
  counters_.atomic_conflicts += static_cast<std::uint64_t>(conflicts);
  counters_.mem_cycles +=
      static_cast<std::uint64_t>(distinct) * cfg_.cycles_per_atomic +
      static_cast<std::uint64_t>(conflicts) * cfg_.cycles_per_atomic_conflict;
  // Atomics also consume global-memory bandwidth.
  counters_.global_transactions += static_cast<std::uint64_t>(distinct);
  return conflicts;
}

int MemoryModel::shared_replays(const std::uint64_t* offsets,
                                LaneMask active) {
  if (active == 0) return 0;
  // bank = word index mod 32; identical addresses broadcast for free.
  std::array<int, kSharedBanks> bank_load{};
  std::array<std::uint64_t, kWarpSize> first_addr_in_bank{};
  std::array<bool, kSharedBanks> bank_multi{};
  for_each_lane(active, [&](int lane) {
    const std::uint64_t word = offsets[lane] / 4;
    const auto bank = static_cast<std::size_t>(word % kSharedBanks);
    if (bank_load[bank] == 0) {
      first_addr_in_bank[bank] = word;
      bank_load[bank] = 1;
    } else if (first_addr_in_bank[bank] != word || bank_multi[bank]) {
      // Distinct word in the same bank -> conflict. Treat any further
      // access after a conflict pessimistically as another replay.
      ++bank_load[bank];
      bank_multi[bank] = true;
    }
  });
  int replays = 0;
  for (int load : bank_load) replays = std::max(replays, load);
  return std::max(replays - 1, 0);
}

int MemoryModel::access_shared(const std::uint64_t* offsets, LaneMask active) {
  if (active == 0) return 0;
  const int replays = shared_replays(offsets, active);

  counters_.shared_accesses += static_cast<std::uint64_t>(popcount(active));
  counters_.shared_bank_conflict_replays +=
      static_cast<std::uint64_t>(replays);
  counters_.mem_cycles +=
      static_cast<std::uint64_t>(1 + replays) * cfg_.cycles_per_shared_access;
  return replays;
}

}  // namespace maxwarp::simt

// First-order GPU memory-system model.
//
// Global memory: the active lanes' byte addresses are partitioned into
// aligned segments of SimConfig::mem_transaction_bytes; each distinct
// segment costs one transaction. A unit-stride warp access to 4-byte words
// therefore costs 1 transaction, a fully scattered one costs up to 32 —
// this 32x spread is the coalescing effect the paper exploits.
//
// Atomics: transactions are counted like loads, and lanes whose address was
// already updated during the same instruction pay a serialization penalty.
//
// Shared memory: 32 banks x 4-byte words; the access replays once per extra
// conflicting lane on the most-contended bank (broadcast of identical
// addresses is free, as on hardware).
#pragma once

#include <cstddef>
#include <cstdint>

#include "simt/config.hpp"
#include "simt/mask.hpp"
#include "simt/stats.hpp"

namespace maxwarp::simt {

class MemoryModel {
 public:
  MemoryModel(const SimConfig& cfg, CycleCounters& counters)
      : cfg_(cfg), counters_(counters) {}

  /// Charges one warp-level global load/store. `addrs[lane]` must be filled
  /// for every active lane; `access_bytes` is the per-lane element size.
  /// Returns the number of transactions (for tests).
  int access_global(const std::uint64_t* addrs, LaneMask active,
                    std::size_t access_bytes);

  /// Charges one warp-level atomic instruction. Returns the number of
  /// serialized conflicts (extra same-address lanes).
  int access_atomic(const std::uint64_t* addrs, LaneMask active);

  /// Charges one warp-level shared-memory access on 4-byte words at the
  /// given byte offsets. Returns the replay count (0 = conflict free).
  int access_shared(const std::uint64_t* offsets, LaneMask active);

  /// Pure coalescing model: transactions needed for one warp access with
  /// the given segment size. Shared with the sanitizer's coalescing lint.
  static int global_transactions(const std::uint64_t* addrs, LaneMask active,
                                 std::size_t access_bytes,
                                 std::uint32_t segment_bytes);

  /// Pure bank-conflict model: replay count for one shared access. Shared
  /// with the sanitizer's bank-conflict lint.
  static int shared_replays(const std::uint64_t* offsets, LaneMask active);

 private:
  const SimConfig& cfg_;
  CycleCounters& counters_;
};

}  // namespace maxwarp::simt

// First-order GPU memory-system model.
//
// Global memory: the active lanes' byte addresses are partitioned into
// aligned segments of SimConfig::mem_transaction_bytes; each distinct
// segment costs one transaction. A unit-stride warp access to 4-byte words
// therefore costs 1 transaction, a fully scattered one costs up to 32 —
// this 32x spread is the coalescing effect the paper exploits.
//
// Atomics: transactions are counted like loads, and lanes whose address was
// already updated during the same instruction pay a serialization penalty.
//
// Shared memory: 32 banks x 4-byte words; the access replays once per extra
// conflicting lane on the most-contended bank (broadcast of identical
// addresses is free, as on hardware).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simt/config.hpp"
#include "simt/mask.hpp"
#include "simt/stats.hpp"

namespace maxwarp::simt {

class MemoryModel {
 public:
  MemoryModel(const SimConfig& cfg, CycleCounters& counters)
      : cfg_(cfg), counters_(counters) {}

  // The access charge functions below run once per simulated warp memory
  // instruction — tens of millions of times per benchmark run — so they
  // are defined inline here: the callers in warp_ctx.hpp are themselves
  // header-inline and the compiler folds the whole charge into the
  // interpreter loop instead of issuing an out-of-line call per access.

  /// Charges one warp-level global load/store. `addrs[lane]` must be filled
  /// for every active lane; `access_bytes` is the per-lane element size.
  /// Returns the number of transactions (for tests).
  int access_global(const std::uint64_t* addrs, LaneMask active,
                    std::size_t access_bytes) {
    if (active == 0) return 0;
    const int txns = global_transactions(addrs, active, access_bytes,
                                         cfg_.mem_transaction_bytes);

    counters_.global_transactions += static_cast<std::uint64_t>(txns);
    counters_.global_requests += static_cast<std::uint64_t>(popcount(active));
    counters_.global_bytes +=
        static_cast<std::uint64_t>(txns) * cfg_.mem_transaction_bytes;
    counters_.mem_cycles +=
        static_cast<std::uint64_t>(txns) * cfg_.cycles_per_mem_transaction;
    return txns;
  }

  /// Charges one warp-level atomic instruction. Returns the number of
  /// serialized conflicts (extra same-address lanes).
  int access_atomic(const std::uint64_t* addrs, LaneMask active) {
    if (active == 0) return 0;
    // Fast-path the two dominant warp-atomic shapes before the quadratic
    // dedup: every lane on one address (queue-tail counters: 1 distinct,
    // all other lanes serialize) and strictly increasing per-lane addresses
    // (affine per-lane targets, e.g. scatter-add with unit stride: all
    // distinct, no serialization).
    int distinct = 0;
    int conflicts = 0;
    {
      bool all_same = true;
      bool increasing = true;
      std::uint64_t first_addr = 0;
      std::uint64_t prev_addr = 0;
      bool have_prev = false;
      for_each_lane(active, [&](int lane) {
        const std::uint64_t a = addrs[lane];
        if (!have_prev) {
          first_addr = a;
          have_prev = true;
        } else {
          all_same &= a == first_addr;
          increasing &= a > prev_addr;
        }
        prev_addr = a;
      });
      const int n = popcount(active);
      if (all_same) {
        distinct = 1;
        conflicts = n - 1;
      } else if (increasing) {
        distinct = n;
        conflicts = 0;
      } else {
        std::array<std::uint64_t, kWarpSize> seen{};
        for_each_lane(active, [&](int lane) {
          const std::uint64_t a = addrs[lane];
          bool dup = false;
          for (int i = 0; i < distinct; ++i) {
            if (seen[static_cast<std::size_t>(i)] == a) {
              dup = true;
              break;
            }
          }
          if (dup) {
            ++conflicts;
          } else {
            seen[static_cast<std::size_t>(distinct++)] = a;
          }
        });
      }
    }

    counters_.atomic_ops += static_cast<std::uint64_t>(popcount(active));
    counters_.atomic_conflicts += static_cast<std::uint64_t>(conflicts);
    counters_.mem_cycles +=
        static_cast<std::uint64_t>(distinct) * cfg_.cycles_per_atomic +
        static_cast<std::uint64_t>(conflicts) *
            cfg_.cycles_per_atomic_conflict;
    // Atomics also consume global-memory bandwidth.
    counters_.global_transactions += static_cast<std::uint64_t>(distinct);
    return conflicts;
  }

  /// Charges one warp-level shared-memory access on 4-byte words at the
  /// given byte offsets. Returns the replay count (0 = conflict free).
  int access_shared(const std::uint64_t* offsets, LaneMask active) {
    if (active == 0) return 0;
    const int replays = shared_replays(offsets, active);

    counters_.shared_accesses += static_cast<std::uint64_t>(popcount(active));
    counters_.shared_bank_conflict_replays +=
        static_cast<std::uint64_t>(replays);
    counters_.mem_cycles += static_cast<std::uint64_t>(1 + replays) *
                            cfg_.cycles_per_shared_access;
    return replays;
  }

  /// Pure coalescing model: transactions needed for one warp access with
  /// the given segment size. Shared with the sanitizer's coalescing lint.
  static int global_transactions(const std::uint64_t* addrs, LaneMask active,
                                 std::size_t access_bytes,
                                 std::uint32_t segment_bytes) {
    if (active == 0) return 0;
    // Collect the segment ids touched by every active lane. An element that
    // straddles a segment boundary touches two segments. One pass also
    // classifies the warp's pattern so the dominant shapes skip the sort:
    //  - span of one segment (uniform / unit-stride accesses)  -> 1 txn
    //  - span of two segments (both endpoints are touched)     -> 2 txns
    //  - monotone non-straddling lane addresses (CSR strips)   -> linear scan
    // segment_bytes is validated to be a power of two, so segment ids are
    // shifts, not 64-bit divisions — this function runs once per simulated
    // global access and dominated interpreter time as a division loop.
    const auto shift = static_cast<unsigned>(std::countr_zero(segment_bytes));
    const std::uint64_t spill = access_bytes - 1;

    if ((active & (active - 1)) == 0) {
      // Single active lane: 1 transaction, 2 if the element straddles.
      const std::uint64_t addr = addrs[first_lane(active)];
      return (addr >> shift) == ((addr + spill) >> shift) ? 1 : 2;
    }

    // First pass: only min/max of the raw addresses. x >> shift is
    // monotone, so min(first) == min_addr >> shift and
    // max(last) == (max_addr + spill) >> shift — enough to resolve the
    // span-0/1 cases that unit-stride warps (the dominant pattern) hit,
    // without collecting per-lane segment ids. For a fully active warp
    // this is a straight 32-element reduction the compiler vectorizes.
    std::uint64_t min_addr = ~std::uint64_t{0};
    std::uint64_t max_addr = 0;
    if (active == kFullMask) {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        min_addr = std::min(min_addr, addrs[lane]);
        max_addr = std::max(max_addr, addrs[lane]);
      }
    } else {
      for_each_lane(active, [&](int lane) {
        min_addr = std::min(min_addr, addrs[lane]);
        max_addr = std::max(max_addr, addrs[lane]);
      });
    }
    const std::uint64_t span =
        ((max_addr + spill) >> shift) - (min_addr >> shift);
    if (span == 0) return 1;
    // Two adjacent segments: the lowest address touches the low segment
    // and the highest address (plus spill) touches the high one, so
    // exactly both are hit.
    if (span == 1) return 2;

    // Multi-segment warp: collect the touched segment ids per lane.
    std::array<std::uint64_t, 2 * kWarpSize> segments{};
    int count = 0;
    std::uint64_t prev_addr = 0;
    bool monotone = true;
    bool straddle = false;
    bool have_prev = false;
    for_each_lane(active, [&](int lane) {
      const std::uint64_t addr = addrs[lane];
      const std::uint64_t first = addr >> shift;
      const std::uint64_t last = (addr + spill) >> shift;
      segments[static_cast<std::size_t>(count++)] = first;
      if (last != first) {
        segments[static_cast<std::size_t>(count++)] = last;
        straddle = true;
      }
      if (have_prev && addr < prev_addr) monotone = false;
      prev_addr = addr;
      have_prev = true;
    });
    if (monotone && !straddle) {
      // No lane straddles, so segments[] holds one entry per lane in lane
      // order, already sorted: count the distinct ids in one pass.
      int txns = 1;
      for (int i = 1; i < count; ++i) {
        txns += segments[static_cast<std::size_t>(i)] !=
                segments[static_cast<std::size_t>(i - 1)];
      }
      return txns;
    }
    std::sort(segments.begin(), segments.begin() + count);
    const auto unique_end =
        std::unique(segments.begin(), segments.begin() + count);
    return static_cast<int>(unique_end - segments.begin());
  }

  /// Pure bank-conflict model: replay count for one shared access. Shared
  /// with the sanitizer's bank-conflict lint.
  static int shared_replays(const std::uint64_t* offsets, LaneMask active) {
    if (active == 0) return 0;
    // bank = word index mod 32; identical addresses broadcast for free.
    std::array<int, kSharedBanks> bank_load{};
    std::array<std::uint64_t, kWarpSize> first_addr_in_bank{};
    std::array<bool, kSharedBanks> bank_multi{};
    for_each_lane(active, [&](int lane) {
      const std::uint64_t word = offsets[lane] / 4;
      const auto bank = static_cast<std::size_t>(word % kSharedBanks);
      if (bank_load[bank] == 0) {
        first_addr_in_bank[bank] = word;
        bank_load[bank] = 1;
      } else if (first_addr_in_bank[bank] != word || bank_multi[bank]) {
        // Distinct word in the same bank -> conflict. Treat any further
        // access after a conflict pessimistically as another replay.
        ++bank_load[bank];
        bank_multi[bank] = true;
      }
    });
    int replays = 0;
    for (int load : bank_load) replays = std::max(replays, load);
    return std::max(replays - 1, 0);
  }

 private:
  const SimConfig& cfg_;
  CycleCounters& counters_;
};

}  // namespace maxwarp::simt

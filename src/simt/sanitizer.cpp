#include "simt/sanitizer.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "simt/access.hpp"
#include "simt/memory.hpp"

namespace maxwarp::simt {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::string warp_name(std::uint32_t w) {
  if (w == 0xffffffffu) return "none";
  if (w == 0xfffffffeu) return "multiple warps";
  return "warp " + std::to_string(w);
}

}  // namespace

const char* to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kLoad: return "load";
    case AccessKind::kStore: return "store";
    case AccessKind::kAtomic: return "atomic";
  }
  return "?";
}

const char* to_string(DiagClass cls) {
  switch (cls) {
    case DiagClass::kOutOfBounds: return "out-of-bounds";
    case DiagClass::kUseAfterFree: return "use-after-free";
    case DiagClass::kUninitRead: return "uninit-read";
    case DiagClass::kIntraWarpConflict: return "intra-warp-conflict";
    case DiagClass::kCrossWarpRace: return "cross-warp-race";
    case DiagClass::kUncoalesced: return "uncoalesced";
    case DiagClass::kBankConflict: return "bank-conflict";
  }
  return "?";
}

const char* to_string(Severity sev) {
  switch (sev) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kLint: return "lint";
  }
  return "?";
}

Sanitizer::Sanitizer(const SimConfig& cfg) : cfg_(cfg) {}

void Sanitizer::on_alloc(std::uint64_t base, std::uint64_t bytes) {
  Allocation alloc;
  alloc.base = base;
  alloc.bytes = bytes;
  alloc.id = next_alloc_id_++;
  alloc.init.assign(bytes, 0);
  allocations_[base] = std::move(alloc);
}

void Sanitizer::on_free(std::uint64_t base) {
  auto it = allocations_.find(base);
  if (it == allocations_.end()) return;
  it->second.freed = true;
  // Reclaim the shadow; a use-after-free faults before consulting it.
  it->second.init.clear();
  it->second.init.shrink_to_fit();
  it->second.shadow.clear();
  it->second.shadow.shrink_to_fit();
}

void Sanitizer::on_host_write(std::uint64_t base, std::uint64_t offset,
                              std::uint64_t bytes) {
  auto it = allocations_.find(base);
  if (it == allocations_.end() || it->second.freed) return;
  const std::uint64_t end = std::min(offset + bytes, it->second.bytes);
  for (std::uint64_t b = offset; b < end; ++b) it->second.init[b] = 1;
}

void Sanitizer::begin_launch(const std::string& label) {
  ++epoch_;
  current_kernel_ = label;
  ++report_.launches;
  touched_.clear();
}

std::vector<Sanitizer::TouchedBuffer> Sanitizer::launch_touched() const {
  std::vector<TouchedBuffer> out;
  out.reserve(touched_.size());
  for (const auto& [base, tb] : touched_) out.push_back(tb);
  return out;
}

void Sanitizer::reset_report() {
  report_ = SanitizerReport{};
  recorded_.fill(0);
}

Sanitizer::Allocation* Sanitizer::find_allocation(std::uint64_t addr) {
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return nullptr;
  --it;
  Allocation& a = it->second;
  const bool inside =
      addr >= a.base &&
      (addr < a.base + a.bytes || (a.bytes == 0 && addr == a.base));
  return inside ? &a : nullptr;
}

Sanitizer::ShadowByte& Sanitizer::shadow_byte(Allocation& alloc,
                                              std::uint64_t offset) {
  if (alloc.shadow.empty()) alloc.shadow.resize(alloc.bytes);
  ShadowByte& sb = alloc.shadow[offset];
  if (sb.epoch != epoch_) {
    sb = ShadowByte{};
    sb.epoch = epoch_;
  }
  return sb;
}

void Sanitizer::diagnose(DiagClass cls, Severity sev, std::uint32_t warp,
                         std::uint64_t instruction, std::uint64_t vaddr,
                         std::string detail) {
  const auto ci = static_cast<std::size_t>(cls);
  ++report_.class_counts[ci];
  ++report_.severity_counts[static_cast<std::size_t>(sev)];
  if (recorded_[ci] < cfg_.sanitizer.max_records_per_class) {
    ++recorded_[ci];
    report_.records.push_back(Diagnostic{cls, sev, current_kernel_, warp,
                                         instruction, vaddr,
                                         std::move(detail)});
  }
}

void Sanitizer::fault(DiagClass cls, std::uint32_t warp,
                      std::uint64_t instruction, std::uint64_t vaddr,
                      std::string detail) {
  std::string what = std::string(to_string(cls)) + " in kernel '" +
                     current_kernel_ + "' (warp " + std::to_string(warp) +
                     ", instruction " + std::to_string(instruction) +
                     ", vaddr " + hex(vaddr) + "): " + detail;
  diagnose(cls, Severity::kError, warp, instruction, vaddr, detail);
  throw SanitizerFault(cls, what);
}

Sanitizer::Allocation& Sanitizer::check_bounds(
    std::uint64_t anchor_vaddr, const std::uint64_t* addrs, LaneMask active,
    std::size_t access_bytes, AccessKind kind, std::uint32_t warp,
    std::uint64_t instruction) {
  Allocation* alloc = find_allocation(anchor_vaddr);
  if (alloc == nullptr) {
    fault(DiagClass::kOutOfBounds, warp, instruction, anchor_vaddr,
          std::string(to_string(kind)) +
              " through a pointer into no live device allocation (null or "
              "wild DevPtr)");
  }
  if (alloc->freed) {
    fault(DiagClass::kUseAfterFree, warp, instruction, anchor_vaddr,
          std::string(to_string(kind)) + " through a dangling DevPtr into "
              "freed allocation #" + std::to_string(alloc->id) + " (" +
              std::to_string(alloc->bytes) + " bytes at " + hex(alloc->base) +
              ")");
  }
  for_each_lane(active, [&](int lane) {
    const std::uint64_t addr = addrs[lane];
    if (addr < alloc->base || addr + access_bytes > alloc->base + alloc->bytes) {
      std::ostringstream os;
      os << to_string(kind) << " of " << access_bytes << " bytes by lane "
         << lane << " at offset ";
      if (addr >= alloc->base) {
        os << "+" << (addr - alloc->base);
      } else {
        os << "-" << (alloc->base - addr);
      }
      os << " of " << alloc->bytes << "-byte allocation #" << alloc->id;
      fault(DiagClass::kOutOfBounds, warp, instruction, addr, os.str());
    }
  });
  return *alloc;
}

void Sanitizer::check_intra_warp_conflicts(
    const std::uint64_t* addrs, LaneMask active, std::size_t access_bytes,
    const char* space, std::uint32_t warp, std::uint64_t instruction,
    const void* values, std::size_t value_stride) {
  int lanes[kWarpSize];
  int n = 0;
  for_each_lane(active, [&](int lane) { lanes[n++] = lane; });
  const auto* bytes = static_cast<const std::uint8_t*>(values);
  bool reported = false;
  for (int i = 0; i < n && !reported; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const std::uint64_t a = addrs[lanes[i]];
      const std::uint64_t b = addrs[lanes[j]];
      const std::uint64_t lo = std::min(a, b);
      const std::uint64_t hi = std::max(a, b);
      if (hi - lo >= access_bytes) continue;  // disjoint
      const bool same_value =
          bytes != nullptr && a == b &&
          std::memcmp(bytes + static_cast<std::size_t>(lanes[i]) * value_stride,
                      bytes + static_cast<std::size_t>(lanes[j]) * value_stride,
                      access_bytes) == 0;
      if (same_value) {
        ++report_.benign_same_value_writes;
        continue;
      }
      std::ostringstream os;
      os << "lanes " << lanes[i] << " and " << lanes[j]
         << " of the same instruction store "
         << (a == b ? "different values" : "overlapping bytes") << " to "
         << space << " address " << hex(lo)
         << " without atomics (lane order decides the outcome)";
      diagnose(DiagClass::kIntraWarpConflict, Severity::kError, warp,
               instruction, lo, os.str());
      reported = true;
      break;
    }
  }
}

void Sanitizer::lint_global(const std::uint64_t* addrs, LaneMask active,
                            std::size_t access_bytes, std::uint32_t warp,
                            std::uint64_t instruction) {
  KernelLintStats& kl = report_.kernel_lint[current_kernel_];
  ++kl.global_accesses;
  const int lanes = popcount(active);
  if (lanes < cfg_.sanitizer.lint_min_active_lanes) return;
  const int txns = MemoryModel::global_transactions(
      addrs, active, access_bytes, cfg_.mem_transaction_bytes);
  const double ratio = static_cast<double>(txns) / lanes;
  kl.worst_txn_per_lane = std::max(kl.worst_txn_per_lane, ratio);
  if (ratio <= cfg_.sanitizer.uncoalesced_txn_per_lane) return;
  ++kl.uncoalesced;
  std::ostringstream os;
  os << txns << " transactions for " << lanes << " active lanes ("
     << access_bytes << "-byte elements, " << cfg_.mem_transaction_bytes
     << "-byte segments)";
  diagnose(DiagClass::kUncoalesced, Severity::kLint, warp, instruction,
           addrs[first_lane(active)], os.str());
}

void Sanitizer::lint_shared(const std::uint64_t* offsets, LaneMask active,
                            std::uint32_t warp, std::uint64_t instruction) {
  KernelLintStats& kl = report_.kernel_lint[current_kernel_];
  ++kl.shared_accesses;
  if (popcount(active) < cfg_.sanitizer.lint_min_active_lanes) return;
  const int replays = MemoryModel::shared_replays(offsets, active);
  kl.worst_bank_replays = std::max(kl.worst_bank_replays, replays);
  if (replays < cfg_.sanitizer.bank_conflict_replays) return;
  ++kl.bank_conflicted;
  std::ostringstream os;
  os << replays << " bank-conflict replays across " << popcount(active)
     << " active lanes";
  diagnose(DiagClass::kBankConflict, Severity::kLint, warp, instruction,
           offsets[first_lane(active)], os.str());
}

void Sanitizer::check_global(std::uint64_t anchor_vaddr,
                             const std::uint64_t* addrs, LaneMask active,
                             std::size_t access_bytes, AccessKind kind,
                             std::uint32_t warp, std::uint64_t instruction,
                             const void* values, std::size_t value_stride) {
  if (active == 0) return;
  ++report_.checked_accesses;
  Allocation& alloc = check_bounds(anchor_vaddr, addrs, active, access_bytes,
                                   kind, warp, instruction);
  TouchedBuffer& touched = touched_[alloc.base];
  touched.base = alloc.base;
  touched.bytes = alloc.bytes;
  touched.modes |= kind == AccessKind::kLoad    ? kAccessRead
                   : kind == AccessKind::kStore ? kAccessWrite
                                                : kAccessAtomic;
  if (kind == AccessKind::kStore) {
    check_intra_warp_conflicts(addrs, active, access_bytes, "global", warp,
                               instruction, values, value_stride);
  }
  if (kind != AccessKind::kAtomic) {
    lint_global(addrs, active, access_bytes, warp, instruction);
  }

  const auto* value_bytes = static_cast<const std::uint8_t*>(values);
  for_each_lane(active, [&](int lane) {
    const std::uint64_t off0 = addrs[lane] - alloc.base;
    bool uninit_reported = false;
    bool race_reported = false;
    bool benign = false;
    for (std::size_t b = 0; b < access_bytes; ++b) {
      const std::uint64_t off = off0 + b;

      // Class 2: reads (and atomic RMWs, which read old values) of bytes
      // never initialized by a host copy or a device store.
      if (kind != AccessKind::kStore && alloc.init[off] == 0 &&
          !uninit_reported) {
        diagnose(DiagClass::kUninitRead, Severity::kError, warp, instruction,
                 addrs[lane],
                 std::string(to_string(kind)) + " of uninitialized byte at "
                     "offset +" + std::to_string(off) + " of allocation #" +
                     std::to_string(alloc.id));
        uninit_reported = true;
      }

      ShadowByte& sb = shadow_byte(alloc, off);
      const bool other_wrote =
          (sb.flags & (kFlagWritten | kFlagAtomic)) != 0 &&
          sb.writer != kNoWarp && sb.writer != warp;
      const bool other_read =
          (sb.flags & kFlagRead) != 0 && sb.reader != kNoWarp &&
          sb.reader != warp;

      switch (kind) {
        case AccessKind::kLoad:
          // Class 4 (read side): the value observed depends on warp
          // scheduling on real hardware — a hazard, not necessarily a bug
          // (level-synchronous kernels tolerate monotonic updates).
          if (other_wrote && !race_reported) {
            diagnose(DiagClass::kCrossWarpRace, Severity::kWarning, warp,
                     instruction, addrs[lane],
                     std::string((sb.flags & kFlagAtomic) != 0
                                     ? "non-atomic read of a location "
                                       "atomically updated by "
                                     : "read of a location written by ") +
                         warp_name(sb.writer) + " in the same launch");
            race_reported = true;
          }
          sb.flags |= kFlagRead;
          sb.reader = (sb.reader == kNoWarp || sb.reader == warp)
                          ? warp
                          : kManyWarps;
          break;

        case AccessKind::kStore: {
          const std::uint8_t v =
              value_bytes[static_cast<std::size_t>(lane) * value_stride + b];
          if (other_wrote && !race_reported) {
            if ((sb.flags & kFlagAtomic) != 0) {
              diagnose(DiagClass::kCrossWarpRace, Severity::kWarning, warp,
                       instruction, addrs[lane],
                       "non-atomic store over an atomic update by " +
                           warp_name(sb.writer) + " in the same launch");
              race_reported = true;
            } else if (sb.value == v) {
              benign = true;
            } else {
              std::ostringstream os;
              os << "write-write race: " << warp_name(sb.writer)
                 << " wrote byte " << hex(sb.value) << ", warp " << warp
                 << " writes " << hex(v)
                 << " to the same location in the same launch";
              diagnose(DiagClass::kCrossWarpRace, Severity::kError, warp,
                       instruction, addrs[lane], os.str());
              race_reported = true;
            }
          }
          if (other_read && !race_reported) {
            diagnose(DiagClass::kCrossWarpRace, Severity::kWarning, warp,
                     instruction, addrs[lane],
                     "store to a location read by " + warp_name(sb.reader) +
                         " earlier in the same launch");
            race_reported = true;
          }
          sb.flags |= kFlagWritten;
          sb.writer = (sb.writer == kNoWarp || sb.writer == warp)
                          ? warp
                          : kManyWarps;
          sb.value = v;
          alloc.init[off] = 1;
          break;
        }

        case AccessKind::kAtomic: {
          // Atomic-vs-atomic never conflicts; atomic-vs-plain from another
          // warp does (the plain access can be lost or observe a torn
          // intermediate on real hardware).
          const bool plain_other_wrote =
              (sb.flags & kFlagWritten) != 0 && other_wrote;
          if ((plain_other_wrote || other_read) && !race_reported) {
            diagnose(DiagClass::kCrossWarpRace, Severity::kWarning, warp,
                     instruction, addrs[lane],
                     std::string("atomic update of a location ") +
                         (plain_other_wrote ? "written" : "read") +
                         " non-atomically by " +
                         warp_name(plain_other_wrote ? sb.writer : sb.reader) +
                         " in the same launch");
            race_reported = true;
          }
          sb.flags |= kFlagAtomic;
          sb.writer = (sb.writer == kNoWarp || sb.writer == warp)
                          ? warp
                          : kManyWarps;
          alloc.init[off] = 1;
          break;
        }
      }
    }
    if (benign) ++report_.benign_same_value_writes;
  });
}

void Sanitizer::check_shared(const std::uint64_t* offsets, LaneMask active,
                             std::size_t access_bytes,
                             std::uint64_t arena_begin,
                             std::uint64_t arena_end, AccessKind kind,
                             std::uint32_t warp, std::uint64_t instruction,
                             const void* values, std::size_t value_stride) {
  if (active == 0) return;
  ++report_.checked_accesses;
  for_each_lane(active, [&](int lane) {
    const std::uint64_t off = offsets[lane];
    if (off < arena_begin || off + access_bytes > arena_end) {
      std::ostringstream os;
      os << to_string(kind) << " of " << access_bytes << " bytes by lane "
         << lane << " at arena offset " << off << ", outside shared array ["
         << arena_begin << ", " << arena_end << ")";
      fault(DiagClass::kOutOfBounds, warp, instruction, off, os.str());
    }
  });
  if (kind == AccessKind::kStore) {
    check_intra_warp_conflicts(offsets, active, access_bytes, "shared", warp,
                               instruction, values, value_stride);
  }
  lint_shared(offsets, active, warp, instruction);
}

util::Table SanitizerReport::records_table() const {
  util::Table t({"class", "severity", "kernel", "warp", "instr", "vaddr",
                 "detail"});
  for (const Diagnostic& d : records) {
    t.row()
        .cell(to_string(d.cls))
        .cell(to_string(d.severity))
        .cell(d.kernel)
        .cell(static_cast<std::uint64_t>(d.warp))
        .cell(d.instruction)
        .cell(hex(d.vaddr))
        .cell(d.detail);
  }
  return t;
}

util::Table SanitizerReport::lint_table() const {
  util::Table t({"kernel", "global.accesses", "uncoalesced", "worst.txn/lane",
                 "shared.accesses", "bank.conflicted", "worst.replays"});
  for (const auto& [kernel, kl] : kernel_lint) {
    t.row()
        .cell(kernel)
        .cell(kl.global_accesses)
        .cell(kl.uncoalesced)
        .cell(kl.worst_txn_per_lane, 3)
        .cell(kl.shared_accesses)
        .cell(kl.bank_conflicted)
        .cell(static_cast<std::uint64_t>(kl.worst_bank_replays));
  }
  return t;
}

std::string SanitizerReport::text() const {
  std::ostringstream os;
  os << "simtsan: " << errors() << " error(s), " << warnings()
     << " warning(s), " << lints() << " lint finding(s) across " << launches
     << " launch(es), " << checked_accesses << " checked accesses\n";
  os << "  benign same-value write conflicts: " << benign_same_value_writes
     << "\n";
  bool any_class = false;
  for (std::size_t c = 0; c < kDiagClassCount; ++c) {
    if (class_counts[c] == 0) continue;
    if (!any_class) os << "  findings by class:\n";
    any_class = true;
    os << "    " << to_string(static_cast<DiagClass>(c)) << ": "
       << class_counts[c] << "\n";
  }
  if (!records.empty()) {
    os << "\n" << records_table().to_string();
  }
  if (!kernel_lint.empty()) {
    os << "\nper-kernel access profile:\n" << lint_table().to_string();
  }
  return os.str();
}

}  // namespace maxwarp::simt

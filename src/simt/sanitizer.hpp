// simtsan: warp-level sanitizer for the SIMT simulator.
//
// Because the device is a deterministic CPU simulation — warps run
// sequentially in launch order, lanes in lane order — every memory access a
// kernel issues can be checked *exactly*, not sampled. When
// SimConfig::sanitize is on, every device allocation gets per-byte shadow
// state and each warp-level access issued through WarpCtx is validated for
// five classes of defects:
//
//   1. bounds    — out-of-bounds and use-after-free device accesses
//                  (checked before the functional access touches host
//                  memory; faults throw SanitizerFault);
//   2. uninit    — reads of device memory no host upload/fill/write or
//                  device store has ever initialized;
//   3. intra-warp race — two lanes of the same instruction writing the
//                  same location non-atomically with *different* values
//                  (identical values are counted as benign: the outcome is
//                  the same under any lane ordering);
//   4. cross-warp race — conflicting non-atomic accesses to the same byte
//                  from different warps within one launch. Differing-value
//                  write-write conflicts are errors; read-write hazards and
//                  mixed atomic/plain conflicts are warnings (the
//                  level-synchronous graph kernels in this repo rely on
//                  such monotonic-update hazards by design);
//   5. perf lint — uncoalesced global accesses and shared-memory bank
//                  conflicts above SanitizerOptions thresholds.
//
// Diagnostics accumulate into a SanitizerReport (text + machine-readable
// util::Table dump). The layer is strictly opt-in: with sanitize=false no
// Sanitizer is constructed and the only residue on the hot path is one
// null-pointer test per memory primitive. Modeled cycle counts are never
// affected either way.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/config.hpp"
#include "simt/mask.hpp"
#include "util/table.hpp"

namespace maxwarp::simt {

/// What a warp-level memory instruction does to each touched location.
enum class AccessKind : std::uint8_t { kLoad, kStore, kAtomic };

const char* to_string(AccessKind kind);

/// The five check classes (bank-conflict lint split from coalescing lint
/// so thresholds and counts stay independent).
enum class DiagClass : std::uint8_t {
  kOutOfBounds,
  kUseAfterFree,
  kUninitRead,
  kIntraWarpConflict,
  kCrossWarpRace,
  kUncoalesced,
  kBankConflict,
};

inline constexpr std::size_t kDiagClassCount = 7;

const char* to_string(DiagClass cls);

enum class Severity : std::uint8_t { kError, kWarning, kLint };

const char* to_string(Severity sev);

/// One recorded finding. `instruction` is the issuing warp's
/// issued-instruction ordinal — a stable access-site id under the
/// simulator's determinism contract.
struct Diagnostic {
  DiagClass cls;
  Severity severity;
  std::string kernel;         ///< launch label (LaunchDims::label or kernel#N)
  std::uint32_t warp = 0;     ///< global warp id of the issuing warp
  std::uint64_t instruction = 0;
  std::uint64_t vaddr = 0;    ///< first offending simulated address
  std::string detail;
};

/// Per-kernel perf-lint aggregation.
struct KernelLintStats {
  std::uint64_t global_accesses = 0;
  std::uint64_t uncoalesced = 0;
  double worst_txn_per_lane = 0.0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflicted = 0;
  int worst_bank_replays = 0;
};

/// Structured result of a sanitized run.
struct SanitizerReport {
  /// Detailed records, capped at max_records_per_class per class.
  std::vector<Diagnostic> records;

  /// Total findings per class (never capped).
  std::array<std::uint64_t, kDiagClassCount> class_counts{};

  /// Total findings per severity (index = Severity).
  std::array<std::uint64_t, 3> severity_counts{};

  /// Same-location same-value non-atomic writes (intra- or cross-warp):
  /// deterministic-outcome hazards counted separately, never diagnosed.
  std::uint64_t benign_same_value_writes = 0;

  std::uint64_t checked_accesses = 0;
  std::uint64_t launches = 0;

  std::uint64_t count(DiagClass cls) const {
    return class_counts[static_cast<std::size_t>(cls)];
  }
  std::uint64_t errors() const { return severity_counts[0]; }
  std::uint64_t warnings() const { return severity_counts[1]; }
  std::uint64_t lints() const { return severity_counts[2]; }

  /// True when no error-severity finding was recorded. Warnings and lint
  /// findings do not spoil cleanliness.
  bool clean() const { return errors() == 0; }

  /// Per-kernel lint aggregation, keyed by launch label.
  std::map<std::string, KernelLintStats> kernel_lint;

  /// Machine-readable dump of the detailed records.
  util::Table records_table() const;

  /// Machine-readable per-kernel lint table.
  util::Table lint_table() const;

  /// Multi-line human-readable report.
  std::string text() const;
};

/// Thrown on memory-safety faults (out-of-bounds / use-after-free): the
/// functional access would touch host memory outside the backing store, so
/// execution cannot safely continue. The finding is recorded in the report
/// before throwing.
class SanitizerFault : public std::runtime_error {
 public:
  SanitizerFault(DiagClass cls, const std::string& what)
      : std::runtime_error(what), cls_(cls) {}
  DiagClass fault_class() const { return cls_; }

 private:
  DiagClass cls_;
};

class Sanitizer {
 public:
  explicit Sanitizer(const SimConfig& cfg);

  // --- allocation lifecycle (driven by gpu::DeviceBuffer) -----------------

  /// Registers a device allocation at [base, base + bytes).
  void on_alloc(std::uint64_t base, std::uint64_t bytes);

  /// Marks the allocation freed. The region stays registered so dangling
  /// DevPtr accesses report use-after-free (virtual addresses are never
  /// reused by gpu::Device).
  void on_free(std::uint64_t base);

  /// Host-side write (upload / fill / single-element write): marks the
  /// bytes initialized.
  void on_host_write(std::uint64_t base, std::uint64_t offset,
                     std::uint64_t bytes);

  // --- launch lifecycle (driven by DeviceSim::launch) ---------------------

  /// Opens a new race-detection epoch; accesses from different warps only
  /// conflict within one epoch (launches are device-wide barriers).
  void begin_launch(const std::string& label);

  // --- per-access checks (driven by WarpCtx; may throw SanitizerFault) ----

  /// Validates one warp-level global access. `anchor_vaddr` is the
  /// DevPtr's base address, used to pin the access to its intended
  /// allocation so overflow into a *neighbouring* allocation still faults.
  /// For stores, `values`/`value_stride` describe the per-lane source
  /// bytes (lane i's element at values + i*value_stride) so same-value
  /// write conflicts can be separated from real races; pass nullptr for
  /// loads and atomics.
  void check_global(std::uint64_t anchor_vaddr, const std::uint64_t* addrs,
                    LaneMask active, std::size_t access_bytes,
                    AccessKind kind, std::uint32_t warp,
                    std::uint64_t instruction, const void* values,
                    std::size_t value_stride);

  /// Validates one warp-level shared-memory access against the issuing
  /// SharedArray's arena slice [arena_begin, arena_end). Shared memory is
  /// per-warp in this simulator, so only bounds, intra-warp write
  /// conflicts, and bank-conflict lint apply.
  void check_shared(const std::uint64_t* offsets, LaneMask active,
                    std::size_t access_bytes, std::uint64_t arena_begin,
                    std::uint64_t arena_end, AccessKind kind,
                    std::uint32_t warp, std::uint64_t instruction,
                    const void* values, std::size_t value_stride);

  const SanitizerReport& report() const { return report_; }

  /// Clears accumulated diagnostics (shadow allocation state persists).
  void reset_report();

  /// Buffer-level summary of one launch's device-memory traffic: one entry
  /// per distinct allocation touched since the last begin_launch, ordered
  /// by base address. `modes` is a kAccess* bitmask. Consumed by the
  /// launch-graph recorder (analysis/launch_graph.hpp) to get exact
  /// access sets without declarations.
  struct TouchedBuffer {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::uint8_t modes = 0;
  };
  std::vector<TouchedBuffer> launch_touched() const;

 private:
  struct ShadowByte {
    std::uint32_t epoch = 0;   ///< launch id of the last access, 0 = never
    std::uint32_t writer = kNoWarp;
    std::uint32_t reader = kNoWarp;
    std::uint8_t flags = 0;    ///< kFlag* bits below
    std::uint8_t value = 0;    ///< last non-atomically written byte
  };

  static constexpr std::uint32_t kNoWarp = 0xffffffffu;
  static constexpr std::uint32_t kManyWarps = 0xfffffffeu;
  static constexpr std::uint8_t kFlagWritten = 1;       ///< plain store
  static constexpr std::uint8_t kFlagRead = 2;          ///< plain load
  static constexpr std::uint8_t kFlagAtomic = 4;        ///< atomic RMW

  struct Allocation {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::uint64_t id = 0;      ///< allocation ordinal, for report text
    bool freed = false;
    std::vector<std::uint8_t> init;    ///< 1 = byte initialized
    std::vector<ShadowByte> shadow;    ///< allocated lazily on first access
  };

  Allocation* find_allocation(std::uint64_t addr);
  ShadowByte& shadow_byte(Allocation& alloc, std::uint64_t offset);

  /// Records a finding (respecting the per-class record cap).
  void diagnose(DiagClass cls, Severity sev, std::uint32_t warp,
                std::uint64_t instruction, std::uint64_t vaddr,
                std::string detail);

  [[noreturn]] void fault(DiagClass cls, std::uint32_t warp,
                          std::uint64_t instruction, std::uint64_t vaddr,
                          std::string detail);

  /// Bounds/liveness check common to global loads, stores and atomics.
  Allocation& check_bounds(std::uint64_t anchor_vaddr,
                           const std::uint64_t* addrs, LaneMask active,
                           std::size_t access_bytes, AccessKind kind,
                           std::uint32_t warp, std::uint64_t instruction);

  void check_intra_warp_conflicts(const std::uint64_t* addrs,
                                  LaneMask active, std::size_t access_bytes,
                                  const char* space, std::uint32_t warp,
                                  std::uint64_t instruction,
                                  const void* values,
                                  std::size_t value_stride);

  void lint_global(const std::uint64_t* addrs, LaneMask active,
                   std::size_t access_bytes, std::uint32_t warp,
                   std::uint64_t instruction);
  void lint_shared(const std::uint64_t* offsets, LaneMask active,
                   std::uint32_t warp, std::uint64_t instruction);

  SimConfig cfg_;  ///< copied: thresholds + transaction geometry
  SanitizerReport report_;
  /// Records stored so far per class (counts keep growing past the cap).
  std::array<std::uint64_t, kDiagClassCount> recorded_{};
  std::map<std::uint64_t, Allocation> allocations_;  ///< keyed by base
  std::uint64_t next_alloc_id_ = 0;
  std::uint32_t epoch_ = 0;           ///< 0 = outside any launch
  std::string current_kernel_;
  /// Per-launch touched-allocation summary, keyed by base; cleared by
  /// begin_launch, updated by check_global after bounds resolution.
  std::map<std::uint64_t, TouchedBuffer> touched_;
};

}  // namespace maxwarp::simt

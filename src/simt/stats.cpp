#include "simt/stats.hpp"

#include <sstream>

namespace maxwarp::simt {

void CycleCounters::add(const CycleCounters& o) {
  issued_instructions += o.issued_instructions;
  alu_cycles += o.alu_cycles;
  mem_cycles += o.mem_cycles;
  active_lane_ops += o.active_lane_ops;
  possible_lane_ops += o.possible_lane_ops;
  global_transactions += o.global_transactions;
  global_requests += o.global_requests;
  global_bytes += o.global_bytes;
  atomic_ops += o.atomic_ops;
  atomic_conflicts += o.atomic_conflicts;
  shared_accesses += o.shared_accesses;
  shared_bank_conflict_replays += o.shared_bank_conflict_replays;
  branch_divergences += o.branch_divergences;
  loop_iterations += o.loop_iterations;
}

double CycleCounters::simd_utilization() const {
  if (possible_lane_ops == 0) return 1.0;
  return static_cast<double>(active_lane_ops) /
         static_cast<double>(possible_lane_ops);
}

double CycleCounters::transactions_per_request() const {
  if (global_requests == 0) return 0.0;
  return static_cast<double>(global_transactions) /
         static_cast<double>(global_requests);
}

void KernelStats::add(const KernelStats& o) {
  counters.add(o.counters);
  elapsed_cycles += o.elapsed_cycles;
  busy_cycles += o.busy_cycles;
  launches += o.launches;
  warps += o.warps;
  blocks += o.blocks;
}

double KernelStats::sm_balance(const SimConfig& cfg) const {
  if (elapsed_cycles == 0) return 1.0;
  const double ideal = static_cast<double>(busy_cycles) /
                       static_cast<double>(cfg.num_sms);
  return ideal / static_cast<double>(elapsed_cycles);
}

std::string KernelStats::summary(const SimConfig& cfg) const {
  std::ostringstream out;
  out << "launches:           " << launches << '\n'
      << "blocks/warps:       " << blocks << " / " << warps << '\n'
      << "elapsed (model):    " << elapsed_ms(cfg) << " ms  (" << elapsed_cycles
      << " cycles)\n"
      << "SIMD utilization:   " << counters.simd_utilization() * 100.0
      << " %\n"
      << "global txns:        " << counters.global_transactions << " ("
      << counters.transactions_per_request() << " per request)\n"
      << "atomics:            " << counters.atomic_ops << " ops, "
      << counters.atomic_conflicts << " serialized conflicts\n"
      << "divergent branches: " << counters.branch_divergences << '\n'
      << "SM balance:         " << sm_balance(cfg) << '\n';
  return out.str();
}

void StatsLedger::add(const std::string& label, const KernelStats& stats) {
  for (auto& [name, agg] : entries_) {
    if (name == label) {
      agg.add(stats);
      return;
    }
  }
  entries_.emplace_back(label, stats);
}

void StatsLedger::add(const StatsLedger& other) {
  for (const auto& [name, stats] : other.entries_) add(name, stats);
}

const KernelStats* StatsLedger::find(const std::string& label) const {
  for (const auto& [name, stats] : entries_) {
    if (name == label) return &stats;
  }
  return nullptr;
}

std::string StatsLedger::summary(const SimConfig& cfg) const {
  std::ostringstream out;
  for (const auto& [name, stats] : entries_) {
    out << name << ": " << stats.launches << " launches, "
        << stats.elapsed_ms(cfg) << " ms, "
        << stats.counters.simd_utilization() * 100.0 << " % SIMD\n";
  }
  return out.str();
}

}  // namespace maxwarp::simt

// Execution counters collected by the SIMT simulator.
//
// These are the quantities the paper analyzes: SIMD-lane utilization,
// divergence events, global-memory transactions, and modeled elapsed
// cycles. Counters are collected per warp, reduced per SM, and aggregated
// per kernel launch; algorithm drivers further aggregate across launches.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "simt/config.hpp"

namespace maxwarp::simt {

/// Raw event counters. All additive, so aggregation is memberwise `+`.
struct CycleCounters {
  std::uint64_t issued_instructions = 0;
  std::uint64_t alu_cycles = 0;
  std::uint64_t mem_cycles = 0;

  /// Sum over issued instructions of the active-lane count, and the
  /// corresponding maximum (issued * kWarpSize). Their ratio is the paper's
  /// SIMD (ALU) utilization metric.
  std::uint64_t active_lane_ops = 0;
  std::uint64_t possible_lane_ops = 0;

  std::uint64_t global_transactions = 0;
  std::uint64_t global_requests = 0;  ///< lane-level load/store requests
  std::uint64_t global_bytes = 0;     ///< bytes moved in whole transactions

  std::uint64_t atomic_ops = 0;
  std::uint64_t atomic_conflicts = 0;  ///< serialized same-address extras

  std::uint64_t shared_accesses = 0;
  std::uint64_t shared_bank_conflict_replays = 0;

  std::uint64_t branch_divergences = 0;  ///< branches where both paths ran
  std::uint64_t loop_iterations = 0;     ///< divergent-loop body executions

  void add(const CycleCounters& o);

  std::uint64_t total_cycles() const { return alu_cycles + mem_cycles; }

  /// Fraction of SIMD lanes doing useful work per issued instruction.
  double simd_utilization() const;

  /// Average transactions needed per lane-level global request; 1/32 is a
  /// perfectly coalesced unit-stride warp access, 1.0 is fully scattered.
  double transactions_per_request() const;
};

/// Result of one simulated kernel launch.
struct KernelStats {
  CycleCounters counters;  ///< aggregated over every warp of the launch

  /// Modeled elapsed cycles: launch overhead + max over SMs of the sum of
  /// cycles of warps resident on that SM (throughput model).
  std::uint64_t elapsed_cycles = 0;

  /// Sum over SMs (== counters.total_cycles() + overhead); the gap between
  /// num_sms * elapsed and this is cross-SM load imbalance.
  std::uint64_t busy_cycles = 0;

  std::uint64_t launches = 1;  ///< >1 after aggregation
  std::uint64_t warps = 0;
  std::uint64_t blocks = 0;

  /// Accumulates another launch (device-wide barrier semantics: elapsed
  /// cycles add up).
  void add(const KernelStats& o);

  double elapsed_ms(const SimConfig& cfg) const {
    return cfg.cycles_to_ms(elapsed_cycles);
  }

  /// Cross-SM load balance in [1/num_sms, 1]; 1 means perfectly even.
  double sm_balance(const SimConfig& cfg) const;

  /// Multi-line human-readable dump (used by examples).
  std::string summary(const SimConfig& cfg) const;
};

/// Per-label launch-stat aggregation, insertion-ordered. The adaptive
/// dispatcher uses one ledger per run to break the total down by degree
/// bin ("bfs.expand.small", "bfs.expand.outlier", ...); anything that
/// launches under distinct labels can use it the same way.
class StatsLedger {
 public:
  /// Accumulates `stats` under `label`, creating the entry on first use.
  void add(const std::string& label, const KernelStats& stats);

  /// Merge another ledger (entry-wise; preserves this ledger's order and
  /// appends labels it has not seen).
  void add(const StatsLedger& other);

  bool empty() const { return entries_.empty(); }
  const std::vector<std::pair<std::string, KernelStats>>& entries() const {
    return entries_;
  }

  /// The entry for `label`, or nullptr if that label never launched.
  const KernelStats* find(const std::string& label) const;

  /// One line per label: launches, modeled ms, SIMD utilization.
  std::string summary(const SimConfig& cfg) const;

 private:
  std::vector<std::pair<std::string, KernelStats>> entries_;
};

}  // namespace maxwarp::simt

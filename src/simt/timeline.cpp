#include "simt/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace maxwarp::simt {

namespace {

/// Relative slack for floating-point completion tests: an op within this
/// fraction of the current event time is considered finished (guards the
/// event loop against drift-induced zero-length steps).
constexpr double kRelEps = 1e-12;

}  // namespace

Timeline::Timeline(const SimConfig& cfg)
    : num_sms_(cfg.num_sms), copy_engines_(cfg.copy_engines) {
  stream_tail_.push_back(kNone);  // stream 0: the default stream
  pending_waits_.emplace_back();
  engine_tail_.assign(copy_engines_, kNone);
}

Timeline::StreamId Timeline::create_stream() {
  stream_tail_.push_back(kNone);
  pending_waits_.emplace_back();
  return static_cast<StreamId>(stream_tail_.size() - 1);
}

void Timeline::push_op(Op op) {
  const StreamId s = op.stream;
  if (s >= stream_tail_.size()) {
    throw std::out_of_range("Timeline: unknown stream");
  }
  if (stream_tail_[s] != kNone) op.deps.push_back(stream_tail_[s]);
  for (const EventId e : pending_waits_[s]) {
    if (events_[e] != kNone) op.deps.push_back(events_[e]);
  }
  pending_waits_[s].clear();
  serial_ms_ += op.span_ms;
  ops_.push_back(std::move(op));
  stream_tail_[s] = static_cast<std::int64_t>(ops_.size() - 1);
  resolved_ = false;
}

void Timeline::push_kernel(StreamId s, double span_ms, double work_sm_ms) {
  Op op;
  op.stream = s;
  op.is_copy = false;
  op.span_ms = span_ms;
  // A zero-span kernel cannot carry work (the parallelism cap work/span
  // would be undefined); treat it as instantaneous. Otherwise clamp the
  // parallelism work/span into [1, num_sms]: a kernel occupies at least
  // one SM for its whole span and can never use more than the machine.
  if (span_ms <= 0) {
    op.work = 0;
  } else {
    op.work = std::clamp(work_sm_ms, span_ms,
                         span_ms * static_cast<double>(num_sms_));
  }
  push_op(std::move(op));
}

void Timeline::push_copy(StreamId s, double duration_ms, bool to_device) {
  Op op;
  op.stream = s;
  op.is_copy = true;
  op.span_ms = duration_ms;
  // Engine assignment: H2D on engine 0, D2H on engine 1 when a second
  // engine exists (per-direction queues, like the hardware's two DMA
  // units); one engine serializes both directions. Contention becomes a
  // dependency on the engine's previous copy.
  const std::uint32_t engine = (!to_device && copy_engines_ > 1) ? 1 : 0;
  if (engine_tail_[engine] != kNone) op.deps.push_back(engine_tail_[engine]);
  push_op(std::move(op));
  engine_tail_[engine] = static_cast<std::int64_t>(ops_.size() - 1);
}

void Timeline::push_delay(StreamId s, double duration_ms) {
  Op op;
  op.stream = s;
  // Shaped like a copy (fixed duration, no SM water-filling) but pushed
  // without an engine dependency, so it holds no DMA engine either.
  op.is_copy = true;
  op.span_ms = duration_ms;
  push_op(std::move(op));
}

Timeline::EventId Timeline::record(StreamId s) {
  if (s >= stream_tail_.size()) {
    throw std::out_of_range("Timeline: unknown stream");
  }
  events_.push_back(stream_tail_[s]);
  return static_cast<EventId>(events_.size() - 1);
}

void Timeline::wait_event(StreamId s, EventId e) {
  if (s >= stream_tail_.size()) {
    throw std::out_of_range("Timeline: unknown stream");
  }
  if (e >= events_.size()) {
    throw std::out_of_range("Timeline: unknown event");
  }
  pending_waits_[s].push_back(e);
}

double Timeline::stream_ready_ms(StreamId s) {
  if (s >= stream_tail_.size()) {
    throw std::out_of_range("Timeline: unknown stream");
  }
  if (stream_tail_[s] == kNone) return 0;
  resolve();
  return ops_[static_cast<std::size_t>(stream_tail_[s])].end;
}

double Timeline::event_ms(EventId e) {
  if (e >= events_.size()) {
    throw std::out_of_range("Timeline: unknown event");
  }
  if (events_[e] == kNone) return 0;  // recorded on an idle stream
  resolve();
  return ops_[static_cast<std::size_t>(events_[e])].end;
}

double Timeline::makespan_ms() {
  resolve();
  double m = 0;
  for (const Op& op : ops_) m = std::max(m, op.end);
  return m;
}

Timeline::OpSpan Timeline::op_span(std::size_t i) {
  if (i >= ops_.size()) throw std::out_of_range("Timeline: unknown op");
  resolve();
  return {ops_[i].start, ops_[i].end};
}

void Timeline::reset() {
  ops_.clear();
  events_.clear();
  std::fill(stream_tail_.begin(), stream_tail_.end(), kNone);
  for (auto& waits : pending_waits_) waits.clear();
  std::fill(engine_tail_.begin(), engine_tail_.end(), kNone);
  serial_ms_ = 0;
  resolved_ = true;
}

void Timeline::resolve() {
  if (resolved_) return;
  const std::size_t n = ops_.size();
  const double capacity = static_cast<double>(num_sms_);

  std::vector<char> started(n, 0), finished(n, 0);
  std::vector<std::size_t> active_kernels;
  std::vector<std::size_t> active_copies;
  for (Op& op : ops_) {
    op.start = 0;
    op.end = 0;
    op.remaining = op.work;
  }

  const auto deps_done = [&](std::size_t i) {
    for (const std::int64_t d : ops_[i].deps) {
      if (!finished[static_cast<std::size_t>(d)]) return false;
    }
    return true;
  };

  std::size_t done = 0;
  double t = 0;
  std::vector<double> rates;
  while (done < n) {
    // Start (and instantly finish, for zero-length ops) everything whose
    // dependencies are satisfied at time t. Fixpoint: finishing a
    // zero-length op can unblock the next one.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (started[i] || !deps_done(i)) continue;
        started[i] = 1;
        Op& op = ops_[i];
        op.start = t;
        if (op.is_copy) {
          if (op.span_ms <= 0) {
            finished[i] = 1;
            op.end = t;
            ++done;
            progress = true;
          } else {
            op.end = t + op.span_ms;
            active_copies.push_back(i);
          }
        } else {
          if (op.remaining <= 0) {
            finished[i] = 1;
            op.end = t;
            ++done;
            progress = true;
          } else {
            active_kernels.push_back(i);
          }
        }
      }
    }
    if (done == n) break;

    // Water-fill the SM capacity over the active kernels: everyone is
    // capped at its own parallelism; unused headroom flows to kernels
    // that can absorb it.
    rates.assign(active_kernels.size(), 0.0);
    {
      std::vector<std::size_t> open(active_kernels.size());
      for (std::size_t k = 0; k < open.size(); ++k) open[k] = k;
      double left = capacity;
      while (!open.empty()) {
        const double share = left / static_cast<double>(open.size());
        bool capped_any = false;
        for (std::size_t k = 0; k < open.size();) {
          const Op& op = ops_[active_kernels[open[k]]];
          const double cap = op.work / op.span_ms;  // parallelism
          if (cap <= share) {
            rates[open[k]] = cap;
            left -= cap;
            open[k] = open.back();
            open.pop_back();
            capped_any = true;
          } else {
            ++k;
          }
        }
        if (!capped_any) {
          for (const std::size_t k : open) rates[k] = share;
          break;
        }
      }
    }

    // Next completion time across running kernels and in-flight copies.
    double t_next = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < active_kernels.size(); ++k) {
      const Op& op = ops_[active_kernels[k]];
      t_next = std::min(t_next, t + op.remaining / rates[k]);
    }
    for (const std::size_t i : active_copies) {
      t_next = std::min(t_next, ops_[i].end);
    }

    // Advance the clock, draining kernel work at the computed rates, and
    // retire everything that completes at t_next.
    const double dt = t_next - t;
    const double eps = kRelEps * std::max(1.0, t_next);
    for (std::size_t k = 0; k < active_kernels.size();) {
      Op& op = ops_[active_kernels[k]];
      op.remaining -= rates[k] * dt;
      if (op.remaining <= eps * rates[k]) {
        op.end = t_next;
        finished[active_kernels[k]] = 1;
        ++done;
        active_kernels[k] = active_kernels.back();
        rates[k] = rates.back();
        active_kernels.pop_back();
        rates.pop_back();
      } else {
        ++k;
      }
    }
    for (std::size_t c = 0; c < active_copies.size();) {
      if (ops_[active_copies[c]].end <= t_next + eps) {
        finished[active_copies[c]] = 1;
        ++done;
        active_copies[c] = active_copies.back();
        active_copies.pop_back();
      } else {
        ++c;
      }
    }
    t = t_next;
  }

  resolved_ = true;
}

}  // namespace maxwarp::simt

// Overlap-aware device timeline: the cost model behind streams.
//
// DeviceSim::launch answers "how long does this kernel take *alone*"
// (elapsed cycles = launch overhead + busiest SM). The Timeline answers
// the scheduling question on top: given a set of kernels and copies
// issued onto CUDA-style streams, when does each one start and finish on
// the shared machine?
//
// Resources and the fluid-flow model:
//
//   * Compute. A kernel alone keeps on average p = busy/elapsed SMs busy
//     (its *parallelism*, in [1, num_sms]). The device processes SM-work
//     at an aggregate rate of num_sms; concurrently active kernels split
//     that rate by water-filling — each kernel is capped at its own p
//     (extra SMs cannot speed it past its critical path), and leftover
//     capacity flows to the kernels that can still use it. Consequences:
//     a kernel alone finishes in exactly its serial-model span, kernels
//     whose parallelisms sum to <= num_sms overlap perfectly, and a
//     saturated device degrades all residents proportionally.
//
//   * Copies. Each H2D/D2H copy occupies one DMA engine for its full
//     PCIe-modeled duration (SimConfig::copy_engines; with >= 2 engines
//     the two directions are independent, same-direction copies
//     serialize). Copies never contend with kernels — the transfer/
//     kernel overlap that motivates streams in the first place.
//
// Ordering: ops on one stream run FIFO; ops on different streams are
// independent unless an Event dependency (record on A, wait on B) links
// them. Both op kinds are pushed with their standalone durations; start/
// finish times are resolved lazily (and deterministically) on first
// query, because a kernel's finish time depends on work issued *after*
// it.
#pragma once

#include <cstdint>
#include <vector>

#include "simt/config.hpp"

namespace maxwarp::simt {

class Timeline {
 public:
  using StreamId = std::uint32_t;
  using EventId = std::uint32_t;

  /// Stream 0 (the default stream) exists from construction.
  explicit Timeline(const SimConfig& cfg);

  StreamId create_stream();
  std::uint32_t stream_count() const {
    return static_cast<std::uint32_t>(stream_tail_.size());
  }

  /// Queues a kernel on `s`. `span_ms` is its standalone modeled elapsed
  /// time, `work_sm_ms` the total SM-time it consumes (busy cycles); the
  /// ratio work/span is the parallelism cap described above.
  void push_kernel(StreamId s, double span_ms, double work_sm_ms);

  /// Queues a host<->device copy of the given modeled duration on `s`.
  void push_copy(StreamId s, double duration_ms, bool to_device);

  /// Queues a fixed-duration stall on `s`: it delays the stream (and
  /// counts toward serial_ms) but consumes no SM capacity and no DMA
  /// engine. Models host-side waits charged to the device clock — retry
  /// backoff in the fault-recovery path.
  void push_delay(StreamId s, double duration_ms);

  /// Captures the completion of everything queued on `s` so far.
  EventId record(StreamId s);

  /// All work queued on `s` *after* this call waits for `e` (CUDA
  /// cudaStreamWaitEvent semantics; waiting on an event is cheap — it
  /// adds a dependency edge, not an op).
  void wait_event(StreamId s, EventId e);

  // -- queries (resolve the schedule on demand) ----------------------------

  /// Completion time of the last op queued on `s` (0 if none).
  double stream_ready_ms(StreamId s);

  /// Resolved timestamp of a recorded event.
  double event_ms(EventId e);

  /// Completion time of all queued work — the overlap-aware counterpart
  /// of summing standalone durations.
  double makespan_ms();

  /// Sum of standalone durations of every queued op: what the same work
  /// would cost fully serialized. makespan_ms() / serial_ms() is the
  /// overlap win.
  double serial_ms() const { return serial_ms_; }

  std::size_t op_count() const { return ops_.size(); }

  /// Start/end of the i-th queued op (issue order), for tests and
  /// introspection.
  struct OpSpan {
    double start_ms = 0;
    double end_ms = 0;
  };
  OpSpan op_span(std::size_t i);

  /// Drops all queued ops and recorded events; stream ids stay valid.
  void reset();

 private:
  static constexpr std::int64_t kNone = -1;

  struct Op {
    StreamId stream = 0;
    bool is_copy = false;
    double span_ms = 0;     ///< standalone duration (critical path)
    double work = 0;        ///< kernels: SM-ms of work; copies: unused
    std::vector<std::int64_t> deps;  ///< op indices this op starts after
    // resolved by resolve():
    double start = 0;
    double end = 0;
    double remaining = 0;   ///< scratch during resolve
  };

  void push_op(Op op);
  void resolve();

  std::uint32_t num_sms_;
  std::uint32_t copy_engines_;
  std::vector<Op> ops_;
  std::vector<std::int64_t> stream_tail_;   ///< last op per stream
  std::vector<std::vector<EventId>> pending_waits_;  ///< per stream
  std::vector<std::int64_t> engine_tail_;   ///< last copy per DMA engine
  std::vector<std::int64_t> events_;        ///< op whose end is the timestamp
  double serial_ms_ = 0;
  bool resolved_ = true;  ///< no ops -> trivially resolved
};

}  // namespace maxwarp::simt

// WarpCtx: the execution context a simulated kernel runs against.
//
// Kernels are written in *warp-synchronous* style: the kernel function is
// invoked once per warp and manipulates 32 lanes explicitly through this
// context. Control flow uses ballot/branch/loop_while, which maintain the
// divergence mask stack and charge the cost model — a divergent loop issues
// once per iteration until its *slowest* lane exits, which is precisely the
// work-imbalance pathology the paper studies.
//
// Determinism contract (see DESIGN.md "Execution engine" for the full
// statement): lanes are always visited in increasing lane order. With the
// serial engine (SimConfig::host_threads == 1, the default) warps also run
// sequentially in launch order, so every simulated quantity — including
// atomics' return values — is reproducible bit-for-bit. With the parallel
// engine (host_threads > 1) blocks of a launch execute concurrently on a
// host worker pool: modeled cycle statistics are still reduced in block
// order, but cross-block memory *visibility* inside one launch becomes
// scheduling-dependent, so atomic return values (queue slot order) and any
// value read from a location another block writes in the same launch are
// not deterministic. Global loads/stores/atomics then go through relaxed
// word-sized std::atomic_ref so those races are benign on the host too.
//
// The engine pools one WarpCtx (and its shared-memory arena) per host
// thread and re-arms it per warp via reset_warp() instead of paying a
// >=96 KiB heap allocation per simulated warp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "simt/config.hpp"
#include "simt/devptr.hpp"
#include "simt/lanes.hpp"
#include "simt/mask.hpp"
#include "simt/memory.hpp"
#include "simt/sanitizer.hpp"
#include "simt/stats.hpp"

namespace maxwarp::simt {

namespace detail {

/// True when a global-memory element of type T can be accessed through a
/// word-sized std::atomic_ref on the host (the parallel engine's race-free
/// access path). Every device type the library's kernels use qualifies.
template <typename T>
inline constexpr bool kAtomicRefCapable =
    std::is_trivially_copyable_v<T> &&
    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8) &&
    alignof(T) >= sizeof(T);

}  // namespace detail

/// A span of per-warp shared memory (see WarpCtx::shared_alloc).
template <typename T>
struct SharedArray {
  T* data = nullptr;
  std::uint64_t base_offset = 0;  ///< byte offset used for bank modeling
  std::size_t size = 0;
};

class WarpCtx {
 public:
  /// `lanes_in_use` < 32 models the tail warp of a launch whose thread
  /// count is not a multiple of the warp size.
  /// `sanitizer` is non-null only under SimConfig::sanitize; every memory
  /// primitive then validates the access (shadow-memory checks) *before*
  /// touching the host backing store.
  WarpCtx(std::uint32_t block_id, std::uint32_t warp_in_block,
          std::uint32_t warps_per_block, int lanes_in_use,
          const SimConfig& cfg, CycleCounters& counters,
          Sanitizer* sanitizer = nullptr)
      : block_id_(block_id),
        warp_in_block_(warp_in_block),
        warps_per_block_(warps_per_block),
        cfg_(cfg),
        counters_(counters),
        mem_(cfg, counters),
        san_(sanitizer) {
    if (lanes_in_use < 1 || lanes_in_use > kWarpSize) {
      throw std::invalid_argument("lanes_in_use out of range");
    }
    mask_stack_[0] = prefix_mask(lanes_in_use);
    shared_arena_.reserve(kSharedArenaBytes);
  }

  WarpCtx(const WarpCtx&) = delete;
  WarpCtx& operator=(const WarpCtx&) = delete;

  /// Re-arms this context for the next warp of a launch. The execution
  /// engine pools one WarpCtx per host thread instead of constructing one
  /// per simulated warp: the shared arena keeps its heap block but is
  /// emptied, so shared_alloc() hands back value-initialized (zeroed)
  /// memory exactly as a freshly constructed context would, and the
  /// divergence stack restarts at the warp's root mask.
  void reset_warp(std::uint32_t block_id, std::uint32_t warp_in_block,
                  int lanes_in_use) {
    if (lanes_in_use < 1 || lanes_in_use > kWarpSize) {
      throw std::invalid_argument("lanes_in_use out of range");
    }
    block_id_ = block_id;
    warp_in_block_ = warp_in_block;
    depth_ = 0;
    mask_stack_[0] = prefix_mask(lanes_in_use);
    shared_arena_.clear();
  }

  /// Marks this context as running concurrently with other blocks of the
  /// same launch (host_threads > 1): global loads/stores/atomics switch to
  /// relaxed std::atomic_ref accesses. Engine-internal.
  void set_concurrent(bool concurrent) { concurrent_ = concurrent; }

  // --- identity -----------------------------------------------------------

  std::uint32_t block_id() const { return block_id_; }
  std::uint32_t warp_in_block() const { return warp_in_block_; }
  std::uint32_t warps_per_block() const { return warps_per_block_; }
  std::uint32_t global_warp_id() const {
    return block_id_ * warps_per_block_ + warp_in_block_;
  }
  /// Global thread id of the given lane (blockIdx * blockDim + threadIdx).
  std::uint64_t thread_id(int lane) const {
    return static_cast<std::uint64_t>(global_warp_id()) * kWarpSize +
           static_cast<std::uint64_t>(lane);
  }

  LaneMask active() const { return mask_stack_[depth_]; }
  int active_count() const { return popcount(active()); }

  // --- compute ------------------------------------------------------------

  /// One warp instruction: f(lane) runs for each active lane.
  template <typename F>
  void alu(F&& f) {
    charge_issue();
    for_each_lane(active(), f);
  }

  /// Charges n back-to-back instructions with the same body (models a
  /// multi-instruction scalar sequence without writing it out n times).
  template <typename F>
  void alu_n(int n, F&& f) {
    for (int i = 0; i < n; ++i) alu(f);
  }

  /// Warp vote: returns the mask of active lanes where pred(lane) holds.
  template <typename P>
  LaneMask ballot(P&& pred) {
    charge_issue();
    LaneMask result = 0;
    for_each_lane(active(), [&](int lane) {
      if (pred(lane)) result |= lane_bit(lane);
    });
    return result;
  }

  /// Runs body with execution restricted to `mask & active()`. A proper
  /// subset is a masked (divergent) region; the disabled lanes idle.
  template <typename F>
  void with_mask(LaneMask mask, F&& body) {
    mask &= active();
    if (mask == 0) return;
    if (mask != active()) ++counters_.branch_divergences;
    push(mask);
    body();
    pop();
  }

  /// If/else divergence: both sides execute serially when both masks are
  /// non-empty, exactly like the hardware reconvergence stack.
  template <typename Then, typename Else>
  void branch(LaneMask cond, Then&& then_fn, Else&& else_fn) {
    cond &= active();
    const LaneMask other = active() & ~cond;
    if (cond != 0 && other != 0) ++counters_.branch_divergences;
    if (cond != 0) {
      push(cond);
      then_fn();
      pop();
    }
    if (other != 0) {
      push(other);
      else_fn();
      pop();
    }
  }

  /// Divergent loop: iterates while any active lane's pred holds; lanes
  /// whose pred is false drop out (are masked off) but the warp keeps
  /// issuing until the last lane finishes.
  template <typename P, typename Body>
  void loop_while(P&& pred, Body&& body) {
    for (;;) {
      const LaneMask m = ballot(pred);
      if (m == 0) break;
      push(m);
      body();
      pop();
      ++counters_.loop_iterations;
    }
  }

  // --- global memory ------------------------------------------------------

  /// Gather: out[lane] = ptr[idx(lane)] for active lanes; coalescing is
  /// computed from the lanes' virtual addresses.
  template <typename T, typename IdxF>
  void load_global(DevPtr<T> ptr, IdxF&& idx,
                   Lanes<std::remove_const_t<T>>& out) {
    charge_issue();
    Lanes<std::uint64_t> addrs{};
    if (san_ == nullptr) {
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        addrs[static_cast<std::size_t>(lane)] = ptr.element_vaddr(i);
        out[static_cast<std::size_t>(lane)] = engine_load(ptr.host + i);
      });
    } else {
      // Sanitized path: validate every lane's address before the host read
      // (an out-of-bounds index must fault, not touch the backing store).
      Lanes<std::uint64_t> elems{};
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        elems[static_cast<std::size_t>(lane)] = i;
        addrs[static_cast<std::size_t>(lane)] = ptr.element_vaddr(i);
      });
      san_->check_global(ptr.vaddr, addrs.data(), active(),
                         sizeof(std::remove_const_t<T>), AccessKind::kLoad,
                         global_warp_id(), counters_.issued_instructions,
                         nullptr, 0);
      for_each_lane(active(), [&](int lane) {
        out[static_cast<std::size_t>(lane)] =
            ptr.host[elems[static_cast<std::size_t>(lane)]];
      });
    }
    mem_.access_global(addrs.data(), active(),
                       sizeof(std::remove_const_t<T>));
  }

  /// Warp-uniform load (all lanes need the same element, e.g. a queue
  /// size): a single lane's transaction, value returned by copy.
  template <typename T>
  std::remove_const_t<T> load_global_uniform(DevPtr<T> ptr,
                                             std::uint64_t idx) {
    charge_issue();
    Lanes<std::uint64_t> addrs{};
    const int leader = first_lane(active());
    addrs[static_cast<std::size_t>(leader)] = ptr.element_vaddr(idx);
    if (san_ != nullptr) {
      san_->check_global(ptr.vaddr, addrs.data(), lane_bit(leader),
                         sizeof(std::remove_const_t<T>), AccessKind::kLoad,
                         global_warp_id(), counters_.issued_instructions,
                         nullptr, 0);
    }
    mem_.access_global(addrs.data(), lane_bit(leader),
                       sizeof(std::remove_const_t<T>));
    return engine_load(ptr.host + idx);
  }

  /// Scatter: ptr[idx(lane)] = val(lane) for active lanes. When two active
  /// lanes target the same element the higher lane wins (CUDA leaves this
  /// undefined; we pick the deterministic option).
  template <typename T, typename IdxF, typename ValF>
  void store_global(DevPtr<T> ptr, IdxF&& idx, ValF&& val) {
    static_assert(!std::is_const_v<T>, "cannot store through a const ptr");
    charge_issue();
    Lanes<std::uint64_t> addrs{};
    if (san_ == nullptr) {
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        addrs[static_cast<std::size_t>(lane)] = ptr.element_vaddr(i);
        engine_store(ptr.host + i, static_cast<T>(val(lane)));
      });
    } else {
      // Sanitized path: materialize indices and values first so the checker
      // can compare conflicting lanes' values before anything is written.
      Lanes<std::uint64_t> elems{};
      Lanes<T> vals{};
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        elems[static_cast<std::size_t>(lane)] = i;
        addrs[static_cast<std::size_t>(lane)] = ptr.element_vaddr(i);
        vals[static_cast<std::size_t>(lane)] = val(lane);
      });
      san_->check_global(ptr.vaddr, addrs.data(), active(), sizeof(T),
                         AccessKind::kStore, global_warp_id(),
                         counters_.issued_instructions, vals.data(),
                         sizeof(T));
      for_each_lane(active(), [&](int lane) {
        ptr.host[elems[static_cast<std::size_t>(lane)]] =
            vals[static_cast<std::size_t>(lane)];
      });
    }
    mem_.access_global(addrs.data(), active(), sizeof(T));
  }

  // --- atomics (resolved in lane order; old values returned) ---------------

  template <typename T, typename IdxF, typename ValF>
  Lanes<T> atomic_add(DevPtr<T> ptr, IdxF&& idx, ValF&& val) {
    return atomic_rmw(ptr, idx,
                      [&](T old, int lane) -> T { return old + val(lane); });
  }

  template <typename T, typename IdxF, typename ValF>
  Lanes<T> atomic_min(DevPtr<T> ptr, IdxF&& idx, ValF&& val) {
    return atomic_rmw(ptr, idx, [&](T old, int lane) -> T {
      const T v = val(lane);
      return v < old ? v : old;
    });
  }

  /// atomicOr — the fused multi-query kernels use it to merge per-query
  /// frontier bits into a shared bitmask word.
  template <typename T, typename IdxF, typename ValF>
  Lanes<T> atomic_or(DevPtr<T> ptr, IdxF&& idx, ValF&& val) {
    return atomic_rmw(ptr, idx,
                      [&](T old, int lane) -> T { return old | val(lane); });
  }

  template <typename T, typename IdxF, typename ValF>
  Lanes<T> atomic_exch(DevPtr<T> ptr, IdxF&& idx, ValF&& val) {
    return atomic_rmw(ptr, idx,
                      [&](T, int lane) -> T { return val(lane); });
  }

  /// Compare-and-swap; returns the old values (success iff old == expected).
  template <typename T, typename IdxF, typename ExpF, typename DesF>
  Lanes<T> atomic_cas(DevPtr<T> ptr, IdxF&& idx, ExpF&& expected,
                      DesF&& desired) {
    return atomic_rmw(ptr, idx, [&](T old, int lane) -> T {
      return old == expected(lane) ? desired(lane) : old;
    });
  }

  // --- warp collectives (log2(32) = 5 issue slots, like shfl trees) --------

  template <typename T>
  T reduce_add(const Lanes<T>& v) {
    return reduce(v, [](T a, T b) { return a + b; }, T{});
  }
  template <typename T>
  T reduce_max(const Lanes<T>& v) {
    bool first = true;
    T acc{};
    charge_collective();
    for_each_lane(active(), [&](int lane) {
      const T x = v[static_cast<std::size_t>(lane)];
      acc = first ? x : (x > acc ? x : acc);
      first = false;
    });
    return acc;
  }
  template <typename T>
  T reduce_min(const Lanes<T>& v) {
    bool first = true;
    T acc{};
    charge_collective();
    for_each_lane(active(), [&](int lane) {
      const T x = v[static_cast<std::size_t>(lane)];
      acc = first ? x : (x < acc ? x : acc);
      first = false;
    });
    return acc;
  }

  /// Exclusive prefix sum over active lanes (lane order); inactive slots
  /// are left untouched. Returns the total in `total`.
  template <typename T>
  Lanes<T> exclusive_scan_add(const Lanes<T>& v, T& total) {
    charge_collective();
    Lanes<T> out{};
    T running{};
    for_each_lane(active(), [&](int lane) {
      out[static_cast<std::size_t>(lane)] = running;
      running = running + v[static_cast<std::size_t>(lane)];
    });
    total = running;
    return out;
  }

  /// Broadcast the value held by src_lane to the caller (shfl-like).
  template <typename T>
  T broadcast(const Lanes<T>& v, int src_lane) {
    charge_issue();
    return v[static_cast<std::size_t>(src_lane)];
  }

  /// Warp barrier: free on real warps; charged one issue for the intrinsic.
  void sync() { charge_issue(); }

  // --- shared memory (per-warp scratch with bank-conflict modeling) --------

  template <typename T>
  SharedArray<T> shared_alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t align = alignof(T) < 4 ? 4 : alignof(T);
    std::size_t offset = (shared_arena_.size() + align - 1) / align * align;
    const std::size_t bytes = count * sizeof(T);
    if (offset + bytes > kSharedArenaBytes) {
      throw std::runtime_error("per-warp shared memory arena exhausted");
    }
    shared_arena_.resize(offset + bytes);
    return SharedArray<T>{reinterpret_cast<T*>(shared_arena_.data() + offset),
                          offset, count};
  }

  template <typename T, typename IdxF>
  void load_shared(const SharedArray<T>& arr, IdxF&& idx, Lanes<T>& out) {
    charge_issue();
    Lanes<std::uint64_t> offsets{};
    if (san_ == nullptr) {
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        offsets[static_cast<std::size_t>(lane)] =
            arr.base_offset + i * sizeof(T);
        out[static_cast<std::size_t>(lane)] = arr.data[i];
      });
    } else {
      Lanes<std::uint64_t> elems{};
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        elems[static_cast<std::size_t>(lane)] = i;
        offsets[static_cast<std::size_t>(lane)] =
            arr.base_offset + i * sizeof(T);
      });
      san_->check_shared(offsets.data(), active(), sizeof(T),
                         arr.base_offset,
                         arr.base_offset + arr.size * sizeof(T),
                         AccessKind::kLoad, global_warp_id(),
                         counters_.issued_instructions, nullptr, 0);
      for_each_lane(active(), [&](int lane) {
        out[static_cast<std::size_t>(lane)] =
            arr.data[elems[static_cast<std::size_t>(lane)]];
      });
    }
    mem_.access_shared(offsets.data(), active());
  }

  template <typename T, typename IdxF, typename ValF>
  void store_shared(const SharedArray<T>& arr, IdxF&& idx, ValF&& val) {
    charge_issue();
    Lanes<std::uint64_t> offsets{};
    if (san_ == nullptr) {
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        offsets[static_cast<std::size_t>(lane)] =
            arr.base_offset + i * sizeof(T);
        arr.data[i] = val(lane);
      });
    } else {
      Lanes<std::uint64_t> elems{};
      Lanes<T> vals{};
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        elems[static_cast<std::size_t>(lane)] = i;
        offsets[static_cast<std::size_t>(lane)] =
            arr.base_offset + i * sizeof(T);
        vals[static_cast<std::size_t>(lane)] = val(lane);
      });
      san_->check_shared(offsets.data(), active(), sizeof(T),
                         arr.base_offset,
                         arr.base_offset + arr.size * sizeof(T),
                         AccessKind::kStore, global_warp_id(),
                         counters_.issued_instructions, vals.data(),
                         sizeof(T));
      for_each_lane(active(), [&](int lane) {
        arr.data[elems[static_cast<std::size_t>(lane)]] =
            vals[static_cast<std::size_t>(lane)];
      });
    }
    mem_.access_shared(offsets.data(), active());
  }

  const CycleCounters& counters() const { return counters_; }
  const SimConfig& config() const { return cfg_; }

 private:
  static constexpr std::size_t kMaxDepth = 64;
  static constexpr std::size_t kSharedArenaBytes = 96 * 1024;

  // --- engine memory primitives -------------------------------------------
  // In serial mode these compile down to the plain access. In concurrent
  // mode (host_threads > 1) they use relaxed std::atomic_ref so concurrent
  // blocks' benign races (same-value claims, monotonic flags) are defined
  // behaviour on the host. Relaxed ordering is sufficient: the engine never
  // relies on cross-block happens-before inside a launch, and the pool's
  // join fence publishes everything to the host afterwards.

  template <typename T>
  std::remove_const_t<T> engine_load(T* p) const {
    using U = std::remove_const_t<T>;
    if constexpr (detail::kAtomicRefCapable<U>) {
      if (concurrent_) {
        return std::atomic_ref<U>(*const_cast<U*>(p))
            .load(std::memory_order_relaxed);
      }
    }
    return *p;
  }

  template <typename T>
  void engine_store(T* p, T v) {
    if constexpr (detail::kAtomicRefCapable<T>) {
      if (concurrent_) {
        std::atomic_ref<T>(*p).store(v, std::memory_order_relaxed);
        return;
      }
    }
    *p = v;
  }

  /// Read-modify-write of one element; returns the old value. Concurrent
  /// mode uses a CAS loop, so the update is atomic against other blocks
  /// (the per-warp lane order of the surrounding loop is untouched).
  template <typename T, typename UpdateF>
  T engine_rmw(T* p, int lane, UpdateF&& update) {
    if constexpr (detail::kAtomicRefCapable<T>) {
      if (concurrent_) {
        std::atomic_ref<T> ref(*p);
        T old = ref.load(std::memory_order_relaxed);
        while (!ref.compare_exchange_weak(old, update(old, lane),
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed)) {
        }
        return old;
      }
    }
    const T old = *p;
    *p = update(old, lane);
    return old;
  }

  void charge_issue() {
    ++counters_.issued_instructions;
    counters_.alu_cycles += cfg_.alu_cycles_per_instr;
    counters_.active_lane_ops += static_cast<std::uint64_t>(active_count());
    counters_.possible_lane_ops += kWarpSize;
  }

  void charge_collective() {
    // A shuffle-tree collective over 32 lanes takes log2(32) steps.
    for (int i = 0; i < 5; ++i) charge_issue();
  }

  template <typename T, typename IdxF, typename UpdateF>
  Lanes<T> atomic_rmw(DevPtr<T> ptr, IdxF&& idx, UpdateF&& update) {
    static_assert(!std::is_const_v<T>, "atomics need a mutable pointer");
    charge_issue();
    Lanes<std::uint64_t> addrs{};
    Lanes<T> old{};
    if (san_ == nullptr) {
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        addrs[static_cast<std::size_t>(lane)] = ptr.element_vaddr(i);
        old[static_cast<std::size_t>(lane)] = engine_rmw(ptr.host + i, lane,
                                                         update);
      });
    } else {
      Lanes<std::uint64_t> elems{};
      for_each_lane(active(), [&](int lane) {
        const auto i = static_cast<std::uint64_t>(idx(lane));
        elems[static_cast<std::size_t>(lane)] = i;
        addrs[static_cast<std::size_t>(lane)] = ptr.element_vaddr(i);
      });
      san_->check_global(ptr.vaddr, addrs.data(), active(), sizeof(T),
                         AccessKind::kAtomic, global_warp_id(),
                         counters_.issued_instructions, nullptr, 0);
      for_each_lane(active(), [&](int lane) {
        const auto i = elems[static_cast<std::size_t>(lane)];
        old[static_cast<std::size_t>(lane)] = ptr.host[i];
        ptr.host[i] = update(ptr.host[i], lane);
      });
    }
    mem_.access_atomic(addrs.data(), active());
    return old;
  }

  template <typename T, typename Op>
  T reduce(const Lanes<T>& v, Op&& op, T init) {
    charge_collective();
    T acc = init;
    for_each_lane(active(), [&](int lane) {
      acc = op(acc, v[static_cast<std::size_t>(lane)]);
    });
    return acc;
  }

  void push(LaneMask m) {
    if (depth_ + 1 >= kMaxDepth) {
      throw std::runtime_error("divergence stack overflow");
    }
    mask_stack_[++depth_] = m;
  }
  void pop() { --depth_; }

  std::uint32_t block_id_;
  std::uint32_t warp_in_block_;
  std::uint32_t warps_per_block_;
  const SimConfig& cfg_;
  CycleCounters& counters_;
  MemoryModel mem_;
  Sanitizer* san_ = nullptr;  ///< non-null only under SimConfig::sanitize
  bool concurrent_ = false;   ///< running alongside other blocks' threads
  LaneMask mask_stack_[kMaxDepth] = {};
  std::size_t depth_ = 0;
  std::vector<std::byte> shared_arena_;
};

}  // namespace maxwarp::simt

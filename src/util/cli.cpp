#include "util/cli.hpp"

#include <cstdlib>

namespace maxwarp::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                      nullptr, 0);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(),
                                                     nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> CliArgs::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace maxwarp::util

// Minimal command-line flag parsing for examples and bench harnesses.
//
// Supports "--name=value", "--name value" and boolean "--name" forms.
// Unrecognized flags are collected so callers can forward them (e.g. to
// google-benchmark's own parser).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace maxwarp::util {

class CliArgs {
 public:
  /// Parses argv; positional (non --) arguments are kept in order.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were present on the command line but never queried; useful
  /// for catching typos in example programs.
  std::vector<std::string> unqueried() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace maxwarp::util

#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace maxwarp::util {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  // Seed expansion via SplitMix64, per the xoshiro authors' recommendation.
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state would be absorbing; SplitMix64 cannot emit four zeros for
  // any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Xoshiro256StarStar::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_open() {
  return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_normal() {
  const double u1 = next_double_open();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * next_normal());
}

double Rng::next_pareto(double x_m, double alpha) {
  assert(x_m > 0 && alpha > 0);
  return x_m / std::pow(next_double_open(), 1.0 / alpha);
}

double Rng::next_exponential(double lambda) {
  assert(lambda > 0);
  return -std::log(next_double_open()) / lambda;
}

Rng Rng::split() {
  Rng child = *this;
  child.engine_.jump();
  // Also perturb the parent so repeated splits differ.
  (void)next_u64();
  return child;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0 && s != 1.0);  // s == 1 handled by the general formula limit;
                              // callers use s like 1.5/2.0 in practice.
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  dd_ = 12.0 * (h(2.5) - h(1.5) - std::pow(2.0, -s_));
}

double ZipfSampler::h(double x) const {
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 1;
  // Rejection-inversion (Hörmann & Derflinger 1996).
  for (;;) {
    const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= dd_) return k;
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

}  // namespace maxwarp::util

// Deterministic pseudo-random number generation for workload synthesis.
//
// Every generator in this library is seeded explicitly so that graph
// instances, synthetic workloads and test sweeps are bit-reproducible across
// runs and platforms. We provide:
//   - SplitMix64: a tiny stateless-ish mixer, used to expand a single user
//     seed into independent stream seeds.
//   - Xoshiro256StarStar: the main engine (fast, high-quality, 256-bit
//     state), with `jump()` to derive non-overlapping parallel streams.
//   - Distribution helpers (uniform, lognormal, Pareto, Zipf) implemented on
//     top of the engine so results do not depend on libstdc++'s unspecified
//     std::distribution algorithms.
#pragma once

#include <cstdint>
#include <limits>

namespace maxwarp::util {

/// Mixes a 64-bit state into a well-distributed 64-bit output.
/// Used to derive independent seeds from a user seed (seed, seed+1, ...).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  result_type next();

  /// Advances the state by 2^128 steps; use to split independent streams.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// Convenience wrapper bundling an engine with explicit, portable
/// distribution transforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_.next(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [0, 1] with the open-left convention (0, 1];
  /// useful as input to -log(u).
  double next_double_open();

  /// true with probability p.
  bool next_bool(double p);

  /// Standard normal via Box–Muller (no cached second value; deterministic).
  double next_normal();

  /// Lognormal with the given log-space mean and sigma.
  double next_lognormal(double mu, double sigma);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed).
  double next_pareto(double x_m, double alpha);

  /// Exponential with rate lambda.
  double next_exponential(double lambda);

  /// Derive a child RNG whose stream is independent of this one.
  Rng split();

 private:
  Xoshiro256StarStar engine_;
};

/// Zipf(s) sampler over {1..n} using precomputed inverse-CDF tables would be
/// heavy for large n; instead we use the rejection-inversion method of
/// Hörmann & Derflinger, which is O(1) per sample and exact.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// Draws a value in [1, n].
  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double dd_;
};

}  // namespace maxwarp::util

#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <sstream>

namespace maxwarp::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0;
  double total = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    assert(values[i] >= 0.0);
    cum_weighted += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total == 0) return 0.0;
  const auto n = static_cast<double>(values.size());
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void Log2Histogram::add(std::uint64_t value) {
  const auto k = static_cast<std::size_t>(
      value == 0 ? 0 : std::bit_width(value));  // 0 -> bucket 0, 1 -> 1, ...
  if (k >= buckets_.size()) buckets_.resize(k + 1, 0);
  ++buckets_[k];
  ++total_;
}

std::uint64_t Log2Histogram::bucket(std::size_t k) const {
  return k < buckets_.size() ? buckets_[k] : 0;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    if (buckets_[k] == 0) continue;
    const std::uint64_t lo = (k == 0) ? 0 : (1ULL << (k - 1));
    const std::uint64_t hi = (k == 0) ? 1 : (1ULL << k);
    out << '[' << lo << ", " << hi << "): " << buckets_[k] << '\n';
  }
  return out.str();
}

}  // namespace maxwarp::util

// Streaming statistics and distribution summaries.
//
// Used for degree-distribution characterization (Table 1 of the paper) and
// for summarizing per-warp utilization samples in the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace maxwarp::util {

/// Welford one-pass accumulator: mean/variance/min/max without storing data.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Gini coefficient of a non-negative sample; 0 = perfectly uniform,
/// -> 1 = all mass in one element. The paper's "irregularity" of a degree
/// distribution is exactly this kind of skew measure.
double gini_coefficient(std::vector<double> values);

/// Exact quantile (by sorting a copy). q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Power-of-two histogram for degree distributions. Bucket 0 counts zeros;
/// bucket k >= 1 counts values in [2^(k-1), 2^k).
class Log2Histogram {
 public:
  void add(std::uint64_t value);

  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t k) const;
  std::uint64_t total() const { return total_; }

  /// Human-readable rendering, one "[lo, hi): count" line per bucket.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace maxwarp::util

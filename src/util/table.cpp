#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace maxwarp::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
        c != 'x') {
      return false;
    }
  }
  return true;
}

std::string pad(const std::string& s, std::size_t width, bool right_align) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right_align ? fill + s : s + fill;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << "  ";
    out << pad(headers_[c], widths[c], /*right_align=*/false);
  }
  out << '\n';
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const std::size_t w = c < widths.size() ? widths[c] : row[c].size();
      out << pad(row[c], w, looks_numeric(row[c]));
    }
    out << '\n';
  }
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_mteps(double edges_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MTEPS", edges_per_second / 1e6);
  return buf;
}

std::string format_si(double value) {
  const char* suffix = "";
  double v = value;
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "B";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, suffix);
  return buf;
}

}  // namespace maxwarp::util

// Fixed-width text tables for benchmark output.
//
// Every bench binary prints the rows/series of the table or figure it
// regenerates; this keeps those printouts aligned and diff-friendly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace maxwarp::util {

/// Column-aligned table builder. Cells are strings; numeric helpers format
/// with fixed precision. Rendering right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, two-space column gaps.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a count of traversed edges per second as "123.4 MTEPS".
std::string format_mteps(double edges_per_second);

/// Formats e.g. 1234567 as "1.23M" (SI-style suffix, 3 significant digits).
std::string format_si(double value);

}  // namespace maxwarp::util

// Intentionally empty: Timer is header-only; this TU exists so that the
// util library always has at least one object file per public header group.
#include "util/timer.hpp"

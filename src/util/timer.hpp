// Wall-clock timing helpers for benchmark harnesses and examples.
#pragma once

#include <chrono>
#include <cstdint>

namespace maxwarp::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the total of several timed regions (e.g. per-BFS-level kernel
/// times) without including the host code in between.
class AccumulatingTimer {
 public:
  void start() { timer_.reset(); }
  void stop() { total_seconds_ += timer_.seconds(); ++laps_; }

  double total_seconds() const { return total_seconds_; }
  std::uint64_t laps() const { return laps_; }

  void clear() {
    total_seconds_ = 0;
    laps_ = 0;
  }

 private:
  Timer timer_;
  double total_seconds_ = 0;
  std::uint64_t laps_ = 0;
};

}  // namespace maxwarp::util

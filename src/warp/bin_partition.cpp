#include "warp/bin_partition.hpp"

#include <span>
#include <stdexcept>

#include "simt/lanes.hpp"
#include "simt/mask.hpp"
#include "simt/warp_ctx.hpp"

namespace maxwarp::vw {

namespace {

/// Loads the vertex id and degree for each lane's input slot; returns the
/// in-range mask. Shared verbatim by the count and scatter kernels so both
/// classify identically.
simt::LaneMask load_lane_degrees(simt::WarpCtx& w,
                                 simt::DevPtr<const std::uint32_t> row,
                                 const simt::DevPtr<const std::uint32_t>* input,
                                 std::uint32_t n,
                                 simt::Lanes<std::uint32_t>& vertex,
                                 simt::Lanes<std::uint32_t>& degree) {
  simt::Lanes<std::uint32_t> idx{};
  w.alu([&](int lane) {
    idx[static_cast<std::size_t>(lane)] =
        static_cast<std::uint32_t>(w.thread_id(lane));
  });
  const simt::LaneMask valid = w.ballot([&](int lane) {
    return idx[static_cast<std::size_t>(lane)] < n;
  });
  if (valid == 0) return 0;
  w.with_mask(valid, [&] {
    if (input != nullptr) {
      w.load_global(*input, [&](int lane) {
        return idx[static_cast<std::size_t>(lane)];
      }, vertex);
    } else {
      w.alu([&](int lane) {
        vertex[static_cast<std::size_t>(lane)] =
            idx[static_cast<std::size_t>(lane)];
      });
    }
    simt::Lanes<std::uint32_t> begin{}, end{};
    w.load_global(row, [&](int lane) {
      return vertex[static_cast<std::size_t>(lane)];
    }, begin);
    w.load_global(row, [&](int lane) {
      return vertex[static_cast<std::size_t>(lane)] + 1;
    }, end);
    w.alu([&](int lane) {
      const auto k = static_cast<std::size_t>(lane);
      degree[k] = end[k] - begin[k];
    });
  });
  return valid;
}

}  // namespace

BinPartitioner::BinPartitioner(gpu::Device& device, std::uint32_t capacity,
                               std::vector<std::uint32_t> upper_bounds,
                               std::string label)
    : device_(&device),
      bounds_(std::move(upper_bounds)),
      label_(std::move(label)),
      entries_(device, capacity),
      cursor_(device, bounds_.empty() ? 1 : bounds_.size()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("BinPartitioner: no bins");
  }
  for (std::size_t b = 1; b < bounds_.size(); ++b) {
    if (bounds_[b] <= bounds_[b - 1]) {
      throw std::invalid_argument(
          "BinPartitioner: bin bounds must be strictly ascending");
    }
  }
  if (bounds_.back() != 0xffffffffu) {
    throw std::invalid_argument(
        "BinPartitioner: last bin bound must be 0xffffffff");
  }
}

BinPartition BinPartitioner::partition_range(
    simt::DevPtr<const std::uint32_t> row, std::uint32_t n) {
  return run(row, nullptr, n);
}

BinPartition BinPartitioner::partition_list(
    simt::DevPtr<const std::uint32_t> row,
    simt::DevPtr<const std::uint32_t> input, std::uint32_t count) {
  return run(row, &input, count);
}

BinPartition BinPartitioner::run(simt::DevPtr<const std::uint32_t> row,
                                 const simt::DevPtr<const std::uint32_t>* input,
                                 std::uint32_t n) {
  using simt::LaneMask;
  using simt::Lanes;
  using simt::WarpCtx;

  BinPartition part;
  part.offset.assign(bounds_.size() + 1, 0);
  part.stats.launches = 0;
  if (n == 0) return part;
  if (n > entries_.size()) {
    throw std::invalid_argument(
        "BinPartitioner: input larger than configured capacity");
  }

  const std::size_t num_bins = bounds_.size();
  cursor_.fill(0);
  const auto dims = device_->dims_for_threads(n);

  // Per-lane bin classification against the (warp-uniform) bounds: one
  // compare per bin, and one ballot per bin to form its lane mask.
  const auto bin_mask = [&](WarpCtx& w, const Lanes<std::uint32_t>& degree,
                            LaneMask valid, std::size_t b) {
    const std::uint32_t lo = b == 0 ? 0u : bounds_[b - 1] + 1u;
    const std::uint32_t hi = bounds_[b];
    return valid & w.ballot([&](int lane) {
      const std::uint32_t d = degree[static_cast<std::size_t>(lane)];
      return d >= lo && d <= hi;
    });
  };

  part.stats.add(device_->launch(
      dims.named(label_ + ".count"), [&](WarpCtx& w) {
        Lanes<std::uint32_t> vertex{}, degree{};
        const LaneMask valid =
            load_lane_degrees(w, row, input, n, vertex, degree);
        if (valid == 0) return;
        for (std::size_t b = 0; b < num_bins; ++b) {
          const LaneMask in_bin = bin_mask(w, degree, valid, b);
          if (in_bin == 0) continue;
          w.with_mask(in_bin, [&] {
            // Aggregate: one scan + one leader atomic per bin per warp.
            Lanes<std::uint32_t> ones = simt::make_lanes<std::uint32_t>(1);
            std::uint32_t total = 0;
            w.exclusive_scan_add(ones, total);
            const int leader = simt::first_lane(w.active());
            w.with_mask(simt::lane_bit(leader), [&] {
              w.atomic_add(cursor_.ptr(),
                           [&](int) { return static_cast<std::uint64_t>(b); },
                           [&](int) { return total; });
            });
          });
        }
      }));

  // Host exclusive prefix sum over the <= 8 counts, re-uploaded as the
  // scatter cursors (each bin's running write position).
  const std::vector<std::uint32_t> counts = cursor_.download();
  for (std::size_t b = 0; b < num_bins; ++b) {
    part.offset[b + 1] = part.offset[b] + counts[b];
  }
  cursor_.upload(std::span<const std::uint32_t>(part.offset.data(), num_bins));

  part.stats.add(device_->launch(
      dims.named(label_ + ".scatter"), [&](WarpCtx& w) {
        Lanes<std::uint32_t> vertex{}, degree{};
        const LaneMask valid =
            load_lane_degrees(w, row, input, n, vertex, degree);
        if (valid == 0) return;
        for (std::size_t b = 0; b < num_bins; ++b) {
          const LaneMask in_bin = bin_mask(w, degree, valid, b);
          if (in_bin == 0) continue;
          w.with_mask(in_bin, [&] {
            // Aggregated push into the bin's segment: slot by scan, one
            // leader atomic for the base, coalesced scatter of the ids.
            Lanes<std::uint32_t> ones = simt::make_lanes<std::uint32_t>(1);
            std::uint32_t total = 0;
            const Lanes<std::uint32_t> slot = w.exclusive_scan_add(ones, total);
            Lanes<std::uint32_t> base = simt::make_lanes<std::uint32_t>(0);
            const int leader = simt::first_lane(w.active());
            w.with_mask(simt::lane_bit(leader), [&] {
              base = w.atomic_add(
                  cursor_.ptr(),
                  [&](int) { return static_cast<std::uint64_t>(b); },
                  [&](int) { return total; });
            });
            const std::uint32_t start = w.broadcast(base, leader);
            w.store_global(entries_.ptr(), [&](int lane) {
              return start + slot[static_cast<std::size_t>(lane)];
            }, [&](int lane) {
              return vertex[static_cast<std::size_t>(lane)];
            });
          });
        }
      }));

  return part;
}

}  // namespace maxwarp::vw

// Degree-bin partitioner for adaptive dispatch.
//
// Splits a vertex set (the whole graph, or an explicit frontier list) into
// degree bins with two kernels and a host prefix sum:
//
//   count    — every warp classifies its 32 vertices against the inclusive
//              per-bin degree bounds and bumps each bin's counter with one
//              warp-aggregated atomic (exclusive scan + leader atomicAdd);
//   (host)   — exclusive prefix sum over the <= 8 bin counts yields the
//              per-bin segment offsets, uploaded back as scatter cursors;
//   scatter  — the same classification again, but now each warp appends
//              its vertices to their bin segments with the aggregated-push
//              idiom (scan for slots, one atomic per bin per warp, then a
//              coalesced store).
//
// Both kernels visit warps — and lanes within a warp — in ascending order,
// so each bin segment lists its vertices in ascending input order: the
// partition is deterministic and independent of any tuning knob.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/buffer.hpp"
#include "gpu/device.hpp"
#include "simt/stats.hpp"

namespace maxwarp::vw {

/// Result of one partition pass. Bin b owns entries
/// [offset[b], offset[b+1]) of the partitioner's entries buffer.
struct BinPartition {
  std::vector<std::uint32_t> offset;  ///< size bins()+1, exclusive prefix
  simt::KernelStats stats;            ///< count + scatter kernel cost

  std::uint32_t count(std::size_t b) const {
    return offset[b + 1] - offset[b];
  }
  std::uint32_t total() const { return offset.empty() ? 0 : offset.back(); }
};

class BinPartitioner {
 public:
  /// `upper_bounds` are the inclusive per-bin degree bounds, ascending,
  /// with the last entry 0xffffffff (every degree lands somewhere).
  /// `capacity` bounds the vertex count of any later partition call;
  /// `label` prefixes the kernel names ("<label>.count" / ".scatter").
  BinPartitioner(gpu::Device& device, std::uint32_t capacity,
                 std::vector<std::uint32_t> upper_bounds, std::string label);

  std::size_t bins() const { return bounds_.size(); }

  /// Partitions vertices 0..n-1 by out-degree row[v+1] - row[v].
  BinPartition partition_range(simt::DevPtr<const std::uint32_t> row,
                               std::uint32_t n);

  /// Partitions an explicit vertex list (a queue frontier) the same way.
  BinPartition partition_list(simt::DevPtr<const std::uint32_t> row,
                              simt::DevPtr<const std::uint32_t> input,
                              std::uint32_t count);

  /// The bin-grouped vertex ids written by the last partition call.
  simt::DevPtr<const std::uint32_t> entries() const {
    return entries_.cptr();
  }

 private:
  BinPartition run(simt::DevPtr<const std::uint32_t> row,
                   const simt::DevPtr<const std::uint32_t>* input,
                   std::uint32_t n);

  gpu::Device* device_;
  std::vector<std::uint32_t> bounds_;
  std::string label_;
  gpu::DeviceBuffer<std::uint32_t> entries_;
  gpu::DeviceBuffer<std::uint32_t> cursor_;  ///< per-bin counter/cursor cells
};

}  // namespace maxwarp::vw

// Deferring outliers (paper section "techniques for dynamic workload").
//
// Vertices whose degree exceeds a threshold are not expanded in place;
// instead their ids are pushed to a global-memory queue with one
// warp-aggregated atomic, and a second kernel drains the queue with much
// wider execution units (a full physical warp — or several — per vertex).
// This bounds the worst-case stall any single warp can suffer to the
// threshold, while hub expansion proceeds at full SIMD width.
#pragma once

#include <algorithm>
#include <cstdint>

#include "gpu/buffer.hpp"
#include "gpu/device.hpp"
#include "simt/warp_ctx.hpp"

namespace maxwarp::vw {

/// Device-side handles for the queue (passed into kernels by value).
struct DeferQueueView {
  simt::DevPtr<std::uint32_t> entries;
  simt::DevPtr<std::uint32_t> count;  ///< single counter cell
};

/// Host-side owner of the queue storage.
class DeferQueue {
 public:
  DeferQueue(gpu::Device& device, std::uint32_t capacity)
      : entries_(device, capacity), count_(device, 1) {
    count_.fill(0);
  }

  DeferQueueView view() {
    return {entries_.ptr(), count_.ptr()};
  }

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// Host read of the element count (a D2H copy, like the real code's
  /// cudaMemcpy of the queue cursor between kernels). Records *demand*:
  /// pushes past capacity still bump the counter even though their entries
  /// are dropped, so size() can exceed capacity().
  std::uint32_t size() const { return count_.read(0); }

  /// Entries actually present in the queue storage: demand clamped to
  /// capacity. This is the bound a drain kernel must iterate to — reading
  /// entries [stored(), size()) would touch dropped (never-written) slots.
  std::uint32_t stored() const { return std::min(size(), capacity()); }

  void reset() { count_.fill(0); }

 private:
  gpu::DeviceBuffer<std::uint32_t> entries_;
  gpu::DeviceBuffer<std::uint32_t> count_;
};

/// Warp-aggregated queue push: appends value[lane] for every lane in
/// `mask` using one intra-warp exclusive scan for slot assignment, a
/// single leader atomicAdd for the base index, and a coalesced scatter —
/// the idiom that replaces 32 contending atomics with one. Entries past
/// `capacity` are dropped (the counter still records demand).
inline void warp_aggregated_push(simt::WarpCtx& w,
                                 simt::DevPtr<std::uint32_t> entries,
                                 simt::DevPtr<std::uint32_t> count,
                                 std::uint32_t capacity, simt::LaneMask mask,
                                 const simt::Lanes<std::uint32_t>& value) {
  mask &= w.active();
  if (mask == 0) return;
  w.with_mask(mask, [&] {
    // Slot assignment within the warp.
    simt::Lanes<std::uint32_t> ones = simt::make_lanes<std::uint32_t>(1);
    std::uint32_t total = 0;
    const simt::Lanes<std::uint32_t> slot = w.exclusive_scan_add(ones, total);

    // One atomic for the whole warp.
    simt::Lanes<std::uint32_t> base = simt::make_lanes<std::uint32_t>(0);
    const int leader = simt::first_lane(w.active());
    w.with_mask(simt::lane_bit(leader), [&] {
      base = w.atomic_add(count, [](int) { return 0; },
                          [&](int) { return total; });
    });
    const std::uint32_t start = w.broadcast(base, leader);

    // Coalesced scatter. The slot index is computed in 64 bits: once the
    // queue has overflowed, `start` (the pre-overflow demand counter) can
    // be arbitrarily large, and a 32-bit `start + slot` could wrap around
    // back under `capacity` and clobber a live entry.
    const simt::LaneMask fits = w.ballot([&](int lane) {
      return static_cast<std::uint64_t>(start) +
                 slot[static_cast<std::size_t>(lane)] <
             capacity;
    });
    w.with_mask(fits, [&] {
      w.store_global(entries, [&](int lane) {
        return start + slot[static_cast<std::size_t>(lane)];
      }, [&](int lane) { return value[static_cast<std::size_t>(lane)]; });
    });
  });
}

/// Pushes task[lane] for every lane in `mask` onto the defer queue.
inline void defer_push(simt::WarpCtx& w, const DeferQueueView& q,
                       std::uint32_t capacity, simt::LaneMask mask,
                       const simt::Lanes<std::uint32_t>& task) {
  warp_aggregated_push(w, q.entries, q.count, capacity, mask, task);
}

}  // namespace maxwarp::vw

// Anchor TU for the header-only virtual-warp primitives; also forces a
// compile of the templates' non-dependent parts under library warnings.
#include "warp/virtual_warp.hpp"

#include "warp/defer_queue.hpp"

namespace maxwarp::vw {

// Explicitly exercise Layout validation paths so misuse fails at library
// build time if the invariants change.
static_assert(simt::kWarpSize == 32,
              "virtual warp widths assume 32-lane physical warps");

}  // namespace maxwarp::vw

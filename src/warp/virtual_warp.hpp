// Virtual warp-centric programming primitives — the paper's contribution.
//
// A physical 32-lane warp is partitioned into 32/W *virtual warps* (groups)
// of W lanes each. Each group owns one task (vertex) at a time and
// alternates two phases:
//
//   SISD phase — scalar bookkeeping executed by every lane of the group
//     redundantly (replication costs nothing extra under SIMT: the warp
//     issues the instruction once regardless);
//   SIMD phase — the task's data-parallel work (its neighbor list) is
//     strip-mined across the group's W lanes.
//
// Because all groups of a physical warp execute the same instruction
// sequence, a group whose task has less work idles (is masked off) while
// the longest-running group finishes — that residual imbalance is bounded
// by the *within-warp* degree spread divided by W, instead of by the
// full degree of a single vertex as in thread-mapping. The W knob trades
// this imbalance against ALU underutilization on short neighbor lists.
//
// The helpers here keep divergence-mask bookkeeping out of kernels:
// algorithms compose assign_static_tasks / claim_chunk (dynamic), a task
// filter, load_task_ranges, and simd_strip_loop.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "simt/devptr.hpp"
#include "simt/lanes.hpp"
#include "simt/mask.hpp"
#include "simt/warp_ctx.hpp"

namespace maxwarp::vw {

/// Geometry of the virtual-warp decomposition.
struct Layout {
  int width = 32;  ///< W: lanes per virtual warp

  static bool valid_width(int w) {
    return w == 1 || w == 2 || w == 4 || w == 8 || w == 16 || w == 32;
  }

  explicit Layout(int w) : width(w) {
    if (!valid_width(w)) {
      throw std::invalid_argument(
          "virtual warp width must be a power-of-two divisor of 32");
    }
  }

  int groups() const { return simt::kWarpSize / width; }
  int group_of(int lane) const { return lane / width; }
  int lane_in_group(int lane) const { return lane % width; }
  int leader_lane(int group) const { return group * width; }
};

/// Static (grid-strided) task assignment: in round r, the g-th group of
/// warp w owns task  w*G + g + r*total_groups.  Fills `task` for every
/// lane (replicated across its group) and returns the mask of lanes whose
/// group has a valid task.
inline simt::LaneMask assign_static_tasks(
    simt::WarpCtx& w, const Layout& layout, std::uint64_t round,
    std::uint64_t total_groups, std::uint64_t num_tasks,
    simt::Lanes<std::uint32_t>& task) {
  simt::Lanes<std::uint64_t> raw{};
  w.alu([&](int lane) {
    raw[static_cast<std::size_t>(lane)] =
        static_cast<std::uint64_t>(w.global_warp_id()) *
            static_cast<std::uint64_t>(layout.groups()) +
        static_cast<std::uint64_t>(layout.group_of(lane)) +
        round * total_groups;
  });
  const simt::LaneMask valid = w.ballot([&](int lane) {
    return raw[static_cast<std::size_t>(lane)] < num_tasks;
  });
  w.alu([&](int lane) {
    task[static_cast<std::size_t>(lane)] =
        static_cast<std::uint32_t>(raw[static_cast<std::size_t>(lane)]);
  });
  return valid;
}

/// Dynamic task distribution: the warp leader claims `chunk` consecutive
/// tasks with one atomic fetch-and-add and broadcasts the start index.
/// Returns the chunk start (>= num_tasks means the pool is drained).
inline std::uint32_t claim_chunk(simt::WarpCtx& w,
                                 simt::DevPtr<std::uint32_t> counter,
                                 std::uint32_t chunk) {
  simt::Lanes<std::uint32_t> old = simt::make_lanes<std::uint32_t>(0);
  const int leader = simt::first_lane(w.active());
  w.with_mask(simt::lane_bit(leader), [&] {
    old = w.atomic_add(counter, [](int) { return 0; },
                       [&](int) { return chunk; });
  });
  return w.broadcast(old, leader);
}

/// Distributes the claimed chunk's tasks to groups: group g takes
/// chunk_start + g (replicated to its lanes). Returns the valid-lane mask.
inline simt::LaneMask assign_chunk_tasks(simt::WarpCtx& w,
                                         const Layout& layout,
                                         std::uint32_t chunk_start,
                                         std::uint32_t chunk,
                                         std::uint64_t num_tasks,
                                         simt::Lanes<std::uint32_t>& task) {
  w.alu([&](int lane) {
    task[static_cast<std::size_t>(lane)] =
        chunk_start + static_cast<std::uint32_t>(layout.group_of(lane));
  });
  return w.ballot([&](int lane) {
    const std::uint32_t t = task[static_cast<std::size_t>(lane)];
    return t < chunk_start + chunk && t < num_tasks;
  });
}

/// SISD phase helper for CSR algorithms: loads each group's task row range
/// [row[v], row[v+1]) replicated to the group's lanes. The replicated loads
/// coalesce (same address per group), mirroring the paper's replicated
/// scalar phase.
inline void load_task_ranges(simt::WarpCtx& w,
                             simt::DevPtr<const std::uint32_t> row,
                             const simt::Lanes<std::uint32_t>& task,
                             simt::LaneMask valid,
                             simt::Lanes<std::uint32_t>& begin,
                             simt::Lanes<std::uint32_t>& end) {
  w.with_mask(valid, [&] {
    w.load_global(row, [&](int lane) {
      return task[static_cast<std::size_t>(lane)];
    }, begin);
    w.load_global(row, [&](int lane) {
      return task[static_cast<std::size_t>(lane)] + 1;
    }, end);
  });
}

/// SIMD phase: strip-mines each group's [begin, end) range across its W
/// lanes. `body(cursor)` runs once per strip with `cursor[lane]` holding
/// the lane's current work-item index; lanes past their group's end are
/// masked off, so the warp iterates until the *largest* group range is
/// done — the virtual-warp imbalance residue the paper analyzes.
template <typename BodyF>
void simd_strip_loop(simt::WarpCtx& w, const Layout& layout,
                     const simt::Lanes<std::uint32_t>& begin,
                     const simt::Lanes<std::uint32_t>& end,
                     simt::LaneMask valid, BodyF&& body) {
  simt::Lanes<std::uint32_t> cursor{};
  w.alu([&](int lane) {
    cursor[static_cast<std::size_t>(lane)] =
        begin[static_cast<std::size_t>(lane)] +
        static_cast<std::uint32_t>(layout.lane_in_group(lane));
  });
  w.with_mask(valid, [&] {
    w.loop_while(
        [&](int lane) {
          return cursor[static_cast<std::size_t>(lane)] <
                 end[static_cast<std::size_t>(lane)];
        },
        [&] {
          body(cursor);
          w.alu([&](int lane) {
            cursor[static_cast<std::size_t>(lane)] +=
                static_cast<std::uint32_t>(layout.width);
          });
        });
  });
}

/// Strip-mined per-group accumulation with a *width-invariant* result:
/// runs the strip loop and, per strip, folds each active lane's
/// contribution into its group leader's accumulator slot in ascending
/// lane order — which is ascending edge order within the group, so the
/// final per-task sum is the strict sequential fold over the task's
/// [begin, end) range for ANY W (and any mapping built from these
/// layouts). This is what makes floating-point kernels (PageRank, SpMV,
/// BC) bit-identical across virtual warp widths and under adaptive
/// dispatch.
///
/// `prepare(cursor)` issues the strip's loads; `value(lane)` computes the
/// lane's contribution from them inside the single fold instruction.
/// Charges one ALU op per strip (the fold) plus the same log2(W) tail as
/// group_reduce, matching the cost of the partial-accumulator + tree
/// pattern it replaces. Leader lanes hold the totals; other slots are 0.
template <typename T, typename PrepareF, typename ValueF>
simt::Lanes<T> simd_strip_accumulate(simt::WarpCtx& w, const Layout& layout,
                                     const simt::Lanes<std::uint32_t>& begin,
                                     const simt::Lanes<std::uint32_t>& end,
                                     simt::LaneMask valid, PrepareF&& prepare,
                                     ValueF&& value) {
  simt::Lanes<T> acc{};
  simd_strip_loop(w, layout, begin, end, valid,
                  [&](const simt::Lanes<std::uint32_t>& cursor) {
                    prepare(cursor);
                    w.alu([&](int lane) {
                      const int leader =
                          layout.leader_lane(layout.group_of(lane));
                      acc[static_cast<std::size_t>(leader)] += value(lane);
                    });
                  });
  // Same shuffle-tree charge as group_reduce: the replaced pattern paid
  // log2(W) combine steps after the strips; so does this one.
  int steps = 0;
  for (int span = 1; span < layout.width; span *= 2) ++steps;
  w.alu_n(steps == 0 ? 1 : steps, [](int) {});
  return acc;
}

/// Per-group tree reduction with an arbitrary associative op: combines
/// each group's lanes of `values` into the group's leader lane (other
/// lanes keep partial garbage, as after a real shfl-down tree). Charges
/// log2(W) shuffle steps. Only lanes in `valid` contribute; leader slots
/// of groups with no valid lanes get `identity`.
template <typename T, typename Op>
simt::Lanes<T> group_reduce(simt::WarpCtx& w, const Layout& layout,
                            const simt::Lanes<T>& values,
                            simt::LaneMask valid, Op&& op, T identity = {}) {
  // log2(width) shuffle-down steps on real hardware.
  int steps = 0;
  for (int span = 1; span < layout.width; span *= 2) ++steps;
  simt::Lanes<T> out{};
  w.alu_n(steps == 0 ? 1 : steps, [](int) {});
  for (int g = 0; g < layout.groups(); ++g) {
    T acc = identity;
    for (int j = 0; j < layout.width; ++j) {
      const int lane = layout.leader_lane(g) + j;
      if (simt::lane_active(valid, lane)) {
        acc = op(acc, values[static_cast<std::size_t>(lane)]);
      }
    }
    out[static_cast<std::size_t>(layout.leader_lane(g))] = acc;
  }
  return out;
}

/// Sum reduction (the common case).
template <typename T>
simt::Lanes<T> group_reduce_add(simt::WarpCtx& w, const Layout& layout,
                                const simt::Lanes<T>& values,
                                simt::LaneMask valid) {
  return group_reduce(w, layout, values, valid,
                      [](T a, T b) { return a + b; });
}

/// Bitwise-OR reduction (mask accumulation, e.g. forbidden color sets).
template <typename T>
simt::Lanes<T> group_reduce_or(simt::WarpCtx& w, const Layout& layout,
                               const simt::Lanes<T>& values,
                               simt::LaneMask valid) {
  return group_reduce(w, layout, values, valid,
                      [](T a, T b) { return a | b; });
}

}  // namespace maxwarp::vw

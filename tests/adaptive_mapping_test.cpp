// Mapping::kAdaptive end-to-end coverage: bit-identical results vs the
// static warp-centric mapping across every GPU algorithm and both degree
// profiles (skewed rmat, flat uniform_degree), the auto-tuned plan's
// structural invariants, the forced-outlier team path, the per-run bins
// ledger, and a simtsan-clean sweep.
//
// Determinism contract under test (see adaptive_dispatch.hpp): bins
// partition the vertex set, each vertex is swept by exactly one (bin, W)
// group, integer phases commute and float phases fold in sequential edge
// order — so kAdaptive must EQUAL static results bit-for-bit, not merely
// approximate them.
#include "algorithms/adaptive_dispatch.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "algorithms/bc_gpu.hpp"
#include "algorithms/bfs_gpu.hpp"
#include "algorithms/cc_gpu.hpp"
#include "algorithms/coloring_gpu.hpp"
#include "algorithms/kcore_gpu.hpp"
#include "algorithms/pagerank_gpu.hpp"
#include "algorithms/query_engine.hpp"
#include "algorithms/spmv_gpu.hpp"
#include "algorithms/sssp_gpu.hpp"
#include "algorithms/tc_gpu.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "simt/sanitizer.hpp"

namespace maxwarp::algorithms {
namespace {

using graph::Csr;
using graph::NodeId;

Csr skewed_graph() {
  return graph::rmat(512, 4096, {}, {.seed = 7, .undirected = true});
}

Csr flat_graph() {
  return graph::uniform_degree(512, 8, {.seed = 7, .undirected = true});
}

KernelOptions adaptive_opts() {
  KernelOptions opts;
  opts.mapping = Mapping::kAdaptive;
  return opts;
}

KernelOptions static_opts() {
  KernelOptions opts;
  opts.mapping = Mapping::kWarpCentric;
  return opts;
}

/// Runs `algo(graph, opts)` under both mappings on a fresh device each and
/// expects bit-identical results.
template <typename RunF>
void expect_bit_identical(const Csr& g, RunF&& run) {
  gpu::Device dev_static;
  gpu::Device dev_adaptive;
  const auto expected = run(GpuGraph(dev_static, g), static_opts());
  const auto actual = run(GpuGraph(dev_adaptive, g), adaptive_opts());
  EXPECT_EQ(expected, actual);
}

class AdaptiveBitIdentity : public ::testing::TestWithParam<bool> {
 protected:
  Csr make_graph() const {
    return GetParam() ? skewed_graph() : flat_graph();
  }
};

INSTANTIATE_TEST_SUITE_P(Profiles, AdaptiveBitIdentity,
                         ::testing::Values(true, false),
                         [](const auto& param_info) {
                           return param_info.param ? "rmat" : "uniform";
                         });

TEST_P(AdaptiveBitIdentity, BfsLevelArray) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    return bfs_gpu(g, 0, opts).level;
  });
}

TEST_P(AdaptiveBitIdentity, BfsQueueFrontier) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    KernelOptions o = opts;
    o.frontier = Frontier::kQueue;
    return bfs_gpu(g, 0, o).level;
  });
}

TEST_P(AdaptiveBitIdentity, Sssp) {
  Csr g = make_graph();
  graph::assign_hash_weights(g, 16);
  expect_bit_identical(g, [](const GpuGraph& gg, const KernelOptions& opts) {
    return sssp_gpu(gg, 0, opts).dist;
  });
}

TEST_P(AdaptiveBitIdentity, PageRank) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    return pagerank_gpu(g, {}, opts).rank;  // floats: bitwise equality
  });
}

TEST_P(AdaptiveBitIdentity, ConnectedComponents) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    return connected_components_gpu(g, opts).label;
  });
}

TEST_P(AdaptiveBitIdentity, Spmv) {
  Csr g = make_graph();
  graph::assign_hash_weights(g, 16);
  std::vector<float> x(g.num_nodes());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0f / static_cast<float>(i + 1);
  }
  expect_bit_identical(g, [&](const GpuGraph& gg, const KernelOptions& opts) {
    return spmv_gpu(gg, x, opts).y;
  });
}

TEST_P(AdaptiveBitIdentity, Betweenness) {
  const std::vector<NodeId> sources{0, 1, 2, 3};
  expect_bit_identical(make_graph(), [&](const GpuGraph& g,
                                         const KernelOptions& opts) {
    return betweenness_gpu(g, sources, opts).centrality;
  });
}

TEST_P(AdaptiveBitIdentity, TriangleCount) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    return triangle_count_gpu(g, opts).per_vertex;
  });
}

TEST_P(AdaptiveBitIdentity, Coloring) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    return color_graph_gpu(g, opts).color;
  });
}

TEST_P(AdaptiveBitIdentity, KCore) {
  expect_bit_identical(make_graph(), [](const GpuGraph& g,
                                        const KernelOptions& opts) {
    return k_core_gpu(g, 3, opts).in_core;
  });
}

TEST_P(AdaptiveBitIdentity, MultiSourceBfs) {
  const std::vector<NodeId> sources{0, 3, 9, 27};
  expect_bit_identical(make_graph(), [&](const GpuGraph& g,
                                         const KernelOptions& opts) {
    return bfs_gpu_multi_source(g, sources, opts).level;
  });
}

// ---- forced-outlier team drain -------------------------------------------

TEST(AdaptiveTeams, ForcedOutlierBinMatchesStatic) {
  // star(400): hub degree 399 vs leaf degree 1. Forcing the outlier bound
  // down to 64 puts the hub in a team bin (warps_per_deferred_task warps
  // cooperate per hub) for the order-safe integer algorithms.
  const Csr g = graph::star(400);
  KernelOptions opts = adaptive_opts();
  opts.adaptive.outlier_degree = 64;
  opts.warps_per_deferred_task = 4;

  gpu::Device dev;
  const GpuGraph gg(dev, g);
  const AdaptivePlan& plan = gg.adaptive_state(opts).plan;
  ASSERT_GE(plan.bins.size(), 2u);
  EXPECT_EQ(plan.bins.back().team_warps, 4u);

  gpu::Device dev_static;
  EXPECT_EQ(bfs_gpu(GpuGraph(dev_static, g), 0, static_opts()).level,
            bfs_gpu(gg, 0, opts).level);

  gpu::Device dev_s2;
  gpu::Device dev_a2;
  EXPECT_EQ(
      connected_components_gpu(GpuGraph(dev_s2, g), static_opts()).label,
      connected_components_gpu(GpuGraph(dev_a2, g), opts).label);
}

// ---- bins ledger ----------------------------------------------------------

TEST(AdaptiveLedger, FusedSweepLogsBinnedLabel) {
  gpu::Device dev;
  const auto r = pagerank_gpu(GpuGraph(dev, skewed_graph()), {},
                              adaptive_opts());
  const auto* entry = r.stats.bins.find("pagerank.gather.binned");
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->launches, 0u);
  // The fused sweep is the only gather kernel: its launches match the
  // iteration count.
  EXPECT_EQ(entry->launches, static_cast<std::uint64_t>(r.stats.iterations));
}

TEST(AdaptiveLedger, SetupChargedToStateNotRuns) {
  gpu::Device dev;
  const GpuGraph gg(dev, skewed_graph());
  const KernelOptions opts = adaptive_opts();
  const AdaptiveState& st = gg.adaptive_state(opts);
  // Partition kernels (and calibration probes when enabled) land in the
  // cached state's setup ledger.
  EXPECT_NE(st.setup.find("adaptive.partition"), nullptr);
  EXPECT_TRUE(st.plan.calibrated);
  // A second run reuses the cached state: same object, no re-partition.
  EXPECT_EQ(&st, &gg.adaptive_state(opts));
}

// ---- plan structure -------------------------------------------------------

TEST(AdaptivePlanTuning, FlatProfileCollapsesToIdentityBin) {
  const Csr g = flat_graph();
  const simt::SimConfig cfg;
  const KernelOptions opts = adaptive_opts();
  const AdaptivePlan plan = tune_adaptive_plan(g, cfg, opts);
  ASSERT_EQ(plan.bins.size(), 1u);
  EXPECT_EQ(plan.bins[0].max_degree, 0xffffffffu);

  gpu::Device dev;
  const GpuGraph gg(dev, g);
  EXPECT_TRUE(gg.adaptive_state(opts).identity_entries);
}

TEST(AdaptivePlanTuning, MergeToleranceCollapsesMarginalSplits) {
  // grid2d degrees are 2..4 — the model wants a narrow/wide split whose
  // benefit is marginal; the default tolerance merges it away, tolerance
  // zero keeps every split the width model asks for.
  const Csr g = graph::grid2d(64, 64);
  const simt::SimConfig cfg;
  KernelOptions opts = adaptive_opts();
  const AdaptivePlan merged = tune_adaptive_plan(g, cfg, opts);
  EXPECT_EQ(merged.bins.size(), 1u);

  opts.adaptive.bin_merge_tolerance = 0.0;
  const AdaptivePlan split = tune_adaptive_plan(g, cfg, opts);
  EXPECT_GE(split.bins.size(), 2u);
}

TEST(AdaptivePlanTuning, SkewedProfileKeepsSplitsAndMonotoneWidths) {
  const simt::SimConfig cfg;
  const AdaptivePlan plan =
      tune_adaptive_plan(graph::star(1000), cfg, adaptive_opts());
  ASSERT_GE(plan.bins.size(), 2u);
  EXPECT_EQ(plan.bins.back().max_degree, 0xffffffffu);
  for (std::size_t b = 0; b + 1 < plan.bins.size(); ++b) {
    EXPECT_LT(plan.bins[b].max_degree, plan.bins[b + 1].max_degree);
    EXPECT_LE(plan.bins[b].width, plan.bins[b + 1].width);
  }
  // bin_of is consistent with the bounds.
  for (std::uint32_t d : {0u, 1u, 2u, 999u}) {
    const std::size_t b = plan.bin_of(d);
    EXPECT_LE(d, plan.bins[b].max_degree);
    if (b > 0) {
      EXPECT_GT(d, plan.bins[b - 1].max_degree);
    }
  }
}

// ---- simtsan sweep --------------------------------------------------------

TEST(AdaptiveSanitizer, AllAlgorithmsRunClean) {
  simt::SimConfig cfg;
  cfg.sanitize = true;
  Csr weighted = skewed_graph();
  graph::assign_hash_weights(weighted, 16);
  const std::vector<NodeId> sources{0, 1, 2, 3};
  std::vector<float> x(weighted.num_nodes(), 0.5f);

  const std::vector<std::function<void(const GpuGraph&)>> runs{
      [](const GpuGraph& g) { (void)bfs_gpu(g, 0, adaptive_opts()); },
      [](const GpuGraph& g) {
        KernelOptions o = adaptive_opts();
        o.frontier = Frontier::kQueue;
        (void)bfs_gpu(g, 0, o);
      },
      [](const GpuGraph& g) { (void)sssp_gpu(g, 0, adaptive_opts()); },
      [](const GpuGraph& g) { (void)pagerank_gpu(g, {}, adaptive_opts()); },
      [](const GpuGraph& g) {
        (void)connected_components_gpu(g, adaptive_opts());
      },
      [&](const GpuGraph& g) { (void)spmv_gpu(g, x, adaptive_opts()); },
      [&](const GpuGraph& g) {
        (void)betweenness_gpu(g, sources, adaptive_opts());
      },
      [](const GpuGraph& g) { (void)triangle_count_gpu(g, adaptive_opts()); },
      [](const GpuGraph& g) { (void)color_graph_gpu(g, adaptive_opts()); },
      [](const GpuGraph& g) { (void)k_core_gpu(g, 3, adaptive_opts()); },
      [&](const GpuGraph& g) {
        (void)bfs_gpu_multi_source(g, sources, adaptive_opts());
      },
  };
  for (std::size_t i = 0; i < runs.size(); ++i) {
    gpu::Device dev(cfg);
    runs[i](GpuGraph(dev, weighted));
    ASSERT_NE(dev.sanitizer(), nullptr);
    const auto& rep = dev.sanitizer()->report();
    EXPECT_TRUE(rep.clean()) << "run " << i << ":\n" << rep.text();
    EXPECT_GT(rep.checked_accesses, 0u);
  }
}

// ---- option validation ----------------------------------------------------

TEST(AdaptiveValidation, EntryPointsRejectBadOptions) {
  const Csr g = graph::chain(8);
  gpu::Device dev;
  const GpuGraph gg(dev, g);

  KernelOptions bad_width = adaptive_opts();
  bad_width.adaptive.min_width = 5;
  EXPECT_THROW((void)bfs_gpu(gg, 0, bad_width), std::invalid_argument);

  KernelOptions bad_bins = adaptive_opts();
  bad_bins.adaptive.max_bins = 0;
  EXPECT_THROW((void)pagerank_gpu(gg, {}, bad_bins), std::invalid_argument);

  KernelOptions bad_tolerance = adaptive_opts();
  bad_tolerance.adaptive.bin_merge_tolerance = -0.5;
  EXPECT_THROW((void)connected_components_gpu(gg, bad_tolerance),
               std::invalid_argument);

  // The thrown message names the entry point.
  try {
    (void)bfs_gpu(gg, 0, bad_width);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bfs_gpu"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace maxwarp::algorithms

#include "algorithms/bc_gpu.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace maxwarp::algorithms {
namespace {

using graph::Csr;
using graph::NodeId;

std::vector<NodeId> all_nodes(const Csr& g) {
  std::vector<NodeId> v(g.num_nodes());
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

void expect_matches_cpu(const Csr& g, std::span<const NodeId> sources,
                        const KernelOptions& opts, double tol = 1e-3) {
  gpu::Device dev;
  const auto gpu_result = betweenness_gpu(GpuGraph(dev, g), sources, opts);
  const auto cpu_result = betweenness_cpu(g, sources);
  ASSERT_EQ(gpu_result.centrality.size(), cpu_result.size());
  for (std::size_t v = 0; v < cpu_result.size(); ++v) {
    EXPECT_NEAR(gpu_result.centrality[v], cpu_result[v],
                tol * (1.0 + std::abs(cpu_result[v])))
        << "node " << v;
  }
}

// ---- CPU reference sanity on graphs with known BC ------------------------

TEST(BetweennessCpu, PathGraphCenterDominates) {
  // Undirected path 0-1-2-3-4, all sources: interior nodes carry the
  // crossing pairs. Known (unnormalized, directed-contribution) values:
  // node 2 lies on 0-3,0-4,1-3,1-4,3-0,4-0,... = 8 pairs; plus endpoints 0.
  const auto bc = betweenness_cpu(graph::chain(5), all_nodes(graph::chain(5)));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_DOUBLE_EQ(bc[1], 6.0);
  EXPECT_DOUBLE_EQ(bc[3], 6.0);
}

TEST(BetweennessCpu, StarHubCarriesEverything) {
  const Csr g = graph::star(6);  // hub 0, leaves 1..5
  const auto bc = betweenness_cpu(g, all_nodes(g));
  // Every leaf pair's unique shortest path crosses the hub: 5*4 ordered
  // pairs.
  EXPECT_DOUBLE_EQ(bc[0], 20.0);
  for (std::size_t v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(BetweennessCpu, CompleteGraphAllZero) {
  const Csr g = graph::complete(5);
  for (double x : betweenness_cpu(g, all_nodes(g))) {
    EXPECT_DOUBLE_EQ(x, 0.0);  // every pair is adjacent
  }
}

TEST(BetweennessCpu, SplitPathsShareCredit) {
  // Diamond: 0 -> {1,2} -> 3 (directed). Two shortest paths 0->3; nodes 1
  // and 2 each get 0.5 from the (0,3) pair.
  const Csr g = graph::build_csr(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto bc = betweenness_cpu(g, all_nodes(g));
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(BetweennessCpu, OutOfRangeSourceThrows) {
  const std::vector<NodeId> bad{99};
  EXPECT_THROW(betweenness_cpu(graph::chain(4), bad), std::out_of_range);
}

// ---- GPU vs CPU across mappings -------------------------------------------

struct BcCase {
  std::string name;
  Mapping mapping;
  int width;
};

class BcSweep : public ::testing::TestWithParam<BcCase> {};

TEST_P(BcSweep, PathAllSources) {
  const Csr g = graph::chain(12);
  KernelOptions opts;
  opts.mapping = GetParam().mapping;
  opts.virtual_warp_width = GetParam().width;
  expect_matches_cpu(g, all_nodes(g), opts);
}

TEST_P(BcSweep, TreeAllSources) {
  const Csr g = graph::complete_binary_tree(31);
  KernelOptions opts;
  opts.mapping = GetParam().mapping;
  opts.virtual_warp_width = GetParam().width;
  expect_matches_cpu(g, all_nodes(g), opts);
}

TEST_P(BcSweep, RmatSampledSources) {
  const Csr g = graph::rmat(256, 2048, {}, {.seed = 41, .undirected = true});
  const std::vector<NodeId> sources{0, 7, 33, 129, 200};
  KernelOptions opts;
  opts.mapping = GetParam().mapping;
  opts.virtual_warp_width = GetParam().width;
  expect_matches_cpu(g, sources, opts);
}

TEST_P(BcSweep, DirectedDiamond) {
  const Csr g = graph::build_csr(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  KernelOptions opts;
  opts.mapping = GetParam().mapping;
  opts.virtual_warp_width = GetParam().width;
  expect_matches_cpu(g, all_nodes(g), opts);
}

INSTANTIATE_TEST_SUITE_P(
    MappingsAndWidths, BcSweep,
    ::testing::Values(BcCase{"thread_mapped", Mapping::kThreadMapped, 32},
                      BcCase{"warp_w4", Mapping::kWarpCentric, 4},
                      BcCase{"warp_w16", Mapping::kWarpCentric, 16},
                      BcCase{"warp_w32", Mapping::kWarpCentric, 32}),
    [](const ::testing::TestParamInfo<BcCase>& param_info) {
      return param_info.param.name;
    });

TEST(BetweennessGpu, EmptySourcesGiveZeros) {
  gpu::Device dev;
  const auto r = betweenness_gpu(GpuGraph(dev, graph::chain(5)), {});
  for (float x : r.centrality) EXPECT_EQ(x, 0.0f);
}

TEST(BetweennessGpu, UnsupportedMappingThrows) {
  gpu::Device dev;
  KernelOptions opts;
  opts.mapping = Mapping::kWarpCentricDefer;
  const std::vector<NodeId> sources{0};
  EXPECT_THROW(betweenness_gpu(GpuGraph(dev, graph::chain(4)), sources, opts),
               std::invalid_argument);
}

TEST(BetweennessGpu, OutOfRangeSourceThrows) {
  gpu::Device dev;
  const std::vector<NodeId> bad{42};
  EXPECT_THROW(betweenness_gpu(GpuGraph(dev, graph::chain(4)), bad),
               std::out_of_range);
}

TEST(BetweennessGpu, DeterministicAcrossRuns) {
  const Csr g = graph::watts_strogatz(128, 4, 0.2, {.seed = 43});
  const std::vector<NodeId> sources{0, 5, 9};
  gpu::Device d1, d2;
  const auto a = betweenness_gpu(GpuGraph(d1, g), sources);
  const auto b = betweenness_gpu(GpuGraph(d2, g), sources);
  EXPECT_EQ(a.centrality, b.centrality);
  EXPECT_EQ(a.stats.kernels.elapsed_cycles, b.stats.kernels.elapsed_cycles);
}

TEST(BetweennessGpu, WarpCentricFasterOnSkewedGraph) {
  const Csr g = graph::rmat(2048, 16384, {}, {.seed = 44});
  const std::vector<NodeId> sources{0, 1, 2};
  gpu::Device d1, d2;
  KernelOptions base;
  base.mapping = Mapping::kThreadMapped;
  KernelOptions warp;
  warp.mapping = Mapping::kWarpCentric;
  warp.virtual_warp_width = 16;
  const auto b = betweenness_gpu(GpuGraph(d1, g), sources, base);
  const auto w = betweenness_gpu(GpuGraph(d2, g), sources, warp);
  EXPECT_LT(w.stats.kernels.elapsed_cycles, b.stats.kernels.elapsed_cycles);
}

}  // namespace
}  // namespace maxwarp::algorithms

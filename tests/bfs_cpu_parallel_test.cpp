#include "algorithms/bfs_cpu_parallel.hpp"

#include <gtest/gtest.h>

#include "algorithms/cpu_reference.hpp"
#include "graph/generators.hpp"

namespace maxwarp::algorithms {
namespace {

class ThreadCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountSweep, MatchesSequentialOnRmat) {
  const auto g = graph::rmat(2048, 16384, {}, {.seed = 1});
  const auto expected = bfs_cpu(g, 0);
  const auto result = bfs_cpu_parallel(g, 0, GetParam());
  EXPECT_EQ(result.level, expected);
}

TEST_P(ThreadCountSweep, MatchesSequentialOnGrid) {
  const auto g = graph::grid2d(40, 40);
  const auto expected = bfs_cpu(g, 7);
  const auto result = bfs_cpu_parallel(g, 7, GetParam());
  EXPECT_EQ(result.level, expected);
}

TEST_P(ThreadCountSweep, MatchesSequentialOnDisconnected) {
  const auto g = graph::build_csr(100, {{0, 1}, {1, 2}, {50, 51}});
  const auto expected = bfs_cpu(g, 0);
  const auto result = bfs_cpu_parallel(g, 0, GetParam());
  EXPECT_EQ(result.level, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(BfsCpuParallel, DepthMatchesEccentricity) {
  const auto g = graph::chain(25);
  const auto result = bfs_cpu_parallel(g, 0, 2);
  EXPECT_EQ(result.depth, 24u);
}

TEST(BfsCpuParallel, RecordsElapsedTime) {
  const auto g = graph::erdos_renyi(5000, 40000, {.seed = 2});
  const auto result = bfs_cpu_parallel(g, 0, 2);
  EXPECT_GT(result.elapsed_seconds, 0.0);
}

TEST(BfsCpuParallel, InvalidThreadCountThrows) {
  EXPECT_THROW(bfs_cpu_parallel(graph::chain(4), 0, 0),
               std::invalid_argument);
}

TEST(BfsCpuParallel, BadSourceAllUnreached) {
  const auto result = bfs_cpu_parallel(graph::chain(4), 77, 2);
  for (auto l : result.level) EXPECT_EQ(l, kUnreached);
}

TEST(SequentialReferences, BfsChainLevels) {
  const auto levels = bfs_cpu(graph::chain(5), 2);
  EXPECT_EQ(levels, (std::vector<std::uint32_t>{2, 1, 0, 1, 2}));
}

TEST(SequentialReferences, DijkstraSimplePath) {
  graph::Csr g = graph::build_csr(3, {{0, 1}, {1, 2}, {0, 2}});
  // Adjacency is sorted per row: row 0 holds targets {1, 2}, row 1 holds
  // {2}; so the direct 0->2 edge is the second weight slot.
  g.weights = {1, 5, 1};
  const auto dist = sssp_cpu(g, 0);
  EXPECT_EQ(dist[2], 2u);  // path 0-1-2 beats direct edge of weight 5
}

TEST(SequentialReferences, DijkstraUnweightedDefaultsToUnitWeights) {
  const auto dist = sssp_cpu(graph::chain(4), 0);
  EXPECT_EQ(dist[3], 3u);
}

TEST(SequentialReferences, UnionFindLabelsAreMinima) {
  const auto labels =
      connected_components_cpu(graph::build_csr(4, {{3, 1}, {1, 3}}));
  EXPECT_EQ(labels, (std::vector<std::uint32_t>{0, 1, 2, 1}));
}

TEST(SequentialReferences, PageRankSumsToOne) {
  const auto rank = pagerank_cpu(graph::rmat(256, 1024, {}, {.seed = 3}),
                                 0.85, 30);
  double total = 0;
  for (double r : rank) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SequentialReferences, PageRankUniformOnSymmetricRing) {
  const auto rank = pagerank_cpu(graph::chain(10), 0.85, 50);
  // A chain is not uniform (endpoints differ) but must be symmetric.
  EXPECT_NEAR(rank[0], rank[9], 1e-12);
  EXPECT_NEAR(rank[3], rank[6], 1e-12);
}

}  // namespace
}  // namespace maxwarp::algorithms

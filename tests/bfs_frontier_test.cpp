// Queue-frontier and adaptive-width BFS: correctness against the CPU
// reference, structural properties of the queue (each vertex enqueued at
// most once), and the paper-shape claims (queue avoids the per-level
// full scans that dominate high-diameter graphs; adaptive W tracks the
// frontier's average degree).
#include <gtest/gtest.h>

#include "algorithms/bfs_gpu.hpp"
#include "algorithms/cpu_reference.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace maxwarp::algorithms {
namespace {

using graph::Csr;

KernelOptions queue_options(Mapping mapping, int width) {
  KernelOptions opts;
  opts.mapping = mapping;
  opts.virtual_warp_width = width;
  opts.frontier = Frontier::kQueue;
  return opts;
}

void expect_matches_cpu(const Csr& g, graph::NodeId source,
                        const KernelOptions& opts) {
  gpu::Device dev;
  const auto gpu_result = bfs_gpu(GpuGraph(dev, g), source, opts);
  const auto cpu_levels = bfs_cpu(g, source);
  ASSERT_EQ(gpu_result.level, cpu_levels)
      << to_string(opts.mapping) << " W=" << opts.virtual_warp_width;
}

struct QueueCase {
  std::string name;
  Mapping mapping;
  int width;
};

class QueueBfsSweep : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueBfsSweep, Chain) {
  expect_matches_cpu(graph::chain(64), 0,
                     queue_options(GetParam().mapping, GetParam().width));
}

TEST_P(QueueBfsSweep, Star) {
  expect_matches_cpu(graph::star(300), 5,
                     queue_options(GetParam().mapping, GetParam().width));
}

TEST_P(QueueBfsSweep, Grid) {
  expect_matches_cpu(graph::grid2d(19, 21), 7,
                     queue_options(GetParam().mapping, GetParam().width));
}

TEST_P(QueueBfsSweep, RmatSkewed) {
  expect_matches_cpu(graph::rmat(1024, 8192, {}, {.seed = 31}), 0,
                     queue_options(GetParam().mapping, GetParam().width));
}

TEST_P(QueueBfsSweep, Disconnected) {
  expect_matches_cpu(graph::build_csr(50, {{0, 1}, {1, 2}, {30, 31}}), 0,
                     queue_options(GetParam().mapping, GetParam().width));
}

INSTANTIATE_TEST_SUITE_P(
    MappingsAndWidths, QueueBfsSweep,
    ::testing::Values(
        QueueCase{"thread_mapped", Mapping::kThreadMapped, 32},
        QueueCase{"warp_w4", Mapping::kWarpCentric, 4},
        QueueCase{"warp_w8", Mapping::kWarpCentric, 8},
        QueueCase{"warp_w32", Mapping::kWarpCentric, 32}),
    [](const ::testing::TestParamInfo<QueueCase>& param_info) {
      return param_info.param.name;
    });

TEST(QueueBfs, AgreesWithLevelArrayVariant) {
  const Csr g = graph::make_dataset("RMAT", 0.0625, 33);
  gpu::Device d1, d2;
  KernelOptions level_opts;
  const auto a = bfs_gpu(GpuGraph(d1, g), 0, level_opts);
  const auto b = bfs_gpu(GpuGraph(d2, g), 0, queue_options(Mapping::kWarpCentric, 16));
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.depth, b.depth);
}

TEST(QueueBfs, UnsupportedMappingsThrow) {
  gpu::Device dev;
  EXPECT_THROW(bfs_gpu(GpuGraph(dev, graph::chain(4)), 0, queue_options(Mapping::kWarpCentricDynamic, 8)),
               std::invalid_argument);
  EXPECT_THROW(bfs_gpu(GpuGraph(dev, graph::chain(4)), 0, queue_options(Mapping::kWarpCentricDefer, 8)),
               std::invalid_argument);
}

TEST(QueueBfs, EmptyGraphAndBadSource) {
  gpu::Device dev;
  const auto empty =
      bfs_gpu(GpuGraph(dev, graph::empty_graph(0)), 0, queue_options(Mapping::kWarpCentric, 8));
  EXPECT_TRUE(empty.level.empty());
  const auto bad = bfs_gpu(GpuGraph(dev, graph::chain(4)), 99, queue_options(Mapping::kWarpCentric, 8));
  for (auto l : bad.level) EXPECT_EQ(l, kUnreached);
}

TEST(QueueBfs, NaivePerLaneEnqueueSerializesAtomics) {
  // The thread-mapped queue kernel enqueues with one atomic per lane; the
  // warp-centric one aggregates to one atomic per warp. The conflict
  // counters must reflect that.
  const Csr g = graph::star(2000);
  gpu::Device d1, d2;
  const auto naive =
      bfs_gpu(GpuGraph(d1, g), 0, queue_options(Mapping::kThreadMapped, 32));
  const auto agg =
      bfs_gpu(GpuGraph(d2, g), 0, queue_options(Mapping::kWarpCentric, 32));
  EXPECT_GT(naive.stats.kernels.counters.atomic_conflicts,
            10 * agg.stats.kernels.counters.atomic_conflicts);
}

TEST(QueueBfs, QueueSkipsFullScans) {
  // On a high-diameter chain, the level-array kernel scans all n vertices
  // every level (O(n * depth) lane ops); the queue kernel touches only the
  // frontier. Compare issued instructions, which count that scan work.
  const Csr g = graph::chain(4096);
  gpu::Device d1, d2;
  KernelOptions level_opts;
  level_opts.virtual_warp_width = 4;
  const auto scan = bfs_gpu(GpuGraph(d1, g), 0, level_opts);
  const auto queue =
      bfs_gpu(GpuGraph(d2, g), 0, queue_options(Mapping::kWarpCentric, 4));
  EXPECT_EQ(scan.level, queue.level);
  EXPECT_GT(scan.stats.kernels.counters.issued_instructions,
            20 * queue.stats.kernels.counters.issued_instructions);
}

// ---- adaptive width -------------------------------------------------------

TEST(AdaptiveBfs, MatchesCpuOnDatasets) {
  for (const char* name : {"RMAT", "WikiTalk*", "Uniform", "Grid"}) {
    const Csr g = graph::make_dataset(name, 0.0625, 34);
    gpu::Device dev;
    const auto r = bfs_gpu_adaptive(GpuGraph(dev, g), 0);
    EXPECT_EQ(r.level, bfs_cpu(g, 0)) << name;
  }
}

TEST(AdaptiveBfs, RecordsOneWidthPerLevel) {
  gpu::Device dev;
  const auto r = bfs_gpu_adaptive(GpuGraph(dev, graph::chain(20)), 0);
  EXPECT_EQ(r.adaptive_widths.size(), r.stats.iterations);
  for (int w : r.adaptive_widths) {
    EXPECT_TRUE(w == 2 || w == 4 || w == 8 || w == 16 || w == 32);
  }
}

TEST(AdaptiveBfs, WidthTracksFrontierDegree) {
  // Star entered from a leaf: level 0 expands the leaf (degree-1 work),
  // level 1 expands the hub (degree ~n) -> the chosen W must jump to 32.
  gpu::Device dev;
  const auto r = bfs_gpu_adaptive(GpuGraph(dev, graph::star(5000)), 1);
  ASSERT_GE(r.adaptive_widths.size(), 2u);
  EXPECT_EQ(r.adaptive_widths[1], 32);
  // On a degree-8 regular graph the frontier grows huge quickly, the
  // occupancy term vanishes, and the degree term picks W=8.
  gpu::Device dev2;
  const auto u =
      bfs_gpu_adaptive(GpuGraph(dev2, graph::uniform_degree(30000, 8, {.seed = 9})), 0, /*min_width=*/2);
  ASSERT_GE(u.adaptive_widths.size(), 5u);
  EXPECT_EQ(u.adaptive_widths[4], 8);
}

TEST(AdaptiveBfs, SmallFrontierRaisesWidthForOccupancy) {
  // A chain's frontier is a single vertex; lane efficiency would say W=2,
  // but with one warp total the SMs are idle either way — the occupancy
  // term picks the full warp so the (tiny) launch at least fills a warp.
  gpu::Device dev;
  const auto c = bfs_gpu_adaptive(GpuGraph(dev, graph::chain(50)), 0, /*min_width=*/2);
  for (std::size_t i = 1; i < c.adaptive_widths.size(); ++i) {
    EXPECT_EQ(c.adaptive_widths[i], 32);
  }
}

TEST(AdaptiveBfs, MinWidthRespectedAndValidated) {
  gpu::Device dev;
  EXPECT_THROW(bfs_gpu_adaptive(GpuGraph(dev, graph::chain(4)), 0, /*min_width=*/3),
               std::invalid_argument);
  const auto r = bfs_gpu_adaptive(GpuGraph(dev, graph::chain(30)), 0, /*min_width=*/8);
  for (int w : r.adaptive_widths) EXPECT_GE(w, 8);
}

TEST(AdaptiveBfs, NearBestFixedWidthOnSkewedGraph) {
  const Csr g = graph::make_dataset("LiveJournal*", 0.125, 35);
  gpu::Device dev;
  const auto adaptive = bfs_gpu_adaptive(GpuGraph(dev, g), 0);
  std::uint64_t best_fixed = ~0ull;
  for (int w : {4, 8, 16, 32}) {
    gpu::Device d2;
    best_fixed = std::min(
        best_fixed,
        bfs_gpu(GpuGraph(d2, g), 0, queue_options(Mapping::kWarpCentric, w))
            .stats.kernels.elapsed_cycles);
  }
  // Adaptive pays two extra gathers per vertex for its statistics; allow
  // 40% overhead over the best fixed W, which it cannot know in advance.
  EXPECT_LT(static_cast<double>(adaptive.stats.kernels.elapsed_cycles),
            1.4 * static_cast<double>(best_fixed));
}

// ---- direction-optimizing (push/pull) BFS ---------------------------------

TEST(DirectionBfs, MatchesCpuOnDatasets) {
  for (const char* name : {"RMAT", "LiveJournal*", "Uniform", "Grid"}) {
    const Csr g = graph::make_dataset(name, 0.0625, 37);
    gpu::Device dev;
    const auto r = bfs_gpu_direction_optimized(GpuGraph(dev, g), 0);
    EXPECT_EQ(r.level, bfs_cpu(g, 0)) << name;
  }
}

TEST(DirectionBfs, MatchesCpuOnDirectedGraphs) {
  // Directed input forces the internal reverse-graph path for pull.
  const Csr g = graph::rmat(2048, 16384, {}, {.seed = 38});
  gpu::Device dev;
  const auto r = bfs_gpu_direction_optimized(GpuGraph(dev, g), 5);
  EXPECT_EQ(r.level, bfs_cpu(g, 5));
}

TEST(DirectionBfs, UsesBottomUpOnTheBoomLevel) {
  // A dense random graph floods in ~3 levels; the big middle level must
  // trigger the pull direction.
  const Csr g =
      graph::erdos_renyi(4096, 65536, {.seed = 39, .undirected = true});
  gpu::Device dev;
  const auto r = bfs_gpu_direction_optimized(GpuGraph(dev, g), 0);
  EXPECT_EQ(r.level, bfs_cpu(g, 0));
  bool any_pull = false;
  for (int d : r.level_directions) any_pull |= (d == 1);
  EXPECT_TRUE(any_pull);
  EXPECT_EQ(r.level_directions.front(), 0);  // level 0 is tiny: push
}

TEST(DirectionBfs, StaysTopDownOnHighDiameterGraphs) {
  // Grid frontiers never exceed n/alpha.
  const Csr g = graph::grid2d(40, 40);
  gpu::Device dev;
  const auto r = bfs_gpu_direction_optimized(GpuGraph(dev, g), 0);
  for (int d : r.level_directions) EXPECT_EQ(d, 0);
}

TEST(DirectionBfs, PullSkipsEdgeWorkOnDenseGraphs) {
  // On a flooding graph the hybrid should issue fewer instructions than
  // pure push (level-array warp-centric at the same W).
  const Csr g =
      graph::erdos_renyi(4096, 65536, {.seed = 40, .undirected = true});
  gpu::Device d1, d2;
  KernelOptions w8;
  w8.virtual_warp_width = 8;  // both sides at the legacy W=8
  const auto hybrid = bfs_gpu_direction_optimized(GpuGraph(d1, g), 0, w8);
  const auto push = bfs_gpu(GpuGraph(d2, g), 0, w8);
  EXPECT_EQ(hybrid.level, push.level);
  EXPECT_LT(hybrid.stats.kernels.counters.global_requests,
            push.stats.kernels.counters.global_requests);
}

TEST(DirectionBfs, ParameterValidation) {
  gpu::Device dev;
  KernelOptions bad;
  bad.virtual_warp_width = 3;
  EXPECT_THROW(bfs_gpu_direction_optimized(GpuGraph(dev, graph::chain(4)), 0, bad),
               std::invalid_argument);
  KernelOptions zero;
  zero.direction.alpha = 0;
  EXPECT_THROW(bfs_gpu_direction_optimized(GpuGraph(dev, graph::chain(4)), 0, zero),
               std::invalid_argument);
}

TEST(DirectionBfs, EmptyAndBadSource) {
  gpu::Device dev;
  EXPECT_TRUE(bfs_gpu_direction_optimized(GpuGraph(dev, graph::empty_graph(0)), 0)
                  .level.empty());
  const auto r =
      bfs_gpu_direction_optimized(GpuGraph(dev, graph::chain(4)), 99);
  for (auto l : r.level) EXPECT_EQ(l, kUnreached);
}

TEST(DirectionBfs, DeterministicAcrossRuns) {
  const Csr g =
      graph::erdos_renyi(1024, 16384, {.seed = 41, .undirected = true});
  gpu::Device d1, d2;
  const auto a = bfs_gpu_direction_optimized(GpuGraph(d1, g), 0);
  const auto b = bfs_gpu_direction_optimized(GpuGraph(d2, g), 0);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.level_directions, b.level_directions);
  EXPECT_EQ(a.stats.kernels.elapsed_cycles, b.stats.kernels.elapsed_cycles);
}

TEST(AdaptiveBfs, DeterministicAcrossRuns) {
  const Csr g = graph::rmat(512, 4096, {}, {.seed = 36});
  gpu::Device d1, d2;
  const auto a = bfs_gpu_adaptive(GpuGraph(d1, g), 0);
  const auto b = bfs_gpu_adaptive(GpuGraph(d2, g), 0);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.adaptive_widths, b.adaptive_widths);
  EXPECT_EQ(a.stats.kernels.elapsed_cycles, b.stats.kernels.elapsed_cycles);
}

}  // namespace
}  // namespace maxwarp::algorithms

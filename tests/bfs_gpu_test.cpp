#include "algorithms/bfs_gpu.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algorithms/cpu_reference.hpp"
#include "graph/generators.hpp"

namespace maxwarp::algorithms {
namespace {

using graph::Csr;

KernelOptions options_for(Mapping mapping, int width) {
  KernelOptions opts;
  opts.mapping = mapping;
  opts.virtual_warp_width = width;
  return opts;
}

void expect_matches_cpu(const Csr& g, graph::NodeId source,
                        const KernelOptions& opts) {
  gpu::Device dev;
  const auto gpu_result = bfs_gpu(GpuGraph(dev, g), source, opts);
  const auto cpu_levels = bfs_cpu(g, source);
  ASSERT_EQ(gpu_result.level.size(), cpu_levels.size());
  for (std::size_t v = 0; v < cpu_levels.size(); ++v) {
    ASSERT_EQ(gpu_result.level[v], cpu_levels[v])
        << "node " << v << " mapping " << to_string(opts.mapping)
        << " W=" << opts.virtual_warp_width;
  }
}

// ---- correctness across every mapping x width x graph shape -------------

struct BfsCase {
  std::string name;
  Mapping mapping;
  int width;
};

class BfsSweep : public ::testing::TestWithParam<BfsCase> {};

TEST_P(BfsSweep, ChainGraph) {
  expect_matches_cpu(graph::chain(64), 0,
                     options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, StarFromHubAndLeaf) {
  const Csr g = graph::star(200);
  expect_matches_cpu(g, 0, options_for(GetParam().mapping, GetParam().width));
  expect_matches_cpu(g, 7, options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, BinaryTree) {
  expect_matches_cpu(graph::complete_binary_tree(127), 0,
                     options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, Grid) {
  expect_matches_cpu(graph::grid2d(17, 23), 5,
                     options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, RmatSkewed) {
  const Csr g = graph::rmat(1024, 8192, {}, {.seed = 11});
  expect_matches_cpu(g, 0, options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, ErdosRenyiDirected) {
  const Csr g = graph::erdos_renyi(1000, 6000, {.seed = 12});
  expect_matches_cpu(g, 3, options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, DisconnectedPieces) {
  // Two cliques with no path between them.
  graph::EdgeList edges;
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = 0; v < 8; ++v) {
      if (u != v) {
        edges.push_back({u, v});
        edges.push_back({static_cast<graph::NodeId>(u + 8),
                         static_cast<graph::NodeId>(v + 8)});
      }
    }
  }
  expect_matches_cpu(graph::build_csr(16, edges), 0,
                     options_for(GetParam().mapping, GetParam().width));
}

TEST_P(BfsSweep, SingleNode) {
  expect_matches_cpu(graph::empty_graph(1), 0,
                     options_for(GetParam().mapping, GetParam().width));
}

INSTANTIATE_TEST_SUITE_P(
    MappingsAndWidths, BfsSweep,
    ::testing::Values(
        BfsCase{"thread_mapped", Mapping::kThreadMapped, 32},
        BfsCase{"warp_w2", Mapping::kWarpCentric, 2},
        BfsCase{"warp_w4", Mapping::kWarpCentric, 4},
        BfsCase{"warp_w8", Mapping::kWarpCentric, 8},
        BfsCase{"warp_w16", Mapping::kWarpCentric, 16},
        BfsCase{"warp_w32", Mapping::kWarpCentric, 32},
        BfsCase{"dynamic_w8", Mapping::kWarpCentricDynamic, 8},
        BfsCase{"dynamic_w32", Mapping::kWarpCentricDynamic, 32},
        BfsCase{"defer_w8", Mapping::kWarpCentricDefer, 8},
        BfsCase{"defer_w32", Mapping::kWarpCentricDefer, 32}),
    [](const ::testing::TestParamInfo<BfsCase>& param_info) {
      return param_info.param.name;
    });

// ---- edge cases and options ---------------------------------------------

TEST(BfsGpu, EmptyGraphAndBadSource) {
  gpu::Device dev;
  const auto empty = bfs_gpu(GpuGraph(dev, graph::empty_graph(0)), 0, {});
  EXPECT_TRUE(empty.level.empty());
  const auto bad = bfs_gpu(GpuGraph(dev, graph::chain(4)), 99, {});
  EXPECT_EQ(bad.reached_nodes, 0u);
  for (auto l : bad.level) EXPECT_EQ(l, kUnreached);
}

TEST(BfsGpu, InvalidWidthThrows) {
  gpu::Device dev;
  KernelOptions opts;
  opts.virtual_warp_width = 5;
  EXPECT_THROW(bfs_gpu(GpuGraph(dev, graph::chain(4)), 0, opts),
               std::invalid_argument);
}

TEST(BfsGpu, DepthMatchesEccentricity) {
  gpu::Device dev;
  const auto r = bfs_gpu(GpuGraph(dev, graph::chain(10)), 0, {});
  EXPECT_EQ(r.depth, 9u);
}

TEST(BfsGpu, ReachedAndTraversedAccounting) {
  gpu::Device dev;
  const Csr g = graph::build_csr(4, {{0, 1}, {1, 2}, {3, 0}});
  const auto r = bfs_gpu(GpuGraph(dev, g), 0, {});
  EXPECT_EQ(r.reached_nodes, 3u);        // 0, 1, 2
  EXPECT_EQ(r.traversed_edges, 2u);      // deg(0)+deg(1)+deg(2) = 1+1+0
}

TEST(BfsGpu, DeterministicStats) {
  const Csr g = graph::rmat(512, 4096, {}, {.seed = 13});
  KernelOptions opts;
  gpu::Device d1, d2;
  const auto a = bfs_gpu(GpuGraph(d1, g), 0, opts);
  const auto b = bfs_gpu(GpuGraph(d2, g), 0, opts);
  EXPECT_EQ(a.stats.kernels.elapsed_cycles, b.stats.kernels.elapsed_cycles);
  EXPECT_EQ(a.stats.kernels.counters.issued_instructions,
            b.stats.kernels.counters.issued_instructions);
}

TEST(BfsGpu, StatsArePopulated) {
  gpu::Device dev;
  const auto r = bfs_gpu(GpuGraph(dev, graph::grid2d(10, 10)), 0, {});
  EXPECT_GT(r.stats.kernels.launches, 0u);
  EXPECT_GT(r.stats.kernels.elapsed_cycles, 0u);
  EXPECT_GT(r.stats.transfer_ms, 0.0);
  EXPECT_EQ(r.stats.iterations, r.stats.kernels.launches);
  const double util = r.stats.kernels.counters.simd_utilization();
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
}

TEST(BfsGpu, DeferUsesQueueOnStarGraph) {
  gpu::Device dev;
  KernelOptions opts;
  opts.mapping = Mapping::kWarpCentricDefer;
  opts.defer_threshold = 10;  // hub degree 499 >> threshold
  const auto r = bfs_gpu(GpuGraph(dev, graph::star(500)), 0, opts);
  const auto cpu_levels = bfs_cpu(graph::star(500), 0);
  EXPECT_EQ(r.level, cpu_levels);
  // The drain pass adds launches beyond one per level.
  EXPECT_GT(r.stats.kernels.launches, r.stats.iterations);
}

TEST(BfsGpu, DeferThresholdAboveMaxDegreeNeverDrains) {
  gpu::Device dev;
  KernelOptions opts;
  opts.mapping = Mapping::kWarpCentricDefer;
  opts.defer_threshold = 1 << 20;
  const auto r = bfs_gpu(GpuGraph(dev, graph::star(100)), 0, opts);
  EXPECT_EQ(r.stats.kernels.launches, r.stats.iterations);
}

// ---- the paper's performance shape, as testable invariants ---------------

TEST(BfsShape, WarpCentricBeatsThreadMappedOnSkewedGraph) {
  const Csr g = graph::rmat(4096, 32768, {}, {.seed = 14});
  gpu::Device d1, d2;
  const auto base = bfs_gpu(GpuGraph(d1, g), 0, options_for(Mapping::kThreadMapped, 32));
  const auto warp = bfs_gpu(GpuGraph(d2, g), 0, options_for(Mapping::kWarpCentric, 32));
  EXPECT_LT(warp.stats.kernels.elapsed_cycles,
            base.stats.kernels.elapsed_cycles);
}

TEST(BfsShape, ThreadMappedCompetitiveOnUniformGraph) {
  // On a degree-8 regular graph, W=32 wastes 24 of 32 lanes; the baseline
  // must not lose (this is the other side of the paper's trade-off).
  const Csr g = graph::uniform_degree(4096, 8, {.seed = 15});
  gpu::Device d1, d2;
  const auto base = bfs_gpu(GpuGraph(d1, g), 0, options_for(Mapping::kThreadMapped, 32));
  const auto warp = bfs_gpu(GpuGraph(d2, g), 0, options_for(Mapping::kWarpCentric, 32));
  EXPECT_LT(base.stats.kernels.elapsed_cycles,
            warp.stats.kernels.elapsed_cycles);
}

TEST(BfsShape, BaselineUtilizationLowOnSkewedGraph) {
  const Csr g = graph::rmat(4096, 32768, {}, {.seed = 16});
  gpu::Device dev;
  const auto base = bfs_gpu(GpuGraph(dev, g), 0, options_for(Mapping::kThreadMapped, 32));
  EXPECT_LT(base.stats.kernels.counters.simd_utilization(), 0.5);
}

TEST(BfsShape, WarpCentricCoalescesBetter) {
  const Csr g = graph::rmat(4096, 32768, {}, {.seed = 17});
  gpu::Device d1, d2;
  const auto base = bfs_gpu(GpuGraph(d1, g), 0, options_for(Mapping::kThreadMapped, 32));
  const auto warp = bfs_gpu(GpuGraph(d2, g), 0, options_for(Mapping::kWarpCentric, 32));
  EXPECT_LT(warp.stats.kernels.counters.transactions_per_request(),
            base.stats.kernels.counters.transactions_per_request());
}

}  // namespace
}  // namespace maxwarp::algorithms
